// E10 ("real experiments"): the thread-based choreography runtime.
//
// Reproduced claim: on a real decentralized execution — one thread per
// service, direct queues, no coordinator — the plan chosen by the
// branch-and-bound delivers its predicted advantage in wall-clock time
// over heuristic and bad plans.

#include <iostream>

#include "quest/common/cli.hpp"
#include "quest/core/branch_and_bound.hpp"
#include "quest/opt/greedy.hpp"
#include "quest/opt/random_sampler.hpp"
#include "quest/runtime/choreography.hpp"
#include "quest/workload/scenarios.hpp"
#include "support/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace quest;
  Cli cli("bench_e10_runtime",
          "E10: wall-clock validation on the thread-based runtime");
  auto& tuples = cli.add_int("tuples", 1600, "input tuples per run");
  auto& scale = cli.add_double("scale-us", 100.0,
                               "microseconds per model cost unit");
  cli.parse(argc, argv);

  bench::banner("E10", "real threaded choreography: model cost units vs "
                       "wall-clock per-tuple cost (" +
                           std::to_string(tuples.value) + " tuples, " +
                           Table::num(scale.value, 0) + "us per unit)");

  Table table("E10: wall-clock per-tuple cost (model units)");
  table.set_header({"scenario", "plan", "predicted", "wall", "error %",
                    "delivered"});

  for (const auto& scenario :
       {workload::credit_screening(), workload::sky_survey(),
        workload::log_analytics()}) {
    opt::Request request;
    request.instance = &scenario.instance;
    request.precedence = &scenario.precedence;

    core::Bnb_optimizer bnb;
    opt::Greedy_optimizer greedy;
    opt::Random_sampler_options sampler_options;
    sampler_options.samples = 1;
    sampler_options.seed = 2;
    opt::Random_sampler_optimizer sampler(sampler_options);

    struct Row {
      std::string label;
      model::Plan plan;
    };
    const std::vector<Row> rows = {
        {"optimal", bnb.optimize(request).plan},
        {"greedy", greedy.optimize(request).plan},
        {"random", sampler.optimize(request).plan},
    };

    for (const auto& row : rows) {
      runtime::Runtime_config config;
      config.input_tuples = static_cast<std::uint64_t>(tuples.value);
      config.block_size = 24;
      config.time_scale_us = scale.value;
      const auto result =
          runtime::execute(scenario.instance, row.plan, config);
      table.add_row(
          {scenario.instance.name(), row.label,
           Table::num(result.predicted_cost, 3),
           Table::num(result.per_tuple_cost_units, 3),
           Table::num(100.0 *
                          (result.per_tuple_cost_units -
                           result.predicted_cost) /
                          result.predicted_cost,
                      2),
           std::to_string(result.tuples_delivered)});
    }
  }
  table.add_footnote(
      "Eq. 1 is a steady-state metric: heavily filtered pipelines leave "
      "tail services with under-filled blocks (batching latency), so "
      "short runs sit 10-25% above prediction — the effect E9 isolates");
  table.add_footnote("expected shape: plan ranking by wall time matches the "
                     "Eq. 1 ranking; errors shrink as --tuples grows");
  std::cout << table;
  return 0;
}
