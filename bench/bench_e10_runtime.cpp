// E10 ("real experiments"): the choreography runtime.
//
// Reproduced claim, part 1 (real clock): on a real decentralized
// execution — emulated services with deadline sleeps, direct queues, no
// coordinator — the plan chosen by the branch-and-bound delivers its
// predicted advantage in wall-clock time over heuristic and bad plans.
//
// Part 2 (virtual clock): the batched executor scales the same engine to
// plans with hundreds of services on a small worker pool, and the
// measured per-tuple cost tracks the Eq. 1 bottleneck prediction across
// the sweep — the paper's unbounded-services setting, which the
// thread-per-service backend could not reach.

#include <algorithm>
#include <iostream>

#include "quest/common/cli.hpp"
#include "quest/common/timer.hpp"
#include "quest/core/branch_and_bound.hpp"
#include "quest/opt/greedy.hpp"
#include "quest/opt/random_sampler.hpp"
#include "quest/runtime/choreography.hpp"
#include "quest/workload/generators.hpp"
#include "quest/workload/scenarios.hpp"
#include "support/bench_util.hpp"

namespace {

using namespace quest;

void run_scenarios(std::uint64_t tuples, double scale_us) {
  Table table("E10a: wall-clock per-tuple cost, real clock (model units)");
  table.set_header({"scenario", "plan", "predicted", "wall", "error %",
                    "delivered"});

  for (const auto& scenario :
       {workload::credit_screening(), workload::sky_survey(),
        workload::log_analytics()}) {
    opt::Request request;
    request.instance = &scenario.instance;
    request.precedence = &scenario.precedence;

    core::Bnb_optimizer bnb;
    opt::Greedy_optimizer greedy;
    opt::Random_sampler_options sampler_options;
    sampler_options.samples = 1;
    sampler_options.seed = 2;
    opt::Random_sampler_optimizer sampler(sampler_options);

    struct Row {
      std::string label;
      model::Plan plan;
    };
    const std::vector<Row> rows = {
        {"optimal", bnb.optimize(request).plan},
        {"greedy", greedy.optimize(request).plan},
        {"random", sampler.optimize(request).plan},
    };

    for (const auto& row : rows) {
      runtime::Runtime_config config;
      config.input_tuples = tuples;
      config.block_size = 24;
      config.time_scale_us = scale_us;
      const auto result =
          runtime::execute(scenario.instance, row.plan, config);
      table.add_row(
          {scenario.instance.name(), row.label,
           Table::num(result.predicted_cost, 3),
           Table::num(result.per_tuple_cost_units, 3),
           Table::num(100.0 *
                          (result.per_tuple_cost_units -
                           result.predicted_cost) /
                          result.predicted_cost,
                      2),
           std::to_string(result.tuples_delivered)});
    }
  }
  table.add_footnote(
      "Eq. 1 is a steady-state metric: heavily filtered pipelines leave "
      "tail services with under-filled blocks (batching latency), so "
      "short runs sit 10-25% above prediction — the effect E9 isolates");
  table.add_footnote("expected shape: plan ranking by wall time matches the "
                     "Eq. 1 ranking; errors shrink as --tuples grows");
  std::cout << table;
}

void run_scaling_sweep(std::size_t max_services, std::uint64_t tuples,
                       std::size_t workers) {
  Table table("E10b: service-count sweep, virtual clock (" +
              std::to_string(workers) + " workers)");
  table.set_header({"services", "input", "predicted", "measured",
                    "error %", "delivered", "engine ms"});

  for (std::size_t n = 16; n <= max_services; n *= 2) {
    // Weak filters (sigma in [0.995, 1]) keep tuples flowing through
    // hundreds of stages, so the whole pipeline — not just its head — is
    // exercised.
    Rng rng(n * 1009);
    workload::Uniform_spec spec;
    spec.n = n;
    spec.cost_min = 0.2;
    spec.cost_max = 2.0;
    spec.selectivity_min = 0.995;
    spec.selectivity_max = 1.0;
    spec.transfer_min = 0.05;
    spec.transfer_max = 0.2;
    const auto instance = workload::make_uniform(spec, rng);

    runtime::Runtime_config config;
    config.clock_mode = runtime::Clock_mode::virtual_time;
    config.worker_count = workers;
    // Eq. 1 is a steady-state metric and the fill/drain transient grows
    // with plan depth (every stage adds ~block_size * term of latency),
    // so the input must scale with n for the transient to amortize.
    config.input_tuples = tuples + 50 * static_cast<std::uint64_t>(n);
    config.block_size = 8;
    const auto plan = model::Plan::identity(n);

    Timer timer;
    const auto result = runtime::execute(instance, plan, config);
    const double engine_ms = timer.millis();

    table.add_row(
        {std::to_string(n), std::to_string(config.input_tuples),
         Table::num(result.predicted_cost, 3),
         Table::num(result.per_tuple_cost_units, 3),
         Table::num(100.0 *
                        (result.per_tuple_cost_units -
                         result.predicted_cost) /
                        result.predicted_cost,
                    2),
         std::to_string(result.tuples_delivered),
         Table::num(engine_ms, 1)});
  }
  table.add_footnote(
      "virtual time: no sleeps, results deterministic; `engine ms` is the "
      "host cost of executing the emulation, not emulated time");
  table.add_footnote("expected shape: error stays modest while services "
                     "grow far beyond the worker count (input scales "
                     "with n so the fill/drain transient amortizes)");
  std::cout << table;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_e10_runtime",
          "E10: wall-clock and virtual-time validation on the runtime");
  auto& tuples = cli.add_int("tuples", 1600, "input tuples per real run");
  auto& scale = cli.add_double("scale-us", 100.0,
                               "microseconds per model cost unit");
  auto& sweep_max = cli.add_int("sweep-max-services", 256,
                                "largest service count in the sweep");
  auto& sweep_tuples =
      cli.add_int("sweep-tuples", 4000, "input tuples per sweep run");
  auto& workers =
      cli.add_int("workers", 8, "worker pool for the virtual sweep");
  auto& skip_real =
      cli.add_bool("skip-real", false, "skip the real-clock scenario table");
  cli.parse(argc, argv);

  bench::banner("E10", "choreography runtime: model cost units vs measured "
                       "per-tuple cost (" +
                           std::to_string(tuples.value) + " tuples, " +
                           Table::num(scale.value, 0) + "us per unit)");

  // Negative flag values would wrap around the unsigned casts; clamp to 0
  // (0 workers = the executor's auto choice, 0 services = empty sweep).
  const auto clamped = [](std::int64_t v) {
    return static_cast<std::uint64_t>(std::max<std::int64_t>(0, v));
  };
  if (!skip_real.value) {
    run_scenarios(clamped(tuples.value), scale.value);
    std::cout << "\n";
  }
  run_scaling_sweep(static_cast<std::size_t>(clamped(sweep_max.value)),
                    clamped(sweep_tuples.value),
                    static_cast<std::size_t>(clamped(workers.value)));
  return 0;
}
