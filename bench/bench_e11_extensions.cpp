// E11 (quest extension ablation — beyond the brief announcement):
// (a) the admissible lower bound on undetermined terms, which attacks the
//     sigma > 1 regime where the paper's pruning is weakest, and
// (b) bounded-suboptimality search: how much cheaper the search gets for a
//     guaranteed (1 + delta) answer, and how good the answers actually are.

#include <iostream>

#include "quest/common/cli.hpp"
#include "quest/core/branch_and_bound.hpp"
#include "quest/workload/generators.hpp"
#include "support/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace quest;
  Cli cli("bench_e11_extensions",
          "E11: lower-bound and bounded-suboptimality ablations");
  auto& n = cli.add_int("n", 10, "instance size (expanding regime)");
  auto& seeds = cli.add_int("seeds", 8, "instances per point");
  auto& node_limit =
      cli.add_int("node-limit", 20'000'000, "per-run node budget");
  cli.parse(argc, argv);

  bench::banner("E11", "quest extensions beyond the paper (exactness "
                       "preserved; see DESIGN.md)");

  {
    Table table("E11a: admissible lower bound on sigma in [0.5, 2.5] "
                "instances (n=" + std::to_string(n.value) + ")");
    table.set_header({"config", "nodes", "lb prunes", "time (ms)",
                      "cost ratio"});
    Sample_stats base_nodes, lb_nodes, base_ms, lb_ms, lb_prunes;
    std::vector<double> ratio;
    for (std::int64_t seed = 1; seed <= seeds.value; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 197 + 3);
      workload::Uniform_spec spec;
      spec.n = static_cast<std::size_t>(n.value);
      spec.selectivity_min = 0.5;
      spec.selectivity_max = 2.5;
      const auto instance = workload::make_uniform(spec, rng);
      opt::Request request;
      request.instance = &instance;
      request.budget.node_limit = static_cast<std::uint64_t>(node_limit.value);

      core::Bnb_optimizer plain;
      opt::Result base;
      base_ms.add(bench::timed_ms(plain, request, base));
      base_nodes.add(static_cast<double>(base.stats.nodes_expanded));

      core::Bnb_options options;
      options.enable_lower_bound = true;
      core::Bnb_optimizer extended(options);
      opt::Result with_lb;
      lb_ms.add(bench::timed_ms(extended, request, with_lb));
      lb_nodes.add(static_cast<double>(with_lb.stats.nodes_expanded));
      lb_prunes.add(static_cast<double>(with_lb.stats.lower_bound_prunes));
      if (base.cost > 0.0) ratio.push_back(with_lb.cost / base.cost);
    }
    table.add_row({"paper algorithm", bench::human_count(base_nodes.mean()),
                   "-", Table::num(base_ms.mean(), 2), "1.000"});
    table.add_row({"+ lower bound", bench::human_count(lb_nodes.mean()),
                   bench::human_count(lb_prunes.mean()),
                   Table::num(lb_ms.mean(), 2),
                   Table::num(geometric_mean(ratio), 3)});
    table.add_footnote("cost ratio must be 1.000 — the bound is admissible, "
                       "so exactness is preserved");
    std::cout << table << "\n";
  }

  {
    Table table("E11b: bounded-suboptimality search on near-TSP instances "
                "(sigma in [0.9, 1], n=12)");
    table.set_header({"delta", "nodes vs exact", "actual cost ratio",
                      "guarantee"});
    for (const double delta : {0.0, 0.05, 0.1, 0.25, 0.5, 1.0}) {
      Sample_stats node_ratio;
      std::vector<double> cost_ratio;
      for (std::int64_t seed = 1; seed <= seeds.value; ++seed) {
        Rng rng(static_cast<std::uint64_t>(seed) * 613 + 7);
        workload::Uniform_spec spec;
        spec.n = 12;
        spec.selectivity_min = 0.9;
        const auto instance = workload::make_uniform(spec, rng);
        opt::Request request;
        request.instance = &instance;
        request.budget.node_limit = static_cast<std::uint64_t>(node_limit.value);

        core::Bnb_optimizer exact;
        const auto truth = exact.optimize(request);

        core::Bnb_options options;
        options.suboptimality = delta;
        core::Bnb_optimizer relaxed(options);
        const auto approx = relaxed.optimize(request);
        if (truth.stats.nodes_expanded > 0) {
          node_ratio.add(static_cast<double>(approx.stats.nodes_expanded) /
                         static_cast<double>(truth.stats.nodes_expanded));
        }
        if (truth.cost > 0.0) cost_ratio.push_back(approx.cost / truth.cost);
      }
      table.add_row({Table::num(delta, 2), Table::num(node_ratio.mean(), 3),
                     Table::num(geometric_mean(cost_ratio), 3),
                     "<= " + Table::num(1.0 + delta, 2)});
    }
    table.add_footnote("expected shape: nodes fall steeply with delta while "
                       "actual cost stays far inside the guarantee");
    std::cout << table;
  }
  return 0;
}
