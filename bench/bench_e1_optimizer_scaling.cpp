// E1 ("Table 1"): optimizer runtime vs instance size.
//
// Reproduced claim: the branch-and-bound prunes the n! search space so
// effectively on selective-service workloads (the paper's setting) that it
// solves sizes far beyond exhaustive search and scales past the subset DP,
// while staying exactly optimal.

#include <iostream>

#include "quest/common/cli.hpp"
#include "quest/workload/generators.hpp"
#include "support/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace quest;
  Cli cli("bench_e1_optimizer_scaling",
          "E1: optimizer runtime vs number of services");
  auto& n_min = cli.add_int("n-min", 6, "smallest instance");
  auto& n_max = cli.add_int("n-max", 18, "largest instance");
  auto& seeds = cli.add_int("seeds", 10, "instances per size");
  auto& exhaustive_max =
      cli.add_int("exhaustive-max", 9, "largest size for exhaustive search");
  auto& dp_max = cli.add_int("dp-max", 18, "largest size for the subset DP");
  auto& csv = cli.add_bool("csv", false, "emit CSV");
  cli.parse(argc, argv);

  bench::banner("E1",
                "branch-and-bound vs exact baselines on selective services "
                "(sigma in [0.1, 1], heterogeneous asymmetric transfers)");

  // Engines by registry spec; per-engine size caps below.
  auto bnb = core::make_optimizer("bnb");
  auto dp = core::make_optimizer("dp");
  auto frontier = core::make_optimizer("frontier");
  auto exhaustive = core::make_optimizer("exhaustive-bounded");
  auto greedy = core::make_optimizer("greedy");

  Table table("E1: mean optimization time per instance");
  table.set_header({"n", "n!", "bnb (ms)", "bnb nodes", "dp (ms)",
                    "frontier (ms)", "exhaustive (ms)", "greedy (ms)",
                    "greedy cost ratio"});

  for (std::int64_t n = n_min.value; n <= n_max.value; n += 2) {
    Sample_stats bnb_ms, dp_ms, frontier_ms, exh_ms, greedy_ms, bnb_nodes,
        greedy_ratio;
    for (std::int64_t seed = 1; seed <= seeds.value; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 7919);
      workload::Uniform_spec spec;
      spec.n = static_cast<std::size_t>(n);
      const auto instance = workload::make_uniform(spec, rng);
      opt::Request request;
      request.instance = &instance;

      opt::Result bnb_result;
      bnb_ms.add(bench::timed_ms(*bnb, request, bnb_result));
      bnb_nodes.add(static_cast<double>(bnb_result.stats.nodes_expanded));

      if (n <= dp_max.value) {
        opt::Result dp_result;
        dp_ms.add(bench::timed_ms(*dp, request, dp_result));
        opt::Result frontier_result;
        frontier_ms.add(bench::timed_ms(*frontier, request, frontier_result));
      }
      if (n <= exhaustive_max.value) {
        opt::Result exh_result;
        exh_ms.add(bench::timed_ms(*exhaustive, request, exh_result));
      }
      opt::Result greedy_result;
      greedy_ms.add(bench::timed_ms(*greedy, request, greedy_result));
      greedy_ratio.add(greedy_result.cost / bnb_result.cost);
    }
    table.add_row({std::to_string(n),
                   bench::human_count(bench::factorial(
                       static_cast<std::size_t>(n))),
                   Table::num(bnb_ms.mean(), 4),
                   bench::human_count(bnb_nodes.mean()),
                   dp_ms.count() ? Table::num(dp_ms.mean(), 3) : "-",
                   frontier_ms.count() ? Table::num(frontier_ms.mean(), 3)
                                       : "-",
                   exh_ms.count() ? Table::num(exh_ms.mean(), 3) : "-",
                   Table::num(greedy_ms.mean(), 4),
                   Table::num(greedy_ratio.mean(), 3)});
  }
  table.add_footnote("bnb = the paper's algorithm (exact); dp = subset "
                     "Held-Karp (exact); exhaustive = epsilon-bounded DFS");
  table.add_footnote(
      "expected shape: bnb time stays near-flat while dp grows ~2^n and "
      "exhaustive ~n!; greedy is fast but suboptimal");
  if (csv.value) {
    table.render_csv(std::cout);
  } else {
    std::cout << table;
  }
  return 0;
}
