// E2 ("Figure 1"): where the pruning power comes from.
//
// Reproduced claim: the three lemmas compound. Ablating Lemma-2 closures,
// the Lemma-3 back-jump, or the exact epsilon-bar costs orders of magnitude
// in explored nodes; Lemma 1 alone (bounded exhaustive search) is far
// weaker than the full algorithm.

#include <iostream>

#include "quest/common/cli.hpp"
#include "quest/core/branch_and_bound.hpp"
#include "quest/opt/exhaustive.hpp"
#include "quest/workload/generators.hpp"
#include "support/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace quest;
  Cli cli("bench_e2_pruning", "E2: pruning breakdown and lemma ablations");
  auto& n_min = cli.add_int("n-min", 8, "smallest instance");
  auto& n_max = cli.add_int("n-max", 16, "largest instance");
  auto& seeds = cli.add_int("seeds", 8, "instances per size");
  auto& node_limit =
      cli.add_int("node-limit", 20'000'000, "per-run node budget");
  cli.parse(argc, argv);

  bench::banner("E2",
                "nodes explored: full algorithm vs lemma ablations, in the "
                "selective regime (closures dominate) and the near-TSP "
                "regime (incumbent bounding dominates)");

  struct Config {
    std::string label;
    core::Bnb_options options;
  };
  std::vector<Config> configs;
  configs.push_back({"full", {}});
  {
    core::Bnb_options loose;
    loose.ebar_mode = core::Epsilon_bar_mode::loose;
    configs.push_back({"loose-ebar", loose});
  }
  {
    core::Bnb_options nojump;
    nojump.enable_backjump = false;
    configs.push_back({"no-backjump", nojump});
  }
  {
    core::Bnb_options noclosure;
    noclosure.enable_closure = false;
    noclosure.enable_backjump = false;  // closure drives the back-jump
    configs.push_back({"lemma1-only", noclosure});
  }

  for (const double sigma_lo : {0.1, 0.8}) {
    Table table("E2: mean nodes explored, sigma in [" +
                Table::num(sigma_lo, 1) + ", 1]");
    table.set_header({"n", "full", "loose-ebar", "no-backjump",
                      "lemma1-only", "exh-bounded", "closures", "backjumps",
                      "l1-cutoffs"});

    for (std::int64_t n = n_min.value; n <= n_max.value; n += 2) {
      std::vector<Sample_stats> nodes(configs.size());
      Sample_stats exhaustive_nodes, closures, backjumps, cutoffs;
      bool any_limit = false;
      for (std::int64_t seed = 1; seed <= seeds.value; ++seed) {
        Rng rng(static_cast<std::uint64_t>(seed) * 104729);
        workload::Uniform_spec spec;
        spec.n = static_cast<std::size_t>(n);
        spec.selectivity_min = sigma_lo;
        const auto instance = workload::make_uniform(spec, rng);
        opt::Request request;
        request.instance = &instance;
        request.budget.node_limit = static_cast<std::uint64_t>(node_limit.value);

        for (std::size_t c = 0; c < configs.size(); ++c) {
          core::Bnb_optimizer bnb(configs[c].options);
          const auto result = bnb.optimize(request);
          nodes[c].add(static_cast<double>(result.stats.nodes_expanded));
          any_limit |= opt::stopped_early(result.termination);
          if (c == 0) {
            closures.add(static_cast<double>(result.stats.lemma2_closures));
            backjumps.add(
                static_cast<double>(result.stats.lemma3_backjumps));
            cutoffs.add(static_cast<double>(result.stats.lemma1_cutoffs));
          }
        }
        // Lemma-1-only reference implemented independently (bounded DFS in
        // service-id order, no cheapest-successor policy).
        opt::Exhaustive_optimizer bounded(true);
        exhaustive_nodes.add(static_cast<double>(
            bounded.optimize(request).stats.nodes_expanded));
      }
      table.add_row({std::to_string(n), bench::human_count(nodes[0].mean()),
                     bench::human_count(nodes[1].mean()),
                     bench::human_count(nodes[2].mean()),
                     bench::human_count(nodes[3].mean()),
                     bench::human_count(exhaustive_nodes.mean()),
                     bench::human_count(closures.mean()),
                     bench::human_count(backjumps.mean()),
                     bench::human_count(cutoffs.mean())});
      if (any_limit) {
        table.add_footnote("some runs at n=" + std::to_string(n) +
                           " hit the node limit; their counts are lower "
                           "bounds");
      }
    }
    table.add_footnote(
        "expected shape: full <= loose-ebar <= no-backjump <= lemma1-only "
        "<< exh-bounded (id-order DFS, no cheapest-successor policy)");
    std::cout << table << "\n";
  }
  return 0;
}
