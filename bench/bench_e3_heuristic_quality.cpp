// E3 ("Figure 2"): plan quality of heuristics relative to the exact
// branch-and-bound optimum, per instance family.
//
// Reproduced claim: optimal ordering buys a real margin — constructive
// heuristics land noticeably above the optimum (and random ordering far
// above), which is what justifies an exact algorithm.

#include <iostream>
#include <vector>

#include "quest/common/cli.hpp"
#include "quest/workload/generators.hpp"
#include "support/bench_util.hpp"

namespace {

quest::model::Instance make_family(const std::string& family, std::size_t n,
                                   quest::Rng& rng) {
  using namespace quest::workload;
  if (family == "uniform") {
    Uniform_spec spec;
    spec.n = n;
    return make_uniform(spec, rng);
  }
  if (family == "clustered") {
    Clustered_spec spec;
    spec.n = n;
    return make_clustered(spec, rng);
  }
  if (family == "euclidean") {
    Euclidean_spec spec;
    spec.n = n;
    return make_euclidean(spec, rng);
  }
  Bottleneck_tsp_spec spec;
  spec.n = n;
  return make_bottleneck_tsp(spec, rng);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace quest;
  Cli cli("bench_e3_heuristic_quality",
          "E3: heuristic cost ratio to the exact optimum");
  auto& n = cli.add_int("n", 10, "instance size");
  auto& seeds = cli.add_int("seeds", 25, "instances per family");
  cli.parse(argc, argv);

  bench::banner("E3", "geometric-mean cost ratio to optimal (1.000 = "
                      "optimal) and share of instances solved optimally");

  const std::vector<std::string> families = {"uniform", "clustered",
                                             "euclidean", "btsp"};
  // Heuristics by registry spec; stochastic engines are reseeded per
  // instance through the one top-level Request::seed knob.
  const std::vector<std::string> heuristic_specs = {
      "greedy",
      "uniform-opt",
      "local-search",
      "multistart:restarts=8",
      "annealing:iterations=10000",
      "random:samples=100"};
  auto reference = core::make_optimizer("bnb");
  auto heuristics = bench::make_engines(heuristic_specs);

  Table table("E3: heuristic quality by instance family (n=" +
              std::to_string(n.value) + ")");
  table.set_header({"family", "optimizer", "geo-mean ratio", "worst ratio",
                    "% optimal"});

  for (const auto& family : families) {
    struct Entry {
      std::vector<double> ratios;
      int optimal = 0;
    };
    std::vector<Entry> entries(heuristics.size());

    for (std::int64_t seed = 1; seed <= seeds.value; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 6151 + 3);
      const auto instance =
          make_family(family, static_cast<std::size_t>(n.value), rng);
      opt::Request request;
      request.instance = &instance;
      request.seed = static_cast<std::uint64_t>(seed);

      const double optimum = reference->optimize(request).cost;
      if (optimum <= 0.0) continue;  // degenerate zero-cost instance

      for (std::size_t h = 0; h < heuristics.size(); ++h) {
        const double cost = heuristics[h].optimizer->optimize(request).cost;
        const double ratio = cost / optimum;
        entries[h].ratios.push_back(ratio);
        if (ratio < 1.0 + 1e-9) ++entries[h].optimal;
      }
    }

    for (std::size_t h = 0; h < heuristics.size(); ++h) {
      const Entry& entry = entries[h];
      if (entry.ratios.empty()) continue;
      double worst = 0.0;
      for (const double r : entry.ratios) worst = std::max(worst, r);
      table.add_row(
          {family, heuristics[h].spec,
           Table::num(geometric_mean(entry.ratios), 3),
           Table::num(worst, 3),
           Table::num(100.0 * entry.optimal /
                          static_cast<double>(entry.ratios.size()),
                      1)});
    }
  }
  table.add_footnote("expected shape: local-search/annealing close to 1.0, "
                     "greedy and uniform-opt clearly above, random far "
                     "above; no heuristic is reliably optimal");
  std::cout << table;
  return 0;
}
