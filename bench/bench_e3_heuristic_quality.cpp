// E3 ("Figure 2"): plan quality of heuristics relative to the exact
// branch-and-bound optimum, per instance family.
//
// Reproduced claim: optimal ordering buys a real margin — constructive
// heuristics land noticeably above the optimum (and random ordering far
// above), which is what justifies an exact algorithm.

#include <iostream>
#include <memory>

#include "quest/common/cli.hpp"
#include "quest/core/branch_and_bound.hpp"
#include "quest/opt/annealing.hpp"
#include "quest/opt/greedy.hpp"
#include "quest/opt/local_search.hpp"
#include "quest/opt/multistart.hpp"
#include "quest/opt/random_sampler.hpp"
#include "quest/workload/generators.hpp"
#include "support/bench_util.hpp"

namespace {

quest::model::Instance make_family(const std::string& family, std::size_t n,
                                   quest::Rng& rng) {
  using namespace quest::workload;
  if (family == "uniform") {
    Uniform_spec spec;
    spec.n = n;
    return make_uniform(spec, rng);
  }
  if (family == "clustered") {
    Clustered_spec spec;
    spec.n = n;
    return make_clustered(spec, rng);
  }
  if (family == "euclidean") {
    Euclidean_spec spec;
    spec.n = n;
    return make_euclidean(spec, rng);
  }
  Bottleneck_tsp_spec spec;
  spec.n = n;
  return make_bottleneck_tsp(spec, rng);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace quest;
  Cli cli("bench_e3_heuristic_quality",
          "E3: heuristic cost ratio to the exact optimum");
  auto& n = cli.add_int("n", 10, "instance size");
  auto& seeds = cli.add_int("seeds", 25, "instances per family");
  cli.parse(argc, argv);

  bench::banner("E3", "geometric-mean cost ratio to optimal (1.000 = "
                      "optimal) and share of instances solved optimally");

  const std::vector<std::string> families = {"uniform", "clustered",
                                             "euclidean", "btsp"};

  Table table("E3: heuristic quality by instance family (n=" +
              std::to_string(n.value) + ")");
  table.set_header({"family", "optimizer", "geo-mean ratio", "worst ratio",
                    "% optimal"});

  for (const auto& family : families) {
    struct Entry {
      std::string name;
      std::vector<double> ratios;
      int optimal = 0;
    };
    std::vector<Entry> entries = {{"greedy", {}, 0},
                                  {"uniform-opt", {}, 0},
                                  {"local-search", {}, 0},
                                  {"multistart-8", {}, 0},
                                  {"annealing", {}, 0},
                                  {"random-best-of-100", {}, 0}};

    for (std::int64_t seed = 1; seed <= seeds.value; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 6151 + 3);
      const auto instance =
          make_family(family, static_cast<std::size_t>(n.value), rng);
      opt::Request request;
      request.instance = &instance;

      core::Bnb_optimizer bnb;
      const double optimum = bnb.optimize(request).cost;
      if (optimum <= 0.0) continue;  // degenerate zero-cost instance

      std::vector<std::unique_ptr<opt::Optimizer>> heuristics;
      heuristics.push_back(std::make_unique<opt::Greedy_optimizer>());
      heuristics.push_back(std::make_unique<opt::Uniform_comm_optimizer>());
      heuristics.push_back(std::make_unique<opt::Local_search_optimizer>());
      opt::Multistart_options multistart;
      multistart.seed = static_cast<std::uint64_t>(seed);
      heuristics.push_back(
          std::make_unique<opt::Multistart_optimizer>(multistart));
      opt::Annealing_options annealing;
      annealing.seed = static_cast<std::uint64_t>(seed);
      annealing.iterations = 10'000;
      heuristics.push_back(
          std::make_unique<opt::Annealing_optimizer>(annealing));
      opt::Random_sampler_options sampler;
      sampler.seed = static_cast<std::uint64_t>(seed);
      sampler.samples = 100;
      heuristics.push_back(
          std::make_unique<opt::Random_sampler_optimizer>(sampler));

      for (std::size_t h = 0; h < heuristics.size(); ++h) {
        const double cost = heuristics[h]->optimize(request).cost;
        const double ratio = cost / optimum;
        entries[h].ratios.push_back(ratio);
        if (ratio < 1.0 + 1e-9) ++entries[h].optimal;
      }
    }

    for (const auto& entry : entries) {
      if (entry.ratios.empty()) continue;
      double worst = 0.0;
      for (const double r : entry.ratios) worst = std::max(worst, r);
      table.add_row(
          {family, entry.name, Table::num(geometric_mean(entry.ratios), 3),
           Table::num(worst, 3),
           Table::num(100.0 * entry.optimal /
                          static_cast<double>(entry.ratios.size()),
                      1)});
    }
  }
  table.add_footnote("expected shape: local-search/annealing close to 1.0, "
                     "greedy and uniform-opt clearly above, random far "
                     "above; no heuristic is reliably optimal");
  std::cout << table;
  return 0;
}
