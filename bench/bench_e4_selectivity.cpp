// E4 ("Figure 3"): sensitivity of the search to the selectivity regime.
//
// Reproduced claim: the algorithm's pruning feeds on selectivity decay —
// low sigma makes epsilon-bar collapse and Lemma 2 close subtrees almost
// immediately; as sigma -> 1 the problem approaches bottleneck TSP and the
// search cost explodes. Expanding services (sigma > 1, the paper's
// "slightly modified" epsilon-bar) are the hardest regime.

#include <iostream>

#include "quest/common/cli.hpp"
#include "quest/core/branch_and_bound.hpp"
#include "quest/workload/generators.hpp"
#include "support/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace quest;
  Cli cli("bench_e4_selectivity",
          "E4: branch-and-bound cost vs selectivity regime");
  auto& n = cli.add_int("n", 12, "instance size");
  auto& seeds = cli.add_int("seeds", 10, "instances per regime");
  auto& node_limit =
      cli.add_int("node-limit", 5'000'000, "per-run node budget");
  cli.parse(argc, argv);

  bench::banner("E4", "search effort vs selectivity range at n=" +
                          std::to_string(n.value));

  struct Regime {
    double lo;
    double hi;
  };
  const std::vector<Regime> regimes = {{0.1, 0.3}, {0.3, 0.5}, {0.5, 0.7},
                                       {0.7, 0.9}, {0.9, 1.0}, {1.0, 1.0},
                                       {0.5, 1.5}, {0.5, 3.0}};

  Table table("E4: search effort by selectivity range");
  table.set_header({"sigma range", "time (ms)", "nodes", "closures",
                    "backjumps", "pairs explored", "limit hit"});

  for (const auto& regime : regimes) {
    Sample_stats ms, nodes, closures, backjumps, pairs;
    int limits = 0;
    for (std::int64_t seed = 1; seed <= seeds.value; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 31 + 11);
      workload::Uniform_spec spec;
      spec.n = static_cast<std::size_t>(n.value);
      spec.selectivity_min = regime.lo;
      spec.selectivity_max = regime.hi;
      const auto instance = workload::make_uniform(spec, rng);
      opt::Request request;
      request.instance = &instance;
      request.budget.node_limit = static_cast<std::uint64_t>(node_limit.value);

      core::Bnb_optimizer bnb;
      opt::Result result;
      ms.add(bench::timed_ms(bnb, request, result));
      nodes.add(static_cast<double>(result.stats.nodes_expanded));
      closures.add(static_cast<double>(result.stats.lemma2_closures));
      backjumps.add(static_cast<double>(result.stats.lemma3_backjumps));
      pairs.add(static_cast<double>(result.stats.pairs_explored));
      if (opt::stopped_early(result.termination)) ++limits;
    }
    table.add_row({"[" + Table::num(regime.lo, 1) + ", " +
                       Table::num(regime.hi, 1) + "]",
                   Table::num(ms.mean(), 2), bench::human_count(nodes.mean()),
                   bench::human_count(closures.mean()),
                   bench::human_count(backjumps.mean()),
                   Table::num(pairs.mean(), 1),
                   limits ? std::to_string(limits) + "/" +
                                std::to_string(seeds.value)
                          : "-"});
  }
  table.add_footnote("expected shape: effort grows monotonically as the "
                     "sigma range approaches (and passes) 1; [1.0, 1.0] is "
                     "the bottleneck-TSP reduction");
  std::cout << table;

  // ---- heavy-tailed selectivity/cost sweep (workload satellite) --------
  // Pareto and lognormal service draws: a few extreme services dominate,
  // the regime real catalogs show. Lighter tails (larger alpha) behave
  // like the uniform sweeps above; heavy tails concentrate the bottleneck.
  struct Tail_regime {
    const char* label;
    workload::Tail_family family;
    double shape;  // pareto alpha or lognormal sigma
  };
  const std::vector<Tail_regime> tails = {
      {"pareto a=1.2", workload::Tail_family::pareto, 1.2},
      {"pareto a=1.5", workload::Tail_family::pareto, 1.5},
      {"pareto a=2.5", workload::Tail_family::pareto, 2.5},
      {"lognormal s=0.5", workload::Tail_family::lognormal, 0.5},
      {"lognormal s=1.5", workload::Tail_family::lognormal, 1.5},
  };

  Table tail_table("E4b: search effort under heavy-tailed services");
  tail_table.set_header({"tail", "time (ms)", "nodes", "closures",
                         "backjumps", "limit hit"});
  for (const auto& regime : tails) {
    Sample_stats ms, nodes, closures, backjumps;
    int limits = 0;
    for (std::int64_t seed = 1; seed <= seeds.value; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 67 + 29);
      workload::Heavy_tail_spec spec;
      spec.n = static_cast<std::size_t>(n.value);
      spec.tail = regime.family;
      if (regime.family == workload::Tail_family::pareto) {
        spec.pareto_alpha = regime.shape;
      } else {
        spec.lognormal_sigma = regime.shape;
      }
      const auto instance = workload::make_heavy_tailed(spec, rng);
      opt::Request request;
      request.instance = &instance;
      request.budget.node_limit =
          static_cast<std::uint64_t>(node_limit.value);

      core::Bnb_optimizer bnb;
      opt::Result result;
      ms.add(bench::timed_ms(bnb, request, result));
      nodes.add(static_cast<double>(result.stats.nodes_expanded));
      closures.add(static_cast<double>(result.stats.lemma2_closures));
      backjumps.add(static_cast<double>(result.stats.lemma3_backjumps));
      if (opt::stopped_early(result.termination)) ++limits;
    }
    tail_table.add_row({regime.label, Table::num(ms.mean(), 2),
                        bench::human_count(nodes.mean()),
                        bench::human_count(closures.mean()),
                        bench::human_count(backjumps.mean()),
                        limits ? std::to_string(limits) + "/" +
                                     std::to_string(seeds.value)
                               : "-"});
  }
  tail_table.add_footnote("heavier tails (smaller alpha) concentrate the "
                          "bottleneck in a few extreme services");
  std::cout << '\n' << tail_table;

  // ---- correlated-selectivity sweep (cost-model tentpole) --------------
  // The correlated Cost_model weakens the independence assumption behind
  // Eq. 1's selectivity products; epsilon-bar falls back to the model's
  // attainable bounds, so Lemma-2 closures fire later as strength grows.
  Table corr_table("E4c: search effort vs correlation strength");
  corr_table.set_header({"strength", "time (ms)", "nodes", "closures",
                         "backjumps", "limit hit"});
  for (const double strength : {0.0, 0.25, 0.5, 1.0, 2.0}) {
    Sample_stats ms, nodes, closures, backjumps;
    int limits = 0;
    for (std::int64_t seed = 1; seed <= seeds.value; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 31 + 11);
      workload::Uniform_spec spec;
      spec.n = static_cast<std::size_t>(n.value);
      spec.selectivity_min = 0.3;
      spec.selectivity_max = 0.9;
      const auto instance = workload::make_uniform(spec, rng);
      opt::Request request;
      request.instance = &instance;
      request.model = model::Cost_model::correlated_seeded(
          spec.n, strength, static_cast<std::uint64_t>(seed) * 7 + 3);
      request.budget.node_limit =
          static_cast<std::uint64_t>(node_limit.value);

      core::Bnb_optimizer bnb;
      opt::Result result;
      ms.add(bench::timed_ms(bnb, request, result));
      nodes.add(static_cast<double>(result.stats.nodes_expanded));
      closures.add(static_cast<double>(result.stats.lemma2_closures));
      backjumps.add(static_cast<double>(result.stats.lemma3_backjumps));
      if (opt::stopped_early(result.termination)) ++limits;
    }
    corr_table.add_row({Table::num(strength, 2), Table::num(ms.mean(), 2),
                        bench::human_count(nodes.mean()),
                        bench::human_count(closures.mean()),
                        bench::human_count(backjumps.mean()),
                        limits ? std::to_string(limits) + "/" +
                                     std::to_string(seeds.value)
                               : "-"});
  }
  corr_table.add_footnote("strength 0 exercises the correlated code path "
                          "with factors == 1; larger strengths widen the "
                          "model's selectivity bounds and delay closures");
  std::cout << '\n' << corr_table;
  return 0;
}
