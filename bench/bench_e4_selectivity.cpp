// E4 ("Figure 3"): sensitivity of the search to the selectivity regime.
//
// Reproduced claim: the algorithm's pruning feeds on selectivity decay —
// low sigma makes epsilon-bar collapse and Lemma 2 close subtrees almost
// immediately; as sigma -> 1 the problem approaches bottleneck TSP and the
// search cost explodes. Expanding services (sigma > 1, the paper's
// "slightly modified" epsilon-bar) are the hardest regime.

#include <iostream>

#include "quest/common/cli.hpp"
#include "quest/core/branch_and_bound.hpp"
#include "quest/workload/generators.hpp"
#include "support/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace quest;
  Cli cli("bench_e4_selectivity",
          "E4: branch-and-bound cost vs selectivity regime");
  auto& n = cli.add_int("n", 12, "instance size");
  auto& seeds = cli.add_int("seeds", 10, "instances per regime");
  auto& node_limit =
      cli.add_int("node-limit", 5'000'000, "per-run node budget");
  cli.parse(argc, argv);

  bench::banner("E4", "search effort vs selectivity range at n=" +
                          std::to_string(n.value));

  struct Regime {
    double lo;
    double hi;
  };
  const std::vector<Regime> regimes = {{0.1, 0.3}, {0.3, 0.5}, {0.5, 0.7},
                                       {0.7, 0.9}, {0.9, 1.0}, {1.0, 1.0},
                                       {0.5, 1.5}, {0.5, 3.0}};

  Table table("E4: search effort by selectivity range");
  table.set_header({"sigma range", "time (ms)", "nodes", "closures",
                    "backjumps", "pairs explored", "limit hit"});

  for (const auto& regime : regimes) {
    Sample_stats ms, nodes, closures, backjumps, pairs;
    int limits = 0;
    for (std::int64_t seed = 1; seed <= seeds.value; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 31 + 11);
      workload::Uniform_spec spec;
      spec.n = static_cast<std::size_t>(n.value);
      spec.selectivity_min = regime.lo;
      spec.selectivity_max = regime.hi;
      const auto instance = workload::make_uniform(spec, rng);
      opt::Request request;
      request.instance = &instance;
      request.budget.node_limit = static_cast<std::uint64_t>(node_limit.value);

      core::Bnb_optimizer bnb;
      opt::Result result;
      ms.add(bench::timed_ms(bnb, request, result));
      nodes.add(static_cast<double>(result.stats.nodes_expanded));
      closures.add(static_cast<double>(result.stats.lemma2_closures));
      backjumps.add(static_cast<double>(result.stats.lemma3_backjumps));
      pairs.add(static_cast<double>(result.stats.pairs_explored));
      if (opt::stopped_early(result.termination)) ++limits;
    }
    table.add_row({"[" + Table::num(regime.lo, 1) + ", " +
                       Table::num(regime.hi, 1) + "]",
                   Table::num(ms.mean(), 2), bench::human_count(nodes.mean()),
                   bench::human_count(closures.mean()),
                   bench::human_count(backjumps.mean()),
                   Table::num(pairs.mean(), 1),
                   limits ? std::to_string(limits) + "/" +
                                std::to_string(seeds.value)
                          : "-"});
  }
  table.add_footnote("expected shape: effort grows monotonically as the "
                     "sigma range approaches (and passes) 1; [1.0, 1.0] is "
                     "the bottleneck-TSP reduction");
  std::cout << table;
  return 0;
}
