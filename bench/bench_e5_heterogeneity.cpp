// E5 ("Figure 4"): the value of decentralization-aware ordering.
//
// Reproduced claim (the paper's raison d'etre): the polynomial algorithm
// of Srivastava et al. [1] is only optimal when inter-service transfer
// costs are uniform. As network heterogeneity grows, the plan it produces
// degrades steadily relative to the true decentralized optimum, while the
// branch-and-bound stays exact by construction.

#include <iostream>

#include "quest/common/cli.hpp"
#include "quest/core/branch_and_bound.hpp"
#include "quest/opt/greedy.hpp"
#include "quest/workload/generators.hpp"
#include "support/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace quest;
  Cli cli("bench_e5_heterogeneity",
          "E5: uniform-communication plan quality vs network heterogeneity");
  auto& n = cli.add_int("n", 10, "instance size");
  auto& seeds = cli.add_int("seeds", 30, "instances per point");
  cli.parse(argc, argv);

  bench::banner("E5", "cost ratio to the decentralized optimum as links go "
                      "from flat (h=0) to fully heterogeneous (h=1)");

  Table table("E5: plan cost ratio vs heterogeneity (n=" +
              std::to_string(n.value) + ")");
  table.set_header({"h", "uniform-opt ratio", "uniform-opt worst",
                    "greedy ratio", "bnb ratio"});

  for (const double h : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    std::vector<double> uniform_ratios, greedy_ratios;
    double uniform_worst = 0.0;
    for (std::int64_t seed = 1; seed <= seeds.value; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 271 + 9);
      workload::Heterogeneity_spec spec;
      spec.n = static_cast<std::size_t>(n.value);
      spec.heterogeneity = h;
      const auto instance = workload::make_heterogeneous(spec, rng);
      opt::Request request;
      request.instance = &instance;

      core::Bnb_optimizer bnb;
      const double optimum = bnb.optimize(request).cost;
      opt::Uniform_comm_optimizer uniform;
      opt::Greedy_optimizer greedy;
      const double uniform_ratio = uniform.optimize(request).cost / optimum;
      uniform_ratios.push_back(uniform_ratio);
      uniform_worst = std::max(uniform_worst, uniform_ratio);
      greedy_ratios.push_back(greedy.optimize(request).cost / optimum);
    }
    table.add_row({Table::num(h, 1),
                   Table::num(geometric_mean(uniform_ratios), 3),
                   Table::num(uniform_worst, 3),
                   Table::num(geometric_mean(greedy_ratios), 3),
                   Table::num(1.0, 3)});
  }
  table.add_footnote("uniform-opt = the centralized special-case optimum "
                     "[Srivastava et al., VLDB'06] applied blindly");
  table.add_footnote("expected shape: ratio 1.000 at h=0 (it IS optimal on "
                     "flat networks), rising steadily with h");
  std::cout << table;
  return 0;
}
