// E6 ("Table 2"): the bottleneck cost metric (Eq. 1) against the
// discrete-event simulator.
//
// Reproduced claim: Eq. 1 is the right objective — the simulated per-tuple
// response time of a plan matches its bottleneck cost within a few
// percent at scale, and plan *rankings* transfer exactly.

#include <iostream>

#include "quest/common/cli.hpp"
#include "quest/core/branch_and_bound.hpp"
#include "quest/opt/greedy.hpp"
#include "quest/opt/random_sampler.hpp"
#include "quest/sim/simulator.hpp"
#include "quest/workload/generators.hpp"
#include "support/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace quest;
  Cli cli("bench_e6_sim_validation",
          "E6: predicted bottleneck cost vs simulated per-tuple time");
  auto& n = cli.add_int("n", 8, "instance size");
  auto& seeds = cli.add_int("seeds", 6, "instances");
  auto& tuples = cli.add_int("tuples", 20'000, "input tuples per run");
  cli.parse(argc, argv);

  bench::banner("E6", "Eq. 1 vs discrete-event simulation (" +
                          std::to_string(tuples.value) + " tuples, block 32)");

  Table table("E6: predicted vs simulated per-tuple response time");
  table.set_header({"instance", "plan", "predicted", "simulated", "error %",
                    "bottleneck pos match"});

  int rank_agreements = 0;
  int rank_trials = 0;

  for (std::int64_t seed = 1; seed <= seeds.value; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 911);
    workload::Uniform_spec spec;
    spec.n = static_cast<std::size_t>(n.value);
    const auto instance = workload::make_uniform(spec, rng);
    opt::Request request;
    request.instance = &instance;

    core::Bnb_optimizer bnb;
    opt::Greedy_optimizer greedy;
    opt::Random_sampler_options sampler_options;
    sampler_options.seed = static_cast<std::uint64_t>(seed);
    sampler_options.samples = 1;  // one random plan
    opt::Random_sampler_optimizer sampler(sampler_options);

    struct Row {
      std::string label;
      model::Plan plan;
    };
    const std::vector<Row> rows = {
        {"optimal", bnb.optimize(request).plan},
        {"greedy", greedy.optimize(request).plan},
        {"random", sampler.optimize(request).plan},
    };

    std::vector<double> predicted, simulated;
    for (const auto& row : rows) {
      sim::Sim_config config;
      config.input_tuples = static_cast<std::uint64_t>(tuples.value);
      config.block_size = 32;
      const auto result = sim::simulate(instance, row.plan, config);
      const double error = 100.0 *
                           (result.per_tuple_time - result.predicted_cost) /
                           result.predicted_cost;
      const auto breakdown = model::cost_breakdown(instance, row.plan);
      table.add_row({"seed " + std::to_string(seed), row.label,
                     Table::num(result.predicted_cost, 3),
                     Table::num(result.per_tuple_time, 3),
                     Table::num(error, 2),
                     result.busiest_position == breakdown.bottleneck_position
                         ? "yes"
                         : "no"});
      predicted.push_back(result.predicted_cost);
      simulated.push_back(result.per_tuple_time);
    }
    // Rank agreement over the three plans.
    for (std::size_t a = 0; a < rows.size(); ++a) {
      for (std::size_t b = a + 1; b < rows.size(); ++b) {
        if (std::fabs(predicted[a] - predicted[b]) /
                std::max(predicted[a], predicted[b]) <
            0.02) {
          continue;  // tie
        }
        ++rank_trials;
        if ((predicted[a] < predicted[b]) == (simulated[a] < simulated[b])) {
          ++rank_agreements;
        }
      }
    }
  }
  table.add_footnote("rank agreement (predicted vs simulated, ties "
                     "excluded): " +
                     std::to_string(rank_agreements) + "/" +
                     std::to_string(rank_trials));
  table.add_footnote("expected shape: error a few percent (pipeline "
                     "fill/drain), bottleneck position identified, perfect "
                     "rank agreement");
  std::cout << table;
  return 0;
}
