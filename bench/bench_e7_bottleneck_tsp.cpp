// E7 ("Figure 5"): the hardness reduction made concrete.
//
// Reproduced claim: with unit selectivities and zero processing costs the
// problem *is* bottleneck TSP (path variant), so the branch-and-bound's
// selectivity-driven pruning loses its leverage: node counts grow
// explosively with n while the subset DP stays at its predictable 2^n
// pace. Both remain exact and agree on the optimum.

#include <iostream>

#include "quest/common/cli.hpp"
#include "quest/workload/generators.hpp"
#include "support/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace quest;
  Cli cli("bench_e7_bottleneck_tsp",
          "E7: pure bottleneck-TSP instances (sigma=1, c=0)");
  auto& n_min = cli.add_int("n-min", 6, "smallest instance");
  auto& n_max = cli.add_int("n-max", 16, "largest instance");
  auto& seeds = cli.add_int("seeds", 5, "instances per size");
  auto& node_limit =
      cli.add_int("node-limit", 40'000'000, "bnb node budget per run");
  cli.parse(argc, argv);

  bench::banner("E7", "branch-and-bound vs subset DP on the bottleneck-TSP "
                      "reduction");

  auto bnb = core::make_optimizer("bnb");
  auto dp = core::make_optimizer("dp");

  Table table("E7: bottleneck TSP (path) — exact solvers");
  table.set_header({"n", "bnb (ms)", "bnb nodes", "dp (ms)", "dp states",
                    "agree", "bnb limit hit"});

  for (std::int64_t n = n_min.value; n <= n_max.value; ++n) {
    Sample_stats bnb_ms, bnb_nodes, dp_ms, dp_states;
    int agree = 0;
    int limits = 0;
    for (std::int64_t seed = 1; seed <= seeds.value; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 17 + 5);
      workload::Bottleneck_tsp_spec spec;
      spec.n = static_cast<std::size_t>(n);
      const auto instance = workload::make_bottleneck_tsp(spec, rng);
      opt::Request request;
      request.instance = &instance;
      request.budget.node_limit = static_cast<std::uint64_t>(node_limit.value);

      opt::Result bnb_result;
      bnb_ms.add(bench::timed_ms(*bnb, request, bnb_result));
      bnb_nodes.add(static_cast<double>(bnb_result.stats.nodes_expanded));
      if (opt::stopped_early(bnb_result.termination)) ++limits;

      opt::Result dp_result;
      dp_ms.add(bench::timed_ms(*dp, request, dp_result));
      dp_states.add(static_cast<double>(dp_result.stats.nodes_expanded));

      if (std::fabs(bnb_result.cost - dp_result.cost) <=
          1e-9 * std::max(1.0, dp_result.cost)) {
        ++agree;
      }
    }
    table.add_row({std::to_string(n), Table::num(bnb_ms.mean(), 2),
                   bench::human_count(bnb_nodes.mean()),
                   Table::num(dp_ms.mean(), 2),
                   bench::human_count(dp_states.mean()),
                   std::to_string(agree) + "/" + std::to_string(seeds.value),
                   limits ? std::to_string(limits) + "/" +
                                std::to_string(seeds.value)
                          : "-"});
  }
  table.add_footnote("expected shape: dp time ~doubles per added service; "
                     "bnb nodes grow much faster than on selective "
                     "workloads (E1) — the reduction is the hard core of "
                     "the problem");
  std::cout << table;
  return 0;
}
