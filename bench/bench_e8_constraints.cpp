// E8 ("Figure 6"): precedence constraints.
//
// Reproduced claim: the "minor modification" the paper mentions works and
// even helps — constraints shrink the feasible order space, so the search
// gets cheaper as DAG density grows, while the constrained optimum's cost
// (weakly) increases because plans are removed from the feasible set.

#include <iostream>

#include "quest/common/cli.hpp"
#include "quest/core/branch_and_bound.hpp"
#include "quest/workload/generators.hpp"
#include "support/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace quest;
  Cli cli("bench_e8_constraints",
          "E8: search effort and plan cost vs precedence DAG density");
  auto& n = cli.add_int("n", 12, "instance size");
  auto& seeds = cli.add_int("seeds", 12, "instances per density");
  auto& sigma_lo =
      cli.add_double("sigma-lo", 0.8, "selectivity lower bound (hardness)");
  cli.parse(argc, argv);

  bench::banner("E8", "precedence constraints at n=" + std::to_string(n.value) +
                          ", sigma in [" + Table::num(sigma_lo.value, 1) +
                          ", 1]");

  Table table("E8: effect of precedence DAG density");
  table.set_header({"density", "lin. extensions", "time (ms)", "nodes",
                    "cost vs unconstrained"});

  for (const double density : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    Sample_stats ms, nodes, extensions;
    std::vector<double> cost_ratio;
    for (std::int64_t seed = 1; seed <= seeds.value; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 47 + 13);
      workload::Uniform_spec spec;
      spec.n = static_cast<std::size_t>(n.value);
      spec.selectivity_min = sigma_lo.value;
      const auto instance = workload::make_uniform(spec, rng);
      Rng dag_rng(static_cast<std::uint64_t>(seed) * 89 + 1);
      const auto dag = workload::make_random_dag(
          static_cast<std::size_t>(n.value), density, dag_rng);
      extensions.add(dag.count_linear_extensions());

      opt::Request unconstrained;
      unconstrained.instance = &instance;
      core::Bnb_optimizer free_bnb;
      const double free_cost = free_bnb.optimize(unconstrained).cost;

      opt::Request request = unconstrained;
      request.precedence = &dag;
      core::Bnb_optimizer bnb;
      opt::Result result;
      ms.add(bench::timed_ms(bnb, request, result));
      nodes.add(static_cast<double>(result.stats.nodes_expanded));
      if (free_cost > 0.0) cost_ratio.push_back(result.cost / free_cost);
    }
    table.add_row({Table::num(density, 1),
                   bench::human_count(extensions.mean()),
                   Table::num(ms.mean(), 3), bench::human_count(nodes.mean()),
                   Table::num(geometric_mean(cost_ratio), 3)});
  }
  table.add_footnote("expected shape: linear extensions and search effort "
                     "shrink with density; constrained optimum cost ratio "
                     ">= 1 and grows");
  std::cout << table;
  return 0;
}
