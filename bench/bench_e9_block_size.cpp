// E9 ("Figure 7"): block size and the per-tuple transfer cost.
//
// Reproduced claim (the paper's footnote on blocks: "t_{i,j} is the cost
// to transmit a block divided by the number of tuples it contains"): with
// a fixed per-block overhead, the effective per-tuple transfer cost is
// t + overhead/b, so throughput improves with block size and saturates;
// with few tuples, oversized blocks instead hurt pipelining (fill/drain
// latency).

#include <iostream>

#include "quest/common/cli.hpp"
#include "quest/model/cost.hpp"
#include "quest/sim/simulator.hpp"
#include "quest/workload/generators.hpp"
#include "support/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace quest;
  Cli cli("bench_e9_block_size",
          "E9: simulated per-tuple time vs transfer block size");
  auto& n = cli.add_int("n", 6, "pipeline length");
  auto& tuples = cli.add_int("tuples", 20'000, "steady-state input tuples");
  auto& few_tuples = cli.add_int("few-tuples", 500, "short-query input");
  auto& overhead = cli.add_double("overhead", 2.0, "per-block overhead");
  cli.parse(argc, argv);

  bench::banner("E9", "block size sweep; per-block overhead " +
                          Table::num(overhead.value, 1));

  Rng rng(404);
  workload::Uniform_spec spec;
  spec.n = static_cast<std::size_t>(n.value);
  const auto instance = workload::make_uniform(spec, rng);
  const auto plan = model::Plan::identity(static_cast<std::size_t>(n.value));

  Table table("E9: per-tuple response time vs block size");
  table.set_header({"block", "predicted (t_eff)", "simulated (steady)",
                    "error %", "simulated (short query)"});

  for (const std::uint64_t block : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u,
                                    256u}) {
    // Prediction with the effective per-tuple transfer t + overhead/b:
    // rebuild Eq. 1 by hand on top of cost_breakdown's machinery.
    double predicted = 0.0;
    {
      double product = 1.0;
      for (std::size_t p = 0; p < plan.size(); ++p) {
        const auto& s = instance.service(plan[p]);
        const double t =
            p + 1 < plan.size() ? instance.transfer(plan[p], plan[p + 1])
                                : instance.sink_transfer(plan[p]);
        const double t_eff =
            t + overhead.value / static_cast<double>(block);
        predicted = std::max(
            predicted, product * (s.cost + s.selectivity * t_eff));
        product *= s.selectivity;
      }
    }

    sim::Sim_config steady;
    steady.input_tuples = static_cast<std::uint64_t>(tuples.value);
    steady.block_size = block;
    steady.per_block_overhead = overhead.value;
    const auto steady_result = sim::simulate(instance, plan, steady);

    sim::Sim_config slim = steady;
    slim.input_tuples = static_cast<std::uint64_t>(few_tuples.value);
    const auto short_result = sim::simulate(instance, plan, slim);

    table.add_row(
        {std::to_string(block), Table::num(predicted, 3),
         Table::num(steady_result.per_tuple_time, 3),
         Table::num(100.0 * (steady_result.per_tuple_time - predicted) /
                        predicted,
                    2),
         Table::num(short_result.per_tuple_time, 3)});
  }
  table.add_footnote("expected shape: steady-state time falls as "
                     "overhead/b amortizes and saturates at the raw "
                     "bottleneck; the short query eventually suffers from "
                     "large blocks (fill/drain)");
  std::cout << table;
  return 0;
}
