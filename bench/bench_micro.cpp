// Micro-benchmarks (google-benchmark) for the hot paths every experiment
// leans on: full-plan cost evaluation, incremental append/pop, epsilon-bar
// in both modes, the DP inner loop, RNG draws, and JSON round-trips.

#include <benchmark/benchmark.h>

#include "quest/core/branch_and_bound.hpp"
#include "quest/core/measures.hpp"
#include "quest/io/instance_io.hpp"
#include "quest/model/cost.hpp"
#include "quest/opt/dp.hpp"
#include "quest/workload/generators.hpp"

namespace {

using namespace quest;

model::Instance bench_instance(std::size_t n, double sigma_lo = 0.1) {
  Rng rng(12345);
  workload::Uniform_spec spec;
  spec.n = n;
  spec.selectivity_min = sigma_lo;
  return workload::make_uniform(spec, rng);
}

void BM_bottleneck_cost(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto instance = bench_instance(n);
  const auto plan = model::Plan::identity(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::bottleneck_cost(instance, plan));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_bottleneck_cost)->Arg(8)->Arg(16)->Arg(32);

void BM_evaluator_append_pop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto instance = bench_instance(n);
  model::Partial_plan_evaluator eval(instance);
  for (auto _ : state) {
    for (model::Service_id id = 0; id < n; ++id) eval.append(id);
    benchmark::DoNotOptimize(eval.epsilon());
    for (std::size_t i = 0; i < n; ++i) eval.pop();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_evaluator_append_pop)->Arg(8)->Arg(16)->Arg(32);

template <core::Epsilon_bar_mode mode>
void BM_epsilon_bar(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto instance = bench_instance(n);
  const core::Epsilon_bar ebar(instance, model::Cost_model{}, mode);
  model::Partial_plan_evaluator eval(instance);
  eval.append(0);
  eval.append(1);
  std::vector<model::Service_id> remaining;
  for (model::Service_id id = 2; id < n; ++id) remaining.push_back(id);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebar.evaluate(eval, remaining));
  }
}
BENCHMARK_TEMPLATE(BM_epsilon_bar, core::Epsilon_bar_mode::exact)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32);
BENCHMARK_TEMPLATE(BM_epsilon_bar, core::Epsilon_bar_mode::loose)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32);

void BM_bnb_selective(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto instance = bench_instance(n);
  opt::Request request;
  request.instance = &instance;
  for (auto _ : state) {
    core::Bnb_optimizer bnb;
    benchmark::DoNotOptimize(bnb.optimize(request).cost);
  }
}
BENCHMARK(BM_bnb_selective)->Arg(10)->Arg(14)->Arg(18);

void BM_bnb_hard(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto instance = bench_instance(n, 0.9);
  opt::Request request;
  request.instance = &instance;
  for (auto _ : state) {
    core::Bnb_optimizer bnb;
    benchmark::DoNotOptimize(bnb.optimize(request).cost);
  }
}
BENCHMARK(BM_bnb_hard)->Arg(10)->Arg(12);

void BM_dp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto instance = bench_instance(n);
  opt::Request request;
  request.instance = &instance;
  for (auto _ : state) {
    opt::Dp_optimizer dp;
    benchmark::DoNotOptimize(dp.optimize(request).cost);
  }
}
BENCHMARK(BM_dp)->Arg(10)->Arg(14);

// Correlated-model counterparts: the overhead of conditional
// selectivities on the same hot paths (the independent numbers above are
// the regression-gated baseline).
void BM_bottleneck_cost_correlated(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto instance = bench_instance(n);
  const auto cost_model =
      model::Cost_model::correlated_seeded(n, 0.5, 7);
  const auto plan = model::Plan::identity(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::bottleneck_cost(instance, plan, cost_model));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_bottleneck_cost_correlated)->Arg(8)->Arg(16)->Arg(32);

void BM_evaluator_append_pop_correlated(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto instance = bench_instance(n);
  model::Partial_plan_evaluator eval(
      instance, model::Cost_model::correlated_seeded(n, 0.5, 7));
  for (auto _ : state) {
    for (model::Service_id id = 0; id < n; ++id) eval.append(id);
    benchmark::DoNotOptimize(eval.epsilon());
    for (std::size_t i = 0; i < n; ++i) eval.pop();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_evaluator_append_pop_correlated)->Arg(8)->Arg(16)->Arg(32);

void BM_bnb_correlated(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto instance = bench_instance(n);
  opt::Request request;
  request.instance = &instance;
  request.model = model::Cost_model::correlated_seeded(n, 0.5, 7);
  for (auto _ : state) {
    core::Bnb_optimizer bnb;
    benchmark::DoNotOptimize(bnb.optimize(request).cost);
  }
}
BENCHMARK(BM_bnb_correlated)->Arg(10)->Arg(12);

void BM_rng_uniform(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_rng_uniform);

void BM_json_round_trip(benchmark::State& state) {
  const auto instance = bench_instance(12);
  const std::string text = io::to_json(instance).dump();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        io::instance_from_json(io::Json::parse(text)).instance.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_json_round_trip);

}  // namespace

BENCHMARK_MAIN();
