// bench_par: speedup-vs-threads sweep for the deterministic parallel
// branch-and-bound (bnb-par) against the sequential bnb on
// pruning-resistant bottleneck-TSP instances (the E7 hard regime — on
// selective uniform instances the lemmas close the search in
// microseconds and there is nothing to parallelize).
//
// Every timed run is also a correctness check: all engines and all
// thread counts must return the same optimal cost, and every bnb-par run
// the same canonical plan. `--json` emits the machine-readable document
// the BENCH_*.json trajectory records are built from.

#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "quest/common/cli.hpp"
#include "quest/common/error.hpp"
#include "quest/common/stats.hpp"
#include "quest/common/table.hpp"
#include "quest/io/json.hpp"
#include "quest/model/cost.hpp"
#include "quest/workload/generators.hpp"
#include "support/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace quest;
  Cli cli("bench_par",
          "bnb-par speedup vs worker threads on bottleneck-TSP instances");
  auto& reps = cli.add_int("reps", 7, "timed repetitions (median reported)");
  auto& gen_seed = cli.add_int("gen-seed", 3, "instance generator seed");
  auto& json_output =
      cli.add_bool("json", false, "machine-readable JSON on stdout");
  cli.parse(argc, argv);
  if (reps.value < 1) throw Parse_error("--reps must be >= 1");

  const std::vector<std::size_t> sizes{12, 16, 20};
  const std::vector<std::size_t> thread_counts{1, 2, 4, 8};

  if (!json_output.value) {
    bench::banner("PAR",
                  "median optimize() wall time, sequential bnb vs "
                  "bnb-par at 1/2/4/8 workers; identical cost and plan "
                  "asserted on every run");
  }

  io::Json doc;
  doc.set("bench", io::Json(std::string("bench_par")));
  doc.set("family", io::Json(std::string("btsp")));
  doc.set("reps", io::Json(static_cast<double>(reps.value)));
  doc.set("hardware_concurrency",
          io::Json(static_cast<double>(std::thread::hardware_concurrency())));
  io::Json sweeps{io::Json::Array{}};

  Table table("bnb-par speedup (median of " + std::to_string(reps.value) +
              ", bottleneck-TSP)");
  table.set_header({"n", "bnb ms", "par1 ms", "par2 ms", "par4 ms",
                    "par8 ms", "speedup@8"});

  for (const std::size_t n : sizes) {
    Rng rng(static_cast<std::uint64_t>(gen_seed.value));
    workload::Bottleneck_tsp_spec spec;
    spec.n = n;
    const auto instance = workload::make_bottleneck_tsp(spec, rng);
    opt::Request request;
    request.instance = &instance;

    auto median_ms = [&](opt::Optimizer& engine, opt::Result& out) {
      Sample_stats stats;
      for (std::int64_t rep = 0; rep < reps.value; ++rep) {
        stats.add(bench::timed_ms(engine, request, out));
      }
      return stats.median();
    };

    opt::Result reference;
    auto bnb = core::make_optimizer("bnb");
    const double bnb_ms = median_ms(*bnb, reference);
    QUEST_EXPECTS(reference.proven_optimal, "bnb must prove optimality");

    io::Json sweep;
    sweep.set("n", io::Json(n));
    sweep.set("optimal_cost", io::Json(reference.cost));
    sweep.set("bnb_ms", io::Json(bnb_ms));
    io::Json per_threads{io::Json::Array{}};

    std::vector<std::string> row{std::to_string(n), Table::num(bnb_ms, 3)};
    double par8_ms = bnb_ms;
    model::Plan canonical;
    for (const std::size_t threads : thread_counts) {
      auto par =
          core::make_optimizer("bnb-par:threads=" + std::to_string(threads));
      opt::Result result;
      const double ms = median_ms(*par, result);
      QUEST_EXPECTS(result.proven_optimal, "bnb-par must prove optimality");
      QUEST_EXPECTS(result.cost == reference.cost,
                    "bnb-par cost must equal bnb's optimum bit-for-bit");
      if (canonical.size() == 0) {
        canonical = result.plan;
      } else {
        QUEST_EXPECTS(canonical.order() == result.plan.order(),
                      "bnb-par plan must be identical at every thread count");
      }
      if (threads == 8) par8_ms = ms;
      row.push_back(Table::num(ms, 3));
      io::Json point;
      point.set("threads", io::Json(threads));
      point.set("median_ms", io::Json(ms));
      point.set("speedup_vs_bnb", io::Json(ms > 0.0 ? bnb_ms / ms : 0.0));
      per_threads.push_back(std::move(point));
    }
    row.push_back(Table::num(par8_ms > 0.0 ? bnb_ms / par8_ms : 0.0, 2));
    table.add_row(row);
    sweep.set("threads", std::move(per_threads));
    sweeps.push_back(std::move(sweep));
  }

  doc.set("sweeps", std::move(sweeps));
  if (json_output.value) {
    std::cout << doc.dump(2) << '\n';
  } else {
    std::cout << table << '\n';
  }
  return 0;
}
