// bench/support/bench_util.hpp
//
// Shared plumbing for the experiment harnesses: seed sweeps, optimizer
// timing, and consistent "paper table" output.

#pragma once

#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "quest/common/stats.hpp"
#include "quest/common/table.hpp"
#include "quest/common/timer.hpp"
#include "quest/core/engines.hpp"
#include "quest/opt/optimizer.hpp"

namespace quest::bench {

/// One engine built from a registry spec, labeled by that spec — the one
/// way bench harnesses name optimizers (no concrete classes).
struct Engine {
  std::string spec;
  std::unique_ptr<opt::Optimizer> optimizer;
};

/// Instantiates every spec through core::engine_registry().
inline std::vector<Engine> make_engines(
    const std::vector<std::string>& specs) {
  std::vector<Engine> engines;
  engines.reserve(specs.size());
  for (const auto& spec : specs) {
    engines.push_back({spec, core::make_optimizer(spec)});
  }
  return engines;
}

/// Milliseconds elapsed by one optimize() call.
inline double timed_ms(opt::Optimizer& optimizer, const opt::Request& request,
                       opt::Result& out) {
  Timer timer;
  out = optimizer.optimize(request);
  return timer.millis();
}

/// n! as a double (overflows gracefully to inf).
inline double factorial(std::size_t n) {
  double f = 1.0;
  for (std::size_t i = 2; i <= n; ++i) f *= static_cast<double>(i);
  return f;
}

/// Renders "123", "45.6k", "7.89M" style counts for table cells.
inline std::string human_count(double value) {
  if (value < 1e3) return Table::num(value, 0);
  if (value < 1e6) return Table::num(value / 1e3, 1) + "k";
  if (value < 1e9) return Table::num(value / 1e6, 2) + "M";
  if (value < 1e12) return Table::num(value / 1e9, 2) + "G";
  return Table::num(value / 1e12, 2) + "T";
}

/// Standard experiment banner so bench_output.txt is self-describing.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "\n#### " << id << " — " << claim << "\n\n";
}

}  // namespace quest::bench
