#!/usr/bin/env python3
"""Documentation checks behind `cmake --build build --target docs`.

Fails (non-zero exit, one line per problem) when:

  * a required doc file is missing or trivially short;
  * a relative markdown link in README.md or docs/*.md points at nothing;
  * a public API header on the documented list lacks its file-level
    comment, or declares a public class/struct/enum without a doc
    comment immediately above it.

Runs everywhere (no dependencies beyond Python 3); when Doxygen is
installed the docs target *additionally* renders the API reference from
the same headers with warnings-as-errors. Keeping this checker in the
loop means a toolchain without Doxygen still cannot merge undocumented
public API.
"""

import argparse
import re
import sys
from pathlib import Path

REQUIRED_DOCS = ["docs/ARCHITECTURE.md", "docs/engines.md", "README.md"]

# The public API surface whose doc comments are part of the contract
# (ISSUE 4): the anytime optimizer API and the serving layer.
DOCUMENTED_HEADERS = [
    "src/cluster/include/quest/cluster/health.hpp",
    "src/cluster/include/quest/cluster/registration_journal.hpp",
    "src/cluster/include/quest/cluster/replica_router.hpp",
    "src/opt/include/quest/opt/optimizer.hpp",
    "src/opt/include/quest/opt/registry.hpp",
    "src/opt/include/quest/opt/search_control.hpp",
    "src/opt/include/quest/opt/stop_token.hpp",
    "src/serve/include/quest/serve/instance_store.hpp",
    "src/serve/include/quest/serve/plan_cache.hpp",
    "src/serve/include/quest/serve/protocol.hpp",
    "src/serve/include/quest/serve/server.hpp",
    "src/store/include/quest/store/jsonl.hpp",
    "src/store/include/quest/store/router.hpp",
    "src/store/include/quest/store/shard_map.hpp",
    "src/store/include/quest/store/snapshot.hpp",
    "src/store/include/quest/store/snapshot_writer.hpp",
]

MARKDOWN_LINK = re.compile(r"\]\(([^)#\s]+)(#[^)\s]*)?\)")
DECLARATION = re.compile(r"^(?:class|struct|enum class)\s+[A-Z_]\w*")


def check_markdown_links(root, problems):
    for path in [root / "README.md"] + sorted((root / "docs").glob("*.md")):
        text = path.read_text(encoding="utf-8")
        for match in MARKDOWN_LINK.finditer(text):
            target = match.group(1)
            if "://" in target or target.startswith("mailto:"):
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(root)}: broken link -> {target}"
                )


def check_header(root, relative, problems):
    path = root / relative
    if not path.exists():
        problems.append(f"{relative}: documented header does not exist")
        return
    lines = path.read_text(encoding="utf-8").splitlines()
    if not lines or not lines[0].startswith("//"):
        problems.append(f"{relative}: missing the file-level comment block")
    for index, line in enumerate(lines):
        if not DECLARATION.match(line):
            continue
        stripped = line.strip()
        if stripped.endswith(";"):  # forward declaration
            continue
        previous = lines[index - 1].strip() if index > 0 else ""
        if not previous.startswith("//"):
            name = stripped.split("{")[0].strip()
            problems.append(
                f"{relative}:{index + 1}: public '{name}' has no doc "
                "comment above it"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, required=True,
                        help="repository root")
    root = parser.parse_args().root.resolve()

    problems = []
    for relative in REQUIRED_DOCS:
        path = root / relative
        if not path.exists():
            problems.append(f"{relative}: missing")
        elif len(path.read_text(encoding="utf-8")) < 500:
            problems.append(f"{relative}: suspiciously short")
    check_markdown_links(root, problems)
    for relative in DOCUMENTED_HEADERS:
        check_header(root, relative, problems)

    if problems:
        for problem in problems:
            print(f"check_docs: {problem}", file=sys.stderr)
        return 1
    print(
        f"check_docs: ok ({len(REQUIRED_DOCS)} docs, "
        f"{len(DOCUMENTED_HEADERS)} API headers)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
