// credit_screening — the paper's Section-1 motivating example, end to end:
// a customer-screening pipeline whose services live in three data centers.
// Compares the decentralized optimum against the plans a centralized
// optimizer or a greedy heuristic would pick, then *executes* all three in
// the discrete-event simulator to show the difference is real.
//
//   ./examples/credit_screening [--tuples 20000]

#include <iostream>

#include "quest/common/cli.hpp"
#include "quest/common/table.hpp"
#include "quest/core/branch_and_bound.hpp"
#include "quest/opt/greedy.hpp"
#include "quest/sim/simulator.hpp"
#include "quest/workload/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace quest;
  Cli cli("credit_screening", "the paper's motivating example, end to end");
  auto& tuples = cli.add_int("tuples", 20'000, "applicants to screen");
  cli.parse(argc, argv);

  const auto scenario = workload::credit_screening();
  const auto& instance = scenario.instance;
  std::cout << scenario.description << "\n\n";

  Table services("services (three data centers)");
  services.set_header({"service", "cost/tuple", "selectivity"});
  for (const auto& s : instance.services()) {
    services.add_row(
        {s.name, Table::num(s.cost, 2), Table::num(s.selectivity, 2)});
  }
  services.add_footnote("card-lookup EXPANDS its input (3.2 cards per "
                        "person); risk-score must run after card-lookup");
  std::cout << services << "\n";

  opt::Request request;
  request.instance = &instance;
  request.precedence = &scenario.precedence;

  core::Bnb_optimizer bnb;
  opt::Greedy_optimizer greedy;
  opt::Uniform_comm_optimizer uniform;
  const auto optimal = bnb.optimize(request);
  const auto greedy_result = greedy.optimize(request);
  const auto uniform_result = uniform.optimize(request);

  Table plans("candidate plans");
  plans.set_header({"optimizer", "plan", "Eq.1 cost", "simulated/tuple"});
  for (const auto& [label, result] :
       {std::pair<std::string, const opt::Result&>{"bnb (decentralized "
                                                   "optimal)",
                                                   optimal},
        {"greedy", greedy_result},
        {"uniform-comm (centralized)", uniform_result}}) {
    sim::Sim_config config;
    config.input_tuples = static_cast<std::uint64_t>(tuples.value);
    const auto simulated = sim::simulate(instance, result.plan, config);
    plans.add_row({label, result.plan.to_string(instance),
                   Table::num(result.cost, 3),
                   Table::num(simulated.per_tuple_time, 3)});
  }
  plans.add_footnote("screening " + std::to_string(tuples.value) +
                     " applicants; simulated = makespan / applicants");
  std::cout << plans;

  std::cout << "\nthe decentralized optimum routes the expanding "
               "card-lookup so its 3.2x traffic stays on cheap "
               "intra-data-center links — exactly the effect a uniform-"
               "cost model cannot see.\n";
  return 0;
}
