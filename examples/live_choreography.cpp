// live_choreography — run a plan for real: emulated services on the
// batched executor, direct queues, no coordinator. Compares the per-tuple
// cost of the optimal plan against a deliberately bad one on the
// log-analytics scenario. By default the real clock paces the pipeline
// with deadline sleeps (wall time is genuine); --virtual switches to the
// deterministic virtual clock, and --workers bounds the pool (0 = auto).
//
//   ./examples/live_choreography [--tuples 500] [--scale-us 40]
//                                [--virtual] [--workers 4]

#include <algorithm>
#include <iostream>

#include "quest/common/cli.hpp"
#include "quest/common/table.hpp"
#include "quest/core/branch_and_bound.hpp"
#include "quest/runtime/choreography.hpp"
#include "quest/workload/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace quest;
  Cli cli("live_choreography", "threaded execution of optimal vs bad plan");
  auto& tuples = cli.add_int("tuples", 500, "log records to process");
  auto& scale =
      cli.add_double("scale-us", 40.0, "microseconds per model cost unit");
  auto& virtual_clock = cli.add_bool(
      "virtual", false, "use the deterministic virtual-time clock");
  auto& workers =
      cli.add_int("workers", 0, "executor pool size (0 = auto)");
  cli.parse(argc, argv);

  const auto scenario = workload::log_analytics();
  const auto& instance = scenario.instance;
  std::cout << scenario.description << "\n\n";

  opt::Request request;
  request.instance = &instance;
  request.precedence = &scenario.precedence;
  core::Bnb_optimizer bnb;
  const auto optimal = bnb.optimize(request);

  // A deliberately poor but feasible plan: reverse the optimum where the
  // constraints allow, via repeated feasible picks with the *largest*
  // transfer from the previous service.
  model::Plan bad;
  {
    std::vector<char> placed(instance.size(), 0);
    while (bad.size() < instance.size()) {
      model::Service_id pick = model::invalid_service;
      double pick_t = -1.0;
      for (model::Service_id u = 0; u < instance.size(); ++u) {
        if (placed[u]) continue;
        if (!scenario.precedence.feasible_next(u, placed)) continue;
        const double t =
            bad.empty() ? 0.0 : instance.transfer(bad.back(), u);
        if (t > pick_t) {
          pick_t = t;
          pick = u;
        }
      }
      bad.append(pick);
      placed[pick] = 1;
    }
  }

  Table table(std::string(virtual_clock.value ? "virtual-time" : "wall-clock") +
              " execution (" + std::to_string(tuples.value) + " records, " +
              Table::num(scale.value, 0) + "us per cost unit)");
  table.set_header({"plan", "Eq.1 cost", "wall cost/tuple", "wall total (s)",
                    "delivered"});
  for (const auto& [label, plan] :
       {std::pair<std::string, const model::Plan&>{"optimal", optimal.plan},
        {"worst-link greedy", bad}}) {
    runtime::Runtime_config config;
    config.input_tuples = static_cast<std::uint64_t>(tuples.value);
    config.time_scale_us = scale.value;
    config.block_size = 20;
    config.clock_mode = virtual_clock.value
                            ? runtime::Clock_mode::virtual_time
                            : runtime::Clock_mode::real;
    config.worker_count =
        static_cast<std::size_t>(std::max<std::int64_t>(0, workers.value));
    const auto result = runtime::execute(instance, plan, config);
    table.add_row({label + ": " + plan.to_string(instance),
                   Table::num(result.predicted_cost, 3),
                   Table::num(result.per_tuple_cost_units, 3),
                   Table::num(result.wall_seconds, 3),
                   std::to_string(result.tuples_delivered)});
  }
  table.add_footnote("both plans deliver the same tuples; only the "
                     "response time differs — ordering is free capacity");
  std::cout << table;
  return 0;
}
