// network_sensitivity — why "decentralized" is in the paper's title:
// sweeps a network from perfectly flat to wildly heterogeneous and shows
// the plan of the centralized special-case optimizer (optimal at h=0)
// degrading against the branch-and-bound, which re-optimizes per network.
//
//   ./examples/network_sensitivity [--n 10] [--seeds 15]

#include <iostream>

#include "quest/common/cli.hpp"
#include "quest/common/stats.hpp"
#include "quest/common/table.hpp"
#include "quest/core/branch_and_bound.hpp"
#include "quest/opt/greedy.hpp"
#include "quest/workload/analysis.hpp"
#include "quest/workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace quest;
  Cli cli("network_sensitivity",
          "centralized-assumption plans vs network heterogeneity");
  auto& n = cli.add_int("n", 10, "services");
  auto& seeds = cli.add_int("seeds", 15, "instances per point");
  cli.parse(argc, argv);

  Table table("flat-network plan vs true optimum");
  table.set_header({"heterogeneity h", "transfer CV", "comm share",
                    "uniform-opt / optimal", "worst case"});

  for (const double h : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    std::vector<double> ratios;
    double worst = 0.0;
    Running_stats cv_stats;
    Running_stats share_stats;
    for (std::int64_t seed = 1; seed <= seeds.value; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 1009);
      workload::Heterogeneity_spec spec;
      spec.n = static_cast<std::size_t>(n.value);
      spec.heterogeneity = h;
      const auto instance = workload::make_heterogeneous(spec, rng);
      const auto profile = workload::analyze(instance);
      cv_stats.add(profile.transfer_cv);
      share_stats.add(profile.communication_share);

      opt::Request request;
      request.instance = &instance;
      core::Bnb_optimizer bnb;
      opt::Uniform_comm_optimizer uniform;
      const double ratio =
          uniform.optimize(request).cost / bnb.optimize(request).cost;
      ratios.push_back(ratio);
      worst = std::max(worst, ratio);
    }
    table.add_row({Table::num(h, 2), Table::num(cv_stats.mean(), 3),
                   Table::num(share_stats.mean(), 3),
                   Table::num(geometric_mean(ratios), 3),
                   Table::num(worst, 3)});
  }
  table.add_footnote("uniform-opt sorts by c_i + sigma_i * t-bar — optimal "
                     "when every link costs the same, blind otherwise");
  std::cout << table;
  std::cout << "\ntakeaway: once links differ (h > 0), ordering by a flat "
               "network model leaves real response time on the table; the "
               "decentralized optimizer recovers it.\n";
  return 0;
}
