// portfolio_tour — the high-level API in one pass: profile an instance,
// let the portfolio pick the right engine, and read the explanation.
// Repeats for one instance per hardness regime so the dispatch logic is
// visible. Engines come from the process-wide registry — the same
// string-spec surface tools/quest_cli exposes.
//
//   ./examples/portfolio_tour [--n 10]

#include <iostream>

#include "quest/common/cli.hpp"
#include "quest/common/table.hpp"
#include "quest/core/engines.hpp"
#include "quest/core/portfolio.hpp"
#include "quest/model/explain.hpp"
#include "quest/workload/analysis.hpp"
#include "quest/workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace quest;
  Cli cli("portfolio_tour", "profile -> dispatch -> optimize -> explain");
  auto& n = cli.add_int("n", 10, "instance size");
  cli.parse(argc, argv);

  std::cout << "registered engines:";
  for (const auto& name : core::engine_registry().names()) {
    std::cout << ' ' << name;
  }
  std::cout << "\n\n";

  struct Case {
    std::string label;
    double sigma_lo;
    double sigma_hi;
  };
  const std::vector<Case> cases = {
      {"selective pipeline", 0.1, 0.7},
      {"near-TSP pipeline", 0.9, 1.0},
      {"expanding pipeline", 0.6, 2.0},
  };

  // The dispatch helper comes from the concrete class; the engines it
  // runs (and the greedy yardstick) come from the registry.
  core::Portfolio_optimizer dispatch;
  auto portfolio = core::make_optimizer("portfolio");
  auto greedy = core::make_optimizer("greedy");

  for (const auto& instance_case : cases) {
    Rng rng(2026);
    workload::Uniform_spec spec;
    spec.n = static_cast<std::size_t>(n.value);
    spec.selectivity_min = instance_case.sigma_lo;
    spec.selectivity_max = instance_case.sigma_hi;
    const auto instance = workload::make_uniform(spec, rng);

    const auto profile = workload::analyze(instance);
    std::cout << "### " << instance_case.label << " — regime "
              << workload::to_string(profile.regime) << " (sigma geomean "
              << Table::num(profile.selectivity_geomean, 2)
              << ", transfer CV " << Table::num(profile.transfer_cv, 2)
              << ") -> engine: " << dispatch.chosen_engine(instance)
              << "\n";

    opt::Request request;
    request.instance = &instance;
    const auto result = portfolio->optimize(request);
    const auto greedy_result = greedy->optimize(request);

    std::cout << model::compare_plans(
                     instance, {{"portfolio", result.plan},
                                {"greedy", greedy_result.plan}})
              << "termination: " << opt::to_string(result.termination)
              << ", proven optimal: "
              << (result.proven_optimal ? "yes" : "no")
              << ", nodes: " << result.stats.nodes_expanded << "\n\n";
  }
  return 0;
}
