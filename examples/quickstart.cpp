// quickstart — the five-minute tour of the quest public API:
// build an instance, find the optimal decentralized ordering with the
// paper's branch-and-bound, inspect the plan, and save it to JSON.
//
//   ./examples/quickstart

#include <iostream>

#include "quest/core/branch_and_bound.hpp"
#include "quest/io/instance_io.hpp"
#include "quest/model/cost.hpp"
#include "quest/model/explain.hpp"

int main() {
  using namespace quest;

  // --- 1. Describe the services: per-tuple cost + selectivity. ---------
  // A filter chain for an online store: cheap coarse filters, an
  // expensive ML scorer, and a lookup that EXPANDS its input (sigma > 1).
  std::vector<model::Service> services = {
      {0.8, 0.45, "in-stock-filter"},
      {1.2, 0.70, "price-band-filter"},
      {6.0, 0.30, "ml-relevance-scorer"},
      {1.5, 2.10, "variant-expander"},
      {0.9, 0.85, "region-filter"},
  };

  // --- 2. Describe the network: pairwise per-tuple transfer costs. -----
  // Decentralized execution means services ship tuples directly to each
  // other, so costs are heterogeneous and may be asymmetric.
  const std::size_t n = services.size();
  Matrix<double> transfer = Matrix<double>::square(n, 0.0);
  const double link[5][5] = {
      {0.0, 0.2, 2.5, 2.6, 0.3},
      {0.2, 0.0, 2.4, 2.5, 0.4},
      {2.7, 2.6, 0.0, 0.3, 2.8},
      {2.6, 2.4, 0.2, 0.0, 2.5},
      {0.4, 0.3, 2.9, 2.7, 0.0},
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) transfer(i, j) = link[i][j];
  }

  const model::Instance instance(std::move(services), std::move(transfer),
                                 {}, "quickstart");

  // --- 3. Optimize with the paper's branch-and-bound. ------------------
  core::Bnb_optimizer optimizer;
  opt::Request request;
  request.instance = &instance;
  const opt::Result result = optimizer.optimize(request);

  std::cout << "optimal plan : " << result.plan.to_string(instance) << "\n"
            << "bottleneck   : " << result.cost
            << " time units per tuple (proven optimal: "
            << (result.proven_optimal ? "yes" : "no") << ")\n"
            << "search       : " << result.stats.nodes_expanded
            << " nodes, " << result.stats.lemma2_closures
            << " Lemma-2 closures, " << result.stats.lemma3_backjumps
            << " Lemma-3 back-jumps\n\n";

  // --- 4. Understand *why*: the per-stage cost report. -----------------
  std::cout << model::explain_plan(instance, result.plan);

  // --- 5. Persist the instance for later runs. -------------------------
  io::save_instance("/tmp/quest_quickstart.json", instance);
  std::cout << "\ninstance saved to /tmp/quest_quickstart.json\n";
  return 0;
}
