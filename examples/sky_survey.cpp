// sky_survey — precedence constraints in practice: an astronomy pipeline
// where source extraction must run first. Shows (a) how constraints are
// declared, (b) what they cost (constrained vs unconstrained optimum),
// and (c) that the optimizer proves optimality within the feasible set.
//
//   ./examples/sky_survey

#include <iostream>

#include "quest/common/table.hpp"
#include "quest/core/branch_and_bound.hpp"
#include "quest/workload/scenarios.hpp"

int main() {
  using namespace quest;
  const auto scenario = workload::sky_survey();
  const auto& instance = scenario.instance;
  std::cout << scenario.description << "\n\n";

  Table edges("precedence constraints");
  edges.set_header({"before", "after"});
  for (model::Service_id u = 0; u < scenario.precedence.size(); ++u) {
    for (const model::Service_id v : scenario.precedence.successors(u)) {
      edges.add_row({instance.service(u).name, instance.service(v).name});
    }
  }
  edges.add_footnote(
      Table::num(scenario.precedence.count_linear_extensions(), 0) +
      " feasible orderings out of " + Table::num(5040, 0) + " (7!)");
  std::cout << edges << "\n";

  core::Bnb_optimizer bnb;

  opt::Request constrained;
  constrained.instance = &instance;
  constrained.precedence = &scenario.precedence;
  const auto with = bnb.optimize(constrained);

  opt::Request unconstrained;
  unconstrained.instance = &instance;
  const auto without = bnb.optimize(unconstrained);

  Table comparison("constrained vs unconstrained optimum");
  comparison.set_header({"setting", "plan", "bottleneck cost", "nodes"});
  comparison.add_row({"with constraints", with.plan.to_string(instance),
                      Table::num(with.cost, 3),
                      std::to_string(with.stats.nodes_expanded)});
  comparison.add_row({"without (hypothetical)",
                      without.plan.to_string(instance),
                      Table::num(without.cost, 3),
                      std::to_string(without.stats.nodes_expanded)});
  comparison.add_footnote("the gap between the rows is the price of the "
                          "workflow's data dependencies");
  std::cout << comparison;

  std::cout << "\nconstrained plan respects every edge: "
            << (scenario.precedence.respects(with.plan.order()) ? "yes"
                                                                : "NO (bug)")
            << ", proven optimal: " << (with.proven_optimal ? "yes" : "no")
            << "\n";
  return 0;
}
