#!/usr/bin/env python3
"""Compare two google-benchmark JSON outputs with a tolerance gate.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--tolerance 0.25]
                              [--metric cpu_time] [--filter PREFIX]

Exits 1 when any benchmark present in both files regressed by more than
the tolerance (current > baseline * (1 + tolerance)); benchmarks that
exist on only one side are reported but never fail the gate, so adding or
retiring a benchmark does not break CI. Improvements are reported too.

This closes the PR-2 ROADMAP loop: CI uploads bench_micro's JSON as the
`bench-micro-baseline` artifact, and subsequent runs download the previous
baseline and run this gate over the optimizer hot paths.
"""

import argparse
import json
import sys


def load_benchmarks(path, metric):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    results = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions); compare
        # the plain measurements only.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        if name is None or metric not in bench:
            continue
        results[name] = float(bench[metric])
    return results


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative slowdown (default 0.25)")
    parser.add_argument("--metric", default="cpu_time",
                        help="benchmark field to compare (default cpu_time)")
    parser.add_argument("--filter", default="",
                        help="only compare benchmarks whose name starts "
                             "with this prefix")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline, args.metric)
    current = load_benchmarks(args.current, args.metric)

    compared = 0
    regressions = []
    for name in sorted(current):
        if args.filter and not name.startswith(args.filter):
            continue
        if name not in baseline:
            print(f"  new        {name} (no baseline; not gated)")
            continue
        old = baseline[name]
        new = current[name]
        if old <= 0.0:
            print(f"  skipped    {name} (non-positive baseline)")
            continue
        compared += 1
        ratio = new / old
        if ratio > 1.0 + args.tolerance:
            regressions.append((name, old, new, ratio))
            print(f"  REGRESSED  {name}: {old:.1f} -> {new:.1f} "
                  f"({(ratio - 1.0) * 100.0:+.1f}%)")
        else:
            print(f"  ok         {name}: {old:.1f} -> {new:.1f} "
                  f"({(ratio - 1.0) * 100.0:+.1f}%)")
    for name in sorted(set(baseline) - set(current)):
        if args.filter and not name.startswith(args.filter):
            continue
        print(f"  retired    {name} (present only in the baseline)")

    if compared == 0:
        print("no overlapping benchmarks to compare; gate passes vacuously")
        return 0
    if regressions:
        print(f"\n{len(regressions)} of {compared} benchmarks regressed "
              f"beyond {args.tolerance * 100.0:.0f}% on {args.metric}")
        return 1
    print(f"\nall {compared} overlapping benchmarks within "
          f"{args.tolerance * 100.0:.0f}% of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
