#!/usr/bin/env python3
"""Self-test of check_bench_regression.py (registered as ctest
bench/regression_gate): the gate must pass within tolerance, fail beyond
it, ignore added/retired benchmarks and aggregate rows, and pass
vacuously with no overlap."""

import json
import os
import subprocess
import sys
import tempfile

GATE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "check_bench_regression.py")


def doc(entries):
    return {"benchmarks": [
        {"name": name, "cpu_time": value, "run_type": run_type}
        for name, value, run_type in entries]}


def run_gate(baseline, current, *extra):
    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "baseline.json")
        cur_path = os.path.join(tmp, "current.json")
        with open(base_path, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle)
        with open(cur_path, "w", encoding="utf-8") as handle:
            json.dump(current, handle)
        proc = subprocess.run(
            [sys.executable, GATE, base_path, cur_path, *extra],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout


def expect(condition, message, output=""):
    if not condition:
        print("FAIL:", message)
        print(output)
        sys.exit(1)


def main():
    baseline = doc([("BM_a/8", 100.0, "iteration"),
                    ("BM_b/8", 50.0, "iteration")])

    # Within the 25% tolerance: passes.
    code, out = run_gate(baseline, doc([("BM_a/8", 120.0, "iteration"),
                                        ("BM_b/8", 40.0, "iteration")]))
    expect(code == 0, "within-tolerance run must pass", out)

    # A >25% regression fails and is named.
    code, out = run_gate(baseline, doc([("BM_a/8", 130.0, "iteration"),
                                        ("BM_b/8", 50.0, "iteration")]))
    expect(code == 1, "regression beyond tolerance must fail", out)
    expect("REGRESSED" in out and "BM_a/8" in out,
           "the regressed benchmark is reported", out)

    # New and retired benchmarks never gate; aggregates are skipped.
    code, out = run_gate(
        doc([("BM_a/8", 100.0, "iteration"),
             ("BM_gone", 10.0, "iteration")]),
        doc([("BM_a/8", 100.0, "iteration"),
             ("BM_new", 99999.0, "iteration"),
             ("BM_a/8_mean", 99999.0, "aggregate")]))
    expect(code == 0, "added/retired benchmarks must not gate", out)
    expect("new" in out and "retired" in out, "membership changes reported",
           out)

    # No overlap at all: vacuous pass.
    code, out = run_gate(doc([("BM_x", 1.0, "iteration")]),
                         doc([("BM_y", 1.0, "iteration")]))
    expect(code == 0, "no overlap must pass vacuously", out)

    # Non-positive baselines are skipped, not compared: an all-zero
    # (truncated) baseline must take the honest vacuous-pass path.
    code, out = run_gate(doc([("BM_a/8", 0.0, "iteration")]),
                         doc([("BM_a/8", 100.0, "iteration")]))
    expect(code == 0 and "vacuous" in out,
           "all-skipped comparison is a vacuous pass, not a real one", out)

    # A tighter tolerance flips the verdict.
    code, out = run_gate(baseline, doc([("BM_a/8", 110.0, "iteration"),
                                        ("BM_b/8", 50.0, "iteration")]),
                         "--tolerance", "0.05")
    expect(code == 1, "tolerance is honored", out)

    print("check_bench_regression self-test: all cases passed")


if __name__ == "__main__":
    main()
