#!/usr/bin/env python3
"""Load generator for quest_serve's TCP transport.

Spawns the binary with `--tcp-port 0`, reads the `{"event":"listening",
"port":N}` line it prints on stdout, then fans out N concurrent socket
connections each issuing R optimize requests (cache off, varied seeds)
and measures per-request latency end to end. Reports throughput and
latency percentiles as JSON on stdout:

  {"connections":256,"requests_per_connection":8,"total_requests":2048,
   "req_per_s":...,"p50_ms":...,"p99_ms":...,"errors":0,"overloaded":0}

With --smoke it additionally asserts protocol invariants (every request
gets exactly one result, results are well-formed, no connection dies)
and runs a dedicated load-shed phase against a second server instance
started with --workers 1 --queue-cap 1, asserting that typed
`overloaded` errors are emitted and that the server survives. Exits
non-zero with a readable reason on any violation.

Two exclusive modes replace the throughput run when selected:

  --persist      durability smoke: start quest_serve with a snapshot
                 path, optimize with the cache on, wait for the write-
                 behind snapshot to land on disk, kill -9 the process,
                 restart it on the same path, and assert the warm boot
                 restores the instance and serves every repeated request
                 from the exact cache tier at the identical cost.
  --router K     sharded smoke: K quest_serve backends behind
                 quest_router (--router-binary). Registers instances
                 with distinct fingerprints through the router, checks
                 merged stats report the fleet shape, kill -9s one
                 backend, and asserts its shard sheds with typed
                 `overloaded` errors while the survivors keep serving.
  --replicas R   (with --router K, R > 1) replication smoke: the router
                 runs with --replicas R and a registration journal.
                 kill -9 one backend under concurrent optimize load and
                 assert ZERO client-visible errors (every key has a live
                 replica; failovers are counted in merged stats), then
                 restart the backend on its old port and poll stats
                 until the prober revives it and journal replay heals it
                 (repairs > 0). Ends with a clean fleet shutdown.

Usage:
  loadgen.py --binary build/tools/quest_serve --connections 256 --requests 8
  loadgen.py --binary ... --connections 16 --requests 4 --smoke   # ctest
  loadgen.py --binary ... --persist --smoke                       # ctest
  loadgen.py --binary ... --router-binary build/tools/quest_router \\
             --router 2 --smoke                                   # ctest
  loadgen.py --binary ... --router-binary ... --router 3 \\
             --replicas 2 --smoke                                 # ctest

Used by ctest (serve/tcp_smoke, serve/persist_smoke, serve/router_smoke,
serve/replication_smoke) and the CI smoke job; BENCH_7.json is a
recorded run of the 256-connection profile.
"""

import argparse
import json
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time

LONG_JOB_SPEC = "annealing:iterations=2000000000"


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def make_instance(n=8):
    """Deterministic instance, same shape as quest_serve_smoke.py."""
    services = [
        {
            "name": f"WS{i}",
            "cost": 0.5 + 0.13 * ((i * 7) % 5),
            "selectivity": 0.35 + 0.06 * ((i * 3) % 7),
        }
        for i in range(n)
    ]
    transfer = [
        [0.0 if i == j else 0.2 + 0.01 * ((3 * i + 5 * j) % 17) for j in range(n)]
        for i in range(n)
    ]
    return {"name": "loadgen", "services": services, "transfer": transfer}


class Server:
    """A quest_serve process in TCP mode; context-manages its lifetime."""

    def __init__(self, binary, extra_flags=(), port=0):
        self.proc = subprocess.Popen(
            [binary, "--tcp-port", str(port), *extra_flags],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            bufsize=1,
        )
        line = self.proc.stdout.readline()
        try:
            event = json.loads(line)
            assert event["event"] == "listening"
            self.port = int(event["port"])
        except Exception:
            self.proc.kill()
            fail(f"no listening line from server, got {line!r}")

    def shutdown(self, timeout=30.0):
        """Ask one connection to issue shutdown; expect clean exit 0."""
        try:
            with Client(self.port) as client:
                client.send({"op": "shutdown"})
        except OSError:
            pass  # already gone — the exit code below is the real check
        try:
            code = self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            fail("server did not exit after shutdown op")
        if code != 0:
            sys.stderr.write(self.proc.stderr.read() or "")
            fail(f"server exited with code {code}")

    def kill(self):
        self.proc.kill()
        self.proc.wait()


class Client:
    """One blocking line-delimited JSON connection."""

    def __init__(self, port, timeout=60.0):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=10.0)
        self.sock.settimeout(timeout)
        self.buffer = b""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass

    def send(self, op):
        self.sock.sendall((json.dumps(op) + "\n").encode())

    def read_event(self):
        while b"\n" not in self.buffer:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise EOFError("connection closed by server")
            self.buffer += chunk
        line, self.buffer = self.buffer.split(b"\n", 1)
        return json.loads(line)

    def wait_for(self, predicate, what):
        while True:
            event = self.read_event()
            if predicate(event):
                return event

    def wait_result(self, request_id):
        return self.wait_for(
            lambda e: e.get("event") == "result" and e.get("id") == request_id,
            f"result of {request_id}",
        )


def run_connection(port, connection, requests, instance_name, results, errors):
    """One client: register once via name, then R optimize round-trips."""
    latencies = []
    try:
        with Client(port) as client:
            for r in range(requests):
                request_id = f"c{connection}/{r}"
                started = time.monotonic()
                client.send(
                    {
                        "op": "optimize",
                        "id": request_id,
                        "instance": instance_name,
                        "optimizer": "bnb",
                        "budget": {"deadline_ms": 30000},
                        "seed": connection * 1009 + r,
                        "cache": False,
                    }
                )
                result = client.wait_result(request_id)
                latencies.append(time.monotonic() - started)
                if not result.get("complete") or "cost" not in result:
                    errors.append(f"{request_id}: malformed result {result}")
                    return
    except (OSError, EOFError, ValueError) as exc:
        errors.append(f"connection {connection}: {exc!r}")
        return
    results[connection] = latencies


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def throughput_phase(args):
    server = Server(
        args.binary,
        (
            "--max-connections", str(max(args.connections + 8, 64)),
            "--queue-cap", str(max(4 * args.connections, 1024)),
        ),
    )
    with Client(server.port) as registrar:
        registrar.send(
            {"op": "register", "name": "load", "instance": make_instance()}
        )
        registered = registrar.wait_for(
            lambda e: e.get("event") == "registered", "registered"
        )
        assert registered.get("services") == 8, registered

    results = {}
    errors = []
    threads = [
        threading.Thread(
            target=run_connection,
            args=(server.port, c, args.requests, "load", results, errors),
        )
        for c in range(args.connections)
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started

    server.shutdown()

    if args.smoke and errors:
        fail("; ".join(errors[:5]))
    latencies = sorted(l for ls in results.values() for l in ls)
    total = args.connections * args.requests
    if args.smoke and len(latencies) != total:
        fail(f"expected {total} results, got {len(latencies)}")
    return {
        "connections": args.connections,
        "requests_per_connection": args.requests,
        "total_requests": total,
        "completed": len(latencies),
        "elapsed_s": round(elapsed, 3),
        "req_per_s": round(len(latencies) / elapsed, 1) if elapsed > 0 else 0.0,
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
        "errors": len(errors),
    }


def shed_phase(binary):
    """--workers 1 --queue-cap 1: a hog + one queued job force the third
    concurrent request to shed with a typed `overloaded` error."""
    server = Server(binary, ("--workers", "1", "--queue-cap", "1"))
    with Client(server.port) as client:
        client.send(
            {"op": "register", "name": "shed", "instance": make_instance()}
        )
        client.wait_for(lambda e: e.get("event") == "registered", "registered")
        # Occupy the single worker; the incumbent proves it is running.
        client.send(
            {
                "op": "optimize",
                "id": "hog",
                "instance": "shed",
                "optimizer": LONG_JOB_SPEC,
                "budget": {"deadline_ms": 60000},
                "stream": True,
                "cache": False,
            }
        )
        client.wait_for(
            lambda e: e.get("event") == "incumbent" and e.get("id") == "hog",
            "hog incumbent",
        )
        # Fill the queue slot.
        client.send(
            {
                "op": "optimize",
                "id": "queued",
                "instance": "shed",
                "optimizer": LONG_JOB_SPEC,
                "budget": {"deadline_ms": 60000},
                "cache": False,
            }
        )
        client.wait_for(
            lambda e: e.get("event") == "admitted" and e.get("id") == "queued",
            "queued admitted",
        )
        # Overflow: must shed with the typed error, not hang or crash.
        client.send(
            {
                "op": "optimize",
                "id": "extra",
                "instance": "shed",
                "optimizer": LONG_JOB_SPEC,
                "budget": {"deadline_ms": 60000},
                "cache": False,
            }
        )
        shed = client.wait_for(
            lambda e: e.get("event") == "error" and e.get("id") == "extra",
            "shed error",
        )
        if shed.get("code") != "overloaded":
            fail(f"expected code=overloaded, got {shed}")
        if shed.get("queue_cap") != 1:
            fail(f"expected queue_cap=1 in shed event, got {shed}")
        # The session survives shedding: cancel both and collect results.
        for request_id in ("hog", "queued"):
            client.send({"op": "cancel", "id": request_id})
            result = client.wait_result(request_id)
            if result.get("termination") != "cancelled":
                fail(f"expected {request_id} cancelled, got {result}")
        client.send({"op": "stats"})
        stats = client.wait_for(lambda e: e.get("event") == "stats", "stats")
        if stats.get("shed") != 1 or stats.get("queue_cap") != 1:
            fail(f"stats disagree with the shed: {stats}")
    server.shutdown()
    return {"shed_errors": 1, "queue_cap": 1}


def wait_for_snapshot(path, min_exact, deadline_s=60.0):
    """Block until the snapshot on disk holds >= min_exact exact-tier
    records (and at least one instance), so a kill -9 afterwards cannot
    outrun the write-behind flush. Returns the record census."""
    deadline = time.monotonic() + deadline_s
    census = {}
    while time.monotonic() < deadline:
        census = {}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    record = json.loads(line)
                    kind = record.get("type", "header")
                    census[kind] = census.get(kind, 0) + 1
        except (OSError, ValueError):
            census = {}  # mid-rename or mid-line; retry
        if census.get("exact", 0) >= min_exact and census.get("instance", 0) >= 1:
            return census
        time.sleep(0.05)
    fail(f"snapshot at {path} never reached {min_exact} exact records: {census}")


def persist_phase(args):
    """Kill -9 a loaded server; a restart on the same --snapshot-path must
    warm-boot the instance store and serve repeats from the exact tier."""
    tmpdir = tempfile.mkdtemp(prefix="quest_persist_smoke_")
    snapshot = os.path.join(tmpdir, "state.qsnap")
    flags = ("--snapshot-path", snapshot, "--snapshot-interval-ms", "50")
    repeats = 4

    server = Server(args.binary, flags)
    costs = {}
    with Client(server.port) as client:
        client.send(
            {"op": "register", "name": "persist", "instance": make_instance()}
        )
        client.wait_for(lambda e: e.get("event") == "registered", "registered")
        for r in range(repeats):
            request_id = f"persist/{r}"
            client.send(
                {
                    "op": "optimize",
                    "id": request_id,
                    "instance": "persist",
                    "optimizer": "bnb",
                    "budget": {"deadline_ms": 30000},
                    "seed": r,
                    "cache": True,
                }
            )
            result = client.wait_result(request_id)
            if not result.get("complete") or result.get("cached"):
                fail(f"{request_id}: expected a fresh complete result, got {result}")
            costs[r] = result["cost"]
        census = wait_for_snapshot(snapshot, min_exact=repeats)
        # The file census and the stats counter are updated on different
        # sides of the snapshot write (rename vs. post-write accounting),
        # so poll the stats event instead of racing a one-shot check.
        deadline = time.monotonic() + 30.0
        while True:
            client.send({"op": "stats"})
            stats = client.wait_for(lambda e: e.get("event") == "stats", "stats")
            if stats.get("snapshot_writes", 0) >= 1:
                break
            if time.monotonic() >= deadline:
                fail(
                    "stats never reported a snapshot write despite "
                    f"on-disk state: {stats}"
                )
            time.sleep(0.05)
    server.kill()  # kill -9: no drain, no final flush

    server = Server(args.binary, flags)
    try:
        with Client(server.port) as client:
            client.send({"op": "stats"})
            stats = client.wait_for(lambda e: e.get("event") == "stats", "stats")
            warm = stats.get("warm_boot_entries", 0)
            if warm < repeats + 1:  # instance + exact entries at minimum
                fail(f"warm boot restored too little: {stats}")
            if stats.get("stale_refused", 0) != 0:
                fail(f"clean snapshot had refused records: {stats}")
            # The instance survives by name — no re-register — and every
            # repeated request is an exact-tier hit at the identical cost.
            for r in range(repeats):
                request_id = f"warm/{r}"
                client.send(
                    {
                        "op": "optimize",
                        "id": request_id,
                        "instance": "persist",
                        "optimizer": "bnb",
                        "budget": {"deadline_ms": 30000},
                        "seed": r,
                        "cache": True,
                    }
                )
                result = client.wait_result(request_id)
                if not result.get("cached"):
                    fail(f"{request_id}: expected an exact-tier hit, got {result}")
                if result["cost"] != costs[r]:
                    fail(
                        f"{request_id}: cost drifted across restart "
                        f"({result['cost']!r} != {costs[r]!r})"
                    )
        server.shutdown()
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    return {
        "mode": "persist",
        "snapshot_records": census,
        "warm_boot_entries": int(warm),
        "exact_hits_after_restart": repeats,
    }


def router_phase(args):
    """K backends behind quest_router: fan registrations across shards,
    merge stats, then kill -9 one backend and assert typed shedding."""
    shards = args.router
    backends = [Server(args.binary) for _ in range(shards)]
    router = Server(
        args.router_binary,
        ("--backends", ",".join(f"127.0.0.1:{b.port}" for b in backends)),
    )

    def spread_instance(i):
        # Same shape, perturbed first-service cost: distinct fingerprints
        # so consistent hashing actually spreads the keys.
        instance = make_instance(6)
        instance["services"][0]["cost"] += 0.001 * (i + 1)
        return instance

    names = [f"spread{i}" for i in range(12)]
    with Client(router.port) as client:
        for i, name in enumerate(names):
            client.send(
                {"op": "register", "name": name, "instance": spread_instance(i)}
            )
            client.wait_for(
                lambda e: e.get("event") == "registered", "registered"
            )
        for name in names:
            request_id = f"route/{name}"
            client.send(
                {
                    "op": "optimize",
                    "id": request_id,
                    "instance": name,
                    "optimizer": "bnb",
                    "budget": {"deadline_ms": 30000},
                    "cache": True,
                }
            )
            result = client.wait_result(request_id)
            if not result.get("complete"):
                fail(f"{request_id}: incomplete result through router: {result}")
        client.send({"op": "stats"})
        stats = client.wait_for(lambda e: e.get("event") == "stats", "stats")
        if stats.get("shards") != shards or stats.get("shards_live") != shards:
            fail(f"merged stats disagree with the fleet: {stats}")
        if stats.get("admitted", 0) < len(names):
            fail(f"merged admitted counter lost requests: {stats}")

    backends[0].kill()  # kill -9 one shard

    survived = shed = 0
    with Client(router.port) as client:
        for name in names:
            request_id = f"after/{name}"
            client.send(
                {
                    "op": "optimize",
                    "id": request_id,
                    "instance": name,
                    "optimizer": "bnb",
                    "budget": {"deadline_ms": 30000},
                    "cache": True,
                }
            )
            event = client.wait_for(
                lambda e: e.get("id") == request_id
                and e.get("event") in ("result", "error"),
                f"outcome of {request_id}",
            )
            if event["event"] == "result":
                survived += 1
            else:
                if event.get("code") != "overloaded":
                    fail(f"{request_id}: untyped shed error: {event}")
                shed += 1
        if shed < 1 or survived < 1:
            fail(
                f"expected a mix of survivals and sheds with one dead shard, "
                f"got survived={survived} shed={shed}"
            )
        client.send({"op": "stats"})
        stats = client.wait_for(lambda e: e.get("event") == "stats", "stats")
        if stats.get("shards_live") != shards - 1:
            fail(f"merged stats missed the dead shard: {stats}")

    router.shutdown()
    for backend in backends[1:]:
        try:
            code = backend.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            backend.kill()
            fail("backend did not exit after fleet shutdown")
        if code != 0:
            fail(f"backend exited with code {code} after fleet shutdown")
    return {
        "mode": "router",
        "shards": shards,
        "routed": len(names),
        "survived_after_kill": survived,
        "shed_after_kill": shed,
    }


def optimize_outcome(client, request_id, name):
    """Sends one optimize and returns its terminal event (result|error).
    Failovers are invisible here by design — at most a duplicate
    `admitted`, which the predicate skips."""
    client.send(
        {
            "op": "optimize",
            "id": request_id,
            "instance": name,
            "optimizer": "bnb",
            "budget": {"deadline_ms": 30000},
            "cache": True,
        }
    )
    return client.wait_for(
        lambda e: e.get("id") == request_id
        and e.get("event") in ("result", "error"),
        f"outcome of {request_id}",
    )


def replicated_load(port, names, stop, errors, completed):
    """Background load: optimize round-robin over `names` until told to
    stop, recording any client-visible error. With --replicas 2 and one
    dead backend, this list must stay empty."""
    try:
        with Client(port) as client:
            r = 0
            while not stop.is_set():
                event = optimize_outcome(
                    client, f"load/{r}", names[r % len(names)]
                )
                if event["event"] == "error":
                    errors.append(f"load/{r}: client-visible error {event}")
                    return
                completed.append(r)
                r += 1
    except (OSError, EOFError, ValueError) as exc:
        errors.append(f"load connection: {exc!r}")


def fetch_stats(port):
    with Client(port) as client:
        client.send({"op": "stats"})
        return client.wait_for(lambda e: e.get("event") == "stats", "stats")


def replication_phase(args):
    """K backends, --replicas R: kill -9 one backend under load (zero
    client-visible errors, failovers counted), restart it on the same
    port, and assert the journal replay heals it (repairs > 0)."""
    shards = args.router
    replicas = args.replicas
    tmpdir = tempfile.mkdtemp(prefix="quest_replication_smoke_")
    journal = os.path.join(tmpdir, "journal.jsonl")
    try:
        backends = [Server(args.binary) for _ in range(shards)]
        ports = [b.port for b in backends]
        router = Server(
            args.router_binary,
            (
                "--backends", ",".join(f"127.0.0.1:{p}" for p in ports),
                "--replicas", str(replicas),
                "--journal", journal,
                "--probe-interval-ms", "50",
            ),
        )

        def spread_instance(i):
            instance = make_instance(6)
            instance["services"][0]["cost"] += 0.001 * (i + 1)
            return instance

        names = [f"spread{i}" for i in range(12)]
        with Client(router.port) as client:
            for i, name in enumerate(names):
                client.send(
                    {"op": "register", "name": name,
                     "instance": spread_instance(i)}
                )
                client.wait_for(
                    lambda e: e.get("event") == "registered", "registered"
                )
            for name in names:
                event = optimize_outcome(client, f"route/{name}", name)
                if event["event"] != "result" or not event.get("complete"):
                    fail(f"route/{name}: bad result through router: {event}")

        stats = fetch_stats(router.port)
        if stats.get("shards") != shards or stats.get("shards_live") != shards:
            fail(f"merged stats disagree with the healthy fleet: {stats}")
        if stats.get("replicas") != replicas:
            fail(f"replicated stats must carry the factor: {stats}")
        if stats.get("shards_degraded", -1) != 0:
            fail(f"healthy fleet reported degraded shards: {stats}")

        # kill -9 one backend under concurrent load: every key has R
        # distinct owners, so the router must absorb the loss without a
        # single client-visible error.
        victim = 0
        stop = threading.Event()
        errors = []
        completed = []
        load = threading.Thread(
            target=replicated_load,
            args=(router.port, names, stop, errors, completed),
        )
        load.start()
        time.sleep(0.4)  # let the load reach steady state
        backends[victim].kill()
        time.sleep(1.5)  # keep hammering through the failure window
        stop.set()
        load.join(timeout=60)
        if load.is_alive():
            fail("load thread hung after the kill")
        if errors:
            fail("; ".join(errors[:5]))
        if len(completed) < len(names):
            fail(f"load barely ran: {len(completed)} requests completed")

        # One deliberate pass over every key with the shard still dead:
        # guarantees at least one request had the victim as its primary.
        with Client(router.port) as client:
            for name in names:
                event = optimize_outcome(client, f"degraded/{name}", name)
                if event["event"] != "result":
                    fail(f"degraded/{name}: error with a live replica: {event}")

        degraded = fetch_stats(router.port)
        if degraded.get("shards_live") != shards - 1:
            fail(f"merged stats missed the dead shard: {degraded}")
        if degraded.get("shards_degraded", 0) < 1:
            fail(f"prober never reported the dead shard: {degraded}")
        if degraded.get("replica_failovers", 0) < 1:
            fail(f"no failovers counted with a dead primary: {degraded}")

        # Rejoin: restart the backend on its old port (empty state). The
        # prober revives it and the router replays its share of the
        # journal ahead of traffic — visible as repairs > 0.
        backends[victim] = Server(args.binary, port=ports[victim])
        deadline = time.monotonic() + 60.0
        healed = {}
        while time.monotonic() < deadline:
            healed = fetch_stats(router.port)
            if (
                healed.get("shards_live") == shards
                and healed.get("repairs", 0) >= 1
            ):
                break
            time.sleep(0.1)
        else:
            fail(f"fleet never healed after the rejoin: {healed}")

        with Client(router.port) as client:
            for name in names:
                event = optimize_outcome(client, f"healed/{name}", name)
                if event["event"] != "result":
                    fail(f"healed/{name}: error after heal: {event}")

        final = fetch_stats(router.port)
        router.shutdown()
        for backend in backends:
            try:
                code = backend.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                backend.kill()
                fail("backend did not exit after fleet shutdown")
            if code != 0:
                fail(f"backend exited with code {code} after fleet shutdown")
        return {
            "mode": "replication",
            "shards": shards,
            "replicas": replicas,
            "routed": len(names),
            "load_requests_during_kill": len(completed),
            "client_visible_errors": len(errors),
            "replica_failovers": int(final.get("replica_failovers", 0)),
            "repairs": int(final.get("repairs", 0)),
            "merged_stats": final,
        }
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True, help="quest_serve path")
    parser.add_argument("--connections", type=int, default=256)
    parser.add_argument("--requests", type=int, default=8)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="assert protocol invariants and run the load-shed phase",
    )
    parser.add_argument(
        "--persist",
        action="store_true",
        help="run the kill -9 / warm-boot durability smoke instead",
    )
    parser.add_argument(
        "--router",
        type=int,
        default=0,
        metavar="K",
        help="run the K-shard router smoke instead (needs --router-binary)",
    )
    parser.add_argument("--router-binary", help="quest_router path")
    parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="R",
        help="with --router K and R > 1: run the replication smoke "
        "(kill/rejoin with journal-backed repair) instead",
    )
    args = parser.parse_args()

    if args.persist:
        report = persist_phase(args)
    elif args.router:
        if not args.router_binary:
            fail("--router requires --router-binary")
        if args.router < 1:
            fail("--router needs at least one shard")
        if args.replicas > args.router:
            fail("--replicas cannot exceed --router")
        if args.replicas > 1:
            report = replication_phase(args)
        else:
            report = router_phase(args)
    else:
        report = throughput_phase(args)
        if args.smoke:
            report["shed"] = shed_phase(args.binary)
    if args.smoke:
        report["smoke"] = "pass"
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
