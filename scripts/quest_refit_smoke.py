#!/usr/bin/env python3
"""Scripted quest_serve session for the adaptive loop (adapt/refit_smoke).

Drives the real binary over its stdin/stdout protocol and asserts the
observe -> refit -> re-optimize story end to end:

  register -> optimize under the default model (fresh result) ->
  20 observe ops whose per-stage tuple counts are synthesized from a
  hidden *correlated* truth -> refit (independence falsified, fitted
  matrix model emitted, warm tier seeded under the fitted key) ->
  optimize under the fitted model: exact-tier MISS (new model key) but
  warm-tier HIT -> repeat: exact-tier hit -> clean shutdown.

Usage: quest_refit_smoke.py /path/to/quest_serve
"""

import json
import queue
import random
import subprocess
import sys
import threading
import time

N = 8
RUNS = 20
TUPLES = 200_000
# Hidden pairwise interaction factors the server never sees directly:
# services 0/1 overlap strongly (gamma 2.2), 2/3 are near-disjoint
# filters (gamma 0.45), everything else is independent.
HIDDEN_GAMMA = {(0, 1): 2.2, (2, 3): 0.45}


def fail(message, events):
    print(f"FAIL: {message}", file=sys.stderr)
    print("--- events seen ---", file=sys.stderr)
    for event in events[-30:]:
        print(json.dumps(event), file=sys.stderr)
    sys.exit(1)


def make_instance():
    services = [
        {
            "name": f"WS{i}",
            "cost": 0.5 + 0.13 * ((i * 7) % 5),
            "selectivity": 0.35 + 0.06 * ((i * 3) % 7),
        }
        for i in range(N)
    ]
    transfer = [
        [0.0 if i == j else 0.2 + 0.01 * ((3 * i + 5 * j) % 17) for j in range(N)]
        for i in range(N)
    ]
    return {"name": "adaptive", "services": services, "transfer": transfer}


def gamma(u, w):
    return HIDDEN_GAMMA.get((min(u, w), max(u, w)), 1.0)


def synthesize_observation(plan, selectivities):
    """Per-stage tuple counts of one execution under the hidden truth."""
    tuples_in, tuples_out = [], []
    current = TUPLES
    for position, u in enumerate(plan):
        sigma = selectivities[u]
        for w in plan[:position]:
            sigma *= gamma(u, w)
        tuples_in.append(current)
        current = int(round(current * sigma))
        tuples_out.append(current)
    return tuples_in, tuples_out


class Session:
    def __init__(self, binary):
        self.proc = subprocess.Popen(
            [binary, "--workers", "2"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            bufsize=1,
        )
        self.events = []
        self.queue = queue.Queue()
        threading.Thread(target=self._read, daemon=True).start()

    def _read(self):
        for line in self.proc.stdout:
            line = line.strip()
            if line:
                self.queue.put(json.loads(line))
        self.queue.put(None)

    def send(self, op):
        self.proc.stdin.write(json.dumps(op) + "\n")
        self.proc.stdin.flush()

    def wait_for(self, predicate, what, timeout=60.0):
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                fail(f"timed out waiting for {what}", self.events)
            try:
                event = self.queue.get(timeout=remaining)
            except queue.Empty:
                fail(f"timed out waiting for {what}", self.events)
            if event is None:
                fail(f"server exited while waiting for {what}", self.events)
            self.events.append(event)
            if event.get("event") == "error" and "error" not in what:
                fail(f"unexpected error while waiting for {what}: {event}", self.events)
            if predicate(event):
                return event

    def wait_result(self, request_id, timeout=60.0):
        return self.wait_for(
            lambda e: e.get("event") == "result" and e.get("id") == request_id,
            f"result of {request_id}",
            timeout,
        )


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 1
    session = Session(sys.argv[1])
    instance = make_instance()
    selectivities = [s["selectivity"] for s in instance["services"]]

    session.send({"op": "register", "name": "adaptive", "instance": instance})
    session.wait_for(lambda e: e.get("event") == "registered", "registered")

    # Cold optimize under the default (independent) model: fresh result.
    session.send(
        {
            "op": "optimize",
            "id": "cold",
            "instance": "adaptive",
            "optimizer": "bnb",
            "budget": {"deadline_ms": 30000},
            "cache": True,
        }
    )
    cold = session.wait_result("cold")
    if not cold.get("complete") or cold.get("cached") or cold.get("warm_started"):
        fail(f"cold optimize should be a fresh complete result: {cold}", session.events)

    # Observe RUNS synthetic executions of random plans under the hidden
    # correlated truth. Deterministic seed: this script IS the replay.
    rng = random.Random(7)
    observed = None
    for _ in range(RUNS):
        plan = rng.sample(range(N), N)
        tuples_in, tuples_out = synthesize_observation(plan, selectivities)
        session.send(
            {
                "op": "observe",
                "instance": "adaptive",
                "plan": plan,
                "tuples_in": tuples_in,
                "tuples_out": tuples_out,
            }
        )
        observed = session.wait_for(
            lambda e: e.get("event") == "observed", "observed event"
        )
    if observed.get("runs") != RUNS:
        fail(f"expected {RUNS} recorded runs: {observed}", session.events)

    # Refit: independence must be falsified (hidden gammas 2.2 / 0.45),
    # the fitted model must re-enter through the spec grammar, and the
    # warm tier must be seeded under the fitted key.
    session.send(
        {
            "op": "refit",
            "instance": "adaptive",
            "policy": "sequential",
            "objective": "mean",
            "min_samples": 4,
        }
    )
    refit = session.wait_for(lambda e: e.get("event") == "refit", "refit event")
    if not refit.get("falsified"):
        fail(f"correlated truth must falsify independence: {refit}", session.events)
    fitted_model = refit.get("model", "")
    if not fitted_model.startswith("correlated:matrix="):
        fail(f"fitted model should be an explicit matrix spec: {refit}", session.events)
    if not refit.get("warm_seeded"):
        fail(f"refit should seed the warm tier: {refit}", session.events)

    # First optimize under the fitted model: the model key is new, so the
    # exact tier must miss — but the refit seeded the warm tier, so the
    # request must warm-start.
    session.send(
        {
            "op": "optimize",
            "id": "refit-warm",
            "instance": "adaptive",
            "optimizer": "bnb",
            "model": fitted_model,
            "policy": "sequential",
            "budget": {"deadline_ms": 30000},
            "cache": True,
        }
    )
    warm = session.wait_result("refit-warm")
    if not warm.get("complete"):
        fail(f"optimize under the fitted model did not complete: {warm}", session.events)
    if warm.get("cached"):
        fail(f"fitted model key must MISS the exact tier: {warm}", session.events)
    if not warm.get("warm_started"):
        fail(f"fitted model key must HIT the warm tier: {warm}", session.events)
    if warm.get("model") != refit.get("model_key"):
        fail(
            f"result model key {warm.get('model')} != fitted key "
            f"{refit.get('model_key')}",
            session.events,
        )

    # Same request again: now the exact tier serves it.
    session.send(
        {
            "op": "optimize",
            "id": "refit-exact",
            "instance": "adaptive",
            "optimizer": "bnb",
            "model": fitted_model,
            "policy": "sequential",
            "budget": {"deadline_ms": 30000},
            "cache": True,
        }
    )
    exact = session.wait_result("refit-exact")
    if not exact.get("cached"):
        fail(f"repeat under the fitted model must hit the exact tier: {exact}", session.events)
    if exact.get("cost") != warm.get("cost"):
        fail(
            f"exact-tier cost {exact.get('cost')} != first result "
            f"{warm.get('cost')}",
            session.events,
        )

    session.send({"op": "shutdown"})
    code = session.proc.wait(timeout=60)
    if code != 0:
        fail(f"shutdown exit code {code}", session.events)
    print(
        "refit smoke OK: observe -> refit (falsified, warm seeded) -> "
        "exact miss + warm hit -> exact hit"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
