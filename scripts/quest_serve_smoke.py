#!/usr/bin/env python3
"""Scripted quest_serve session — the process-level smoke test.

Drives the real binary over its stdin/stdout line-delimited JSON
protocol and asserts the full serving story:

  register -> optimize under a deadline -> streamed incumbents ->
  mid-flight cancel (bounded latency) -> repeat request hits the plan
  cache -> 8 concurrent requests saturate the worker pool -> stats
  counters agree -> shutdown completes with exit code 0 (all workers
  joined — a leaked worker would hang the exit and trip the timeout).

Usage: quest_serve_smoke.py /path/to/quest_serve

Registered with ctest (serve/smoke) when Python 3 is available, and run
by the CI smoke job. Exits non-zero with a readable reason on any
protocol violation.
"""

import json
import queue
import subprocess
import sys
import threading
import time

WORKERS = 8
LONG_JOB_SPEC = "annealing:iterations=2000000000"


def fail(message, events):
    print(f"FAIL: {message}", file=sys.stderr)
    print("--- events seen ---", file=sys.stderr)
    for event in events[-30:]:
        print(json.dumps(event), file=sys.stderr)
    sys.exit(1)


def make_instance(n=10):
    """A deterministic clustered-ish instance, no external tooling."""
    services = [
        {
            "name": f"WS{i}",
            "cost": 0.5 + 0.13 * ((i * 7) % 5),
            "selectivity": 0.35 + 0.06 * ((i * 3) % 7),
        }
        for i in range(n)
    ]
    transfer = [
        [0.0 if i == j else 0.2 + 0.01 * ((3 * i + 5 * j) % 17) for j in range(n)]
        for i in range(n)
    ]
    return {"name": "smoke", "services": services, "transfer": transfer}


class Session:
    def __init__(self, binary):
        self.proc = subprocess.Popen(
            [binary, "--workers", str(WORKERS)],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            bufsize=1,
        )
        self.events = []
        self.queue = queue.Queue()
        self.reader = threading.Thread(target=self._read, daemon=True)
        self.reader.start()

    def _read(self):
        for line in self.proc.stdout:
            line = line.strip()
            if line:
                self.queue.put(json.loads(line))
        self.queue.put(None)  # EOF marker

    def send(self, op):
        self.proc.stdin.write(json.dumps(op) + "\n")
        self.proc.stdin.flush()

    def wait_for(self, predicate, what, timeout=60.0, history=True):
        # Events arrive in one stream; a predicate may match something
        # already drained by an earlier wait (e.g. the cancel ack lands
        # before the cancelled result). Scan history first — except for
        # request/response pairs like stats, which want the fresh reply.
        if history:
            for event in self.events:
                if predicate(event):
                    return event
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                fail(f"timed out waiting for {what}", self.events)
            try:
                event = self.queue.get(timeout=remaining)
            except queue.Empty:
                fail(f"timed out waiting for {what}", self.events)
            if event is None:
                fail(f"stream ended while waiting for {what}", self.events)
            self.events.append(event)
            if predicate(event):
                return event

    def wait_result(self, request_id, timeout=60.0):
        return self.wait_for(
            lambda e: e.get("event") == "result" and e.get("id") == request_id,
            f"result of {request_id}",
            timeout,
        )

    def stats(self):
        self.send({"op": "stats"})
        return self.wait_for(
            lambda e: e.get("event") == "stats", "stats", history=False
        )


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    session = Session(sys.argv[1])
    instance = make_instance()

    # 1. Register an instance; malformed input must not kill the session.
    session.send({"op": "nonsense"})
    session.wait_for(lambda e: e.get("event") == "error", "error event")
    session.send({"op": "register", "name": "prod", "instance": instance})
    registered = session.wait_for(
        lambda e: e.get("event") == "registered", "registered event"
    )
    assert len(registered["fingerprint"]) == 16, registered

    # 2. Optimize under a deadline, streaming.
    session.send(
        {
            "op": "optimize",
            "id": "opt1",
            "instance": "prod",
            "optimizer": "bnb",
            "budget": {"deadline_ms": 5000},
            "stream": True,
        }
    )
    result = session.wait_result("opt1")
    if not result.get("complete") or result["termination"] not in (
        "optimal",
        "completed",
        "budget-exhausted",
    ):
        fail(f"unexpected opt1 result {result}", session.events)
    order = [e["event"] for e in session.events if e.get("id") == "opt1"]
    if order[0] != "admitted" or "incumbent" not in order:
        fail(f"opt1 event order wrong: {order}", session.events)

    # 3. Mid-flight cancel releases the worker promptly.
    session.send(
        {
            "op": "optimize",
            "id": "slow",
            "instance": "prod",
            "optimizer": LONG_JOB_SPEC,
            "budget": {"deadline_ms": 120000},
            "stream": True,
            "cache": False,
        }
    )
    session.wait_for(
        lambda e: e.get("event") == "incumbent" and e.get("id") == "slow",
        "slow's first incumbent",
    )
    cancel_started = time.monotonic()
    session.send({"op": "cancel", "id": "slow"})
    result = session.wait_result("slow")
    cancel_latency = time.monotonic() - cancel_started
    if result["termination"] != "cancelled" or not result.get("complete"):
        fail(f"unexpected cancel result {result}", session.events)
    # Generous process-level bound (pipe + scheduler on a shared runner);
    # the in-process 50 ms bound lives in tests/serve/server_test.cpp.
    if cancel_latency > 5.0:
        fail(f"cancel took {cancel_latency:.2f}s", session.events)
    ack = session.wait_for(
        lambda e: e.get("event") == "cancel-requested", "cancel ack"
    )
    assert ack["found"], ack

    # 4. A repeated identical request is served from the plan cache.
    session.send(
        {
            "op": "optimize",
            "id": "opt2",
            "instance": "prod",
            "optimizer": "bnb",
            "budget": {"deadline_ms": 5000},
        }
    )
    result = session.wait_result("opt2")
    if not result.get("cached"):
        fail(f"expected a cache hit, got {result}", session.events)

    # 5. Eight concurrent long-running requests saturate the pool.
    for job in range(WORKERS):
        session.send(
            {
                "op": "optimize",
                "id": f"c{job}",
                "instance": "prod",
                "optimizer": LONG_JOB_SPEC,
                "budget": {"deadline_ms": 120000},
                "cache": False,
            }
        )
    deadline = time.monotonic() + 30.0
    peak = 0
    while peak < WORKERS:
        if time.monotonic() > deadline:
            fail(f"max_concurrent stuck at {peak}", session.events)
        peak = session.stats()["max_concurrent"]
    for job in range(WORKERS):
        session.send({"op": "cancel", "id": f"c{job}"})
    for job in range(WORKERS):
        result = session.wait_result(f"c{job}")
        if result["termination"] != "cancelled":
            fail(f"c{job} not cancelled: {result}", session.events)

    # 6. Counters agree with what we observed.
    stats = session.stats()
    if stats["max_concurrent"] < WORKERS or stats["cache"]["hits"] < 1:
        fail(f"stats disagree: {stats}", session.events)
    if stats["queue_depth"] != 0 or stats["admitted"] != 3 + WORKERS:
        fail(f"stats disagree: {stats}", session.events)

    # 7. Clean shutdown: both events, exit code 0, workers joined.
    session.send({"op": "shutdown"})
    session.wait_for(
        lambda e: e.get("event") == "shutdown-complete", "shutdown-complete"
    )
    try:
        code = session.proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        session.proc.kill()
        fail("process did not exit after shutdown (leaked worker?)",
             session.events)
    if code != 0:
        fail(f"exit code {code}: {session.proc.stderr.read()}", session.events)

    print(
        "quest_serve smoke ok: "
        f"{stats['completed']:.0f} completed, "
        f"{stats['cancelled']:.0f} cancelled, "
        f"cache hits {stats['cache']['hits']:.0f}, "
        f"max concurrency {stats['max_concurrent']}, "
        f"throughput {stats['throughput_rps']:.1f} req/s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
