// quest/adapt/model_fitter.hpp
//
// Turns an Observation_log into a fitted model::Cost_model_spec — the
// estimation half of the adaptive loop. Per service, the fitter solves
// the ridge-regularized least-squares problem whose normal equations the
// log accumulated,
//
//   log sigma_obs(u | S) = log sigma_u + sum_{w in S} log gamma(w, u),
//
// with a *confidence gate* per regressor: the pairwise column (w, u)
// enters the solve only when u was observed both with and without w in
// its prefix at least `min_pair_samples` times each — otherwise the
// column is unidentifiable and gamma(w, u) is pinned to 1. The two
// directed estimates of a pair are averaged in log space (the model's
// gamma is symmetric), clamped to the model's factor range, and emitted
// through the existing spec grammar as an explicit `matrix=` correlated
// model — never by touching the instance's marginal selectivities, so
// instance fingerprints (and with them both plan-cache tiers) survive a
// refit unchanged.
//
// `independent` is declared statistically falsified when some
// well-sampled pair's symmetrized |log gamma| exceeds the falsification
// threshold; on truly independent draws the estimates concentrate at 0
// and the flag stays off (property-tested in
// tests/adapt/fitter_property_test.cpp).
//
// The cost side estimates a per-service lognormal tail by method of
// moments (sigma^2 = log(1 + var/mean^2)) and converts it into the
// mean-relative p95/p99 multipliers of the cost profile. A tail too
// heavy for a sound multiplier (sigma beyond `max_cost_sigma`) is capped
// and flagged — the quantile bound degrades gracefully instead of going
// unsound.

#pragma once

#include <cstdint>
#include <vector>

#include "quest/adapt/observation_log.hpp"
#include "quest/model/cost_model.hpp"

namespace quest::adapt {

struct Fit_options {
  /// A pairwise column needs this many samples with the pair present AND
  /// this many with it absent before it is identifiable.
  std::uint64_t min_pair_samples = 8;
  /// A service needs this many stage observations before its marginal
  /// estimate is reported as sampled.
  std::uint64_t min_marginal_samples = 8;
  /// Tikhonov ridge added to the normal-equation diagonal.
  double ridge = 1e-9;
  /// |log gamma| on a well-sampled pair above this falsifies
  /// `independent`. exp(0.1) ~ 1.105 — a 10% interaction.
  double falsify_log_threshold = 0.1;
  /// Factor clamps of the emitted matrix; defaults match the correlated
  /// structure's defaults.
  double clamp_lo = 0.25;
  double clamp_hi = 4.0;
  /// Lognormal tail sigmas beyond this are capped (and flagged) before
  /// the quantile multiplier is formed.
  double max_cost_sigma = 2.0;
};

struct Fit_report {
  std::size_t size = 0;

  /// exp(intercept): the fitted marginal selectivity of each service;
  /// meaningful only where `marginal_sampled`.
  std::vector<double> marginal;
  std::vector<std::uint8_t> marginal_sampled;

  /// Symmetrized, clamped interaction factors (n x n row-major, diagonal
  /// 1); exactly 1 where the pair never passed a gate.
  std::vector<double> gamma;
  std::vector<std::uint8_t> pair_sampled;  ///< n x n, symmetric

  bool independent_falsified = false;
  /// Largest |log gamma| over sampled pairs (pre-clamp).
  double max_abs_log_gamma = 0.0;

  /// Per-service realized cost mean and fitted lognormal tail sigma
  /// (0 where fewer than 2 cost samples exist).
  std::vector<double> cost_mean;
  std::vector<double> cost_tail_sigma;
  bool cost_sigma_capped = false;

  std::uint64_t runs = 0;

  double gamma_at(model::Service_id u, model::Service_id w) const {
    return gamma[u * size + w];
  }
  bool pair_sampled_at(model::Service_id u, model::Service_id w) const {
    return pair_sampled[u * size + w] != 0;
  }
};

class Model_fitter {
 public:
  explicit Model_fitter(Fit_options options = {});

  Fit_report fit(const Observation_log& log) const;

  /// The fitted model, expressed through the spec grammar: an explicit
  /// `matrix=` correlated spec when `independent` was falsified, plain
  /// `independent` otherwise; under a quantile objective, per-service
  /// `cost-scale=` multipliers derived from the fitted tails. bind(n)
  /// of the result is the re-optimization model, and its key() round-
  /// trips through parse_cost_model_spec (snapshot-reproducible).
  model::Cost_model_spec to_spec(const Fit_report& report,
                                 model::Send_policy policy,
                                 model::Objective objective) const;

  const Fit_options& options() const noexcept { return options_; }

 private:
  Fit_options options_;
};

}  // namespace quest::adapt
