// quest/adapt/observation_log.hpp
//
// Streaming execution observations for the adaptive loop (ISSUE 9 /
// ROADMAP "Adaptive cost models"). Executions — the virtual-clock
// executor, the discrete-event simulator, or a real deployment — report
// per-stage tuple counts and per-service cost moments; the log folds them
// into sufficient statistics for Model_fitter without retaining a single
// tuple.
//
// The statistic behind the selectivity side: under the correlated
// structure, a stage observation of service u behind the prefix set S
// satisfies
//
//   log sigma_obs(u | S) = log sigma_u + sum_{w in S} log gamma(w, u)
//
// which is linear in the unknowns (log sigma_u, log gamma(., u)). The log
// therefore accumulates, per service, the normal equations of that
// regression — an (n+1)x(n+1) Gram matrix and right-hand side — plus the
// co-occurrence counts the fitter's confidence gates read. Memory is
// O(n^3) doubles total and independent of how many runs are recorded.
//
// The cost side keeps per-service first and second moments of realized
// per-tuple costs (model units), enough for the fitter's lognormal
// method-of-moments tail estimate.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "quest/model/instance.hpp"
#include "quest/model/plan.hpp"

namespace quest::adapt {

/// Per-service realized-cost moments, in model cost units.
struct Cost_stats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double sq_sum = 0.0;

  double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Population variance; 0 until two samples exist.
  double variance() const noexcept;
};

class Observation_log {
 public:
  /// A log for instances of `service_count` services. All recorded plans
  /// must be permutations over the same service set; the log does not
  /// check that they refer to the same instance (callers key logs by
  /// fingerprint).
  explicit Observation_log(std::size_t service_count);

  std::size_t size() const noexcept { return n_; }

  /// Records one executed plan: `tuples_in[p]` / `tuples_out[p]` are the
  /// tuples consumed / produced by plan position p (runtime::
  /// Runtime_result::tuples_in/out, sim::Service_metrics likewise). The
  /// plan may be a prefix of a permutation; positions with zero tuples in
  /// or out are skipped (the log-ratio is undefined there).
  void record_run(const model::Plan& plan,
                  std::span<const std::uint64_t> tuples_in,
                  std::span<const std::uint64_t> tuples_out);

  /// Folds `count` per-tuple cost samples of service `u` with the given
  /// sum and sum of squares into the cost moments.
  void record_cost(model::Service_id u, std::uint64_t count, double sum,
                   double sq_sum);

  /// Merges another log over the same service set (shard aggregation).
  void merge(const Observation_log& other);

  /// Stage observations recorded for `u` (runs where u consumed and
  /// produced tuples).
  std::uint64_t stage_samples(model::Service_id u) const;

  /// Of u's stage observations, how many had `w` in the prefix.
  std::uint64_t pair_samples(model::Service_id u,
                             model::Service_id w) const;

  /// Normal equations of u's log-selectivity regression: an
  /// (n+1) x (n+1) row-major Gram matrix over the regressor vector
  /// (1, [0 in S], ..., [n-1 in S]) and the matching A^T b with
  /// b = log sigma_obs. Column/row u is structurally zero (u is never in
  /// its own prefix).
  std::span<const double> normal_matrix(model::Service_id u) const;
  std::span<const double> normal_rhs(model::Service_id u) const;

  const Cost_stats& cost_stats(model::Service_id u) const;

  /// Total record_run calls folded in (including merged logs).
  std::uint64_t runs() const noexcept { return runs_; }

 private:
  std::size_t n_;
  std::size_t stride_;  ///< n_ + 1 regressors (intercept first)
  /// Per service: Gram matrix (stride_^2, row-major) and RHS (stride_).
  std::vector<double> gram_;
  std::vector<double> rhs_;
  std::vector<std::uint64_t> stage_samples_;
  /// Row-major n_ x n_ co-occurrence counts; [u][w] = samples of u with
  /// w placed before it.
  std::vector<std::uint64_t> pair_samples_;
  std::vector<Cost_stats> cost_;
  std::uint64_t runs_ = 0;
};

}  // namespace quest::adapt
