#include "quest/adapt/model_fitter.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "quest/common/error.hpp"

namespace quest::adapt {

using model::Service_id;

namespace {

/// Solves the dense symmetric positive-definite system `a x = b` in
/// place (Gaussian elimination with partial pivoting; `a` is row-major
/// k x k). The ridge on the diagonal keeps the gated systems regular.
std::vector<double> solve_dense(std::vector<double> a, std::vector<double> b,
                                std::size_t k) {
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < k; ++row) {
      if (std::fabs(a[row * k + col]) > std::fabs(a[pivot * k + col])) {
        pivot = row;
      }
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < k; ++j) {
        std::swap(a[col * k + j], a[pivot * k + j]);
      }
      std::swap(b[col], b[pivot]);
    }
    const double diag = a[col * k + col];
    QUEST_ASSERT(diag != 0.0, "ridge-regularized system became singular");
    for (std::size_t row = col + 1; row < k; ++row) {
      const double factor = a[row * k + col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < k; ++j) {
        a[row * k + j] -= factor * a[col * k + j];
      }
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(k, 0.0);
  for (std::size_t row = k; row-- > 0;) {
    double acc = b[row];
    for (std::size_t j = row + 1; j < k; ++j) {
      acc -= a[row * k + j] * x[j];
    }
    x[row] = acc / a[row * k + row];
  }
  return x;
}

constexpr double k_z_p95 = 1.6448536269514722;
constexpr double k_z_p99 = 2.3263478740408408;

}  // namespace

Model_fitter::Model_fitter(Fit_options options) : options_(options) {
  QUEST_EXPECTS(options_.ridge > 0.0, "fitter ridge must be positive");
  QUEST_EXPECTS(options_.falsify_log_threshold > 0.0,
                "falsification threshold must be positive");
  QUEST_EXPECTS(options_.clamp_lo > 0.0 &&
                    options_.clamp_hi >= options_.clamp_lo,
                "fitter clamps must satisfy 0 < lo <= hi");
  QUEST_EXPECTS(options_.max_cost_sigma > 0.0,
                "max cost sigma must be positive");
}

Fit_report Model_fitter::fit(const Observation_log& log) const {
  const std::size_t n = log.size();
  const std::size_t stride = n + 1;

  Fit_report report;
  report.size = n;
  report.runs = log.runs();
  report.marginal.assign(n, 0.0);
  report.marginal_sampled.assign(n, 0);
  report.gamma.assign(n * n, 1.0);
  report.pair_sampled.assign(n * n, 0);
  report.cost_mean.assign(n, 0.0);
  report.cost_tail_sigma.assign(n, 0.0);

  // Directed estimates: log_gamma_dir[u * n + w] is log gamma(w, u) from
  // u's regression, meaningful only where dir_sampled.
  std::vector<double> log_gamma_dir(n * n, 0.0);
  std::vector<std::uint8_t> dir_sampled(n * n, 0);

  for (Service_id u = 0; u < n; ++u) {
    const std::uint64_t samples = log.stage_samples(u);
    if (samples == 0) continue;

    // Gate the columns: regressor w is identifiable for u only when u
    // was seen both with and without w enough times.
    std::vector<std::size_t> columns;  // indices into the full regressors
    columns.push_back(0);              // intercept
    for (Service_id w = 0; w < n; ++w) {
      if (w == u) continue;
      const std::uint64_t with = log.pair_samples(u, w);
      if (with >= options_.min_pair_samples &&
          samples - with >= options_.min_pair_samples) {
        columns.push_back(1 + w);
      }
    }

    const std::size_t k = columns.size();
    const auto gram = log.normal_matrix(u);
    const auto rhs = log.normal_rhs(u);
    std::vector<double> a(k * k);
    std::vector<double> b(k);
    for (std::size_t i = 0; i < k; ++i) {
      b[i] = rhs[columns[i]];
      for (std::size_t j = 0; j < k; ++j) {
        a[i * k + j] = gram[columns[i] * stride + columns[j]];
      }
      a[i * k + i] += options_.ridge;
    }
    const std::vector<double> x = solve_dense(std::move(a), std::move(b), k);

    if (samples >= options_.min_marginal_samples) {
      report.marginal[u] = std::exp(x[0]);
      report.marginal_sampled[u] = 1;
    }
    for (std::size_t i = 1; i < k; ++i) {
      const Service_id w = static_cast<Service_id>(columns[i] - 1);
      log_gamma_dir[u * n + w] = x[i];
      dir_sampled[u * n + w] = 1;
    }
  }

  // Symmetrize in log space (the model's gamma is symmetric), clamp, and
  // test the falsification threshold on the well-sampled pairs.
  for (Service_id u = 0; u < n; ++u) {
    for (Service_id w = u + 1; w < n; ++w) {
      const bool uw = dir_sampled[u * n + w] != 0;
      const bool wu = dir_sampled[w * n + u] != 0;
      if (!uw && !wu) continue;
      double log_gamma;
      if (uw && wu) {
        log_gamma =
            0.5 * (log_gamma_dir[u * n + w] + log_gamma_dir[w * n + u]);
      } else {
        log_gamma = uw ? log_gamma_dir[u * n + w] : log_gamma_dir[w * n + u];
      }
      report.max_abs_log_gamma =
          std::max(report.max_abs_log_gamma, std::fabs(log_gamma));
      if (std::fabs(log_gamma) > options_.falsify_log_threshold) {
        report.independent_falsified = true;
      }
      const double gamma = std::clamp(std::exp(log_gamma),
                                      options_.clamp_lo, options_.clamp_hi);
      report.gamma[u * n + w] = gamma;
      report.gamma[w * n + u] = gamma;
      report.pair_sampled[u * n + w] = 1;
      report.pair_sampled[w * n + u] = 1;
    }
  }

  // Cost tails: lognormal method of moments per service.
  for (Service_id u = 0; u < n; ++u) {
    const Cost_stats& stats = log.cost_stats(u);
    report.cost_mean[u] = stats.mean();
    if (stats.count < 2 || stats.mean() <= 0.0) continue;
    const double ratio = stats.variance() / (stats.mean() * stats.mean());
    double sigma = std::sqrt(std::log1p(ratio));
    if (sigma > options_.max_cost_sigma) {
      sigma = options_.max_cost_sigma;
      report.cost_sigma_capped = true;
    }
    report.cost_tail_sigma[u] = sigma;
  }

  return report;
}

model::Cost_model_spec Model_fitter::to_spec(const Fit_report& report,
                                             model::Send_policy policy,
                                             model::Objective objective) const {
  const std::size_t n = report.size;
  QUEST_EXPECTS(n >= 1, "to_spec needs a non-empty fit report");

  model::Cost_model_spec spec;
  spec.policy = policy;
  if (report.independent_falsified) {
    spec.structure = model::Selectivity_structure::correlated;
    spec.clamp_lo = options_.clamp_lo;
    spec.clamp_hi = options_.clamp_hi;
    spec.matrix.reserve(n * (n - 1) / 2);
    for (Service_id u = 0; u < n; ++u) {
      for (Service_id w = u + 1; w < n; ++w) {
        spec.matrix.push_back(report.gamma_at(u, w));
      }
    }
  } else {
    spec.structure = model::Selectivity_structure::independent;
  }

  spec.objective = objective;
  if (objective != model::Objective::mean) {
    const double z =
        objective == model::Objective::p95 ? k_z_p95 : k_z_p99;
    spec.cost_scale.reserve(n);
    for (Service_id u = 0; u < n; ++u) {
      const double s = report.cost_tail_sigma[u];
      // Mean-relative lognormal quantile multiplier, floored at 1 so the
      // quantile objective never undercuts the mean bound.
      spec.cost_scale.push_back(
          std::max(1.0, std::exp(s * z - 0.5 * s * s)));
    }
  }
  return spec;
}

}  // namespace quest::adapt
