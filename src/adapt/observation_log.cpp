#include "quest/adapt/observation_log.hpp"

#include <cmath>

#include "quest/common/error.hpp"

namespace quest::adapt {

using model::Plan;
using model::Service_id;

double Cost_stats::variance() const noexcept {
  if (count < 2) return 0.0;
  const double m = mean();
  const double v = sq_sum / static_cast<double>(count) - m * m;
  return v > 0.0 ? v : 0.0;
}

Observation_log::Observation_log(std::size_t service_count)
    : n_(service_count), stride_(service_count + 1) {
  QUEST_EXPECTS(service_count >= 1,
                "an observation log needs at least one service");
  gram_.assign(n_ * stride_ * stride_, 0.0);
  rhs_.assign(n_ * stride_, 0.0);
  stage_samples_.assign(n_, 0);
  pair_samples_.assign(n_ * n_, 0);
  cost_.assign(n_, Cost_stats{});
}

void Observation_log::record_run(const Plan& plan,
                                 std::span<const std::uint64_t> tuples_in,
                                 std::span<const std::uint64_t> tuples_out) {
  QUEST_EXPECTS(plan.size() <= n_ && tuples_in.size() == plan.size() &&
                    tuples_out.size() == plan.size(),
                "record_run: per-stage counts must match the plan length");
  ++runs_;
  // Regressor scratch: (1, [w placed]); rebuilt incrementally as the
  // prefix grows position by position.
  std::vector<double> x(stride_, 0.0);
  x[0] = 1.0;
  for (std::size_t p = 0; p < plan.size(); ++p) {
    const Service_id u = plan[p];
    QUEST_EXPECTS(u < n_, "record_run: service id out of range");
    QUEST_EXPECTS(x[1 + u] == 0.0, "record_run: plan repeats a service");
    if (tuples_in[p] > 0 && tuples_out[p] > 0) {
      const double y = std::log(static_cast<double>(tuples_out[p]) /
                                static_cast<double>(tuples_in[p]));
      double* gram = gram_.data() + u * stride_ * stride_;
      double* rhs = rhs_.data() + u * stride_;
      for (std::size_t i = 0; i < stride_; ++i) {
        if (x[i] == 0.0) continue;
        rhs[i] += y;
        for (std::size_t j = 0; j < stride_; ++j) {
          if (x[j] != 0.0) gram[i * stride_ + j] += 1.0;
        }
      }
      ++stage_samples_[u];
      for (std::size_t q = 0; q < p; ++q) {
        ++pair_samples_[u * n_ + plan[q]];
      }
    }
    x[1 + u] = 1.0;
  }
}

void Observation_log::record_cost(Service_id u, std::uint64_t count,
                                  double sum, double sq_sum) {
  QUEST_EXPECTS(u < n_, "record_cost: service id out of range");
  QUEST_EXPECTS(std::isfinite(sum) && std::isfinite(sq_sum) &&
                    sum >= 0.0 && sq_sum >= 0.0,
                "record_cost: moments must be finite and non-negative");
  cost_[u].count += count;
  cost_[u].sum += sum;
  cost_[u].sq_sum += sq_sum;
}

void Observation_log::merge(const Observation_log& other) {
  QUEST_EXPECTS(other.n_ == n_,
                "merge: logs cover different service counts");
  for (std::size_t i = 0; i < gram_.size(); ++i) gram_[i] += other.gram_[i];
  for (std::size_t i = 0; i < rhs_.size(); ++i) rhs_[i] += other.rhs_[i];
  for (std::size_t i = 0; i < n_; ++i) {
    stage_samples_[i] += other.stage_samples_[i];
    cost_[i].count += other.cost_[i].count;
    cost_[i].sum += other.cost_[i].sum;
    cost_[i].sq_sum += other.cost_[i].sq_sum;
  }
  for (std::size_t i = 0; i < pair_samples_.size(); ++i) {
    pair_samples_[i] += other.pair_samples_[i];
  }
  runs_ += other.runs_;
}

std::uint64_t Observation_log::stage_samples(Service_id u) const {
  QUEST_EXPECTS(u < n_, "stage_samples: service id out of range");
  return stage_samples_[u];
}

std::uint64_t Observation_log::pair_samples(Service_id u,
                                            Service_id w) const {
  QUEST_EXPECTS(u < n_ && w < n_,
                "pair_samples: service id out of range");
  return pair_samples_[u * n_ + w];
}

std::span<const double> Observation_log::normal_matrix(Service_id u) const {
  QUEST_EXPECTS(u < n_, "normal_matrix: service id out of range");
  return {gram_.data() + u * stride_ * stride_, stride_ * stride_};
}

std::span<const double> Observation_log::normal_rhs(Service_id u) const {
  QUEST_EXPECTS(u < n_, "normal_rhs: service id out of range");
  return {rhs_.data() + u * stride_, stride_};
}

const Cost_stats& Observation_log::cost_stats(Service_id u) const {
  QUEST_EXPECTS(u < n_, "cost_stats: service id out of range");
  return cost_[u];
}

}  // namespace quest::adapt
