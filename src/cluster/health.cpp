#include "quest/cluster/health.hpp"

#include <unistd.h>

#include <algorithm>
#include <utility>

#include "quest/store/router.hpp"

namespace quest::cluster {

Health_monitor::Health_monitor(Health_options options,
                               std::function<void(std::size_t)> shard_up,
                               std::function<void(std::size_t)> shard_down)
    : options_(std::move(options)),
      shard_up_(std::move(shard_up)),
      shard_down_(std::move(shard_down)),
      shards_(options_.backends.size()) {
  const auto now = Clock::now();
  for (auto& shard : shards_) shard.next_probe = now;
}

Health_monitor::~Health_monitor() { stop(); }

void Health_monitor::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  running_ = true;
  stopping_ = false;
  prober_ = std::thread([this] { probe_loop(); });
}

void Health_monitor::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stopping_ = true;
  }
  wake_.notify_all();
  if (prober_.joinable()) prober_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

void Health_monitor::mark_dead(std::size_t shard) {
  bool transition = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shard >= shards_.size()) return;
    Shard_state& state = shards_[shard];
    if (state.alive) {
      state.alive = false;
      state.failures = 1;
      transition = true;
    }
    state.next_probe = Clock::now() + backoff(state.failures);
  }
  wake_.notify_all();
  if (transition && shard_down_) shard_down_(shard);
}

bool Health_monitor::alive(std::size_t shard) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shard < shards_.size() && shards_[shard].alive;
}

std::size_t Health_monitor::live_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t live = 0;
  for (const auto& shard : shards_) live += shard.alive ? 1 : 0;
  return live;
}

std::size_t Health_monitor::degraded_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t dead = 0;
  for (const auto& shard : shards_) dead += shard.alive ? 0 : 1;
  return dead;
}

std::chrono::milliseconds Health_monitor::backoff(
    std::size_t failures) const {
  auto interval = options_.probe_interval;
  // interval * 2^(failures-1), saturating at max_backoff.
  for (std::size_t i = 1; i < failures; ++i) {
    interval *= 2;
    if (interval >= options_.max_backoff) return options_.max_backoff;
  }
  return std::min(interval, options_.max_backoff);
}

void Health_monitor::probe_loop() {
  for (;;) {
    std::vector<std::size_t> due;
    Clock::time_point next_due;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      const auto now = Clock::now();
      next_due = now + options_.max_backoff;
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (shards_[i].next_probe <= now) {
          due.push_back(i);
        } else {
          next_due = std::min(next_due, shards_[i].next_probe);
        }
      }
      if (due.empty()) {
        wake_.wait_until(lock, next_due, [this] { return stopping_; });
        if (stopping_) return;
        continue;
      }
      if (stopping_) return;
    }

    for (std::size_t shard : due) {
      // Dial outside the lock — a probe against a black-holed address can
      // block, and mark_dead/alive must not wait behind it.
      const int fd = store::dial_backend(options_.backends[shard]);
      const bool reachable = fd >= 0;
      if (reachable) ::close(fd);

      bool went_up = false;
      bool went_down = false;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) return;
        if (shard >= shards_.size()) continue;
        Shard_state& state = shards_[shard];
        if (reachable) {
          went_up = !state.alive;
          state.alive = true;
          state.failures = 0;
          state.next_probe = Clock::now() + options_.probe_interval;
        } else {
          went_down = state.alive;
          state.alive = false;
          ++state.failures;
          state.next_probe = Clock::now() + backoff(state.failures);
        }
      }
      if (went_up && shard_up_) shard_up_(shard);
      if (went_down && shard_down_) shard_down_(shard);
    }
  }
}

}  // namespace quest::cluster
