// quest/cluster/health.hpp
//
// Active fleet health: a single probe thread that keeps a live/dead
// verdict per backend shard, replacing the legacy router's lazy
// "discover death on the next forward" reconnects. Live shards are
// probed at a fixed cadence (a TCP dial that is immediately closed —
// the cheapest question the transport layer can answer); dead shards
// are re-probed with exponential backoff (interval * 2^failures, capped)
// so a long-dead backend costs a bounded trickle of SYNs, not a busy
// loop.
//
// The monitor is the *authority* on shard liveness but not the only
// informant: the replica router calls mark_dead() the instant a forward
// hits a dead socket, so routing decisions never wait a probe period to
// learn what a failed write already proved. Transitions fire callbacks
// (on the probe thread for probe-driven ones, on the caller's thread for
// mark_dead) — the router uses dead->live to trigger journal-replay
// repair of the rejoining backend.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace quest::cluster {

/// Configuration of a Health_monitor.
struct Health_options {
  /// Backend addresses, "host:port"; index = shard id.
  std::vector<std::string> backends;
  /// Cadence for probing live shards and base interval for dead ones.
  std::chrono::milliseconds probe_interval{500};
  /// Cap on the dead-shard backoff (interval * 2^failures, clamped here).
  std::chrono::milliseconds max_backoff{8000};
};

/// Probe-thread shard liveness with exponential backoff on the dead.
/// All public methods are thread-safe.
class Health_monitor {
 public:
  /// `shard_up` / `shard_down` fire on every transition (never while the
  /// monitor's lock is held, so they may call back into the monitor).
  /// Either may be empty. Shards start *live* — the fleet is assumed
  /// healthy until a probe or a send failure proves otherwise, matching
  /// the legacy router's optimism.
  Health_monitor(Health_options options,
                 std::function<void(std::size_t)> shard_up,
                 std::function<void(std::size_t)> shard_down);
  ~Health_monitor();

  Health_monitor(const Health_monitor&) = delete;
  Health_monitor& operator=(const Health_monitor&) = delete;

  /// Starts the probe thread. Idempotent.
  void start();
  /// Stops and joins the probe thread. Idempotent; also run by ~.
  void stop();

  /// Reports a shard dead *now* (a forward hit a closed socket). Fires
  /// shard_down on the calling thread if this is a transition, and
  /// schedules the first re-probe one base interval out.
  void mark_dead(std::size_t shard);

  bool alive(std::size_t shard) const;
  std::size_t live_count() const;
  /// Shards currently dead — the "shards_degraded" stats gauge.
  std::size_t degraded_count() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Shard_state {
    bool alive = true;
    std::size_t failures = 0;
    Clock::time_point next_probe{};
  };

  void probe_loop();
  std::chrono::milliseconds backoff(std::size_t failures) const;

  Health_options options_;
  std::function<void(std::size_t)> shard_up_;
  std::function<void(std::size_t)> shard_down_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<Shard_state> shards_;
  bool running_ = false;
  bool stopping_ = false;
  std::thread prober_;
};

}  // namespace quest::cluster
