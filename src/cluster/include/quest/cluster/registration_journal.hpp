// quest/cluster/registration_journal.hpp
//
// The replica router's repair source of truth: a bounded JSONL journal of
// every register payload that passed through the router, keyed by the
// instance's content fingerprint. When a backend rejoins the fleet after
// a crash (or a fresh backend is added), the router heals it by replaying
// the journaled register lines it should own — and when a failover
// target answers a routed optimize with the typed "unknown-instance"
// error, the same journal entry repairs that backend on the spot.
//
// File shape (the store layer's shared JSONL discipline,
// quest/store/jsonl.hpp — same header convention, same per-record
// byte-wise FNV-1a "crc", same atomic .tmp + rename replacement):
//
//   {"quest_journal":true,"format_version":1,"crc":"<hex16>"}
//   {"type":"register","fingerprint":"<hex16>","name":...,
//    "line":"<raw wire-protocol register op>","crc":"<hex16>"}
//
// The journal is *bounded*: it holds at most one live record per
// fingerprint in memory, and once the on-disk file accumulates more than
// max_records appended lines (re-registrations append; the dead versions
// pile up) it is compacted — rewritten with only the live records, via
// the atomic rename, so a crash mid-compaction leaves the previous
// journal intact.
//
// Trust model on load mirrors the snapshot's: an unauthenticated local
// file is refused record by record — bad header refuses the whole file;
// a record whose crc, fields, or embedded register line fail to verify
// (the line must re-parse as a register op whose instance re-fingerprints
// to the stored fingerprint under *this* build) is refused and counted,
// never replayed. Replaying a mis-keyed registration would silently
// route repairs to the wrong shard, so refusal is the only safe answer.

#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace quest::cluster {

/// On-disk format generation; a loader refuses other generations
/// wholesale, exactly like the snapshot loader.
inline constexpr int k_journal_format_version = 1;

/// Configuration of a Registration_journal.
struct Journal_options {
  /// Journal file path; empty runs the journal purely in memory (repair
  /// still works for the router's own lifetime, nothing survives it).
  std::string path;
  /// Appended on-disk records beyond which the file is compacted down to
  /// the live set. Also caps the *live* set: a record() call beyond this
  /// many distinct fingerprints evicts the oldest entry (the journal is
  /// a bounded repair buffer, not an unbounded database).
  std::size_t max_records = 4096;
};

/// What loading an existing journal file restored (and refused).
struct Journal_load_report {
  bool file_found = false;
  bool header_ok = false;
  std::size_t entries_loaded = 0;
  std::size_t stale_refused = 0;
};

/// One replayable registration.
struct Journal_entry {
  std::uint64_t fingerprint = 0;
  std::string name;
  /// The raw wire-protocol register line, replayed to a backend verbatim.
  std::string line;
};

/// Bounded, checksummed, atomically-compacted registration journal.
/// Thread-safe: the router records on its transport loop thread and
/// replays from reader and health-probe threads.
class Registration_journal {
 public:
  /// Loads `options.path` when it exists (per-record refusal, see the
  /// file comment); a missing or empty path is a cold start, not an
  /// error. Never throws on bad file contents.
  explicit Registration_journal(Journal_options options);

  /// Records (or replaces) the registration for `fingerprint`. `line` is
  /// the raw register op exactly as the client sent it. File-backed
  /// journals append a sealed record (and compact past the bound); I/O
  /// failures are counted, not thrown — the in-memory entry always
  /// lands, so in-process repair keeps working even on a full disk.
  void record(std::uint64_t fingerprint, std::string name, std::string line);

  /// The raw register line for `fingerprint`; empty when unknown.
  std::string line_for(std::uint64_t fingerprint) const;

  /// Every live entry, oldest first — the replay order for healing a
  /// rejoining backend.
  std::vector<Journal_entry> entries() const;

  /// Live (fingerprint-distinct) entries.
  std::size_t size() const;

  /// Appends + compactions that failed at the filesystem.
  std::size_t io_failures() const;

  /// What the constructor's load pass found.
  const Journal_load_report& load_report() const { return load_report_; }

 private:
  void append_locked(const Journal_entry& entry);
  void compact_locked();
  std::string render_locked() const;

  mutable std::mutex mutex_;
  Journal_options options_;
  Journal_load_report load_report_;
  /// Insertion-ordered live fingerprints (replay order).
  std::vector<std::uint64_t> order_;
  std::unordered_map<std::uint64_t, Journal_entry> entries_;
  /// Data records currently appended to the file (live + superseded).
  std::size_t disk_records_ = 0;
  std::size_t io_failures_ = 0;
};

}  // namespace quest::cluster
