// quest/cluster/replica_router.hpp
//
// The self-healing front of a replicated quest_serve fleet. Like
// store::Router it speaks the ordinary wire protocol to clients and
// forwards raw lines to backends by consistent-hashed fingerprint — but
// where the plain router binds each key to exactly one shard and sheds
// when that shard dies, the replica router binds each key to the first R
// distinct shards on the ring (Shard_map::replicas) and keeps serving
// through the loss of any R-1 of them:
//
//  * register / observe / refit — *fan out*: the first live owner is the
//    client-visible forward (its events stream back verbatim); the other
//    owners get the same line best-effort over router-owned replication
//    links whose events are swallowed. A secondary that cannot be
//    reached bumps the "replica_lag" counter instead of failing the op.
//    Registers are additionally recorded in the Registration_journal —
//    the repair source of truth.
//  * optimize / cancel — go to the first live owner; on a dead
//    connection (at admission or mid-flight) or a backend "overloaded"
//    shed, the router re-sends the saved raw line to the next live
//    owner and counts a "replica_failovers". Request ids are never
//    rewritten, so clients cannot tell a failover happened (beyond a
//    possible duplicate "admitted" — delivery is at-least-once across a
//    failover, never at-most-once).
//  * repair — a backend answering a routed optimize with the typed
//    "unknown-instance" error is missing state it owns; the router
//    replays the journaled register on that same connection, swallows
//    the ack, re-sends the optimize, and counts a "repairs". A backend
//    rejoining after death (Health_monitor dead->live) is healed the
//    same way: every journaled registration it owns is replayed ahead
//    of traffic.
//  * stats — the plain router's merge, grown with "replicas",
//    "shards_degraded", "replica_failovers", "repairs", "replica_lag".
//    (Emitted only by this router — the R=1 path keeps the legacy stats
//    event byte-stable.)
//
// Liveness comes from an active Health_monitor (probe thread with
// exponential backoff), not lazy reconnects: routing never dials a shard
// the prober says is dead, and a send failure reports the death
// immediately via mark_dead.
//
// Threading: client bytes arrive on the transport loop thread; each
// backend connection has a reader thread; the health prober calls in on
// transitions. One router-wide mutex guards all shared state. Reader
// threads are never joined while it is held — dead links are parked on a
// zombie list and reaped from the loop thread.

#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "quest/cluster/health.hpp"
#include "quest/cluster/registration_journal.hpp"
#include "quest/io/json.hpp"
#include "quest/serve/transport.hpp"
#include "quest/store/shard_map.hpp"

namespace quest::cluster {

/// Configuration of a Replica_router.
struct Replica_options {
  /// Backend addresses, "host:port", one per shard; index = shard id.
  std::vector<std::string> backends;
  /// Replication factor R: every key lives on this many distinct shards.
  /// Must satisfy 1 <= replicas <= backends.size(). (R=1 is legal but
  /// the plain store::Router is the byte-stable way to run it.)
  std::size_t replicas = 2;
  /// Consistent-hash ring points per shard (Shard_map).
  std::size_t ring_points = 64;
  /// Inbound line cap, mirroring the session layer's overflow handling.
  std::size_t max_line_bytes = 1 << 20;
  /// Registration journal backing file; empty = in-memory only.
  Journal_options journal;
  /// Health probe cadence / dead-shard backoff cap.
  std::chrono::milliseconds probe_interval{500};
  std::chrono::milliseconds max_backoff{8000};
};

/// The replicated sharding proxy. Construct with a listening transport,
/// then serve(); returns true when a client shutdown op ended the run.
class Replica_router {
 public:
  Replica_router(Replica_options options, serve::Transport& transport);
  ~Replica_router();

  Replica_router(const Replica_router&) = delete;
  Replica_router& operator=(const Replica_router&) = delete;

  /// Runs the transport loop until stop()/shutdown. Call once.
  bool serve();

  /// Counters, exposed for tests.
  std::uint64_t replica_failovers() const {
    return replica_failovers_.load(std::memory_order_relaxed);
  }
  std::uint64_t repairs() const {
    return repairs_.load(std::memory_order_relaxed);
  }
  std::uint64_t replica_lag() const {
    return replica_lag_.load(std::memory_order_relaxed);
  }

 private:
  struct Client;

  /// One connection to one backend shard. Client links (client != null)
  /// forward backend events to their client; replication feeds
  /// (client == null) swallow everything they read.
  struct Link {
    std::size_t shard = 0;
    int fd = -1;
    std::shared_ptr<Client> client;
    std::thread reader;
    std::atomic<bool> down{false};
    /// Intentional teardown (shutdown/close): the reader's exit must not
    /// mark the shard dead — the backend did nothing wrong.
    std::atomic<bool> retired{false};
    /// Guarded by mutex_: owes a stats event to the merge in flight.
    bool merge_member = false;
    /// Guarded by mutex_: fingerprints whose journal register was
    /// replayed on this link and whose "registered" ack must be
    /// swallowed; the value holds raw op lines to re-send once it is.
    std::unordered_map<std::uint64_t, std::vector<std::string>> repairs;
  };

  /// Everything the router remembers about one routed request id.
  struct Route {
    std::uint64_t fingerprint = 0;
    /// The R owners of the fingerprint, preference order.
    std::vector<std::size_t> owners;
    /// Which owner currently holds the request.
    std::size_t owner_index = 0;
    /// Failovers taken so far; capped at owners.size() to stop a
    /// flapping fleet from bouncing one request forever.
    std::size_t hops = 0;
    /// The raw op line, for replay on failover.
    std::string line;
  };

  /// One front-side client connection and everything routed for it.
  struct Client {
    serve::Connection_id id = 0;
    std::string inbuf;
    bool discarding = false;
    /// Indexed by shard; null until first use. Guarded by mutex_.
    std::vector<std::shared_ptr<Link>> links;
    /// Request id -> route. Guarded by mutex_.
    std::unordered_map<std::string, Route> routes;
    /// Stats merge in flight. Guarded by mutex_.
    std::size_t merge_pending = 0;
    std::vector<io::Json> merge_events;
    /// Shutdown forwarded: readers fold per-backend shutdown events
    /// into these instead of forwarding. Guarded by mutex_.
    bool closing = false;
    double shutdown_outstanding = 0;
    double shutdown_completed = 0;
  };

  void on_open(serve::Connection_id id);
  void on_data(serve::Connection_id id, std::string_view chunk);
  void on_close(serve::Connection_id id);

  bool handle_line(const std::shared_ptr<Client>& client,
                   std::string_view line);
  void handle_register(const std::shared_ptr<Client>& client,
                       const io::Json& doc, std::string_view line);
  void route_optimize(const std::shared_ptr<Client>& client,
                      const io::Json& doc, const std::string& id,
                      std::string_view line);
  void handle_cancel(const std::shared_ptr<Client>& client,
                     const std::string& id, std::string_view line);
  /// register/observe/refit share the fan-out shape; this does the
  /// primary-ack + best-effort-secondaries part.
  void fan_out(const std::shared_ptr<Client>& client,
               const std::vector<std::size_t>& owners, std::string_view line,
               const std::string& id);
  void handle_stats(const std::shared_ptr<Client>& client,
                    std::string_view line);
  bool handle_shutdown(const std::shared_ptr<Client>& client,
                       std::string_view line);

  /// Resolves the "instance" field (registered name or inline document)
  /// to a fingerprint; false when resolution failed (an error event has
  /// been sent).
  bool resolve_instance(const std::shared_ptr<Client>& client,
                        const io::Json& doc, const std::string& id,
                        std::uint64_t& print);

  /// Live client link to `shard`; dials if needed (never for a shard the
  /// health monitor calls dead). Caller holds mutex_.
  std::shared_ptr<Link> link_locked(const std::shared_ptr<Client>& client,
                                    std::size_t shard);
  /// Sends `line` to `shard` over the client's link; marks the shard
  /// dead on failure. Caller holds mutex_.
  bool send_locked(const std::shared_ptr<Client>& client, std::size_t shard,
                   std::string_view line);
  /// Sends over the shard's replication feed; false bumps nothing —
  /// callers decide whether a miss is lag or a repair to retry. Caller
  /// holds mutex_.
  bool feed_send_locked(std::size_t shard, std::string_view line);

  /// Moves the route to its next live owner and re-sends its line; false
  /// when no owner is left (caller sheds). Caller holds mutex_;
  /// `avoiding` is the shard that just failed.
  bool failover_locked(const std::shared_ptr<Client>& client, Route& route,
                       std::size_t avoiding);

  void shed(const std::shared_ptr<Client>& client, const std::string& id,
            std::size_t shard);

  void reader_loop(std::shared_ptr<Link> link);
  void handle_backend_line(const std::shared_ptr<Link>& link,
                           std::string_view line);
  /// True when the line was an intercepted error (failover / repair /
  /// swallowed repair ack) that must not reach the client.
  bool intercept_event(const std::shared_ptr<Link>& link,
                       std::string_view line);
  void link_down(const std::shared_ptr<Link>& link);
  void finish_merge_locked(Client& client);

  /// Health transition: a shard came back — replay its share of the
  /// journal over its replication feed. Runs on the probe thread.
  void heal_shard(std::size_t shard);

  /// Parks a dead link for the loop thread to join. Caller holds mutex_.
  void park_locked(std::shared_ptr<Link> link);
  /// Joins and closes parked links. Loop thread (or destructor) only,
  /// mutex_ NOT held.
  void reap_zombies();
  void teardown_all();

  Replica_options options_;
  serve::Transport& transport_;
  store::Shard_map map_;
  Registration_journal journal_;
  Health_monitor health_;

  std::mutex mutex_;
  std::unordered_map<serve::Connection_id, std::shared_ptr<Client>> clients_;
  /// Registered name -> fingerprint (same restart semantics as the
  /// plain router: clients re-register, backends dedupe by fingerprint).
  std::unordered_map<std::string, std::uint64_t> names_;
  /// Per-shard replication feeds (event-swallowing links).
  std::vector<std::shared_ptr<Link>> feeds_;
  /// Dead links awaiting join.
  std::vector<std::shared_ptr<Link>> zombies_;
  bool shutdown_requested_ = false;

  std::atomic<std::uint64_t> replica_failovers_{0};
  std::atomic<std::uint64_t> repairs_{0};
  std::atomic<std::uint64_t> replica_lag_{0};
};

}  // namespace quest::cluster
