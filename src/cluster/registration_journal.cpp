#include "quest/cluster/registration_journal.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <variant>

#include "quest/common/error.hpp"
#include "quest/io/fingerprint.hpp"
#include "quest/io/json.hpp"
#include "quest/serve/protocol.hpp"
#include "quest/store/jsonl.hpp"

namespace quest::cluster {
namespace {

io::Json header_record() {
  io::Json header;
  header.set("quest_journal", true);
  header.set("format_version", k_journal_format_version);
  return header;
}

/// The deep check on a loaded record: its "line" must re-parse as a
/// register op whose document re-fingerprints (under this build's
/// hashing) to the record's "fingerprint". False on any mismatch.
bool verified_entry(const io::Json& record, Journal_entry& entry) {
  const io::Json* fp = record.find("fingerprint");
  const io::Json* name = record.find("name");
  const io::Json* line = record.find("line");
  const io::Json* type = record.find("type");
  if (fp == nullptr || name == nullptr || line == nullptr ||
      type == nullptr || !fp->is_string() || !name->is_string() ||
      !line->is_string() || !type->is_string() ||
      type->as_string() != "register") {
    return false;
  }
  std::uint64_t fingerprint = 0;
  if (!store::parse_hex64(fp->as_string(), fingerprint)) return false;
  try {
    serve::Op op = serve::parse_op(line->as_string());
    const auto* reg = std::get_if<serve::Register_op>(&op);
    if (reg == nullptr) return false;
    const auto& doc = reg->document;
    const constraints::Precedence_graph* precedence =
        doc.precedence ? &*doc.precedence : nullptr;
    if (io::fingerprint(doc.instance, precedence) != fingerprint) {
      return false;
    }
  } catch (const Error&) {
    return false;
  }
  entry.fingerprint = fingerprint;
  entry.name = name->as_string();
  entry.line = line->as_string();
  return true;
}

io::Json entry_record(const Journal_entry& entry) {
  io::Json record;
  record.set("type", "register");
  record.set("fingerprint", io::hex64(entry.fingerprint));
  record.set("name", entry.name);
  record.set("line", entry.line);
  return record;
}

}  // namespace

Registration_journal::Registration_journal(Journal_options options)
    : options_(std::move(options)) {
  if (options_.max_records == 0) options_.max_records = 1;
  if (options_.path.empty()) return;

  std::ifstream in(options_.path);
  if (!in.is_open()) return;
  load_report_.file_found = true;

  std::string line;
  if (!std::getline(in, line)) return;
  io::Json header;
  if (!store::checked_record(line, header)) return;
  const io::Json* magic = header.find("quest_journal");
  const io::Json* version = header.find("format_version");
  if (magic == nullptr || !magic->is_bool() || !magic->as_bool() ||
      version == nullptr || !version->is_number() ||
      version->as_number() != k_journal_format_version) {
    return;
  }
  load_report_.header_ok = true;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++disk_records_;
    io::Json record;
    Journal_entry entry;
    if (!store::checked_record(line, record) ||
        !verified_entry(record, entry)) {
      ++load_report_.stale_refused;
      continue;
    }
    // Later appends supersede earlier ones for the same fingerprint,
    // matching how record() replaces in memory.
    auto found = entries_.find(entry.fingerprint);
    if (found == entries_.end()) {
      order_.push_back(entry.fingerprint);
      ++load_report_.entries_loaded;
    }
    entries_[entry.fingerprint] = std::move(entry);
  }
}

void Registration_journal::record(std::uint64_t fingerprint,
                                  std::string name, std::string line) {
  std::lock_guard<std::mutex> lock(mutex_);
  Journal_entry entry{fingerprint, std::move(name), std::move(line)};
  auto found = entries_.find(fingerprint);
  if (found == entries_.end()) {
    if (order_.size() >= options_.max_records) {
      entries_.erase(order_.front());
      order_.erase(order_.begin());
    }
    order_.push_back(fingerprint);
  }
  entries_[fingerprint] = entry;
  append_locked(entry);
  if (disk_records_ > options_.max_records) compact_locked();
}

std::string Registration_journal::line_for(std::uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto found = entries_.find(fingerprint);
  return found == entries_.end() ? std::string() : found->second.line;
}

std::vector<Journal_entry> Registration_journal::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Journal_entry> out;
  out.reserve(order_.size());
  for (std::uint64_t fingerprint : order_) {
    out.push_back(entries_.at(fingerprint));
  }
  return out;
}

std::size_t Registration_journal::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return order_.size();
}

std::size_t Registration_journal::io_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return io_failures_;
}

void Registration_journal::append_locked(const Journal_entry& entry) {
  if (options_.path.empty()) return;
  if (disk_records_ == 0 && load_report_.entries_loaded == 0 &&
      !load_report_.header_ok) {
    // First record into a fresh (or refused) file: start it over with a
    // valid header rather than appending to an unparseable one.
    compact_locked();
    return;
  }
  std::ofstream out(options_.path, std::ios::app);
  if (!out.is_open()) {
    ++io_failures_;
    return;
  }
  out << store::sealed_line(entry_record(entry)) << '\n';
  out.flush();
  if (!out) {
    ++io_failures_;
    return;
  }
  ++disk_records_;
}

void Registration_journal::compact_locked() {
  if (options_.path.empty()) return;
  try {
    store::atomic_write_file(options_.path, render_locked());
    disk_records_ = order_.size();
    load_report_.header_ok = true;
  } catch (const Error&) {
    ++io_failures_;
  }
}

std::string Registration_journal::render_locked() const {
  std::ostringstream out;
  out << store::sealed_line(header_record()) << '\n';
  for (std::uint64_t fingerprint : order_) {
    out << store::sealed_line(entry_record(entries_.at(fingerprint))) << '\n';
  }
  return out.str();
}

}  // namespace quest::cluster
