#include "quest/cluster/replica_router.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <iterator>
#include <utility>

#include "quest/common/error.hpp"
#include "quest/io/fingerprint.hpp"
#include "quest/io/instance_io.hpp"
#include "quest/serve/protocol.hpp"
#include "quest/store/jsonl.hpp"
#include "quest/store/router.hpp"

namespace quest::cluster {

namespace {

bool starts_with(std::string_view line, std::string_view prefix) {
  return line.substr(0, prefix.size()) == prefix;
}

}  // namespace

Replica_router::Replica_router(Replica_options options,
                               serve::Transport& transport)
    : options_(std::move(options)),
      transport_(transport),
      map_(std::max<std::size_t>(options_.backends.size(), 1),
           options_.ring_points),
      journal_(options_.journal),
      health_(
          Health_options{options_.backends, options_.probe_interval,
                         options_.max_backoff},
          [this](std::size_t shard) { heal_shard(shard); },
          /*shard_down=*/nullptr),
      feeds_(options_.backends.size()) {
  QUEST_EXPECTS(!options_.backends.empty(),
                "replica router needs at least one backend");
  QUEST_EXPECTS(options_.replicas >= 1 &&
                    options_.replicas <= options_.backends.size(),
                "replication factor must satisfy 1 <= R <= backends");
  QUEST_EXPECTS(options_.max_line_bytes >= 2,
                "max_line_bytes must hold at least a tiny op");
  health_.start();
}

Replica_router::~Replica_router() {
  // Probe thread first, so no heal replay races the teardown; then every
  // link (client-facing and replication feeds) in the two-pass
  // shutdown-then-join order.
  health_.stop();
  teardown_all();
}

bool Replica_router::serve() {
  serve::Transport::Handlers handlers;
  handlers.on_open = [this](serve::Connection_id id) { on_open(id); };
  handlers.on_data = [this](serve::Connection_id id,
                            std::string_view chunk) { on_data(id, chunk); };
  handlers.on_close = [this](serve::Connection_id id) { on_close(id); };
  transport_.run(handlers);
  return shutdown_requested_;
}

void Replica_router::on_open(serve::Connection_id id) {
  auto client = std::make_shared<Client>();
  client->id = id;
  client->links.resize(options_.backends.size());
  clients_.emplace(id, std::move(client));
}

void Replica_router::on_data(serve::Connection_id id,
                             std::string_view chunk) {
  reap_zombies();
  const auto found = clients_.find(id);
  if (found == clients_.end()) return;
  const std::shared_ptr<Client> client = found->second;

  if (client->discarding) {
    const auto newline = chunk.find('\n');
    if (newline == std::string_view::npos) return;
    client->discarding = false;
    chunk.remove_prefix(newline + 1);
  }
  client->inbuf.append(chunk);

  std::size_t start = 0;
  for (;;) {
    const auto newline = client->inbuf.find('\n', start);
    if (newline == std::string::npos) break;
    const std::string_view line(client->inbuf.data() + start,
                                newline - start);
    start = newline + 1;
    if (line.size() > options_.max_line_bytes) {
      transport_.send(
          id, serve::error_event("request line exceeds " +
                                     std::to_string(options_.max_line_bytes) +
                                     " bytes and was discarded",
                                 {}, "line-overflow")
                  .dump());
      continue;
    }
    if (!handle_line(client, line)) return;
  }
  client->inbuf.erase(0, start);

  if (client->inbuf.size() > options_.max_line_bytes) {
    transport_.send(
        id, serve::error_event("request line exceeds " +
                                   std::to_string(options_.max_line_bytes) +
                                   " bytes and was discarded",
                               {}, "line-overflow")
                .dump());
    client->inbuf.clear();
    client->inbuf.shrink_to_fit();
    client->discarding = true;
  }
}

void Replica_router::on_close(serve::Connection_id id) {
  const auto found = clients_.find(id);
  if (found == clients_.end()) return;
  std::vector<std::shared_ptr<Link>> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& slot : found->second->links) {
      if (slot == nullptr) continue;
      slot->retired.store(true, std::memory_order_release);
      ::shutdown(slot->fd, SHUT_RDWR);
      doomed.push_back(std::move(slot));
    }
  }
  for (const auto& link : doomed) {
    if (link->reader.joinable()) link->reader.join();
    ::close(link->fd);
  }
  clients_.erase(found);
  reap_zombies();
}

bool Replica_router::handle_line(const std::shared_ptr<Client>& client,
                                 std::string_view line) {
  io::Json doc;
  std::string op;
  try {
    doc = io::Json::parse(line);
    op = doc.at("op").as_string();
  } catch (const std::exception& error) {
    transport_.send(client->id,
                    serve::error_event(error.what(), {}, "parse").dump());
    return true;
  }

  if (op == "register") {
    handle_register(client, doc, line);
    return true;
  }

  if (op == "optimize") {
    std::string id;
    if (const io::Json* field = doc.find("id");
        field != nullptr && field->is_string()) {
      id = field->as_string();
    }
    route_optimize(client, doc, id, line);
    return true;
  }

  if (op == "optimize_batch") {
    std::string id;
    if (const io::Json* field = doc.find("id");
        field != nullptr && field->is_string()) {
      id = field->as_string();
    }
    const io::Json* requests = doc.find("requests");
    if (requests == nullptr || !requests->is_array()) {
      transport_.send(
          client->id,
          serve::error_event("optimize_batch needs a \"requests\" array", id,
                             "parse")
              .dump());
      return true;
    }
    const auto& elements = requests->as_array();
    if (elements.size() > serve::k_max_batch_requests) {
      transport_.send(
          client->id,
          serve::error_event(
              "optimize_batch exceeds " +
                  std::to_string(serve::k_max_batch_requests) + " requests",
              id, "parse")
              .dump());
      return true;
    }
    transport_.send(client->id,
                    serve::batch_event(id, elements.size()).dump());
    for (std::size_t index = 0; index < elements.size(); ++index) {
      const io::Json& element = elements[index];
      if (!element.is_object()) {
        transport_.send(client->id,
                        serve::error_event("batch element " +
                                               std::to_string(index) +
                                               " is not an object",
                                           id, "parse")
                            .dump());
        continue;
      }
      std::string sub_id = id + "/" + std::to_string(index);
      if (const io::Json* field = element.find("id");
          field != nullptr && field->is_string()) {
        sub_id = field->as_string();
      }
      io::Json forward_op;
      forward_op.set("op", "optimize");
      forward_op.set("id", sub_id);
      for (const auto& [key, value] : element.as_object()) {
        if (key == "op" || key == "id") continue;
        forward_op.set(key, value);
      }
      route_optimize(client, forward_op, sub_id, forward_op.dump());
    }
    return true;
  }

  if (op == "cancel") {
    std::string id;
    try {
      id = doc.at("id").as_string();
    } catch (const std::exception& error) {
      transport_.send(client->id,
                      serve::error_event(error.what(), {}, "parse").dump());
      return true;
    }
    handle_cancel(client, id, line);
    return true;
  }

  if (op == "observe" || op == "refit") {
    std::uint64_t print = 0;
    if (!resolve_instance(client, doc, {}, print)) return true;
    fan_out(client, map_.replicas(print, options_.replicas), line, {});
    return true;
  }

  if (op == "stats") {
    handle_stats(client, line);
    return true;
  }

  if (op == "shutdown") {
    return handle_shutdown(client, line);
  }

  transport_.send(
      client->id,
      serve::error_event("unknown op \"" + op + "\"", {}, "parse").dump());
  return true;
}

void Replica_router::handle_register(const std::shared_ptr<Client>& client,
                                     const io::Json& doc,
                                     std::string_view line) {
  std::string name;
  std::uint64_t print = 0;
  try {
    name = doc.at("name").as_string();
    const io::Instance_document document =
        io::instance_from_json(doc.at("instance"));
    print = io::fingerprint(
        document.instance,
        document.precedence ? &*document.precedence : nullptr);
  } catch (const std::exception& error) {
    transport_.send(client->id,
                    serve::error_event(error.what(), {}, "parse").dump());
    return;
  }
  // Journal before forwarding: even a register that sheds (whole owner
  // set down) is replayable the moment an owner comes back.
  journal_.record(print, name, std::string(line));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    names_[name] = print;
  }
  fan_out(client, map_.replicas(print, options_.replicas), line, {});
}

bool Replica_router::resolve_instance(const std::shared_ptr<Client>& client,
                                      const io::Json& doc,
                                      const std::string& id,
                                      std::uint64_t& print) {
  const io::Json* instance = doc.find("instance");
  if (instance == nullptr) {
    transport_.send(
        client->id,
        serve::error_event("op needs an \"instance\"", id, "parse").dump());
    return false;
  }
  if (instance->is_string()) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto found = names_.find(instance->as_string());
    if (found == names_.end()) {
      transport_.send(
          client->id,
          serve::unknown_instance_event(instance->as_string(), id).dump());
      return false;
    }
    print = found->second;
    return true;
  }
  try {
    const io::Instance_document document = io::instance_from_json(*instance);
    print = io::fingerprint(
        document.instance,
        document.precedence ? &*document.precedence : nullptr);
  } catch (const std::exception& error) {
    transport_.send(client->id,
                    serve::error_event(error.what(), id, "parse").dump());
    return false;
  }
  return true;
}

void Replica_router::route_optimize(const std::shared_ptr<Client>& client,
                                    const io::Json& doc,
                                    const std::string& id,
                                    std::string_view line) {
  std::uint64_t print = 0;
  if (!resolve_instance(client, doc, id, print)) return;
  const std::vector<std::size_t> owners =
      map_.replicas(print, options_.replicas);

  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t index = 0; index < owners.size(); ++index) {
    if (!send_locked(client, owners[index], line)) continue;
    if (!id.empty()) {
      Route route;
      route.fingerprint = print;
      route.owners = owners;
      route.owner_index = index;
      route.hops = index > 0 ? 1 : 0;
      route.line = std::string(line);
      client->routes[id] = std::move(route);
    }
    if (index > 0) {
      replica_failovers_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  shed(client, id, owners.front());
}

void Replica_router::handle_cancel(const std::shared_ptr<Client>& client,
                                   const std::string& id,
                                   std::string_view line) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto route = client->routes.find(id);
  if (route == client->routes.end()) {
    transport_.send(client->id, serve::cancel_event(id, false).dump());
    return;
  }
  const std::size_t shard = route->second.owners[route->second.owner_index];
  client->routes.erase(route);
  if (!send_locked(client, shard, line)) shed(client, id, shard);
}

void Replica_router::fan_out(const std::shared_ptr<Client>& client,
                             const std::vector<std::size_t>& owners,
                             std::string_view line, const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  // The first reachable owner carries the client-visible ack; every
  // other owner gets the line best-effort over its replication feed.
  std::size_t acked = owners.size();
  for (std::size_t index = 0; index < owners.size(); ++index) {
    if (send_locked(client, owners[index], line)) {
      acked = index;
      break;
    }
  }
  for (std::size_t index = 0; index < owners.size(); ++index) {
    if (index == acked) continue;
    if (!feed_send_locked(owners[index], line)) {
      replica_lag_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (acked == owners.size()) shed(client, id, owners.front());
}

void Replica_router::handle_stats(const std::shared_ptr<Client>& client,
                                  std::string_view line) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<Link>> members;
  for (std::size_t shard = 0; shard < options_.backends.size(); ++shard) {
    if (auto link = link_locked(client, shard)) members.push_back(link);
  }
  if (members.empty()) {
    transport_.send(client->id,
                    serve::error_event("all backend shards are unreachable",
                                       {}, "overloaded")
                        .dump());
    return;
  }
  if (client->merge_pending > 0) {
    transport_.send(
        client->id,
        serve::error_event("a stats merge is already in flight; retry", {})
            .dump());
    return;
  }
  client->merge_pending = members.size();
  client->merge_events.clear();
  for (const auto& member : members) member->merge_member = true;
  for (const auto& member : members) {
    if (!store::send_backend_line(member->fd, line)) {
      // The reader's EOF path retires this link's share of the merge.
      ::shutdown(member->fd, SHUT_RDWR);
    }
  }
}

bool Replica_router::handle_shutdown(const std::shared_ptr<Client>& client,
                                     std::string_view line) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    client->closing = true;
    for (std::size_t shard = 0; shard < options_.backends.size(); ++shard) {
      const auto link = link_locked(client, shard);
      if (link == nullptr) continue;
      if (!store::send_backend_line(link->fd, line)) {
        ::shutdown(link->fd, SHUT_RDWR);
      }
    }
  }
  // Join this client's readers so the per-backend shutdown events are
  // folded before the merged pair goes out.
  std::vector<std::shared_ptr<Link>> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& slot : client->links) {
      if (slot == nullptr) continue;
      slot->retired.store(true, std::memory_order_release);
      ::shutdown(slot->fd, SHUT_RDWR);
      doomed.push_back(std::move(slot));
    }
  }
  for (const auto& link : doomed) {
    if (link->reader.joinable()) link->reader.join();
    ::close(link->fd);
  }

  double outstanding = 0;
  double completed = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    outstanding = client->shutdown_outstanding;
    completed = client->shutdown_completed;
  }
  io::Json down;
  down.set("event", "shutting-down");
  down.set("outstanding", outstanding);
  transport_.send(client->id, down.dump());
  io::Json done;
  done.set("event", "shutdown-complete");
  done.set("completed", completed);
  transport_.send(client->id, done.dump());

  shutdown_requested_ = true;
  transport_.stop();
  return false;
}

std::shared_ptr<Replica_router::Link> Replica_router::link_locked(
    const std::shared_ptr<Client>& client, std::size_t shard) {
  auto& slot = client->links[shard];
  if (slot != nullptr && !slot->down.load(std::memory_order_acquire)) {
    return slot;
  }
  if (slot != nullptr) park_locked(std::move(slot));
  if (!health_.alive(shard)) return nullptr;
  const int fd = store::dial_backend(options_.backends[shard]);
  if (fd < 0) {
    health_.mark_dead(shard);
    return nullptr;
  }
  auto link = std::make_shared<Link>();
  link->shard = shard;
  link->fd = fd;
  link->client = client;
  link->reader = std::thread([this, link] { reader_loop(link); });
  slot = link;
  return link;
}

bool Replica_router::send_locked(const std::shared_ptr<Client>& client,
                                 std::size_t shard, std::string_view line) {
  const auto link = link_locked(client, shard);
  if (link == nullptr) return false;
  if (!store::send_backend_line(link->fd, line)) {
    health_.mark_dead(shard);
    ::shutdown(link->fd, SHUT_RDWR);
    return false;
  }
  return true;
}

bool Replica_router::feed_send_locked(std::size_t shard,
                                      std::string_view line) {
  auto& slot = feeds_[shard];
  if (slot != nullptr && slot->down.load(std::memory_order_acquire)) {
    park_locked(std::move(slot));
  }
  if (slot == nullptr) {
    if (!health_.alive(shard)) return false;
    const int fd = store::dial_backend(options_.backends[shard]);
    if (fd < 0) {
      health_.mark_dead(shard);
      return false;
    }
    auto link = std::make_shared<Link>();
    link->shard = shard;
    link->fd = fd;
    link->reader = std::thread([this, link] { reader_loop(link); });
    slot = link;
  }
  if (!store::send_backend_line(slot->fd, line)) {
    health_.mark_dead(shard);
    ::shutdown(slot->fd, SHUT_RDWR);
    return false;
  }
  return true;
}

bool Replica_router::failover_locked(const std::shared_ptr<Client>& client,
                                     Route& route, std::size_t avoiding) {
  if (route.hops >= route.owners.size()) return false;
  const std::size_t count = route.owners.size();
  for (std::size_t step = 1; step <= count; ++step) {
    const std::size_t index = (route.owner_index + step) % count;
    const std::size_t shard = route.owners[index];
    if (shard == avoiding) continue;
    if (!health_.alive(shard)) continue;
    if (!send_locked(client, shard, route.line)) continue;
    route.owner_index = index;
    ++route.hops;
    replica_failovers_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void Replica_router::shed(const std::shared_ptr<Client>& client,
                          const std::string& id, std::size_t shard) {
  transport_.send(
      client->id,
      serve::error_event("backend shard " + std::to_string(shard) + " (" +
                             options_.backends[shard] +
                             ") and its replicas are unavailable; retry later",
                         id, "overloaded")
          .dump());
}

void Replica_router::reader_loop(std::shared_ptr<Link> link) {
  std::string buffer;
  char chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(link->fd, chunk, sizeof chunk);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    if (link->client == nullptr) continue;  // replication feed: swallow
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const auto newline = buffer.find('\n', start);
      if (newline == std::string::npos) break;
      std::string_view line(buffer.data() + start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      handle_backend_line(link, line);
    }
    buffer.erase(0, start);
  }
  link_down(link);
}

void Replica_router::handle_backend_line(const std::shared_ptr<Link>& link,
                                         std::string_view line) {
  if (intercept_event(link, line)) return;
  const std::string finished = store::result_event_id(line);
  if (!finished.empty()) {
    std::lock_guard<std::mutex> lock(mutex_);
    link->client->routes.erase(finished);
  }
  transport_.send(link->client->id, line);
}

bool Replica_router::intercept_event(const std::shared_ptr<Link>& link,
                                     std::string_view line) {
  const std::shared_ptr<Client>& client = link->client;
  const bool error_like = starts_with(line, "{\"event\":\"error\"");
  const bool registered_like = starts_with(line, "{\"event\":\"registered\"");

  std::lock_guard<std::mutex> lock(mutex_);
  if (!link->merge_member && !client->closing && !error_like &&
      !(registered_like && !link->repairs.empty())) {
    return false;
  }

  io::Json event;
  try {
    event = io::Json::parse(line);
  } catch (const std::exception&) {
    return false;  // unparseable backend line: forward verbatim
  }
  const io::Json* tag = event.find("event");
  const std::string kind =
      tag != nullptr && tag->is_string() ? tag->as_string() : "";

  if (link->merge_member && kind == "stats") {
    link->merge_member = false;
    client->merge_events.push_back(std::move(event));
    if (client->merge_events.size() >= client->merge_pending) {
      finish_merge_locked(*client);
    }
    return true;
  }

  if (client->closing &&
      (kind == "shutting-down" || kind == "shutdown-complete")) {
    const char* field =
        kind == "shutting-down" ? "outstanding" : "completed";
    double count = 0;
    if (const io::Json* value = event.find(field);
        value != nullptr && value->is_number()) {
      count = value->as_number();
    }
    (kind == "shutting-down" ? client->shutdown_outstanding
                             : client->shutdown_completed) += count;
    return true;
  }

  if (kind == "registered" && !link->repairs.empty()) {
    // Possibly the ack of a journal replay this router sent itself; the
    // client never asked, so it must not see it.
    const io::Json* print_field = event.find("fingerprint");
    std::uint64_t print = 0;
    if (print_field != nullptr && print_field->is_string() &&
        store::parse_hex64(print_field->as_string(), print)) {
      const auto repair = link->repairs.find(print);
      if (repair != link->repairs.end()) {
        repairs_.fetch_add(1, std::memory_order_relaxed);
        for (const std::string& queued : repair->second) {
          if (!store::send_backend_line(link->fd, queued)) {
            // Link died mid-repair; link_down will fail the queued ops
            // over via their routes.
            health_.mark_dead(link->shard);
            ::shutdown(link->fd, SHUT_RDWR);
            break;
          }
        }
        link->repairs.erase(repair);
        return true;
      }
    }
    return false;
  }

  if (kind == "error") {
    const io::Json* code_field = event.find("code");
    const io::Json* id_field = event.find("id");
    const std::string code = code_field != nullptr && code_field->is_string()
                                 ? code_field->as_string()
                                 : "";
    const std::string id = id_field != nullptr && id_field->is_string()
                               ? id_field->as_string()
                               : "";
    if (id.empty()) return false;
    const auto found = client->routes.find(id);
    if (found == client->routes.end() ||
        found->second.owners[found->second.owner_index] != link->shard) {
      return false;
    }
    Route& route = found->second;

    if (code == "overloaded") {
      // The owning backend shed the request; another replica may have
      // room (and the same warm cache) — move it there silently.
      if (failover_locked(client, route, link->shard)) return true;
      client->routes.erase(found);
      return false;  // no replica left: the client sees the shed
    }

    if (code == "unknown-instance") {
      // A failover target (or freshly rejoined backend) is missing state
      // it owns: replay the journaled register on this same connection,
      // then re-send the op once the ack comes back — same link, so the
      // backend observes register-then-optimize in order.
      const std::string register_line = journal_.line_for(route.fingerprint);
      if (register_line.empty()) {
        client->routes.erase(found);
        return false;  // nothing journaled: the client sees the error
      }
      link->repairs[route.fingerprint].push_back(route.line);
      if (!store::send_backend_line(link->fd, register_line)) {
        health_.mark_dead(link->shard);
        ::shutdown(link->fd, SHUT_RDWR);
      }
      return true;
    }
    return false;
  }
  return false;
}

void Replica_router::link_down(const std::shared_ptr<Link>& link) {
  if (link->down.exchange(true, std::memory_order_acq_rel)) return;
  const std::shared_ptr<Client>& client = link->client;
  const bool retired = link->retired.load(std::memory_order_acquire);
  if (!retired) health_.mark_dead(link->shard);
  if (client == nullptr) return;  // replication feed: nothing routed here

  std::vector<std::string> abandoned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (client->links[link->shard] == link) {
      // Do not join from our own reader thread: park for the loop
      // thread's reaper.
      park_locked(std::move(client->links[link->shard]));
    }
    link->repairs.clear();
    if (!retired) {
      // Every id still routed at this shard fails over — this is the
      // mid-flight path that keeps a kill -9 invisible to clients.
      for (auto route = client->routes.begin();
           route != client->routes.end();) {
        if (route->second.owners[route->second.owner_index] != link->shard) {
          ++route;
          continue;
        }
        if (failover_locked(client, route->second, link->shard)) {
          ++route;
        } else {
          abandoned.push_back(route->first);
          route = client->routes.erase(route);
        }
      }
    }
    if (link->merge_member) {
      link->merge_member = false;
      if (client->merge_pending > 0) --client->merge_pending;
      if (client->merge_pending == 0) {
        client->merge_events.clear();
        transport_.send(client->id,
                        serve::error_event(
                            "all backend shards dropped during stats merge",
                            {}, "overloaded")
                            .dump());
      } else if (client->merge_events.size() >= client->merge_pending) {
        finish_merge_locked(*client);
      }
    }
  }
  for (const std::string& id : abandoned) {
    transport_.send(
        client->id,
        serve::error_event("backend shard " + std::to_string(link->shard) +
                               " (" + options_.backends[link->shard] +
                               ") dropped and no replica is live; retry later",
                           id, "overloaded")
            .dump());
  }
}

void Replica_router::finish_merge_locked(Client& client) {
  io::Json merged =
      store::merge_stats_events(client.merge_events, options_.backends.size());
  merged.set("replicas", static_cast<double>(options_.replicas));
  merged.set("shards_degraded",
             static_cast<double>(health_.degraded_count()));
  merged.set("replica_failovers",
             static_cast<double>(
                 replica_failovers_.load(std::memory_order_relaxed)));
  merged.set("repairs",
             static_cast<double>(repairs_.load(std::memory_order_relaxed)));
  merged.set("replica_lag",
             static_cast<double>(
                 replica_lag_.load(std::memory_order_relaxed)));
  client.merge_pending = 0;
  client.merge_events.clear();
  transport_.send(client.id, merged.dump());
}

void Replica_router::heal_shard(std::size_t shard) {
  // A dead shard came back: replay every journaled registration it owns
  // over its replication feed, ahead of any routed traffic. Runs on the
  // probe thread.
  const std::vector<Journal_entry> entries = journal_.entries();
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Journal_entry& entry : entries) {
    const std::vector<std::size_t> owners =
        map_.replicas(entry.fingerprint, options_.replicas);
    if (std::find(owners.begin(), owners.end(), shard) == owners.end()) {
      continue;
    }
    if (feed_send_locked(shard, entry.line)) {
      repairs_.fetch_add(1, std::memory_order_relaxed);
    } else {
      replica_lag_.fetch_add(1, std::memory_order_relaxed);
      break;  // the shard flapped again; the next dead->live retries
    }
  }
}

void Replica_router::park_locked(std::shared_ptr<Link> link) {
  zombies_.push_back(std::move(link));
}

void Replica_router::reap_zombies() {
  std::vector<std::shared_ptr<Link>> dead;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    dead.swap(zombies_);
  }
  for (const auto& link : dead) {
    ::shutdown(link->fd, SHUT_RDWR);
    if (link->reader.joinable()) link->reader.join();
    ::close(link->fd);
  }
}

void Replica_router::teardown_all() {
  std::vector<std::shared_ptr<Link>> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, client] : clients_) {
      for (auto& slot : client->links) {
        if (slot == nullptr) continue;
        slot->retired.store(true, std::memory_order_release);
        ::shutdown(slot->fd, SHUT_RDWR);
        doomed.push_back(std::move(slot));
      }
    }
    for (auto& slot : feeds_) {
      if (slot == nullptr) continue;
      slot->retired.store(true, std::memory_order_release);
      ::shutdown(slot->fd, SHUT_RDWR);
      doomed.push_back(std::move(slot));
    }
    doomed.insert(doomed.end(),
                  std::make_move_iterator(zombies_.begin()),
                  std::make_move_iterator(zombies_.end()));
    zombies_.clear();
  }
  for (const auto& link : doomed) {
    if (link->reader.joinable()) link->reader.join();
    ::close(link->fd);
  }
  clients_.clear();
}

}  // namespace quest::cluster
