#include "quest/common/cli.hpp"

#include <charconv>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "quest/common/error.hpp"

namespace quest {

namespace {

std::int64_t parse_int(std::string_view name, std::string_view text) {
  std::int64_t value = 0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) {
    throw Parse_error("flag --" + std::string(name) +
                      ": expected integer, got '" + std::string(text) + "'");
  }
  return value;
}

double parse_double(std::string_view name, std::string_view text) {
  // std::from_chars for double is not universally available in libstdc++ 12
  // for all formats; strtod on a NUL-terminated copy is robust enough here.
  const std::string copy(text);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || copy.empty()) {
    throw Parse_error("flag --" + std::string(name) +
                      ": expected number, got '" + copy + "'");
  }
  return value;
}

bool parse_bool(std::string_view name, std::string_view text) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    return false;
  }
  throw Parse_error("flag --" + std::string(name) +
                    ": expected boolean, got '" + std::string(text) + "'");
}

}  // namespace

Cli::Flag<std::int64_t>& Cli::add_int(std::string name,
                                      std::int64_t default_value,
                                      std::string help) {
  QUEST_EXPECTS(!find(name), "duplicate flag registration");
  ints_.push_back(std::make_unique<Flag<std::int64_t>>(
      Flag<std::int64_t>{name, std::move(help), default_value, false}));
  entries_.emplace_back(std::move(name), Entry{Kind::integer, ints_.size() - 1});
  return *ints_.back();
}

Cli::Flag<double>& Cli::add_double(std::string name, double default_value,
                                   std::string help) {
  QUEST_EXPECTS(!find(name), "duplicate flag registration");
  doubles_.push_back(std::make_unique<Flag<double>>(
      Flag<double>{name, std::move(help), default_value, false}));
  entries_.emplace_back(std::move(name),
                        Entry{Kind::floating, doubles_.size() - 1});
  return *doubles_.back();
}

Cli::Flag<bool>& Cli::add_bool(std::string name, bool default_value,
                               std::string help) {
  QUEST_EXPECTS(!find(name), "duplicate flag registration");
  bools_.push_back(std::make_unique<Flag<bool>>(
      Flag<bool>{name, std::move(help), default_value, false}));
  entries_.emplace_back(std::move(name), Entry{Kind::boolean, bools_.size() - 1});
  return *bools_.back();
}

Cli::Flag<std::string>& Cli::add_string(std::string name,
                                        std::string default_value,
                                        std::string help) {
  QUEST_EXPECTS(!find(name), "duplicate flag registration");
  strings_.push_back(std::make_unique<Flag<std::string>>(Flag<std::string>{
      name, std::move(help), std::move(default_value), false}));
  entries_.emplace_back(std::move(name),
                        Entry{Kind::text, strings_.size() - 1});
  return *strings_.back();
}

std::optional<Cli::Entry> Cli::find(std::string_view name) const {
  for (const auto& [flag_name, entry] : entries_) {
    if (flag_name == name) return entry;
  }
  return std::nullopt;
}

void Cli::apply(const Entry& entry, std::string_view name,
                std::string_view value) {
  switch (entry.kind) {
    case Kind::integer: {
      auto& flag = *ints_[entry.index];
      flag.value = parse_int(name, value);
      flag.set = true;
      break;
    }
    case Kind::floating: {
      auto& flag = *doubles_[entry.index];
      flag.value = parse_double(name, value);
      flag.set = true;
      break;
    }
    case Kind::boolean: {
      auto& flag = *bools_[entry.index];
      flag.value = parse_bool(name, value);
      flag.set = true;
      break;
    }
    case Kind::text: {
      auto& flag = *strings_[entry.index];
      flag.value = std::string(value);
      flag.set = true;
      break;
    }
  }
}

void Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      std::exit(0);
    }
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    std::string_view body = arg.substr(2);
    std::string_view value;
    bool has_value = false;
    if (const auto eq = body.find('='); eq != std::string_view::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_value = true;
    }
    const auto entry = find(body);
    if (!entry) {
      throw Parse_error("unknown flag --" + std::string(body) +
                        " (see --help)");
    }
    if (!has_value) {
      if (entry->kind == Kind::boolean) {
        // `--flag` alone means true.
        auto& flag = *bools_[entry->index];
        flag.value = true;
        flag.set = true;
        continue;
      }
      if (i + 1 >= argc) {
        throw Parse_error("flag --" + std::string(body) + " expects a value");
      }
      value = argv[++i];
    }
    apply(*entry, body, value);
  }
}

std::string Cli::usage() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& [name, entry] : entries_) {
    out << "  --" << name;
    switch (entry.kind) {
      case Kind::integer:
        out << " <int>      (default " << ints_[entry.index]->value << ") "
            << ints_[entry.index]->help;
        break;
      case Kind::floating:
        out << " <num>      (default " << doubles_[entry.index]->value << ") "
            << doubles_[entry.index]->help;
        break;
      case Kind::boolean:
        out << "            (default "
            << (bools_[entry.index]->value ? "true" : "false") << ") "
            << bools_[entry.index]->help;
        break;
      case Kind::text:
        out << " <string>   (default '" << strings_[entry.index]->value
            << "') " << strings_[entry.index]->help;
        break;
    }
    out << '\n';
  }
  out << "  --help            print this message\n";
  return out.str();
}

}  // namespace quest
