#include "quest/common/error.hpp"

#include <sstream>

namespace quest::detail {

namespace {

std::string format(std::string_view kind, std::string_view condition,
                   std::string_view message, std::string_view file,
                   int line) {
  std::ostringstream out;
  out << kind << " violated: (" << condition << ") — " << message << " ["
      << file << ':' << line << ']';
  return out.str();
}

}  // namespace

void throw_precondition(std::string_view condition, std::string_view message,
                        std::string_view file, int line) {
  throw Precondition_error(
      format("precondition", condition, message, file, line));
}

void throw_invariant(std::string_view condition, std::string_view message,
                     std::string_view file, int line) {
  throw Invariant_error(format("invariant", condition, message, file, line));
}

}  // namespace quest::detail
