// quest/common/bitset64.hpp
//
// The single shared vocabulary for service-set bitmasks. The subset
// engines (dp, frontier), the partial-plan evaluator and the search
// kernel all track "which services are placed" — this header gives them
// one set of primitives instead of four hand-rolled `1 << u` idioms:
//
//  * free functions over a raw std::uint64_t word for the engines whose
//    state space is itself mask-indexed (dp, frontier; both cap n at the
//    word width anyway), and
//  * Member_mask, an any-n membership set with a single inline word as
//    the n <= 64 fast path and overflow words beyond, for the evaluator
//    and kernel paths that must keep working on larger instances.

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace quest {

/// The mask with exactly bit `i` set. Precondition: i < 64.
constexpr std::uint64_t bit64(std::size_t i) noexcept {
  return std::uint64_t{1} << i;
}

/// True iff bit `i` of `mask` is set.
constexpr bool has_bit(std::uint64_t mask, std::size_t i) noexcept {
  return (mask & bit64(i)) != 0;
}

constexpr std::uint64_t with_bit(std::uint64_t mask, std::size_t i) noexcept {
  return mask | bit64(i);
}

constexpr std::uint64_t without_bit(std::uint64_t mask,
                                    std::size_t i) noexcept {
  return mask & ~bit64(i);
}

/// Index of the lowest set bit. Precondition: mask != 0.
constexpr std::size_t lowest_bit(std::uint64_t mask) noexcept {
  return static_cast<std::size_t>(std::countr_zero(mask));
}

/// `mask` with its lowest set bit cleared (the subset-DP recursion step).
constexpr std::uint64_t drop_lowest(std::uint64_t mask) noexcept {
  return mask & (mask - 1);
}

/// True iff every bit of `required` is set in `mask` (precedence gates:
/// pred_mask[u] ⊆ placed).
constexpr bool contains_all(std::uint64_t mask,
                            std::uint64_t required) noexcept {
  return (mask & required) == required;
}

/// The n lowest bits set. Precondition: n <= 64.
constexpr std::uint64_t full_mask64(std::size_t n) noexcept {
  return n >= 64 ? ~std::uint64_t{0} : bit64(n) - 1;
}

/// Membership set over service ids 0..n-1. Ids below 64 live in one
/// inline word — test/set/reset are branch-predictable single-word ops on
/// every instance the exact engines can touch — and larger ids spill into
/// overflow words so arbitrary-n callers (greedy, exhaustive on generated
/// workloads) keep working unchanged.
class Member_mask {
 public:
  Member_mask() = default;
  explicit Member_mask(std::size_t n) { resize(n); }

  /// Resizes to cover ids 0..n-1 and clears every bit.
  void resize(std::size_t n) {
    word_ = 0;
    overflow_.assign(n > 64 ? (n - 1) / 64 : 0, 0);
  }

  bool test(std::size_t i) const noexcept {
    return i < 64 ? has_bit(word_, i) : has_bit(overflow_[i / 64 - 1], i % 64);
  }

  void set(std::size_t i) noexcept {
    if (i < 64) {
      word_ |= bit64(i);
    } else {
      overflow_[i / 64 - 1] |= bit64(i % 64);
    }
  }

  void reset(std::size_t i) noexcept {
    if (i < 64) {
      word_ &= ~bit64(i);
    } else {
      overflow_[i / 64 - 1] &= ~bit64(i % 64);
    }
  }

  void clear() noexcept {
    word_ = 0;
    for (auto& word : overflow_) word = 0;
  }

  /// Bits 0..63 as a raw word — the fast-path view the mask-indexed
  /// helpers consume when n <= 64.
  std::uint64_t word() const noexcept { return word_; }

 private:
  std::uint64_t word_ = 0;
  std::vector<std::uint64_t> overflow_;
};

}  // namespace quest
