// quest/common/cli.hpp
//
// A deliberately small command-line flag parser for the bench and example
// binaries: `--name=value` or `--name value`, `--flag` booleans, with typed
// accessors, defaults, and an auto-generated --help.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace quest {

/// Declarative flag set.
///
///   Cli cli("bench_e1", "Optimizer scaling experiment");
///   auto& n_max  = cli.add_int("n-max", 16, "largest instance size");
///   auto& seeds  = cli.add_int("seeds", 20, "repetitions per point");
///   auto& csv    = cli.add_bool("csv", false, "emit CSV instead of a table");
///   cli.parse(argc, argv);          // exits(0) on --help, throws Parse_error
///   run(n_max.value, seeds.value, csv.value);
class Cli {
 public:
  template <typename T>
  struct Flag {
    std::string name;
    std::string help;
    T value;       ///< Current value (default until parse()).
    bool set = false;  ///< Whether the user supplied it.
  };

  Cli(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  Flag<std::int64_t>& add_int(std::string name, std::int64_t default_value,
                              std::string help);
  Flag<double>& add_double(std::string name, double default_value,
                           std::string help);
  Flag<bool>& add_bool(std::string name, bool default_value, std::string help);
  Flag<std::string>& add_string(std::string name, std::string default_value,
                                std::string help);

  /// Parses argv. Prints usage and calls std::exit(0) on --help.
  /// Throws quest::Parse_error on unknown flags or malformed values.
  /// Unrecognized *positional* arguments are collected in positional().
  void parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Render the --help text.
  std::string usage() const;

 private:
  enum class Kind { integer, floating, boolean, text };
  struct Entry {
    Kind kind;
    std::size_t index;  // into the per-kind storage below
  };

  std::optional<Entry> find(std::string_view name) const;
  void apply(const Entry& entry, std::string_view name,
             std::string_view value);

  std::string program_;
  std::string description_;
  std::vector<std::pair<std::string, Entry>> entries_;
  // Pointer-stable storage: callers hold references into these.
  std::vector<std::unique_ptr<Flag<std::int64_t>>> ints_;
  std::vector<std::unique_ptr<Flag<double>>> doubles_;
  std::vector<std::unique_ptr<Flag<bool>>> bools_;
  std::vector<std::unique_ptr<Flag<std::string>>> strings_;
  std::vector<std::string> positional_;
};

}  // namespace quest
