// quest/common/error.hpp
//
// Error-handling machinery shared by every quest module.
//
// Philosophy (following the C++ Core Guidelines, E.*):
//  * Unrecoverable API misuse (precondition violations) -> QUEST_EXPECTS,
//    which throws quest::Precondition_error so tests can assert on misuse.
//  * Recoverable/environmental failures (bad input files, malformed JSON)
//    -> dedicated exception types derived from quest::Error.
//  * Internal invariant checks -> QUEST_ASSERT (active in all build types;
//    the optimizer is a search algorithm whose correctness we refuse to
//    trade for the last few percent of speed).

#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace quest {

/// Root of the quest exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a documented precondition of a public API is violated.
class Precondition_error : public Error {
 public:
  explicit Precondition_error(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant fails (a bug in quest itself).
class Invariant_error : public Error {
 public:
  explicit Invariant_error(const std::string& what) : Error(what) {}
};

/// Thrown on malformed external input (files, JSON documents, CLI values).
class Parse_error : public Error {
 public:
  explicit Parse_error(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] void throw_precondition(std::string_view condition,
                                     std::string_view message,
                                     std::string_view file, int line);

[[noreturn]] void throw_invariant(std::string_view condition,
                                  std::string_view message,
                                  std::string_view file, int line);

}  // namespace detail

}  // namespace quest

/// Check a documented precondition of a public entry point.
/// Throws quest::Precondition_error with location info when violated.
#define QUEST_EXPECTS(cond, msg)                                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::quest::detail::throw_precondition(#cond, (msg), __FILE__,        \
                                          __LINE__);                     \
    }                                                                    \
  } while (false)

/// Check an internal invariant. Active in every build type.
#define QUEST_ASSERT(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::quest::detail::throw_invariant(#cond, (msg), __FILE__, __LINE__); \
    }                                                                    \
  } while (false)
