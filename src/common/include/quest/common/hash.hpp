// quest/common/hash.hpp
//
// FNV-1a content hashing over 64-bit words and IEEE-754 bit patterns,
// plus fixed-width hex rendering. The single definition behind both
// io::fingerprint (instance identity) and model::Cost_model::key()
// (cost-model identity): cache correctness in the serving layer rides on
// these two never diverging in how they fold doubles.

#pragma once

#include <bit>
#include <cstdint>
#include <string>

namespace quest {

/// Incremental FNV-1a over 64-bit values and doubles.
class Fnv1a {
 public:
  void mix(std::uint64_t value) noexcept {
    for (int byte = 0; byte < 8; ++byte) {
      state_ ^= (value >> (byte * 8)) & 0xffu;
      state_ *= prime;
    }
  }

  /// Hashes the exact bit pattern, with all zero representations folded
  /// together (-0.0 == 0.0 must hash identically — the values compare
  /// equal through the model API).
  void mix(double value) noexcept {
    mix(std::bit_cast<std::uint64_t>(value == 0.0 ? 0.0 : value));
  }

  std::uint64_t digest() const noexcept { return state_; }

 private:
  static constexpr std::uint64_t offset = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t prime = 0x100000001b3ull;

  std::uint64_t state_ = offset;
};

/// 16-hex-digit rendering of a 64-bit value ("00ab4f...").
inline std::string hex64(std::uint64_t value) {
  std::string hex(16, '0');
  constexpr char digits[] = "0123456789abcdef";
  for (int nibble = 0; nibble < 16; ++nibble) {
    hex[15 - nibble] = digits[(value >> (nibble * 4)) & 0xfu];
  }
  return hex;
}

}  // namespace quest
