// quest/common/matrix.hpp
//
// Dense row-major matrix. The quest problem model stores inter-service
// transfer costs t_{i,j} in a Matrix<double>; the class is generic because
// the constraints module reuses it for boolean reachability.

#pragma once

#include <cstddef>
#include <vector>

#include "quest/common/error.hpp"

namespace quest {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, every element initialized to `fill`.
  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Square convenience factory.
  static Matrix square(std::size_t n, T fill = T{}) {
    return Matrix(n, n, fill);
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    QUEST_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    QUEST_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Unchecked access for hot loops that have already validated indices.
  T& at_unchecked(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  const T& at_unchecked(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  const std::vector<T>& data() const noexcept { return data_; }

  /// Fill every element.
  void fill(T value) {
    for (auto& x : data_) x = value;
  }

  /// Maximum element of row r over columns for which `pred(col)` holds.
  /// Returns `fallback` when no column qualifies.
  template <typename Pred>
  T row_max_if(std::size_t r, Pred pred, T fallback) const {
    QUEST_EXPECTS(r < rows_, "matrix row out of range");
    T best = fallback;
    bool any = false;
    for (std::size_t c = 0; c < cols_; ++c) {
      if (!pred(c)) continue;
      const T& v = data_[r * cols_ + c];
      if (!any || best < v) {
        best = v;
        any = true;
      }
    }
    return any ? best : fallback;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace quest
