// quest/common/rng.hpp
//
// Deterministic, seedable pseudo-random number generation.
//
// Every stochastic component in quest (workload generators, simulated
// annealing, simulator jitter) draws from quest::Rng so that experiments are
// reproducible bit-for-bit from a 64-bit seed, independent of the standard
// library implementation. The generator is xoshiro256++ seeded via
// splitmix64, both public-domain algorithms by Blackman & Vigna.

#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "quest/common/error.hpp"

namespace quest {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256++ pseudo-random generator.
///
/// Satisfies the essential parts of UniformRandomBitGenerator, but quest
/// code should prefer the typed helpers (uniform_double, uniform_int, ...)
/// which are guaranteed stable across platforms (std::uniform_*_distribution
/// is not).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9d1ce4e5b9u) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64 random bits.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) {
    QUEST_EXPECTS(lo <= hi, "uniform(lo, hi) requires lo <= hi");
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound) via Lemire's unbiased multiply-shift.
  /// Requires bound > 0.
  std::uint64_t uniform_int(std::uint64_t bound) {
    QUEST_EXPECTS(bound > 0, "uniform_int bound must be positive");
    // Rejection loop to remove modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    QUEST_EXPECTS(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // span == 0 only when the range covers all of int64, where any draw works.
    if (span == 0) return static_cast<std::int64_t>((*this)());
    return lo + static_cast<std::int64_t>(uniform_int(span));
  }

  /// true with probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Standard normal via Marsaglia polar method (deterministic given seed).
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return u * factor;
  }

  /// Normal with the given mean and (non-negative) standard deviation.
  double normal(double mean, double stddev) {
    QUEST_EXPECTS(stddev >= 0.0, "normal stddev must be non-negative");
    return mean + stddev * normal();
  }

  /// Exponential with the given rate (> 0); mean 1/rate.
  double exponential(double rate) {
    QUEST_EXPECTS(rate > 0.0, "exponential rate must be positive");
    // 1 - uniform() is in (0, 1], so the log is finite.
    return -std::log(1.0 - uniform()) / rate;
  }

  /// log-normal: exp(Normal(mu, sigma)).
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Pareto with scale x_m > 0 and shape alpha > 0 (inverse CDF);
  /// mean x_m * alpha / (alpha - 1) when alpha > 1, infinite otherwise.
  double pareto(double scale, double alpha) {
    QUEST_EXPECTS(scale > 0.0, "pareto scale must be positive");
    QUEST_EXPECTS(alpha > 0.0, "pareto shape must be positive");
    // 1 - uniform() is in (0, 1], so the power is finite.
    return scale * std::pow(1.0 - uniform(), -1.0 / alpha);
  }

  /// Zipf-distributed rank in [0, n) with exponent `s` >= 0 (s = 0 is
  /// uniform). Uses inverse-CDF over precomputable weights; O(n) per draw,
  /// intended for modest n (workload shaping, not inner loops).
  std::size_t zipf(std::size_t n, double s);

  /// Fisher–Yates shuffle of an index-addressable container.
  template <typename Container>
  void shuffle(Container& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const std::size_t j = uniform_int(static_cast<std::uint64_t>(i) + 1);
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n) {
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = i;
    shuffle(perm);
    return perm;
  }

  /// Derives an independent child generator; use to give each experiment
  /// repetition its own stream without draw-order coupling.
  Rng fork() noexcept { return Rng((*this)() ^ 0xa5a5a5a5deadbeefull); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace quest
