// quest/common/stats.hpp
//
// Summary statistics used by benches and the simulator: streaming
// mean/variance (Welford), min/max, and exact percentiles over retained
// samples. Kept deliberately simple — results feed ASCII tables, not
// numerical pipelines.

#pragma once

#include <cstddef>
#include <vector>

namespace quest {

/// Streaming summary: O(1) per observation, no samples retained.
/// Mean/variance use Welford's algorithm for numerical stability.
class Running_stats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  /// Merge another summary into this one (parallel-friendly).
  void merge(const Running_stats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retains every sample; adds exact order statistics on top of
/// Running_stats. Percentile queries sort lazily.
class Sample_stats {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const noexcept { return summary_.count(); }
  double mean() const noexcept { return summary_.mean(); }
  double stddev() const noexcept { return summary_.stddev(); }
  double min() const noexcept { return summary_.min(); }
  double max() const noexcept { return summary_.max(); }
  double sum() const noexcept { return summary_.sum(); }

  /// Exact percentile via linear interpolation between closest ranks.
  /// `p` in [0, 100]. Requires at least one sample.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  Running_stats summary_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Geometric mean of a non-empty set of positive values; used for cost-ratio
/// aggregation in heuristic-quality experiments (E3/E5).
double geometric_mean(const std::vector<double>& values);

}  // namespace quest
