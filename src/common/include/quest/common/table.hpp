// quest/common/table.hpp
//
// Minimal ASCII table renderer. Every bench binary reports its experiment
// as a paper-style table through this class, so the output format is
// uniform across the suite.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace quest {

/// Column-aligned ASCII table with a title, header row and footnotes.
///
/// Usage:
///   Table t("E1: optimizer scaling");
///   t.set_header({"n", "bnb (ms)", "dp (ms)"});
///   t.add_row({"8", "0.13", "0.55"});
///   std::cout << t;
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  void add_footnote(std::string note);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with single-space-padded columns, +-separated rule lines.
  void render(std::ostream& out) const;

  /// Render as comma-separated values (header + rows, no title).
  void render_csv(std::ostream& out) const;

  friend std::ostream& operator<<(std::ostream& out, const Table& table) {
    table.render(out);
    return out;
  }

  /// Format a double with `digits` significant decimal places.
  static std::string num(double value, int digits = 3);
  /// Format an integral count with thousands separators ("1,234,567").
  static std::string count(unsigned long long value);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> footnotes_;
};

}  // namespace quest
