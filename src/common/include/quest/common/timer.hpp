// quest/common/timer.hpp
//
// Wall-clock stopwatch for experiment harnesses.

#pragma once

#include <chrono>

namespace quest {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed time in seconds.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  /// Elapsed time in milliseconds.
  double millis() const { return seconds() * 1e3; }
  /// Elapsed time in microseconds.
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace quest
