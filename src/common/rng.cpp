#include "quest/common/rng.hpp"

#include <cmath>

namespace quest {

std::size_t Rng::zipf(std::size_t n, double s) {
  QUEST_EXPECTS(n > 0, "zipf requires n > 0");
  QUEST_EXPECTS(s >= 0.0, "zipf exponent must be non-negative");
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -s);
  }
  const double target = uniform() * total;
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += std::pow(static_cast<double>(k + 1), -s);
    if (acc >= target) return k;
  }
  return n - 1;  // floating-point slack: the tail bucket absorbs it
}

}  // namespace quest
