#include "quest/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "quest/common/error.hpp"

namespace quest {

void Running_stats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Running_stats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Running_stats::stddev() const noexcept { return std::sqrt(variance()); }

void Running_stats::merge(const Running_stats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Sample_stats::add(double x) {
  summary_.add(x);
  samples_.push_back(x);
  sorted_ = false;
}

double Sample_stats::percentile(double p) const {
  QUEST_EXPECTS(!samples_.empty(), "percentile of an empty sample set");
  QUEST_EXPECTS(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (samples_.size() == 1) return samples_.front();
  const double rank =
      p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

double geometric_mean(const std::vector<double>& values) {
  QUEST_EXPECTS(!values.empty(), "geometric_mean of an empty set");
  double log_sum = 0.0;
  for (const double v : values) {
    QUEST_EXPECTS(v > 0.0, "geometric_mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace quest
