#include "quest/common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "quest/common/error.hpp"

namespace quest {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  QUEST_EXPECTS(header_.empty() || row.size() == header_.size(),
                "table row width must match header width");
  rows_.push_back(std::move(row));
}

void Table::add_footnote(std::string note) {
  footnotes_.push_back(std::move(note));
}

void Table::render(std::ostream& out) const {
  // Column widths: max over header and all rows.
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto rule = [&widths, &out] {
    out << '+';
    for (const std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) out << '-';
      out << '+';
    }
    out << '\n';
  };
  auto line = [&widths, &out](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out << ' ' << std::setw(static_cast<int>(widths[i])) << cell << " |";
    }
    out << '\n';
  };

  if (!title_.empty()) out << "== " << title_ << " ==\n";
  rule();
  if (!header_.empty()) {
    line(header_);
    rule();
  }
  for (const auto& row : rows_) line(row);
  rule();
  for (const auto& note : footnotes_) out << "  * " << note << '\n';
}

void Table::render_csv(std::ostream& out) const {
  auto line = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << row[i];
    }
    out << '\n';
  };
  if (!header_.empty()) line(header_);
  for (const auto& row : rows_) line(row);
}

std::string Table::num(double value, int digits) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(digits) << value;
  return out.str();
}

std::string Table::count(unsigned long long value) {
  std::string digits = std::to_string(value);
  std::string result;
  result.reserve(digits.size() + digits.size() / 3);
  std::size_t seen = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (seen && seen % 3 == 0) result.push_back(',');
    result.push_back(*it);
    ++seen;
  }
  std::reverse(result.begin(), result.end());
  return result;
}

}  // namespace quest
