// quest/constraints/precedence.hpp
//
// Precedence constraints between services. The brief announcement assumes
// no precedence constraints "to keep the discussion simple" but notes the
// solution applies with minor modifications when they exist; quest supports
// them throughout (optimizers, generators, E8).

#pragma once

#include <cstddef>
#include <vector>

#include "quest/model/service.hpp"

namespace quest::constraints {

/// A DAG over service ids: an edge u -> v means "u must be invoked before v
/// in every plan". Edges are validated to keep the graph acyclic.
class Precedence_graph {
 public:
  /// An unconstrained graph over `n` services.
  explicit Precedence_graph(std::size_t n);

  std::size_t size() const noexcept { return successors_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }
  bool unconstrained() const noexcept { return edge_count_ == 0; }

  /// Adds u -> v. Throws Precondition_error if it would create a cycle,
  /// u == v, or either id is out of range. Duplicate edges are ignored.
  void add_edge(model::Service_id before, model::Service_id after);

  bool has_edge(model::Service_id before, model::Service_id after) const;

  const std::vector<model::Service_id>& successors(
      model::Service_id id) const;
  const std::vector<model::Service_id>& predecessors(
      model::Service_id id) const;

  /// True iff every predecessor of `id` is marked present in `placed`
  /// (an n-length membership mask) — i.e. `id` may legally be appended.
  bool feasible_next(model::Service_id id,
                     const std::vector<char>& placed) const;

  /// True iff the ordering respects every edge. `order` may be partial;
  /// services appearing in it must be distinct.
  bool respects(const std::vector<model::Service_id>& order) const;

  /// Any topological ordering (deterministic: smallest id first).
  std::vector<model::Service_id> topological_order() const;

  /// Reachability check (is there a directed path before ->* after?).
  bool reachable(model::Service_id from, model::Service_id to) const;

  /// Number of linear extensions (exact, exponential-time DP over subsets;
  /// intended for n <= ~20 in tests and E8 reporting).
  double count_linear_extensions() const;

 private:
  std::vector<std::vector<model::Service_id>> successors_;
  std::vector<std::vector<model::Service_id>> predecessors_;
  std::size_t edge_count_ = 0;
};

}  // namespace quest::constraints
