#include "quest/constraints/precedence.hpp"

#include <algorithm>

#include "quest/common/error.hpp"

namespace quest::constraints {

using model::Service_id;

Precedence_graph::Precedence_graph(std::size_t n)
    : successors_(n), predecessors_(n) {
  QUEST_EXPECTS(n >= 1, "precedence graph needs at least one service");
}

void Precedence_graph::add_edge(Service_id before, Service_id after) {
  QUEST_EXPECTS(before < size() && after < size(),
                "precedence edge endpoint out of range");
  QUEST_EXPECTS(before != after, "self-precedence is not allowed");
  if (has_edge(before, after)) return;
  QUEST_EXPECTS(!reachable(after, before),
                "precedence edge would create a cycle");
  successors_[before].push_back(after);
  predecessors_[after].push_back(before);
  ++edge_count_;
}

bool Precedence_graph::has_edge(Service_id before, Service_id after) const {
  QUEST_EXPECTS(before < size() && after < size(),
                "precedence edge endpoint out of range");
  const auto& out = successors_[before];
  return std::find(out.begin(), out.end(), after) != out.end();
}

const std::vector<Service_id>& Precedence_graph::successors(
    Service_id id) const {
  QUEST_EXPECTS(id < size(), "service id out of range");
  return successors_[id];
}

const std::vector<Service_id>& Precedence_graph::predecessors(
    Service_id id) const {
  QUEST_EXPECTS(id < size(), "service id out of range");
  return predecessors_[id];
}

bool Precedence_graph::feasible_next(Service_id id,
                                     const std::vector<char>& placed) const {
  QUEST_EXPECTS(id < size(), "service id out of range");
  QUEST_EXPECTS(placed.size() == size(), "membership mask size mismatch");
  for (const Service_id pred : predecessors_[id]) {
    if (!placed[pred]) return false;
  }
  return true;
}

bool Precedence_graph::respects(const std::vector<Service_id>& order) const {
  std::vector<char> placed(size(), 0);
  for (const Service_id id : order) {
    QUEST_EXPECTS(id < size(), "ordering references out-of-range service");
    QUEST_EXPECTS(!placed[id], "ordering repeats a service");
    if (!feasible_next(id, placed)) return false;
    placed[id] = 1;
  }
  // Services not in a partial ordering impose no violated edges by
  // themselves; completed orderings have checked every edge.
  return true;
}

std::vector<Service_id> Precedence_graph::topological_order() const {
  const std::size_t n = size();
  std::vector<std::size_t> missing(n);
  for (Service_id v = 0; v < n; ++v) missing[v] = predecessors_[v].size();
  std::vector<Service_id> ready;
  for (Service_id v = 0; v < n; ++v) {
    if (missing[v] == 0) ready.push_back(v);
  }
  std::vector<Service_id> order;
  order.reserve(n);
  while (!ready.empty()) {
    // Smallest-id-first keeps the result deterministic.
    const auto it = std::min_element(ready.begin(), ready.end());
    const Service_id v = *it;
    ready.erase(it);
    order.push_back(v);
    for (const Service_id w : successors_[v]) {
      if (--missing[w] == 0) ready.push_back(w);
    }
  }
  QUEST_ASSERT(order.size() == n, "precedence graph contains a cycle");
  return order;
}

bool Precedence_graph::reachable(Service_id from, Service_id to) const {
  QUEST_EXPECTS(from < size() && to < size(), "service id out of range");
  if (from == to) return true;
  std::vector<char> seen(size(), 0);
  std::vector<Service_id> stack{from};
  seen[from] = 1;
  while (!stack.empty()) {
    const Service_id v = stack.back();
    stack.pop_back();
    for (const Service_id w : successors_[v]) {
      if (w == to) return true;
      if (!seen[w]) {
        seen[w] = 1;
        stack.push_back(w);
      }
    }
  }
  return false;
}

double Precedence_graph::count_linear_extensions() const {
  const std::size_t n = size();
  QUEST_EXPECTS(n <= 24, "linear-extension counting is limited to n <= 24");
  // Predecessor masks.
  std::vector<std::uint32_t> pred_mask(n, 0);
  for (Service_id v = 0; v < n; ++v) {
    for (const Service_id p : predecessors_[v]) {
      pred_mask[v] |= (1u << p);
    }
  }
  const std::size_t full = std::size_t{1} << n;
  std::vector<double> ways(full, 0.0);
  ways[0] = 1.0;
  for (std::size_t mask = 0; mask < full; ++mask) {
    if (ways[mask] == 0.0) continue;
    for (Service_id v = 0; v < n; ++v) {
      const std::uint32_t bit = 1u << v;
      if (mask & bit) continue;
      if ((pred_mask[v] & mask) != pred_mask[v]) continue;
      ways[mask | bit] += ways[mask];
    }
  }
  return ways[full - 1];
}

}  // namespace quest::constraints
