#include "quest/core/bnb_par.hpp"

#include <atomic>
#include <bit>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "quest/common/error.hpp"
#include "quest/core/bounds.hpp"
#include "quest/core/search_driver.hpp"
#include "quest/opt/parallel_control.hpp"
#include "quest/opt/search_control.hpp"

namespace quest::core {

using model::Plan;
using model::Service_id;

namespace {

/// The shared incumbent: rho lives in one atomic as the double's bit
/// pattern (CAS on cost bits — lock-free on the prune path, which every
/// worker hits constantly), the winning plan and the stream behind a
/// mutex (taken only on actual improvements, which are rare).
class Shared_incumbent {
 public:
  explicit Shared_incumbent(opt::Shared_search_control& control)
      : control_(&control),
        bits_(std::bit_cast<std::uint64_t>(
            std::numeric_limits<double>::infinity())) {}

  double rho() const noexcept {
    return std::bit_cast<double>(bits_.load(std::memory_order_acquire));
  }

  void offer(std::span<const Service_id> order, double cost) {
    std::uint64_t observed = bits_.load(std::memory_order_acquire);
    while (cost < std::bit_cast<double>(observed)) {
      if (bits_.compare_exchange_weak(observed,
                                      std::bit_cast<std::uint64_t>(cost),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        publish(order, cost);
        return;
      }
    }
  }

  /// Post-join accessors (no concurrent writers left).
  double cost() const noexcept { return best_cost_; }
  const Plan& best() const noexcept { return best_; }

 private:
  void publish(std::span<const Service_id> order, double cost) {
    std::lock_guard<std::mutex> lock(mutex_);
    // A racing CAS winner with a smaller cost may have published first;
    // the plan must track the true minimum, not CAS order.
    if (cost < best_cost_) {
      best_cost_ = cost;
      best_ = Plan(std::vector<Service_id>(order.begin(), order.end()));
      control_->note_incumbent(best_, cost);
    }
  }

  opt::Shared_search_control* control_;
  std::atomic<std::uint64_t> bits_;
  std::mutex mutex_;
  double best_cost_ = std::numeric_limits<double>::infinity();
  Plan best_;
};

/// Reconstruction control: only the stop token matters — the search
/// budget was already satisfied when the parallel phase completed, and
/// the post-pass must stay cancellable without re-arming node limits.
class Rebuild_control {
 public:
  explicit Rebuild_control(const opt::Stop_token& stop) : stop_(&stop) {}
  bool should_stop() const { return stop_->stop_requested(); }

 private:
  const opt::Stop_token* stop_;
};

/// The deterministic post-pass (see bnb_par.hpp): a sequential DFS in
/// ascending service-id order that finds the lexicographically smallest
/// complete plan whose cost is <= target (== the proven optimum).
/// Pruning is sound and equality-admitting — a prefix is abandoned only
/// when provably no completion costs <= target — so the first complete
/// plan the DFS reaches is the canonical one.
class Canonical_rebuild {
 public:
  Canonical_rebuild(const model::Instance& instance,
                    const model::Cost_model& model,
                    const constraints::Precedence_graph* precedence,
                    const Bound_provider& bounds, double target,
                    const Rebuild_control& control,
                    opt::Search_stats& stats)
      : instance_(instance),
        model_(model),
        precedence_(precedence),
        bounds_(bounds),
        target_(target),
        control_(control),
        stats_(stats),
        eval_(instance, model),
        placed_(instance.size()) {}

  /// True when the canonical plan was found (then plan() holds it);
  /// false when aborted by the stop token or — an fp corner the caller
  /// covers with the incumbent — no plan re-evaluated to <= target.
  bool run() { return dfs() && !aborted_; }

  Plan plan() const { return eval_.plan(); }

 private:
  bool feasible(Service_id id) const {
    return !placed_.test(id) &&
           (!precedence_ || precedence_->feasible_next(id, placed_.chars()));
  }

  void append(Service_id id) {
    eval_.append(id);
    placed_.set(id);
  }
  void pop() {
    placed_.reset(eval_.last());
    eval_.pop();
  }

  /// On success the found plan is left assembled in eval_.
  bool dfs() {
    if (eval_.full()) return eval_.complete_cost() <= target_;
    if (control_.should_stop()) {
      aborted_ = true;
      return false;
    }

    if (eval_.size() >= 2) {
      if (eval_.epsilon() > target_) return false;
      auto& remaining = scratch_remaining_;
      if (bounds_.closure_enabled() || bounds_.lower_bound_enabled()) {
        remaining.clear();
        for (Service_id u = 0; u < instance_.size(); ++u) {
          if (!placed_.test(u)) remaining.push_back(u);
        }
      }
      if (bounds_.lower_bound_enabled() &&
          bounds_.lower_bound(eval_, remaining) > target_) {
        return false;
      }
      if (bounds_.closure_enabled() &&
          eval_.epsilon() >= bounds_.epsilon_bar(eval_, remaining)) {
        // Lemma 2: every completion costs exactly epsilon <= target, so
        // each smallest-feasible-id step below succeeds — exactly the
        // continuation the id-ordered DFS itself would take.
        const std::size_t depth = eval_.size();
        while (!eval_.full()) {
          Service_id next = model::invalid_service;
          for (Service_id u = 0; u < instance_.size(); ++u) {
            if (feasible(u)) {
              next = u;
              break;
            }
          }
          QUEST_ASSERT(next != model::invalid_service,
                       "precedence graph admits no completion");
          append(next);
          ++stats_.nodes_expanded;
        }
        // Verify in fp what Lemma 2 promises in exact arithmetic; on an
        // ulp-level mismatch unwind and let the caller fall back.
        if (eval_.complete_cost() <= target_) return true;
        while (eval_.size() > depth) pop();
        return false;
      }
    }

    for (Service_id u = 0; u < instance_.size(); ++u) {
      if (!feasible(u)) continue;
      // The term this append fixes is a lower bound on any completion's
      // cost; admit equality (ties are where canonicalization matters).
      if (!eval_.empty() &&
          std::max(eval_.epsilon(), eval_.term_if_appended(u)) > target_) {
        continue;
      }
      append(u);
      ++stats_.nodes_expanded;
      if (dfs()) return true;
      pop();
      if (aborted_) return false;
    }
    return false;
  }

  const model::Instance& instance_;
  const model::Cost_model& model_;
  const constraints::Precedence_graph* precedence_;
  const Bound_provider& bounds_;
  double target_;
  const Rebuild_control& control_;
  opt::Search_stats& stats_;

  model::Partial_plan_evaluator eval_;
  Placed_set placed_;
  std::vector<Service_id> scratch_remaining_;
  bool aborted_ = false;
};

/// A worker's deque of root tasks (indices into the sorted pair list).
/// The owner pops its front (cheapest remaining); thieves pop a victim's
/// back (costliest, most prunable — cheap to lose).
struct Work_queue {
  std::mutex mutex;
  std::deque<std::uint32_t> tasks;
};

constexpr std::uint32_t no_task = 0xFFFFFFFFu;

std::uint32_t next_task(std::vector<Work_queue>& queues, std::size_t self) {
  {
    Work_queue& own = queues[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      const std::uint32_t task = own.tasks.front();
      own.tasks.pop_front();
      return task;
    }
  }
  for (std::size_t offset = 1; offset < queues.size(); ++offset) {
    Work_queue& victim = queues[(self + offset) % queues.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      const std::uint32_t task = victim.tasks.back();
      victim.tasks.pop_back();
      return task;
    }
  }
  return no_task;
}

void add_stats(opt::Search_stats& into, const opt::Search_stats& from) {
  into.nodes_expanded += from.nodes_expanded;
  into.complete_plans += from.complete_plans;
  into.incumbent_updates += from.incumbent_updates;
  into.lemma1_cutoffs += from.lemma1_cutoffs;
  into.lemma1_children_skipped += from.lemma1_children_skipped;
  into.lemma2_closures += from.lemma2_closures;
  into.lemma3_backjumps += from.lemma3_backjumps;
  into.lemma3_siblings_skipped += from.lemma3_siblings_skipped;
  into.pairs_explored += from.pairs_explored;
  into.ebar_evaluations += from.ebar_evaluations;
  into.lower_bound_prunes += from.lower_bound_prunes;
}

}  // namespace

Bnb_par_optimizer::Bnb_par_optimizer(Bnb_par_options options)
    : options_(options) {}

std::string Bnb_par_optimizer::name() const {
  std::string name = "bnb-par";
  if (options_.search.ebar_mode == Epsilon_bar_mode::loose) name += "-loose";
  if (!options_.search.enable_closure) name += "-noclosure";
  if (!options_.search.enable_backjump) name += "-nojump";
  if (options_.search.enable_lower_bound) name += "-lb";
  return name;
}

std::size_t Bnb_par_optimizer::effective_threads() const {
  if (options_.threads != 0) return options_.threads;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

opt::Result Bnb_par_optimizer::optimize(const opt::Request& request) {
  opt::validate_request(request);
  QUEST_EXPECTS(options_.search.suboptimality == 0.0,
                "bnb-par is exact-only: suboptimality must be 0");
  const auto& instance = *request.instance;
  const std::size_t n = instance.size();
  const std::size_t threads = effective_threads();

  opt::Result result;

  if (n == 1) {
    opt::Search_stats stats;
    opt::Search_control control(request, stats);
    result.plan = Plan::identity(1);
    result.cost = model::bottleneck_cost(instance, result.plan, request.model);
    ++stats.complete_plans;
    control.note_final_incumbent(result.plan, result.cost);
    stats.engine_threads = 1;
    result.stats = stats;
    control.finish(result, true);
    return result;
  }

  Bound_config bound_config;
  bound_config.ebar_mode = options_.search.ebar_mode;
  bound_config.enable_closure = options_.search.enable_closure;
  bound_config.enable_lower_bound = options_.search.enable_lower_bound;
  // Computed once, shared read-only by every worker and the post-pass.
  const Bound_provider bounds(instance, request.model, bound_config);

  Driver_config config;
  config.relax = 1.0;
  config.enable_backjump = options_.search.enable_backjump;

  opt::Shared_search_control shared(request);
  Shared_incumbent incumbent(shared);

  // Warm starts run on the calling thread before workers spawn, exactly
  // like the sequential engine's pre-loop phase.
  opt::Search_stats main_stats;
  if (request.warm_start != nullptr) {
    ++main_stats.complete_plans;
    incumbent.offer(request.warm_start->order(),
                    model::bottleneck_cost(instance, *request.warm_start,
                                           request.model));
  }
  const std::vector<Pair_seed> pairs = build_pair_seeds(
      instance, request.model, request.precedence);
  if (options_.search.warm_start) {
    opt::Worker_control main_control(shared, main_stats);
    Search_driver<Shared_incumbent, opt::Worker_control> main_driver(
        instance, request.model, request.precedence, config, bounds,
        incumbent, main_control, main_stats);
    main_driver.greedy_warm_start(pairs);
    main_control.flush_work();
  }

  // Root decomposition: the sorted pair seeds, dealt round-robin so every
  // worker starts near the cheap (hard-to-prune) end of the list.
  std::vector<Work_queue> queues(threads);
  for (std::uint32_t i = 0; i < pairs.size(); ++i) {
    queues[i % threads].tasks.push_back(i);
  }

  std::vector<opt::Search_stats> worker_stats(threads);
  std::vector<std::exception_ptr> worker_errors(threads);

  auto worker = [&](std::size_t index) {
    try {
      opt::Search_stats& stats = worker_stats[index];
      opt::Worker_control control(shared, stats);
      Search_driver<Shared_incumbent, opt::Worker_control> driver(
          instance, request.model, request.precedence, config, bounds,
          incumbent, control, stats);
      while (!control.stopped()) {
        const std::uint32_t task = next_task(queues, index);
        if (task == no_task) break;
        if (control.should_stop()) break;
        const Pair_seed& pair = pairs[task];
        // Lemma 1 at the root: this pair's first term already reaches
        // the shared incumbent. (No sorted-list early exit here — a
        // stolen task may be cheaper than the next owned one — but the
        // check itself is the same prune. The sequential engine's
        // closed-leader trick is deliberately absent: it is only sound
        // when pairs arrive in ascending first_term order, which work
        // stealing breaks, and every pair it would prune is first_term
        // >= rho anyway once the closing plan has been offered.)
        if (pair.first_term >= incumbent.rho()) continue;
        ++stats.pairs_explored;
        driver.run_pair(pair);
        if (control.stopped()) break;
      }
      control.flush_work();
    } catch (...) {
      worker_errors[index] = std::current_exception();
      shared.request_stop(opt::Termination::cancelled);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t index = 0; index < threads; ++index) {
    pool.emplace_back(worker, index);
  }
  for (auto& thread : pool) thread.join();
  for (auto& error : worker_errors) {
    if (error) std::rethrow_exception(error);
  }

  // Snapshot before the post-pass: a stop token firing *during*
  // reconstruction must not retroactively void the completed proof.
  const bool search_stopped = shared.stopped();

  opt::Search_stats stats = main_stats;
  for (const auto& per_worker : worker_stats) add_stats(stats, per_worker);
  stats.pairs_total = pairs.size();
  stats.incumbent_updates = shared.incumbent_updates();
  stats.engine_threads = threads;

  if (!search_stopped) {
    QUEST_ASSERT(incumbent.best().size() == n,
                 "branch-and-bound must visit at least one complete plan");
    result.cost = incumbent.cost();
    Rebuild_control rebuild_control(request.stop);
    Canonical_rebuild rebuild(instance, request.model, request.precedence,
                              bounds, result.cost, rebuild_control, stats);
    result.plan = rebuild.run() ? rebuild.plan() : incumbent.best();
    result.stats = stats;
    result.proven_optimal = true;
    result.termination = opt::Termination::optimal;
  } else {
    result.plan = incumbent.best();
    result.cost = incumbent.cost();
    result.stats = stats;
    result.proven_optimal = false;
    result.termination = shared.reason();
  }
  result.elapsed_seconds = shared.elapsed_seconds();
  return result;
}

}  // namespace quest::core
