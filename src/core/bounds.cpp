#include "quest/core/bounds.hpp"

#include <utility>

namespace quest::core {

Bound_provider::Bound_provider(const model::Instance& instance,
                               const model::Cost_model& model,
                               const Bound_config& config) {
  // Lemma-2 closure needs sound attainable-selectivity *upper* bounds
  // from the cost model; when they overflow the search falls back to
  // closure-disabled operation. The admissible lower bound only needs
  // the always-finite lower bounds, so it survives the fallback.
  auto bounds = model.selectivity_bounds(instance);
  const bool closure_on =
      config.enable_closure && bounds.has_value() && bounds->hi_sound;
  const bool lower_on = config.enable_lower_bound && bounds.has_value();
  if (lower_on) lower_.emplace(instance, model, *bounds);
  if (closure_on) {
    ebar_.emplace(instance, model, std::move(*bounds),
                  config.ebar_mode);
  }
}

}  // namespace quest::core
