#include "quest/core/branch_and_bound.hpp"

#include <vector>

#include "quest/common/error.hpp"
#include "quest/core/bounds.hpp"
#include "quest/core/search_driver.hpp"
#include "quest/opt/search_control.hpp"

namespace quest::core {

using model::Plan;

Bnb_optimizer::Bnb_optimizer(Bnb_options options)
    : options_(options), store_(options.prefix_store_capacity) {}

std::string Bnb_optimizer::name() const {
  std::string name = "bnb";
  if (options_.ebar_mode == Epsilon_bar_mode::loose) name += "-loose";
  if (!options_.enable_closure) name += "-noclosure";
  if (!options_.enable_backjump) name += "-nojump";
  if (options_.enable_lower_bound) name += "-lb";
  if (options_.suboptimality > 0.0) {
    name += "-subopt";
  }
  return name;
}

opt::Result Bnb_optimizer::optimize(const opt::Request& request) {
  opt::validate_request(request);
  QUEST_EXPECTS(options_.suboptimality >= 0.0,
                "suboptimality must be non-negative");
  store_.clear();
  const auto& instance = *request.instance;
  const std::size_t n = instance.size();

  opt::Result result;
  opt::Search_stats stats;
  opt::Search_control control(request, stats);

  if (n == 1) {
    result.plan = Plan::identity(1);
    result.cost = model::bottleneck_cost(instance, result.plan, request.model);
    ++stats.complete_plans;
    control.note_final_incumbent(result.plan, result.cost);
    result.stats = stats;
    control.finish(result, true);
    return result;
  }

  Bound_config bound_config;
  bound_config.ebar_mode = options_.ebar_mode;
  bound_config.enable_closure = options_.enable_closure;
  bound_config.enable_lower_bound = options_.enable_lower_bound;
  const Bound_provider bounds(instance, request.model, bound_config);

  Driver_config config;
  config.relax = 1.0 + options_.suboptimality;
  config.enable_backjump = options_.enable_backjump;
  config.record_pruned_prefixes = options_.record_pruned_prefixes;

  Local_incumbent incumbent(control);
  Search_driver<Local_incumbent, opt::Search_control> driver(
      instance, request.model, request.precedence, config, bounds, incumbent,
      control, stats, &store_);

  // Request-supplied warm start (validated by validate_request): a
  // feasible plan's cost is an upper bound on the optimum, so priming
  // the incumbent with it tightens every prune without voiding the
  // optimality proof.
  if (request.warm_start != nullptr) {
    ++stats.complete_plans;
    incumbent.offer(request.warm_start->order(),
                    model::bottleneck_cost(instance, *request.warm_start,
                                           request.model));
  }

  const std::vector<Pair_seed> pairs = build_pair_seeds(
      instance, request.model, request.precedence);
  if (options_.warm_start) driver.greedy_warm_start(pairs);
  stats.pairs_total = pairs.size();

  std::vector<char> closed_leader(n, 0);
  for (const Pair_seed& pair : pairs) {
    if (control.should_stop()) break;
    // Lemma-1 global exit: the list is sorted, so no remaining pair can
    // start a plan cheaper than the incumbent (relaxed by the
    // suboptimality factor when bounded-suboptimal search is on).
    if (pair.first_term * config.relax >= incumbent.rho()) break;
    // Lemma 3 at the root: a back-jump to depth 0 established that every
    // successor of this leader yields cost >= rho.
    if (closed_leader[pair.a]) {
      ++stats.lemma3_siblings_skipped;
      continue;
    }
    ++stats.pairs_explored;
    const std::size_t target = driver.run_pair(pair);
    if (control.stopped()) break;
    if (target == 0) closed_leader[pair.a] = 1;
  }

  QUEST_ASSERT(incumbent.best().size() == n || control.stopped(),
               "branch-and-bound must visit at least one complete plan");
  result.plan = incumbent.best();
  result.cost = incumbent.cost();
  result.stats = stats;
  control.finish(result, options_.suboptimality == 0.0);
  return result;
}

}  // namespace quest::core
