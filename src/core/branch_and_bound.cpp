#include "quest/core/branch_and_bound.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <span>
#include <tuple>
#include <vector>

#include "quest/common/error.hpp"
#include "quest/opt/search_control.hpp"

namespace quest::core {

using constraints::Precedence_graph;
using model::Cost_model;
using model::Instance;
using model::Partial_plan_evaluator;
using model::Plan;
using model::Send_policy;
using model::Service_id;
using model::stage_term;

namespace {

/// One DFS over the pair-seeded search tree. A fresh Search is built per
/// optimize() call; all scratch state lives here.
class Search {
 public:
  Search(const opt::Request& request, const Bnb_options& options,
         Prefix_store& store)
      : instance_(*request.instance),
        model_(request.model),
        policy_(request.model.policy()),
        precedence_(request.precedence),
        warm_plan_(request.warm_start),
        options_(options),
        store_(store),
        eval_(instance_, model_),
        relax_(1.0 + options.suboptimality),
        placed_(instance_.size(), 0),
        scratch_(instance_.size() + 1),
        control_(request, stats_) {
    QUEST_EXPECTS(options.suboptimality >= 0.0,
                  "suboptimality must be non-negative");
    // The measures need sound attainable-selectivity bounds from the cost
    // model; when none exist the search falls back to Lemma-2-disabled,
    // lower-bound-disabled operation (Lemma 1/3 stay exact regardless).
    // Lemma-2 closure needs sound attainable-selectivity *upper* bounds
    // from the cost model; when they overflow the search falls back to
    // closure-disabled operation. The admissible lower bound only needs
    // the always-finite lower bounds, so it survives the fallback
    // (Lemma 1/3 stay exact regardless).
    auto bounds = model_.selectivity_bounds(instance_);
    closure_on_ =
        options.enable_closure && bounds.has_value() && bounds->hi_sound;
    lower_bound_on_ = options.enable_lower_bound && bounds.has_value();
    if (lower_bound_on_) lower_.emplace(instance_, policy_, *bounds);
    if (closure_on_) {
      ebar_.emplace(instance_, policy_, std::move(*bounds),
                    options.ebar_mode);
    }
  }

  opt::Result run() {
    const std::size_t n = instance_.size();
    opt::Result result;

    if (n == 1) {
      result.plan = Plan::identity(1);
      result.cost = model::bottleneck_cost(instance_, result.plan, model_);
      ++stats_.complete_plans;
      control_.note_final_incumbent(result.plan, result.cost);
      result.stats = stats_;
      control_.finish(result, true);
      return result;
    }

    // Request-supplied warm start (validated by validate_request): a
    // feasible plan's cost is an upper bound on the optimum, so priming
    // the incumbent with it tightens every prune without voiding the
    // optimality proof.
    if (warm_plan_ != nullptr) {
      ++stats_.complete_plans;
      offer_incumbent(*warm_plan_,
                      model::bottleneck_cost(instance_, *warm_plan_, model_));
    }
    if (options_.warm_start) greedy_warm_start();

    // Seed prefixes: every feasible ordered pair, cheapest first term
    // first. The first term is the plan's position-0 stage cost, a lower
    // bound (Lemma 1) on any plan starting with that pair.
    struct Pair_seed {
      double first_term;
      Service_id a;
      Service_id b;
    };
    std::vector<Pair_seed> pairs;
    pairs.reserve(n * (n - 1));
    for (Service_id a = 0; a < n; ++a) {
      if (precedence_ && !precedence_->predecessors(a).empty()) continue;
      const auto& sa = instance_.service(a);
      for (Service_id b = 0; b < n; ++b) {
        if (b == a) continue;
        if (precedence_) {
          const auto& preds = precedence_->predecessors(b);
          const bool ok = std::all_of(preds.begin(), preds.end(),
                                      [a](Service_id p) { return p == a; });
          if (!ok) continue;
        }
        pairs.push_back({stage_term(sa.cost, sa.selectivity,
                                    instance_.transfer(a, b), policy_),
                         a, b});
      }
    }
    std::sort(pairs.begin(), pairs.end(), [](const auto& x, const auto& y) {
      return std::tie(x.first_term, x.a, x.b) <
             std::tie(y.first_term, y.a, y.b);
    });
    stats_.pairs_total = pairs.size();

    std::vector<char> closed_leader(n, 0);
    for (const Pair_seed& pair : pairs) {
      if (control_.should_stop()) break;
      // Lemma-1 global exit: the list is sorted, so no remaining pair can
      // start a plan cheaper than the incumbent (relaxed by the
      // suboptimality factor when bounded-suboptimal search is on).
      if (pair.first_term * relax_ >= rho_) break;
      // Lemma 3 at the root: a back-jump to depth 0 established that every
      // successor of this leader yields cost >= rho.
      if (closed_leader[pair.a]) {
        ++stats_.lemma3_siblings_skipped;
        continue;
      }
      ++stats_.pairs_explored;
      append(pair.a);
      append(pair.b);
      stats_.nodes_expanded += 2;
      const std::size_t target = expand();
      pop();
      pop();
      if (control_.stopped()) break;
      if (target == 0) closed_leader[pair.a] = 1;
    }

    QUEST_ASSERT(best_.size() == n || control_.stopped(),
                 "branch-and-bound must visit at least one complete plan");
    result.plan = best_;
    result.cost = rho_;
    result.stats = stats_;
    control_.finish(result, options_.suboptimality == 0.0);
    return result;
  }

 private:
  // ---- plan mutation ------------------------------------------------

  void append(Service_id id) {
    eval_.append(id);
    placed_[id] = 1;
  }
  void pop() {
    placed_[eval_.last()] = 0;
    eval_.pop();
  }

  bool feasible(Service_id id) const {
    return !placed_[id] &&
           (!precedence_ || precedence_->feasible_next(id, placed_));
  }

  // ---- incumbent handling ---------------------------------------------

  void offer_incumbent(const Plan& plan, double cost) {
    if (cost < rho_) {
      rho_ = cost;
      best_ = plan;
      control_.note_incumbent(best_, rho_);
    }
  }

  /// Completes the current partial plan with any precedence-feasible
  /// ordering of the remaining services (smallest id first) and returns it.
  Plan feasible_completion() const {
    std::vector<Service_id> order = eval_.order();
    std::vector<char> placed = placed_;
    const std::size_t n = instance_.size();
    while (order.size() < n) {
      bool appended = false;
      for (Service_id u = 0; u < n; ++u) {
        if (placed[u]) continue;
        if (precedence_ && !precedence_->feasible_next(u, placed)) continue;
        order.push_back(u);
        placed[u] = 1;
        appended = true;
        break;
      }
      QUEST_ASSERT(appended, "precedence graph admits no completion");
    }
    return Plan(std::move(order));
  }

  void greedy_warm_start() {
    // Cheapest-successor descent: exactly the search's first path, run
    // ahead of time so sorted-pair enumeration can cut earlier.
    const std::size_t n = instance_.size();
    double best_first = std::numeric_limits<double>::infinity();
    Service_id best_a = model::invalid_service;
    Service_id best_b = model::invalid_service;
    for (Service_id a = 0; a < n; ++a) {
      if (precedence_ && !precedence_->predecessors(a).empty()) continue;
      const auto& sa = instance_.service(a);
      for (Service_id b = 0; b < n; ++b) {
        if (b == a) continue;
        if (precedence_) {
          const auto& preds = precedence_->predecessors(b);
          const bool ok = std::all_of(preds.begin(), preds.end(),
                                      [a](Service_id p) { return p == a; });
          if (!ok) continue;
        }
        const double term = stage_term(sa.cost, sa.selectivity,
                                       instance_.transfer(a, b), policy_);
        if (term < best_first) {
          best_first = term;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_a == model::invalid_service) return;
    append(best_a);
    append(best_b);
    while (!eval_.full()) {
      Service_id next = model::invalid_service;
      double next_t = std::numeric_limits<double>::infinity();
      for (Service_id u = 0; u < n; ++u) {
        if (!feasible(u)) continue;
        const double t = instance_.transfer(eval_.last(), u);
        if (t < next_t) {
          next_t = t;
          next = u;
        }
      }
      QUEST_ASSERT(next != model::invalid_service,
                   "greedy descent found no feasible successor");
      append(next);
    }
    offer_incumbent(eval_.plan(), eval_.complete_cost());
    while (!eval_.empty()) pop();
  }

  // ---- the DFS ---------------------------------------------------------

  /// Expands the node for the current partial plan (size >= 2). Returns
  /// the plan size at which sibling iteration resumes: invocations whose
  /// plan is larger unwind ("the plan is pruned up to, without including,
  /// the bottleneck service"); the invocation at that size continues with
  /// its next sibling.
  std::size_t expand() {
    if (control_.should_stop()) return 0;
    const std::size_t k = eval_.size();

    if (eval_.full()) {
      ++stats_.complete_plans;
      const double cost = eval_.complete_cost();
      offer_incumbent(eval_.plan(), cost);
      // Lemma-3 back-jump driven by the complete plan's bottleneck: every
      // untried successor of the bottleneck service is costlier (children
      // are expanded cheapest-first), so every such plan costs >= rho.
      if (cost > eval_.epsilon()) return k - 1;  // bottleneck is the sink term
      return backjump_target(k);
    }

    auto& remaining = scratch_remaining_;
    if (closure_on_ || lower_bound_on_) {
      remaining.clear();
      for (Service_id u = 0; u < instance_.size(); ++u) {
        if (!placed_[u]) remaining.push_back(u);
      }
    }

    if (lower_bound_on_) {
      // quest extension: admissible lower bound on the undetermined terms
      // (see core::Lower_bound). A Lemma-1-style prune with a view of the
      // future, not just the past.
      const double bound =
          std::max(eval_.epsilon(), lower_->evaluate(eval_, remaining));
      if (bound * relax_ >= rho_) {
        ++stats_.lower_bound_prunes;
        return k - 1;
      }
    }

    if (closure_on_) {
      ++stats_.ebar_evaluations;
      const double ebar = ebar_->evaluate(eval_, remaining);
      if (eval_.epsilon() >= ebar) {
        // Lemma 2: the ordering of the remaining services cannot affect
        // the bottleneck cost; every completion costs exactly epsilon.
        ++stats_.lemma2_closures;
        if (eval_.epsilon() < rho_) {
          const Plan certificate = feasible_completion();
          ++stats_.complete_plans;
          offer_incumbent(
              certificate,
              model::bottleneck_cost(instance_, certificate, model_));
        }
        return backjump_target(k);
      }
    }

    // Children: precedence-feasible remaining services, cheapest transfer
    // from the current last service first (the paper's expansion policy —
    // Lemma 3's correctness depends on this order).
    auto& candidates = scratch_[k];
    candidates.clear();
    const Service_id last = eval_.last();
    for (Service_id u = 0; u < instance_.size(); ++u) {
      if (feasible(u)) candidates.push_back({instance_.transfer(last, u), u});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& x, const Candidate& y) {
                return std::tie(x.transfer, x.id) < std::tie(y.transfer, y.id);
              });

    const double eps = eval_.epsilon();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (control_.should_stop()) return 0;
      const Candidate& candidate = candidates[i];
      // Lemma 1: the term this append would fix is non-decreasing along
      // the sorted sibling list; once it reaches rho, nothing that starts
      // here (or with any later sibling) can improve (by more than the
      // suboptimality factor, when relaxation is on).
      if (std::max(eps, eval_.term_if_appended(candidate.id)) * relax_ >=
          rho_) {
        ++stats_.lemma1_cutoffs;
        stats_.lemma1_children_skipped += candidates.size() - i;
        break;
      }
      append(candidate.id);
      ++stats_.nodes_expanded;
      const std::size_t target = expand();
      pop();
      if (target < k) {
        stats_.lemma3_siblings_skipped += candidates.size() - i - 1;
        return target;
      }
    }
    return k - 1;
  }

  /// Implements the Lemma-3 unwind for the current plan: records the
  /// prefix up to and including the bottleneck service in V and returns
  /// the bottleneck's position (the size at which the search resumes).
  std::size_t backjump_target(std::size_t k) {
    const std::size_t bottleneck = eval_.bottleneck_position();
    QUEST_ASSERT(bottleneck + 2 <= k, "bottleneck must have a successor");
    if (!options_.enable_backjump) return k - 1;
    if (options_.record_pruned_prefixes) {
      const auto& order = eval_.order();
      store_.record(std::span(order.data(), bottleneck + 1));
    }
    ++stats_.lemma3_backjumps;
    return bottleneck;
  }

  struct Candidate {
    double transfer;
    Service_id id;
  };

  const Instance& instance_;
  const Cost_model& model_;
  Send_policy policy_;
  const Precedence_graph* precedence_;
  const Plan* warm_plan_;
  const Bnb_options& options_;
  Prefix_store& store_;

  Partial_plan_evaluator eval_;
  std::optional<Epsilon_bar> ebar_;
  std::optional<Lower_bound> lower_;
  bool closure_on_ = false;
  bool lower_bound_on_ = false;
  double relax_;

  std::vector<char> placed_;
  std::vector<std::vector<Candidate>> scratch_;
  std::vector<Service_id> scratch_remaining_;

  double rho_ = std::numeric_limits<double>::infinity();
  Plan best_;
  opt::Search_stats stats_;
  opt::Search_control control_;  // binds stats_: keep it declared after
};

}  // namespace

Bnb_optimizer::Bnb_optimizer(Bnb_options options)
    : options_(options), store_(options.prefix_store_capacity) {}

std::string Bnb_optimizer::name() const {
  std::string name = "bnb";
  if (options_.ebar_mode == Epsilon_bar_mode::loose) name += "-loose";
  if (!options_.enable_closure) name += "-noclosure";
  if (!options_.enable_backjump) name += "-nojump";
  if (options_.enable_lower_bound) name += "-lb";
  if (options_.suboptimality > 0.0) {
    name += "-subopt";
  }
  return name;
}

opt::Result Bnb_optimizer::optimize(const opt::Request& request) {
  opt::validate_request(request);
  store_.clear();
  Search search(request, options_, store_);
  return search.run();
}

}  // namespace quest::core
