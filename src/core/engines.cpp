#include "quest/core/engines.hpp"

#include "quest/common/error.hpp"
#include "quest/core/bnb_par.hpp"
#include "quest/core/branch_and_bound.hpp"
#include "quest/core/portfolio.hpp"

namespace quest::core {

namespace {

Bnb_options bnb_options_from(const opt::Spec_options& options,
                             bool force_lower_bound) {
  Bnb_options parsed;
  const std::string ebar = options.get_string("ebar", "exact");
  QUEST_EXPECTS(ebar == "exact" || ebar == "loose",
                "bnb option ebar must be 'exact' or 'loose', got '" + ebar +
                    "'");
  parsed.ebar_mode =
      ebar == "exact" ? Epsilon_bar_mode::exact : Epsilon_bar_mode::loose;
  parsed.enable_closure = options.get_bool("closure", parsed.enable_closure);
  parsed.enable_backjump =
      options.get_bool("backjump", parsed.enable_backjump);
  parsed.warm_start = options.get_bool("warm-start", parsed.warm_start);
  parsed.enable_lower_bound =
      force_lower_bound ||
      options.get_bool("lower-bound", parsed.enable_lower_bound);
  parsed.suboptimality = options.get_double("subopt", parsed.suboptimality);
  QUEST_EXPECTS(parsed.suboptimality >= 0.0,
                "bnb option subopt must be non-negative");
  return parsed;
}

void register_core_optimizers(opt::Registry& registry) {
  registry.add(
      "bnb", "the paper's branch-and-bound (exact; Lemma 1/2/3 pruning)",
      {"ebar", "closure", "backjump", "warm-start", "lower-bound", "subopt"},
      [](const opt::Spec_options& options) {
        return std::make_unique<Bnb_optimizer>(
            bnb_options_from(options, false));
      });
  registry.add(
      "bnb-lb",
      "branch-and-bound with the admissible lower bound (sigma > 1 "
      "workloads)",
      {"ebar", "closure", "backjump", "warm-start", "subopt"},
      [](const opt::Spec_options& options) {
        return std::make_unique<Bnb_optimizer>(
            bnb_options_from(options, true));
      });
  registry.add(
      "bnb-par",
      "deterministic parallel branch-and-bound (K workers, shared "
      "incumbent, canonical plan)",
      {"threads", "ebar", "closure", "backjump", "warm-start", "lower-bound"},
      [](const opt::Spec_options& options) {
        Bnb_par_options parsed;
        parsed.search = bnb_options_from(options, false);
        parsed.threads = options.get_size("threads", 0);
        QUEST_EXPECTS(parsed.threads <= 256,
                      "bnb-par option threads must be at most 256");
        return std::make_unique<Bnb_par_optimizer>(parsed);
      });
  registry.add(
      "portfolio",
      "heuristic incumbent + profile-dispatched exact engine under the "
      "budget",
      {"hard-exact-limit", "subopt", "threads"},
      [](const opt::Spec_options& options) {
        Portfolio_options parsed;
        parsed.hard_exact_size_limit =
            options.get_size("hard-exact-limit", parsed.hard_exact_size_limit);
        parsed.suboptimality =
            options.get_double("subopt", parsed.suboptimality);
        QUEST_EXPECTS(parsed.suboptimality >= 0.0,
                      "portfolio option subopt must be non-negative");
        parsed.exact_threads = options.get_size("threads", 0);
        QUEST_EXPECTS(parsed.exact_threads <= 256,
                      "portfolio option threads must be at most 256");
        return std::make_unique<Portfolio_optimizer>(parsed);
      });
}

}  // namespace

opt::Registry& engine_registry() {
  static opt::Registry registry = [] {
    opt::Registry built;
    opt::register_baseline_optimizers(built);
    register_core_optimizers(built);
    return built;
  }();
  return registry;
}

std::unique_ptr<opt::Optimizer> make_optimizer(std::string_view spec) {
  return engine_registry().make(spec);
}

}  // namespace quest::core
