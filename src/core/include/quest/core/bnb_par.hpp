// quest/core/bnb_par.hpp
//
// The deterministic parallel branch-and-bound: K workers run the same
// search kernel the sequential bnb uses (quest/core/search_driver.hpp)
// over per-worker deques of root pair-seed subtrees with work stealing,
// pruning against one shared atomic incumbent.
//
// Determinism contract (for runs that complete — not cancelled, not
// budget-stopped):
//
//  * The returned cost is the exact optimum, identical across runs and
//    thread counts. Every prune compares a sound bound against the
//    current incumbent rho, and rho >= optimum at all times, so no
//    interleaving can prune the optimum away; per-plan costs are
//    bit-deterministic (the evaluator and bottleneck_cost multiply in
//    the same order), so the minimum is one well-defined double.
//
//  * The returned plan is run-to-run stable regardless of interleaving:
//    after the parallel phase proves the optimal cost C, a sequential
//    canonical-reconstruction DFS (ascending service id, sound
//    equality-admitting pruning against C) rebuilds the
//    lexicographically smallest plan of cost C. The reconstruction is
//    bounded by a perfect incumbent from its first node — in practice a
//    small fraction of the search itself.
//
// Runs cut short return the shared incumbent at that point: the cost is
// still a valid upper bound and the plan complete whenever an incumbent
// existed, but neither is canonical.
//
// Unlike the sequential engines, Request::on_incumbent fires from
// whichever worker thread won the incumbent race (serialized, costs
// monotonically improving) — callbacks must be thread-compatible.

#pragma once

#include <cstddef>

#include "quest/core/branch_and_bound.hpp"

namespace quest::core {

/// Tuning for the parallel engine.
struct Bnb_par_options {
  /// Ablation switches shared with the sequential driver. suboptimality
  /// must stay 0: relaxed pruning makes the final cost depend on worker
  /// interleaving, which would void the determinism contract.
  Bnb_options search;
  /// Worker count; 0 resolves to the hardware concurrency at optimize()
  /// time.
  std::size_t threads = 0;
};

/// The parallel optimizer. Reusable across optimize() calls; not
/// thread-safe itself (one instance per calling thread) — it spawns and
/// joins its own workers inside optimize().
class Bnb_par_optimizer final : public opt::Optimizer {
 public:
  explicit Bnb_par_optimizer(Bnb_par_options options = {});

  std::string name() const override;
  opt::Result optimize(const opt::Request& request) override;

  const Bnb_par_options& options() const noexcept { return options_; }

  /// The worker count optimize() will actually run: options().threads,
  /// or the hardware concurrency when that is 0. Also reported in
  /// Result::stats.engine_threads.
  std::size_t effective_threads() const;

 private:
  Bnb_par_options options_;
};

}  // namespace quest::core
