// quest/core/bounds.hpp
//
// The bounds layer of the search kernel: everything the branch-and-bound
// drivers prune with beyond epsilon itself — Lemma-2 closure through
// Epsilon_bar and the quest admissible Lower_bound — resolved once per
// optimize() call behind one provider.
//
// Construction runs the soundness gate that used to live inside the
// monolithic search: the cost model's attainable-selectivity bounds are
// computed once; closure stays off unless the *upper* bounds are sound
// (hi_sound), the lower bound only needs the always-finite lower bounds.
// Lemma 1/3 need no bounds and stay exact regardless.
//
// A Bound_provider is immutable after construction and its evaluations
// are stateless, so a single instance is shared read-only by every worker
// of the parallel driver (bnb-par) — the bounds are computed once, not
// once per thread.

#pragma once

#include <optional>
#include <span>

#include "quest/core/measures.hpp"

namespace quest::core {

/// Which bounds to arm. The enables are requests, not guarantees: the
/// provider still turns a bound off when the cost model cannot support it
/// soundly (see the file comment).
struct Bound_config {
  Epsilon_bar_mode ebar_mode = Epsilon_bar_mode::exact;
  bool enable_closure = true;
  bool enable_lower_bound = false;
};

/// Per-optimize() bound computation, shared read-only across workers.
class Bound_provider {
 public:
  Bound_provider(const model::Instance& instance,
                 const model::Cost_model& model, const Bound_config& config);

  /// True when Lemma-2 closure survived the soundness gate.
  bool closure_enabled() const noexcept { return ebar_.has_value(); }
  /// True when the admissible lower bound is armed.
  bool lower_bound_enabled() const noexcept { return lower_.has_value(); }

  /// Epsilon-bar for the partial plan held by `eval` (see Epsilon_bar).
  /// Precondition: closure_enabled().
  double epsilon_bar(const model::Partial_plan_evaluator& eval,
                     std::span<const model::Service_id> remaining) const {
    return ebar_->evaluate(eval, remaining);
  }

  /// Admissible lower bound on the undetermined terms (see Lower_bound).
  /// Precondition: lower_bound_enabled().
  double lower_bound(const model::Partial_plan_evaluator& eval,
                     std::span<const model::Service_id> remaining) const {
    return lower_->evaluate(eval, remaining);
  }

 private:
  std::optional<Epsilon_bar> ebar_;
  std::optional<Lower_bound> lower_;
};

}  // namespace quest::core
