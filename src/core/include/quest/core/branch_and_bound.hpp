// quest/core/branch_and_bound.hpp
//
// The paper's contribution: a branch-and-bound algorithm that finds the
// linear service ordering minimizing the bottleneck cost metric (Eq. 1) in
// the decentralized setting (heterogeneous pairwise transfer costs), where
// the problem generalizes bottleneck TSP and is NP-hard.
//
// Search structure (Section 2 of the paper):
//  * The root enumerates the at-most n(n-1) size-two prefixes in ascending
//    first-term cost and exits as soon as the cheapest uninvestigated pair
//    already reaches the incumbent rho (Lemma 1).
//  * Each node appends the cheapest not-yet-investigated successor of the
//    plan's last service ("less expensive WS with respect to the last
//    service") — successors are visited in ascending transfer cost.
//  * Lemma 1 (epsilon is non-decreasing): once the newly fixed term reaches
//    rho, the child and all remaining (costlier) siblings are pruned.
//  * Lemma 2 (closure): when epsilon >= epsilon-bar, every completion of
//    the partial plan costs exactly epsilon; the subtree collapses to one
//    candidate value.
//  * Lemma 3 (back-jump): after a closure — or a completed plan — the
//    prefix up to and *including* the bottleneck service joins the pruned
//    store V, and the search unwinds to just *before* the bottleneck
//    service: because successors are expanded cheapest-first, every plan
//    extending a prefix in V costs at least rho.

#pragma once

#include <cstdint>

#include "quest/core/measures.hpp"
#include "quest/core/prefix_store.hpp"
#include "quest/opt/optimizer.hpp"

namespace quest::core {

/// Tuning and ablation switches for the branch-and-bound. Defaults give
/// the full algorithm of the paper.
struct Bnb_options {
  /// Tightness of the epsilon-bar measure (see Epsilon_bar_mode).
  Epsilon_bar_mode ebar_mode = Epsilon_bar_mode::exact;
  /// Lemma 2 subtree closure. Disable to ablate (E2).
  bool enable_closure = true;
  /// Lemma 3 back-jump past the bottleneck service. Disable to ablate.
  bool enable_backjump = true;
  /// Prime the incumbent with a cheapest-successor greedy descent before
  /// the exact search (not part of the paper's description; off by
  /// default).
  bool warm_start = false;
  /// quest extension: join epsilon with the admissible Lower_bound on the
  /// undetermined terms before pruning against the incumbent. Exactness
  /// is preserved; decisive on sigma > 1 instances (ablated in E11).
  bool enable_lower_bound = false;
  /// quest extension: bounded-suboptimality search. Prunes subtrees whose
  /// lower bound multiplied by (1 + suboptimality) reaches the incumbent,
  /// so the returned plan costs at most (1 + suboptimality) times the
  /// optimum. 0 (default) searches exactly; results with a non-zero value
  /// report proven_optimal = false.
  double suboptimality = 0.0;
  /// Maintain the pruned-prefix store V explicitly (observability only;
  /// the back-jump already guarantees pruned prefixes are not revisited).
  bool record_pruned_prefixes = false;
  std::size_t prefix_store_capacity = 4096;
};

/// The paper's optimizer. Reusable across optimize() calls; not
/// thread-safe (use one per thread).
class Bnb_optimizer final : public opt::Optimizer {
 public:
  explicit Bnb_optimizer(Bnb_options options = {});

  std::string name() const override;
  opt::Result optimize(const opt::Request& request) override;

  const Bnb_options& options() const noexcept { return options_; }

  /// The pruned-prefix store V populated by the most recent optimize()
  /// call (empty unless record_pruned_prefixes was set).
  const Prefix_store& pruned_prefixes() const noexcept { return store_; }

 private:
  Bnb_options options_;
  Prefix_store store_;
};

}  // namespace quest::core
