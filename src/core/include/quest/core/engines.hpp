// quest/core/engines.hpp
//
// The process-wide optimizer registry with every quest engine registered:
// the quest::opt baselines plus the paper's branch-and-bound ("bnb",
// "bnb-lb") and the profile-driven portfolio. This is the one entry point
// drivers should use to turn a spec string into an engine:
//
//   auto optimizer = core::make_optimizer("annealing:iterations=50000");
//   auto result = optimizer->optimize(request);
//
// The registry machinery itself lives a layer below (quest/opt/registry.hpp)
// so quest::opt stays free of core dependencies; this header is where the
// layering comes together.

#pragma once

#include <memory>
#include <string_view>

#include "quest/opt/registry.hpp"

namespace quest::core {

/// The fully-populated registry. Built on first call; the reference is
/// mutable so embedders can add their own engines next to the built-ins.
opt::Registry& engine_registry();

/// Shorthand for engine_registry().make(spec).
std::unique_ptr<opt::Optimizer> make_optimizer(std::string_view spec);

}  // namespace quest::core
