// quest/core/measures.hpp
//
// The second of the paper's two guiding measures: epsilon-bar, "the maximum
// possible cost that may be incurred by WSs not currently included in the
// partial plan". epsilon itself (the bottleneck cost of the determined
// terms) lives in model::Partial_plan_evaluator.
//
// For a partial plan C = (s_0 .. s_{k-1}) with remaining set R, epsilon-bar
// upper-bounds every stage term a completion of C can still create:
//
//  * the *dangling* term of s_{k-1}, whose successor is not fixed yet:
//      P_{k-1} * term(c, sigma(s_{k-1} | prefix), max_{u in R} t(s_{k-1}, u))
//  * the term of each u in R, wherever it lands:
//      P_k * A_u * term(c_u, hi_u, T_u)
//    with P_k the conditional-selectivity product of all of C, T_u the
//    largest transfer out of u into R \ {u} or the sink, hi_u the cost
//    model's upper bound on the conditional selectivity u can attain
//    (sigma_u itself under independence), and A_u an amplification factor
//    that is 1 when every hi is <= 1 and otherwise
//    prod_{w in R \ {u}} max(1, hi_w) — the paper's "slightly modified"
//    computation for expanding services, generalized to model-provided
//    bounds.
//
// Lemma 2 then reads: if epsilon >= epsilon-bar, every completion of C
// costs exactly epsilon. Both measures require the cost model to provide
// sound selectivity bounds (Cost_model::selectivity_bounds); when it
// cannot, callers must search without them (branch-and-bound falls back
// to Lemma-2-disabled search automatically).

#pragma once

#include <span>
#include <vector>

#include "quest/model/cost.hpp"
#include "quest/model/cost_model.hpp"
#include "quest/model/instance.hpp"

namespace quest::core {

/// How tight the epsilon-bar upper bound is. Both modes are sound (they
/// never under-estimate); tighter bounds trigger Lemma-2 closures earlier
/// at a higher per-node price. Ablated in experiment E2/E4.
enum class Epsilon_bar_mode {
  /// T_u over the live remaining set: O(|R|^2) per evaluation.
  exact,
  /// T_u precomputed over all services: O(|R|) per evaluation, looser.
  loose,
};

/// Stateless-per-call evaluator for epsilon-bar. Construct once per
/// instance; evaluate() per search node. Precondition: the model provides
/// sound selectivity bounds for the instance.
class Epsilon_bar {
 public:
  Epsilon_bar(const model::Instance& instance, const model::Cost_model& model,
              Epsilon_bar_mode mode);

  /// As above with the model's bounds already computed — the
  /// branch-and-bound computes them once per optimize() call and shares
  /// them between the gate, this measure and Lower_bound. Precondition:
  /// `bounds.hi_sound`.
  Epsilon_bar(const model::Instance& instance,
              const model::Cost_model& model,
              model::Selectivity_bounds bounds, Epsilon_bar_mode mode);

  /// Upper bound over every not-yet-determined stage term for the partial
  /// plan held by `eval`. `remaining` must list exactly the services not in
  /// the plan and be non-empty; `eval` must use the same cost model.
  double evaluate(const model::Partial_plan_evaluator& eval,
                  std::span<const model::Service_id> remaining) const;

  Epsilon_bar_mode mode() const noexcept { return mode_; }

 private:
  const model::Instance* instance_;
  model::Send_policy policy_;
  Epsilon_bar_mode mode_;
  /// Upper bounds on the attainable conditional selectivities.
  std::vector<double> sigma_hi_;
  /// Per-service effective costs under the model's objective (equal to
  /// the instance costs under the mean objective).
  std::vector<double> cost_;
  /// True when every sigma_hi_ entry is <= 1 (no amplification possible).
  bool all_hi_selective_;
  /// loose mode: term(c_u, hi_u, max_global_transfer_out_of_u).
  std::vector<double> loose_term_bound_;
};

/// quest extension (not part of the paper's description): an *admissible
/// lower bound* on the stage terms a completion of the partial plan must
/// still create. Mirrors Epsilon_bar with every max replaced by a min and
/// the model's attainable-selectivity lower bounds in place of the upper
/// ones:
///
///  * the dangling term of the last placed service is at least
///      P_{k-1} * term(c, sigma(last | prefix), min_{u in R} t(last, u));
///  * the term of each unplaced u is at least
///      P_k * (prod_{w in R \ {u}} min(1, lo_w))
///          * term(c_u, lo_u, min(min_{v in R \ {u}} t(u, v), sink_u)).
///
/// Joining this with epsilon tightens Lemma-1 pruning — decisive in the
/// sigma > 1 regime where epsilon alone stays small while the selectivity
/// product (and therefore every future term) must grow. Ablated in E11.
class Lower_bound {
 public:
  Lower_bound(const model::Instance& instance,
              const model::Cost_model& model);

  /// Precomputed-bounds flavor; see the Epsilon_bar counterpart.
  Lower_bound(const model::Instance& instance,
              const model::Cost_model& model,
              const model::Selectivity_bounds& bounds);

  /// Greatest provable lower bound over the not-yet-determined stage terms
  /// of any completion. Preconditions as Epsilon_bar::evaluate.
  double evaluate(const model::Partial_plan_evaluator& eval,
                  std::span<const model::Service_id> remaining) const;

 private:
  const model::Instance* instance_;
  model::Send_policy policy_;
  /// Lower bounds on the attainable conditional selectivities.
  std::vector<double> sigma_lo_;
  /// Per-service effective costs under the model's objective.
  std::vector<double> cost_;
};

}  // namespace quest::core
