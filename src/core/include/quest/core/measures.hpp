// quest/core/measures.hpp
//
// The second of the paper's two guiding measures: epsilon-bar, "the maximum
// possible cost that may be incurred by WSs not currently included in the
// partial plan". epsilon itself (the bottleneck cost of the determined
// terms) lives in model::Partial_plan_evaluator.
//
// For a partial plan C = (s_0 .. s_{k-1}) with remaining set R, epsilon-bar
// upper-bounds every stage term a completion of C can still create:
//
//  * the *dangling* term of s_{k-1}, whose successor is not fixed yet:
//      P_{k-1} * term(c, sigma, max_{u in R} t(s_{k-1}, u))
//  * the term of each u in R, wherever it lands:
//      P_k * A_u * term(c_u, sigma_u, T_u)
//    with P_k the selectivity product of all of C, T_u the largest transfer
//    out of u into R \ {u} or the sink, and A_u an amplification factor that
//    is 1 when all selectivities are <= 1 and otherwise
//    prod_{w in R \ {u}} max(1, sigma_w) — the paper's "slightly modified"
//    computation for expanding services.
//
// Lemma 2 then reads: if epsilon >= epsilon-bar, every completion of C
// costs exactly epsilon.

#pragma once

#include <span>
#include <vector>

#include "quest/model/cost.hpp"
#include "quest/model/instance.hpp"

namespace quest::core {

/// How tight the epsilon-bar upper bound is. Both modes are sound (they
/// never under-estimate); tighter bounds trigger Lemma-2 closures earlier
/// at a higher per-node price. Ablated in experiment E2/E4.
enum class Epsilon_bar_mode {
  /// T_u over the live remaining set: O(|R|^2) per evaluation.
  exact,
  /// T_u precomputed over all services: O(|R|) per evaluation, looser.
  loose,
};

/// Stateless-per-call evaluator for epsilon-bar. Construct once per
/// instance; evaluate() per search node.
class Epsilon_bar {
 public:
  Epsilon_bar(const model::Instance& instance, model::Send_policy policy,
              Epsilon_bar_mode mode);

  /// Upper bound over every not-yet-determined stage term for the partial
  /// plan held by `eval`. `remaining` must list exactly the services not in
  /// the plan and be non-empty.
  double evaluate(const model::Partial_plan_evaluator& eval,
                  std::span<const model::Service_id> remaining) const;

  Epsilon_bar_mode mode() const noexcept { return mode_; }

 private:
  const model::Instance* instance_;
  model::Send_policy policy_;
  Epsilon_bar_mode mode_;
  /// loose mode: term(c_u, sigma_u, max_global_transfer_out_of_u).
  std::vector<double> loose_term_bound_;
};

/// quest extension (not part of the paper's description): an *admissible
/// lower bound* on the stage terms a completion of the partial plan must
/// still create. Mirrors Epsilon_bar with every max replaced by a min:
///
///  * the dangling term of the last placed service is at least
///      P_{k-1} * term(c, sigma, min_{u in R} t(last, u));
///  * the term of each unplaced u is at least
///      P_k * (prod_{w in R \ {u}} min(1, sigma_w))
///          * term(c_u, sigma_u, min(min_{v in R \ {u}} t(u, v), sink_u)).
///
/// Joining this with epsilon tightens Lemma-1 pruning — decisive in the
/// sigma > 1 regime where epsilon alone stays small while the selectivity
/// product (and therefore every future term) must grow. Ablated in E11.
class Lower_bound {
 public:
  Lower_bound(const model::Instance& instance, model::Send_policy policy);

  /// Greatest provable lower bound over the not-yet-determined stage terms
  /// of any completion. Preconditions as Epsilon_bar::evaluate.
  double evaluate(const model::Partial_plan_evaluator& eval,
                  std::span<const model::Service_id> remaining) const;

 private:
  const model::Instance* instance_;
  model::Send_policy policy_;
};

}  // namespace quest::core
