// quest/core/portfolio.hpp
//
// The "just give me a good plan" entry point: a portfolio that
//  1. builds a fast incumbent (greedy + local-search polish),
//  2. picks the exact engine the instance profile favours — the paper's
//     branch-and-bound for selective workloads (E1), the frontier search
//     near the bottleneck-TSP regime (E7), and the branch-and-bound with
//     the admissible lower bound for expanding workloads (E11a) —
//  3. runs it under the request's limits, falling back to the polished
//     heuristic plan when the budget expires first.
//
// The profile-driven dispatch is exactly the guidance EXPERIMENTS.md
// derives from E1/E4/E7; this class just encodes it.

#pragma once

#include "quest/opt/optimizer.hpp"

namespace quest::core {

struct Portfolio_options {
  /// Exact engines are skipped above this size when the profile predicts
  /// a hard (near-TSP or expanding) search; the polished heuristic is
  /// returned with proven_optimal = false.
  std::size_t hard_exact_size_limit = 14;
  /// Accept this relative suboptimality to cut the exact search's cost
  /// (forwarded to Bnb_options::suboptimality).
  double suboptimality = 0.0;
  /// Threads for the exact phase. >= 2 dispatches the bnb/bnb-lb phase
  /// to the parallel engine (bnb-par, with lower-bound=1 standing in
  /// for bnb-lb); 0 or 1 keeps the sequential engines. Exact searches
  /// only — a suboptimality > 0.0 forces the sequential engines, which
  /// are the ones that honor the relaxation. A server embedding caps
  /// this at admission (Server_options::engine_threads), so the nested
  /// parallelism of `workers` concurrent portfolios stays bounded.
  std::size_t exact_threads = 0;
};

class Portfolio_optimizer final : public opt::Optimizer {
 public:
  explicit Portfolio_optimizer(Portfolio_options options = {})
      : options_(options) {}

  std::string name() const override { return "portfolio"; }

  opt::Result optimize(const opt::Request& request) override;

  /// Which engine the profile dispatch picks for this instance
  /// ("bnb", "bnb-lb", "frontier", or "heuristic-only"), exposed for
  /// tests and reporting.
  std::string chosen_engine(const model::Instance& instance) const;

 private:
  Portfolio_options options_;
};

}  // namespace quest::core
