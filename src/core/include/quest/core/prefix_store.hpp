// quest/core/prefix_store.hpp
//
// The paper's data structure V: "all the pruned plans up to the bottleneck
// service (including the latter)". In the implementation the back-jump
// makes V implicit — a DFS never revisits a pruned prefix — so the store
// exists for observability: Lemma-3 verification in tests, search
// post-mortems, and the E2 pruning report.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "quest/model/service.hpp"

namespace quest::core {

/// Bounded log of pruned prefixes.
class Prefix_store {
 public:
  explicit Prefix_store(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// Records a pruned prefix; returns false (and counts a drop) when the
  /// store is at capacity.
  bool record(std::span<const model::Service_id> prefix);

  void clear();

  std::size_t size() const noexcept { return prefixes_.size(); }
  std::size_t dropped() const noexcept { return dropped_; }
  std::size_t capacity() const noexcept { return capacity_; }

  /// True iff `order` equals or extends one of the stored prefixes —
  /// i.e. Lemma 3 says `order` need not be explored.
  bool covers(std::span<const model::Service_id> order) const;

  const std::vector<std::vector<model::Service_id>>& prefixes()
      const noexcept {
    return prefixes_;
  }

 private:
  std::size_t capacity_;
  std::size_t dropped_ = 0;
  std::vector<std::vector<model::Service_id>> prefixes_;
};

}  // namespace quest::core
