// quest/core/search_driver.hpp
//
// The search-driver layer of the kernel: one templated DFS implementing
// the paper's pair-seeded branch-and-bound (Lemma 1/2/3 pruning, the
// quest lower-bound and bounded-suboptimality extensions), parameterized
// on two policies so the sequential and parallel engines share every line
// of the hot path without a virtual call on it:
//
//   Incumbent — `double rho()` (the current prune bound) and
//     `void offer(std::span<const Service_id> order, double cost)`.
//     Local_incumbent (below) backs bnb/bnb-lb with plain fields; the
//     parallel engine substitutes a shared atomic incumbent whose rho()
//     is a relaxed load and whose offer() is a CAS on the cost bits.
//
//   Control — `bool should_stop()` / `bool stopped()`.
//     opt::Search_control backs the sequential engines;
//     opt::Worker_control adds the thread-safe budget/cancellation
//     plumbing for parallel workers.
//
// Each driver owns private node state (evaluator, placed set, candidate
// arena) and shares only the read-only Bound_provider — which is exactly
// what makes K drivers over one instance race-free.

#pragma once

#include <algorithm>
#include <limits>
#include <span>
#include <tuple>
#include <vector>

#include "quest/common/error.hpp"
#include "quest/core/bounds.hpp"
#include "quest/core/prefix_store.hpp"
#include "quest/core/search_kernel.hpp"
#include "quest/opt/search_control.hpp"

namespace quest::core {

/// Driver-level knobs (the bound-level ones live in Bound_config).
struct Driver_config {
  /// 1 + suboptimality: subtrees are pruned when their bound times this
  /// reaches the incumbent. 1 searches exactly.
  double relax = 1.0;
  /// Lemma 3 back-jump past the bottleneck service.
  bool enable_backjump = true;
  /// Record back-jumped prefixes into the Prefix_store (observability).
  bool record_pruned_prefixes = false;
};

/// Sequential incumbent policy: plain fields, improvements visible to the
/// next rho() immediately, streaming through the bound Search_control.
class Local_incumbent {
 public:
  explicit Local_incumbent(opt::Search_control& control)
      : control_(&control) {}

  double rho() const noexcept { return rho_; }

  void offer(std::span<const model::Service_id> order, double cost) {
    if (cost < rho_) {
      rho_ = cost;
      best_ = model::Plan(
          std::vector<model::Service_id>(order.begin(), order.end()));
      control_->note_incumbent(best_, rho_);
    }
  }

  double cost() const noexcept { return rho_; }
  const model::Plan& best() const noexcept { return best_; }

 private:
  opt::Search_control* control_;
  double rho_ = std::numeric_limits<double>::infinity();
  model::Plan best_;
};

/// One DFS engine over the pair-seeded search tree. Drivers are built per
/// optimize() call (per worker, for the parallel engine); all scratch
/// state lives here. See the file comment for the policy concepts.
template <class Incumbent, class Control>
class Search_driver {
 public:
  Search_driver(const model::Instance& instance,
                const model::Cost_model& model,
                const constraints::Precedence_graph* precedence,
                const Driver_config& config, const Bound_provider& bounds,
                Incumbent& incumbent, Control& control,
                opt::Search_stats& stats, Prefix_store* store = nullptr)
      : instance_(instance),
        model_(model),
        precedence_(precedence),
        config_(config),
        bounds_(bounds),
        incumbent_(incumbent),
        control_(control),
        stats_(stats),
        store_(store),
        eval_(instance, model),
        placed_(instance.size()),
        arena_(instance.size()) {}

  /// Expands the subtree rooted at the seed prefix (pair.a, pair.b).
  /// Returns the resume size from expand(): 0 means a root back-jump
  /// closed pair.a as a leader (every costlier pair starting with it is
  /// pruned — the root flavor of Lemma 3).
  std::size_t run_pair(const Pair_seed& pair) {
    append(pair.a);
    append(pair.b);
    stats_.nodes_expanded += 2;
    const std::size_t target = expand();
    pop();
    pop();
    return target;
  }

  /// Cheapest-successor descent from the cheapest feasible pair: exactly
  /// the search's first path, run ahead of time so sorted-pair
  /// enumeration can cut earlier. `pairs` must be the sorted
  /// build_pair_seeds list for this instance.
  void greedy_warm_start(std::span<const Pair_seed> pairs) {
    if (pairs.empty()) return;
    const std::size_t n = instance_.size();
    append(pairs.front().a);
    append(pairs.front().b);
    while (!eval_.full()) {
      model::Service_id next = model::invalid_service;
      double next_t = std::numeric_limits<double>::infinity();
      for (model::Service_id u = 0; u < n; ++u) {
        if (!feasible(u)) continue;
        const double t = instance_.transfer(eval_.last(), u);
        if (t < next_t) {
          next_t = t;
          next = u;
        }
      }
      QUEST_ASSERT(next != model::invalid_service,
                   "greedy descent found no feasible successor");
      append(next);
    }
    incumbent_.offer(eval_.order(), eval_.complete_cost());
    while (!eval_.empty()) pop();
  }

 private:
  // ---- plan mutation ----------------------------------------------------

  void append(model::Service_id id) {
    eval_.append(id);
    placed_.set(id);
  }
  void pop() {
    placed_.reset(eval_.last());
    eval_.pop();
  }

  bool feasible(model::Service_id id) const {
    return !placed_.test(id) &&
           (!precedence_ || precedence_->feasible_next(id, placed_.chars()));
  }

  /// Completes the current partial plan with any precedence-feasible
  /// ordering of the remaining services (smallest id first) and returns
  /// it — the Lemma-2 closure certificate.
  model::Plan feasible_completion() const {
    std::vector<model::Service_id> order = eval_.order();
    std::vector<char> placed = placed_.chars();
    const std::size_t n = instance_.size();
    while (order.size() < n) {
      bool appended = false;
      for (model::Service_id u = 0; u < n; ++u) {
        if (placed[u]) continue;
        if (precedence_ && !precedence_->feasible_next(u, placed)) continue;
        order.push_back(u);
        placed[u] = 1;
        appended = true;
        break;
      }
      QUEST_ASSERT(appended, "precedence graph admits no completion");
    }
    return model::Plan(std::move(order));
  }

  // ---- the DFS ----------------------------------------------------------

  /// Expands the node for the current partial plan (size >= 2). Returns
  /// the plan size at which sibling iteration resumes: invocations whose
  /// plan is larger unwind ("the plan is pruned up to, without including,
  /// the bottleneck service"); the invocation at that size continues with
  /// its next sibling.
  std::size_t expand() {
    if (control_.should_stop()) return 0;
    const std::size_t k = eval_.size();

    if (eval_.full()) {
      ++stats_.complete_plans;
      const double cost = eval_.complete_cost();
      incumbent_.offer(eval_.order(), cost);
      // Lemma-3 back-jump driven by the complete plan's bottleneck: every
      // untried successor of the bottleneck service is costlier (children
      // are expanded cheapest-first), so every such plan costs >= rho.
      if (cost > eval_.epsilon()) return k - 1;  // bottleneck is the sink term
      return backjump_target(k);
    }

    auto& remaining = scratch_remaining_;
    if (bounds_.closure_enabled() || bounds_.lower_bound_enabled()) {
      remaining.clear();
      for (model::Service_id u = 0; u < instance_.size(); ++u) {
        if (!placed_.test(u)) remaining.push_back(u);
      }
    }

    if (bounds_.lower_bound_enabled()) {
      // quest extension: admissible lower bound on the undetermined terms
      // (see core::Lower_bound). A Lemma-1-style prune with a view of the
      // future, not just the past.
      const double bound =
          std::max(eval_.epsilon(), bounds_.lower_bound(eval_, remaining));
      if (bound * config_.relax >= incumbent_.rho()) {
        ++stats_.lower_bound_prunes;
        return k - 1;
      }
    }

    if (bounds_.closure_enabled()) {
      ++stats_.ebar_evaluations;
      const double ebar = bounds_.epsilon_bar(eval_, remaining);
      if (eval_.epsilon() >= ebar) {
        // Lemma 2: the ordering of the remaining services cannot affect
        // the bottleneck cost; every completion costs exactly epsilon.
        ++stats_.lemma2_closures;
        if (eval_.epsilon() < incumbent_.rho()) {
          const model::Plan certificate = feasible_completion();
          ++stats_.complete_plans;
          incumbent_.offer(
              certificate.order(),
              model::bottleneck_cost(instance_, certificate, model_));
        }
        return backjump_target(k);
      }
    }

    // Children: precedence-feasible remaining services, cheapest transfer
    // from the current last service first (the paper's expansion policy —
    // Lemma 3's correctness depends on this order).
    auto& candidates = arena_.row(k);
    candidates.clear();
    const model::Service_id last = eval_.last();
    for (model::Service_id u = 0; u < instance_.size(); ++u) {
      if (feasible(u)) candidates.push_back({instance_.transfer(last, u), u});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& x, const Candidate& y) {
                return std::tie(x.transfer, x.id) < std::tie(y.transfer, y.id);
              });

    const double eps = eval_.epsilon();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (control_.should_stop()) return 0;
      const Candidate& candidate = candidates[i];
      // Lemma 1: the term this append would fix is non-decreasing along
      // the sorted sibling list; once it reaches rho, nothing that starts
      // here (or with any later sibling) can improve (by more than the
      // suboptimality factor, when relaxation is on).
      if (std::max(eps, eval_.term_if_appended(candidate.id)) *
              config_.relax >=
          incumbent_.rho()) {
        ++stats_.lemma1_cutoffs;
        stats_.lemma1_children_skipped += candidates.size() - i;
        break;
      }
      append(candidate.id);
      ++stats_.nodes_expanded;
      const std::size_t target = expand();
      pop();
      if (target < k) {
        stats_.lemma3_siblings_skipped += candidates.size() - i - 1;
        return target;
      }
    }
    return k - 1;
  }

  /// Implements the Lemma-3 unwind for the current plan: records the
  /// prefix up to and including the bottleneck service in V and returns
  /// the bottleneck's position (the size at which the search resumes).
  std::size_t backjump_target(std::size_t k) {
    const std::size_t bottleneck = eval_.bottleneck_position();
    QUEST_ASSERT(bottleneck + 2 <= k, "bottleneck must have a successor");
    if (!config_.enable_backjump) return k - 1;
    if (config_.record_pruned_prefixes && store_ != nullptr) {
      const auto& order = eval_.order();
      store_->record(std::span(order.data(), bottleneck + 1));
    }
    ++stats_.lemma3_backjumps;
    return bottleneck;
  }

  const model::Instance& instance_;
  const model::Cost_model& model_;
  const constraints::Precedence_graph* precedence_;
  Driver_config config_;
  const Bound_provider& bounds_;
  Incumbent& incumbent_;
  Control& control_;
  opt::Search_stats& stats_;
  Prefix_store* store_;

  model::Partial_plan_evaluator eval_;
  Placed_set placed_;
  Candidate_arena arena_;
  std::vector<model::Service_id> scratch_remaining_;
};

}  // namespace quest::core
