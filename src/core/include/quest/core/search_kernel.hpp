// quest/core/search_kernel.hpp
//
// The node/frontier layer of the search kernel: the flat data structures
// a branch-and-bound driver walks. A DFS "node" here is implicit — its
// immutable half is the evaluator frame at that depth
// (model::Partial_plan_evaluator), its mutable half is the sorted
// candidate row in the Candidate_arena. Everything is allocated once per
// optimize() call and reused across the whole tree: no per-node heap
// churn, and each parallel worker owns one private copy of each.

#pragma once

#include <cstdint>
#include <vector>

#include "quest/common/bitset64.hpp"
#include "quest/constraints/precedence.hpp"
#include "quest/model/cost.hpp"
#include "quest/model/instance.hpp"

namespace quest::core {

/// A size-two seed prefix of the root enumeration: `first_term` is the
/// plan's position-0 stage cost, a lower bound (Lemma 1) on any plan
/// starting with (a, b).
struct Pair_seed {
  double first_term;
  model::Service_id a;
  model::Service_id b;
};

/// Every precedence-feasible ordered pair, sorted ascending by
/// (first_term, a, b) — the canonical root ordering both the sequential
/// pair loop (sorted, so Lemma 1 turns into a global exit) and the
/// parallel task distribution consume. Empty for instances of size < 2.
std::vector<Pair_seed> build_pair_seeds(
    const model::Instance& instance, const model::Cost_model& model,
    const constraints::Precedence_graph* precedence);

/// A not-yet-expanded child during node expansion, keyed by the transfer
/// cost out of the node's last service (the paper's cheapest-first
/// expansion order — Lemma 3's correctness depends on it).
struct Candidate {
  double transfer;
  model::Service_id id;
};

/// Flat per-depth storage for the DFS's sorted-children rows. Row k backs
/// the node whose partial plan has size k; the recursion reuses rows as
/// it unwinds, so the whole tree costs n+1 vectors that each reach
/// capacity n once and never reallocate again.
class Candidate_arena {
 public:
  explicit Candidate_arena(std::size_t n) : rows_(n + 1) {
    for (auto& row : rows_) row.reserve(n);
  }

  std::vector<Candidate>& row(std::size_t depth) noexcept {
    return rows_[depth];
  }

 private:
  std::vector<std::vector<Candidate>> rows_;
};

/// The prefix set of the current search node: a bitmask membership test
/// (single-word fast path for n <= 64) kept in lockstep with the
/// vector<char> mirror the precedence API consumes.
class Placed_set {
 public:
  explicit Placed_set(std::size_t n) : mask_(n), chars_(n, 0) {}

  bool test(model::Service_id id) const noexcept { return mask_.test(id); }

  void set(model::Service_id id) noexcept {
    mask_.set(id);
    chars_[id] = 1;
  }

  void reset(model::Service_id id) noexcept {
    mask_.reset(id);
    chars_[id] = 0;
  }

  /// Bits 0..63 as a raw word (see Member_mask::word).
  std::uint64_t word() const noexcept { return mask_.word(); }

  /// The n-length membership mask Precedence_graph::feasible_next takes.
  const std::vector<char>& chars() const noexcept { return chars_; }

 private:
  Member_mask mask_;
  std::vector<char> chars_;
};

}  // namespace quest::core
