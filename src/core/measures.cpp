#include "quest/core/measures.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "quest/common/error.hpp"

namespace quest::core {

using model::Cost_model;
using model::Instance;
using model::Partial_plan_evaluator;
using model::Service_id;
using model::stage_term;

Epsilon_bar::Epsilon_bar(const Instance& instance, const Cost_model& model,
                         Epsilon_bar_mode mode)
    : Epsilon_bar(instance, model,
                  [&] {
                    auto bounds = model.selectivity_bounds(instance);
                    QUEST_EXPECTS(
                        bounds.has_value() && bounds->hi_sound,
                        "epsilon-bar needs sound selectivity upper bounds "
                        "from the cost model (search with Lemma 2 "
                        "disabled instead)");
                    return std::move(*bounds);
                  }(),
                  mode) {}

Epsilon_bar::Epsilon_bar(const Instance& instance, const Cost_model& model,
                         model::Selectivity_bounds bounds,
                         Epsilon_bar_mode mode)
    : instance_(&instance), policy_(model.policy()), mode_(mode) {
  sigma_hi_ = std::move(bounds.hi);
  all_hi_selective_ = bounds.all_hi_selective;
  const std::size_t n = instance.size();
  cost_.resize(n);
  for (Service_id u = 0; u < n; ++u) {
    cost_[u] = model.effective_cost(instance, u);
  }
  if (mode_ == Epsilon_bar_mode::loose) {
    loose_term_bound_.resize(n);
    for (Service_id u = 0; u < n; ++u) {
      const double t_max = instance.max_outgoing_transfer(
          u, [](Service_id) { return true; });
      loose_term_bound_[u] = stage_term(cost_[u], sigma_hi_[u], t_max,
                                        policy_);
    }
  }
}

double Epsilon_bar::evaluate(
    const Partial_plan_evaluator& eval,
    std::span<const Service_id> remaining) const {
  QUEST_EXPECTS(!eval.empty(), "epsilon-bar needs a non-empty partial plan");
  QUEST_EXPECTS(!remaining.empty(),
                "epsilon-bar is defined while services remain");
  const Instance& instance = *instance_;

  // Dangling term of the current last service: its conditional selectivity
  // is already determined by the prefix; its successor will be drawn from
  // `remaining`, so the worst case is the costliest outgoing link.
  const Service_id last = eval.last();
  double t_dangling = 0.0;
  for (const Service_id u : remaining) {
    t_dangling = std::max(t_dangling, instance.transfer(last, u));
  }
  double bound = eval.product_before_last() *
                 stage_term(cost_[last], eval.last_selectivity(),
                            t_dangling, policy_);

  // Amplification product over the remaining set (only > 1 when some
  // service can still expand the stream — the paper's sigma > 1
  // modification, via the model's attainable upper bounds).
  const double product_through = eval.product_through();

  for (std::size_t i = 0; i < remaining.size(); ++i) {
    const Service_id u = remaining[i];

    double term_bound;
    if (mode_ == Epsilon_bar_mode::loose) {
      term_bound = loose_term_bound_[u];
    } else {
      // Exact: worst transfer out of u into the live remaining set or the
      // sink (u may be placed last).
      double t_max = instance.sink_transfer(u);
      for (const Service_id v : remaining) {
        if (v != u) t_max = std::max(t_max, instance.transfer(u, v));
      }
      term_bound = stage_term(cost_[u], sigma_hi_[u], t_max, policy_);
    }

    double amplification = 1.0;
    if (!all_hi_selective_) {
      if (mode_ == Epsilon_bar_mode::loose) {
        // Sound but looser: include u's own factor.
        for (const Service_id w : remaining) {
          amplification *= std::max(1.0, sigma_hi_[w]);
        }
      } else {
        for (const Service_id w : remaining) {
          if (w != u) amplification *= std::max(1.0, sigma_hi_[w]);
        }
      }
    }

    bound = std::max(bound, product_through * amplification * term_bound);
  }
  return bound;
}

Lower_bound::Lower_bound(const Instance& instance, const Cost_model& model)
    : instance_(&instance), policy_(model.policy()) {
  // Only the lower bounds are needed, and those are always finite —
  // admissible pruning survives even when the upper bounds overflow.
  auto bounds = model.selectivity_bounds(instance);
  QUEST_EXPECTS(bounds.has_value(),
                "the admissible lower bound needs selectivity bounds from "
                "the cost model");
  sigma_lo_ = std::move(bounds->lo);
  cost_.resize(instance.size());
  for (Service_id u = 0; u < instance.size(); ++u) {
    cost_[u] = model.effective_cost(instance, u);
  }
}

Lower_bound::Lower_bound(const Instance& instance, const Cost_model& model,
                         const model::Selectivity_bounds& bounds)
    : instance_(&instance), policy_(model.policy()), sigma_lo_(bounds.lo) {
  cost_.resize(instance.size());
  for (Service_id u = 0; u < instance.size(); ++u) {
    cost_[u] = model.effective_cost(instance, u);
  }
}

double Lower_bound::evaluate(
    const Partial_plan_evaluator& eval,
    std::span<const Service_id> remaining) const {
  QUEST_EXPECTS(!eval.empty(), "lower bound needs a non-empty partial plan");
  QUEST_EXPECTS(!remaining.empty(),
                "lower bound is defined while services remain");
  const Instance& instance = *instance_;

  // Dangling term: the last placed service must forward to something in
  // the remaining set; its conditional selectivity is already fixed.
  const Service_id last = eval.last();
  double t_dangling = std::numeric_limits<double>::infinity();
  for (const Service_id u : remaining) {
    t_dangling = std::min(t_dangling, instance.transfer(last, u));
  }
  double bound = eval.product_before_last() *
                 stage_term(cost_[last], eval.last_selectivity(),
                            t_dangling, policy_);

  // Smallest possible selectivity attenuation between the plan's end and
  // any later position: only sub-unit conditional selectivities can shrink
  // a product, and lo_w bounds each from below. Computed exactly per
  // candidate (no division) so floating-point rounding can never overstate
  // the bound — admissibility is what keeps the search exact.
  const double product_through = eval.product_through();
  for (const Service_id u : remaining) {
    double t_min = instance.sink_transfer(u);  // u may be placed last
    double shrink = 1.0;
    for (const Service_id v : remaining) {
      if (v == u) continue;
      t_min = std::min(t_min, instance.transfer(u, v));
      shrink *= std::min(1.0, sigma_lo_[v]);
    }
    bound = std::max(bound,
                     product_through * shrink *
                         stage_term(cost_[u], sigma_lo_[u], t_min, policy_));
  }
  return bound;
}

}  // namespace quest::core
