#include "quest/core/portfolio.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "quest/core/engines.hpp"
#include "quest/opt/frontier.hpp"
#include "quest/opt/search_control.hpp"
#include "quest/workload/analysis.hpp"

namespace quest::core {

using workload::Hardness_regime;

std::string Portfolio_optimizer::chosen_engine(
    const model::Instance& instance) const {
  const auto profile = workload::analyze(instance);
  switch (profile.regime) {
    case Hardness_regime::selective:
      return "bnb";
    case Hardness_regime::expanding:
      return instance.size() <= options_.hard_exact_size_limit
                 ? "bnb-lb"
                 : "heuristic-only";
    case Hardness_regime::near_tsp:
      if (instance.size() <= opt::Frontier_optimizer::max_services) {
        return "frontier";
      }
      return instance.size() <= options_.hard_exact_size_limit
                 ? "bnb"
                 : "heuristic-only";
  }
  return "bnb";
}

opt::Result Portfolio_optimizer::optimize(const opt::Request& request) {
  opt::validate_request(request);
  opt::Search_stats stats;
  opt::Search_control control(request, stats);

  // Sub-requests share the problem, seed, stop token and cost target, but
  // get the budget left at launch time and a filtered incumbent stream:
  // only genuine portfolio-level improvements reach the caller (phase 2
  // restarts its own incumbent from scratch and would re-announce worse
  // plans otherwise).
  double streamed_best = std::numeric_limits<double>::infinity();
  opt::Request sub = request;
  if (request.on_incumbent) {
    sub.on_incumbent = [&](const model::Plan& plan, double cost,
                           const opt::Search_stats& sub_stats) {
      if (cost < streamed_best) {
        streamed_best = cost;
        request.on_incumbent(plan, cost, sub_stats);
      }
    };
  }

  // Phase 1: fast incumbent (greedy + local-search polish) via the
  // registry, like every other engine the portfolio runs.
  const auto polish = engine_registry().make("local-search");
  sub.budget = control.remaining_budget();
  opt::Result incumbent = polish->optimize(sub);
  stats.nodes_expanded += incumbent.stats.nodes_expanded;
  stats.complete_plans += incumbent.stats.complete_plans;
  if (opt::stopped_early(incumbent.termination)) {
    // Budget (or the caller) ended the run during the polish; hand back
    // whatever it produced with its honest reason.
    incumbent.elapsed_seconds = control.elapsed_seconds();
    return incumbent;
  }

  // Phase 2: profile-driven exact (or bounded-suboptimal) engine, built
  // from its registry spec and run under the remaining budget.
  const std::string engine = chosen_engine(*request.instance);
  opt::Result exact;
  bool ran_exact = false;
  if (engine != "heuristic-only") {
    std::string spec = engine;
    if (engine == "bnb" || engine == "bnb-lb") {
      // Parallel exact phase: bnb-par subsumes both sequential
      // branch-and-bound variants (lower-bound=1 is the bnb-lb
      // configuration) but proves optimality only — a suboptimality
      // relaxation stays on the sequential engines that honor it.
      if (options_.exact_threads >= 2 && options_.suboptimality == 0.0) {
        spec = "bnb-par:threads=" + std::to_string(options_.exact_threads) +
               ",warm-start=1";
        if (engine == "bnb-lb") spec += ",lower-bound=1";
      } else {
        spec += ":warm-start=1";
        if (options_.suboptimality > 0.0) {
          spec += ",subopt=" + std::to_string(options_.suboptimality);
        }
      }
    }
    const auto exact_engine = engine_registry().make(spec);
    sub.budget = control.remaining_budget();
    exact = exact_engine->optimize(sub);
    ran_exact = true;
  }

  // Phase 3: best of both; never worse than the heuristic.
  opt::Result result;
  const bool exact_usable =
      ran_exact && exact.plan.size() == request.instance->size() &&
      exact.cost <= incumbent.cost;
  if (exact_usable) {
    // Keep the exact engine's full counters (lemma cutoffs etc.) and add
    // the polish phase's work on top.
    result = std::move(exact);
    result.stats.nodes_expanded += incumbent.stats.nodes_expanded;
    result.stats.complete_plans += incumbent.stats.complete_plans;
  } else {
    result = std::move(incumbent);
    result.proven_optimal = false;
    if (ran_exact) {
      result.stats.nodes_expanded += exact.stats.nodes_expanded;
      result.stats.complete_plans += exact.stats.complete_plans;
      // The heuristic plan stands, but the exact phase's early stop is
      // what kept it unproven — report that reason.
      if (opt::stopped_early(exact.termination)) {
        result.termination = exact.termination;
      }
    }
  }
  result.elapsed_seconds = control.elapsed_seconds();
  return result;
}

}  // namespace quest::core
