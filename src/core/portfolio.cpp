#include "quest/core/portfolio.hpp"

#include <algorithm>

#include "quest/common/timer.hpp"
#include "quest/core/branch_and_bound.hpp"
#include "quest/opt/frontier.hpp"
#include "quest/opt/local_search.hpp"
#include "quest/workload/analysis.hpp"

namespace quest::core {

using workload::Hardness_regime;

std::string Portfolio_optimizer::chosen_engine(
    const model::Instance& instance) const {
  const auto profile = workload::analyze(instance);
  switch (profile.regime) {
    case Hardness_regime::selective:
      return "bnb";
    case Hardness_regime::expanding:
      return instance.size() <= options_.hard_exact_size_limit
                 ? "bnb-lb"
                 : "heuristic-only";
    case Hardness_regime::near_tsp:
      if (instance.size() <= opt::Frontier_optimizer::max_services) {
        return "frontier";
      }
      return instance.size() <= options_.hard_exact_size_limit
                 ? "bnb"
                 : "heuristic-only";
  }
  return "bnb";
}

opt::Result Portfolio_optimizer::optimize(const opt::Request& request) {
  opt::validate_request(request);
  Timer timer;

  // Phase 1: fast incumbent.
  opt::Local_search_optimizer polish;
  opt::Result incumbent = polish.optimize(request);

  // Phase 2: profile-driven exact (or bounded-suboptimal) engine.
  const std::string engine = chosen_engine(*request.instance);
  opt::Result exact;
  bool ran_exact = false;
  if (engine == "bnb" || engine == "bnb-lb") {
    Bnb_options options;
    options.warm_start = true;
    options.suboptimality = options_.suboptimality;
    options.enable_lower_bound = engine == "bnb-lb";
    Bnb_optimizer bnb(options);
    exact = bnb.optimize(request);
    ran_exact = true;
  } else if (engine == "frontier") {
    opt::Frontier_optimizer frontier;
    exact = frontier.optimize(request);
    ran_exact = true;
  }

  // Phase 3: best of both; never worse than the heuristic.
  const std::uint64_t heuristic_nodes = incumbent.stats.nodes_expanded;
  opt::Result result;
  const bool exact_usable =
      ran_exact && exact.plan.size() == request.instance->size() &&
      exact.cost <= incumbent.cost;
  if (exact_usable) {
    result = std::move(exact);
    result.stats.nodes_expanded += heuristic_nodes;
  } else {
    result = std::move(incumbent);
    result.proven_optimal = false;
    if (ran_exact) {
      result.hit_limit = exact.hit_limit;
      result.stats.nodes_expanded += exact.stats.nodes_expanded;
    }
  }
  result.elapsed_seconds = timer.seconds();
  return result;
}

}  // namespace quest::core
