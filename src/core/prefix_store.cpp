#include "quest/core/prefix_store.hpp"

#include <algorithm>

namespace quest::core {

bool Prefix_store::record(std::span<const model::Service_id> prefix) {
  if (prefixes_.size() >= capacity_) {
    ++dropped_;
    return false;
  }
  prefixes_.emplace_back(prefix.begin(), prefix.end());
  return true;
}

void Prefix_store::clear() {
  prefixes_.clear();
  dropped_ = 0;
}

bool Prefix_store::covers(
    std::span<const model::Service_id> order) const {
  return std::any_of(
      prefixes_.begin(), prefixes_.end(), [&order](const auto& prefix) {
        return prefix.size() <= order.size() &&
               std::equal(prefix.begin(), prefix.end(), order.begin());
      });
}

}  // namespace quest::core
