#include "quest/core/search_kernel.hpp"

#include <algorithm>
#include <tuple>

namespace quest::core {

std::vector<Pair_seed> build_pair_seeds(
    const model::Instance& instance, const model::Cost_model& model,
    const constraints::Precedence_graph* precedence) {
  const model::Send_policy policy = model.policy();
  const std::size_t n = instance.size();
  std::vector<Pair_seed> pairs;
  if (n < 2) return pairs;
  pairs.reserve(n * (n - 1));
  for (model::Service_id a = 0; a < n; ++a) {
    if (precedence && !precedence->predecessors(a).empty()) continue;
    const auto& sa = instance.service(a);
    for (model::Service_id b = 0; b < n; ++b) {
      if (b == a) continue;
      if (precedence) {
        const auto& preds = precedence->predecessors(b);
        const bool ok =
            std::all_of(preds.begin(), preds.end(),
                        [a](model::Service_id p) { return p == a; });
        if (!ok) continue;
      }
      pairs.push_back({model::stage_term(model.effective_cost(instance, a),
                                         sa.selectivity,
                                         instance.transfer(a, b), policy),
                       a, b});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair_seed& x, const Pair_seed& y) {
              return std::tie(x.first_term, x.a, x.b) <
                     std::tie(y.first_term, y.a, y.b);
            });
  return pairs;
}

}  // namespace quest::core
