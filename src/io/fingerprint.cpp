#include "quest/io/fingerprint.hpp"

#include <cstddef>

#include "quest/common/hash.hpp"

namespace quest::io {

std::uint64_t fingerprint(const model::Instance& instance,
                          const constraints::Precedence_graph* precedence) {
  Fnv1a hash;
  const std::size_t n = instance.size();
  hash.mix(static_cast<std::uint64_t>(n));
  for (const auto& service : instance.services()) {
    hash.mix(service.cost);
    hash.mix(service.selectivity);
  }
  for (model::Service_id from = 0; from < n; ++from) {
    for (model::Service_id to = 0; to < n; ++to) {
      if (from == to) continue;
      hash.mix(instance.transfer(from, to));
    }
  }
  for (model::Service_id id = 0; id < n; ++id) {
    hash.mix(instance.sink_transfer(id));
  }
  // Precedence edges, in the deterministic (before, after) id order the
  // graph stores them. An absent or unconstrained graph contributes the
  // same "zero edges" marker either way.
  std::uint64_t edges = 0;
  if (precedence != nullptr) {
    edges = static_cast<std::uint64_t>(precedence->edge_count());
  }
  hash.mix(edges);
  if (precedence != nullptr && edges > 0) {
    for (model::Service_id before = 0; before < precedence->size();
         ++before) {
      for (model::Service_id after : precedence->successors(before)) {
        hash.mix(static_cast<std::uint64_t>(before));
        hash.mix(static_cast<std::uint64_t>(after));
      }
    }
  }
  return hash.digest();
}

std::string fingerprint_hex(const model::Instance& instance,
                            const constraints::Precedence_graph* precedence) {
  return hex64(fingerprint(instance, precedence));
}

std::string hex64(std::uint64_t value) { return quest::hex64(value); }

}  // namespace quest::io
