#include "quest/io/fingerprint.hpp"

#include <bit>
#include <cstddef>

namespace quest::io {

namespace {

constexpr std::uint64_t fnv_offset = 0xcbf29ce484222325ull;
constexpr std::uint64_t fnv_prime = 0x100000001b3ull;

class Fnv1a {
 public:
  void mix(std::uint64_t value) noexcept {
    for (int byte = 0; byte < 8; ++byte) {
      state_ ^= (value >> (byte * 8)) & 0xffu;
      state_ *= fnv_prime;
    }
  }

  /// Hashes the exact bit pattern, with all zero representations folded
  /// together (-0.0 == 0.0 must fingerprint identically — the values
  /// compare equal through the model API).
  void mix(double value) noexcept {
    mix(std::bit_cast<std::uint64_t>(value == 0.0 ? 0.0 : value));
  }

  std::uint64_t digest() const noexcept { return state_; }

 private:
  std::uint64_t state_ = fnv_offset;
};

}  // namespace

std::uint64_t fingerprint(const model::Instance& instance,
                          const constraints::Precedence_graph* precedence) {
  Fnv1a hash;
  const std::size_t n = instance.size();
  hash.mix(static_cast<std::uint64_t>(n));
  for (const auto& service : instance.services()) {
    hash.mix(service.cost);
    hash.mix(service.selectivity);
  }
  for (model::Service_id from = 0; from < n; ++from) {
    for (model::Service_id to = 0; to < n; ++to) {
      if (from == to) continue;
      hash.mix(instance.transfer(from, to));
    }
  }
  for (model::Service_id id = 0; id < n; ++id) {
    hash.mix(instance.sink_transfer(id));
  }
  // Precedence edges, in the deterministic (before, after) id order the
  // graph stores them. An absent or unconstrained graph contributes the
  // same "zero edges" marker either way.
  std::uint64_t edges = 0;
  if (precedence != nullptr) {
    edges = static_cast<std::uint64_t>(precedence->edge_count());
  }
  hash.mix(edges);
  if (precedence != nullptr && edges > 0) {
    for (model::Service_id before = 0; before < precedence->size();
         ++before) {
      for (model::Service_id after : precedence->successors(before)) {
        hash.mix(static_cast<std::uint64_t>(before));
        hash.mix(static_cast<std::uint64_t>(after));
      }
    }
  }
  return hash.digest();
}

std::string fingerprint_hex(const model::Instance& instance,
                            const constraints::Precedence_graph* precedence) {
  return hex64(fingerprint(instance, precedence));
}

std::string hex64(std::uint64_t value) {
  std::string hex(16, '0');
  static constexpr char digits[] = "0123456789abcdef";
  for (int nibble = 0; nibble < 16; ++nibble) {
    hex[15 - nibble] = digits[(value >> (nibble * 4)) & 0xfu];
  }
  return hex;
}

}  // namespace quest::io
