// quest/io/fingerprint.hpp
//
// Stable content fingerprints for problem instances, so the serving layer
// (quest/serve) can key caches by *what* a client asked to optimize rather
// than by the name it registered it under. Two instances that compare
// equal (same services, transfer matrix, sink links and precedence edges)
// always produce the same fingerprint; any numeric or structural change
// produces a different one with overwhelming probability.
//
// The hash is FNV-1a over the exact IEEE-754 bit patterns of every value —
// no serialization round-trip, no float formatting, and therefore no
// dependence on locale or printf precision. Instance names are *excluded*:
// a re-registered instance with identical content keeps its cache entries.

#pragma once

#include <cstdint>
#include <string>

#include "quest/constraints/precedence.hpp"
#include "quest/model/instance.hpp"

namespace quest::io {

/// Content hash of an instance plus its (optional) precedence constraints.
/// Deterministic across processes and platforms with IEEE-754 doubles.
/// `precedence` may be nullptr (and an unconstrained graph hashes the
/// same as no graph at all, so the two "no constraints" spellings agree).
std::uint64_t fingerprint(const model::Instance& instance,
                          const constraints::Precedence_graph* precedence =
                              nullptr);

/// The same fingerprint as a fixed-width lower-case hex string, the form
/// used on the wire by the quest_serve protocol.
std::string fingerprint_hex(const model::Instance& instance,
                            const constraints::Precedence_graph* precedence =
                                nullptr);

/// Fixed-width (16 digit) lower-case hex rendering of a 64-bit value —
/// the wire form of every fingerprint.
std::string hex64(std::uint64_t value);

}  // namespace quest::io
