// quest/io/instance_io.hpp
//
// JSON (de)serialization of the problem model, so instances, precedence
// graphs and plans can be shipped between tools, archived next to
// experiment outputs, and re-run bit-for-bit.
//
// Document shape:
//   {
//     "name": "clustered-12",
//     "services": [ {"name": "WS0", "cost": 1.5, "selectivity": 0.4}, ... ],
//     "transfer": [ [0, 1.2, ...], ... ],          // n x n, zero diagonal
//     "sink_transfer": [0, 0, ...],                // optional
//     "precedence": [ [0, 5], [1, 2], ... ]        // optional, edges
//   }

#pragma once

#include <optional>
#include <string>

#include "quest/constraints/precedence.hpp"
#include "quest/io/json.hpp"
#include "quest/model/instance.hpp"
#include "quest/model/plan.hpp"

namespace quest::io {

/// An instance plus optional precedence constraints, as stored on disk.
struct Instance_document {
  model::Instance instance;
  std::optional<constraints::Precedence_graph> precedence;
};

/// Serializes an instance (and optional precedence edges) to JSON.
Json to_json(const model::Instance& instance,
             const constraints::Precedence_graph* precedence = nullptr);

/// Parses a document produced by to_json (or written by hand).
/// Throws Parse_error on malformed documents (wrong matrix shape,
/// negative costs, cyclic precedence, ...).
Instance_document instance_from_json(const Json& json);

/// Serializes a plan as a bare array of service ids.
Json to_json(const model::Plan& plan);

/// Parses a plan; validates ids against `n`.
model::Plan plan_from_json(const Json& json, std::size_t n);

/// File convenience wrappers (pretty-printed, trailing newline).
void save_instance(const std::string& path, const model::Instance& instance,
                   const constraints::Precedence_graph* precedence = nullptr);
Instance_document load_instance(const std::string& path);

}  // namespace quest::io
