// quest/io/json.hpp
//
// A minimal, dependency-free JSON document model with a strict parser and
// a deterministic writer. Covers the subset quest needs to persist problem
// instances, plans and experiment records: null, booleans, finite doubles,
// strings with standard escapes, arrays, and objects (insertion-ordered).

#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "quest/common/error.hpp"

namespace quest::io {

/// A JSON value. Value-semantic; copies are deep.
class Json {
 public:
  using Array = std::vector<Json>;
  /// Insertion order is preserved for deterministic output.
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::size_t u) : value_(static_cast<double>(u)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  bool is_null() const noexcept { return holds<std::nullptr_t>(); }
  bool is_bool() const noexcept { return holds<bool>(); }
  bool is_number() const noexcept { return holds<double>(); }
  bool is_string() const noexcept { return holds<std::string>(); }
  bool is_array() const noexcept { return holds<Array>(); }
  bool is_object() const noexcept { return holds<Object>(); }

  /// Typed accessors; throw Parse_error on type mismatch (documents are
  /// external input, so mismatches are data errors, not API misuse).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object field lookup; throws Parse_error when absent.
  const Json& at(std::string_view key) const;
  /// Object field lookup; returns nullptr when absent.
  const Json* find(std::string_view key) const;
  /// Array element; throws Parse_error when out of range.
  const Json& at(std::size_t index) const;

  /// Appends a field to an object (creates the object on a null value).
  void set(std::string key, Json value);
  /// Appends an element to an array (creates the array on a null value).
  void push_back(Json value);

  /// Serializes; `indent` > 0 pretty-prints with that many spaces.
  std::string dump(int indent = 0) const;

  /// Strict parser; throws Parse_error with line/column on any violation.
  static Json parse(std::string_view text);

  friend bool operator==(const Json&, const Json&);

 private:
  template <typename T>
  bool holds() const noexcept {
    return std::holds_alternative<T>(value_);
  }

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

/// Reads an entire file; throws Parse_error when unreadable.
std::string read_file(const std::string& path);
/// Writes (truncates) a file; throws Parse_error on failure.
void write_file(const std::string& path, std::string_view contents);

}  // namespace quest::io
