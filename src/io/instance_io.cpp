#include "quest/io/instance_io.hpp"

#include <cmath>
#include <utility>
#include <vector>

namespace quest::io {

using model::Instance;
using model::Plan;
using model::Service;
using model::Service_id;

namespace {

/// Converts a JSON number that must be a non-negative integer below
/// `limit` (used for service ids).
Service_id id_from_json(const Json& json, std::size_t limit,
                        const char* what) {
  const double d = json.as_number();
  if (d < 0 || d != std::floor(d) || d >= static_cast<double>(limit)) {
    throw Parse_error(std::string(what) + ": invalid service id");
  }
  return static_cast<Service_id>(d);
}

}  // namespace

Json to_json(const Instance& instance,
             const constraints::Precedence_graph* precedence) {
  Json document;
  document.set("name", instance.name());

  Json services;
  for (const Service& s : instance.services()) {
    Json entry;
    entry.set("name", s.name);
    entry.set("cost", s.cost);
    entry.set("selectivity", s.selectivity);
    services.push_back(std::move(entry));
  }
  document.set("services", std::move(services));

  Json transfer;
  for (std::size_t i = 0; i < instance.size(); ++i) {
    Json row;
    for (std::size_t j = 0; j < instance.size(); ++j) {
      row.push_back(instance.transfer_matrix().at_unchecked(i, j));
    }
    transfer.push_back(std::move(row));
  }
  document.set("transfer", std::move(transfer));

  bool any_sink = false;
  for (const double s : instance.sink_transfers()) {
    if (s != 0.0) any_sink = true;
  }
  if (any_sink) {
    Json sink;
    for (const double s : instance.sink_transfers()) sink.push_back(s);
    document.set("sink_transfer", std::move(sink));
  }

  if (precedence != nullptr && !precedence->unconstrained()) {
    Json edges;
    for (Service_id u = 0; u < precedence->size(); ++u) {
      for (const Service_id v : precedence->successors(u)) {
        Json edge;
        edge.push_back(std::size_t{u});
        edge.push_back(std::size_t{v});
        edges.push_back(std::move(edge));
      }
    }
    document.set("precedence", std::move(edges));
  }
  return document;
}

Instance_document instance_from_json(const Json& json) {
  const Json& services_json = json.at("services");
  std::vector<Service> services;
  for (const Json& entry : services_json.as_array()) {
    Service s;
    if (const Json* name = entry.find("name")) s.name = name->as_string();
    s.cost = entry.at("cost").as_number();
    s.selectivity = entry.at("selectivity").as_number();
    services.push_back(std::move(s));
  }
  const std::size_t n = services.size();
  if (n == 0) throw Parse_error("instance document has no services");

  const Json& transfer_json = json.at("transfer");
  const auto& rows = transfer_json.as_array();
  if (rows.size() != n) {
    throw Parse_error("transfer matrix must have one row per service");
  }
  Matrix<double> transfer = Matrix<double>::square(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& row = rows[i].as_array();
    if (row.size() != n) {
      throw Parse_error("transfer matrix rows must have n entries");
    }
    for (std::size_t j = 0; j < n; ++j) {
      transfer(i, j) = row[j].as_number();
    }
  }

  std::vector<double> sink;
  if (const Json* sink_json = json.find("sink_transfer")) {
    for (const Json& s : sink_json->as_array()) {
      sink.push_back(s.as_number());
    }
    if (sink.size() != n) {
      throw Parse_error("sink_transfer must have one entry per service");
    }
  }

  std::string name;
  if (const Json* name_json = json.find("name")) {
    name = name_json->as_string();
  }

  Instance_document document{
      // Instance construction re-validates numeric invariants; surface
      // violations as data errors.
      [&]() -> Instance {
        try {
          return Instance(std::move(services), std::move(transfer),
                          std::move(sink), std::move(name));
        } catch (const Precondition_error& e) {
          throw Parse_error(std::string("invalid instance data: ") +
                            e.what());
        }
      }(),
      std::nullopt};

  if (const Json* edges = json.find("precedence")) {
    constraints::Precedence_graph graph(n);
    for (const Json& edge : edges->as_array()) {
      const auto& pair = edge.as_array();
      if (pair.size() != 2) {
        throw Parse_error("precedence edges must be [from, to] pairs");
      }
      try {
        graph.add_edge(id_from_json(pair[0], n, "precedence"),
                       id_from_json(pair[1], n, "precedence"));
      } catch (const Precondition_error& e) {
        throw Parse_error(std::string("invalid precedence edge: ") +
                          e.what());
      }
    }
    document.precedence = std::move(graph);
  }
  return document;
}

Json to_json(const Plan& plan) {
  Json array;
  for (const Service_id id : plan) array.push_back(std::size_t{id});
  return array;
}

Plan plan_from_json(const Json& json, std::size_t n) {
  std::vector<Service_id> order;
  for (const Json& entry : json.as_array()) {
    order.push_back(id_from_json(entry, n, "plan"));
  }
  Plan plan(std::move(order));
  std::vector<char> seen(n, 0);
  for (const Service_id id : plan) {
    if (seen[id]) throw Parse_error("plan repeats a service");
    seen[id] = 1;
  }
  return plan;
}

void save_instance(const std::string& path, const Instance& instance,
                   const constraints::Precedence_graph* precedence) {
  write_file(path, to_json(instance, precedence).dump(2) + "\n");
}

Instance_document load_instance(const std::string& path) {
  return instance_from_json(Json::parse(read_file(path)));
}

}  // namespace quest::io
