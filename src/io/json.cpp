#include "quest/io/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace quest::io {

namespace {

[[noreturn]] void type_error(const char* expected) {
  throw Parse_error(std::string("JSON type mismatch: expected ") + expected);
}

/// Recursive-descent parser over a string_view with position tracking.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    skip_whitespace();
    Json value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return value;
  }

 private:
  static constexpr int max_depth = 128;

  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    std::ostringstream out;
    out << "JSON parse error at line " << line << ", column " << column
        << ": " << message;
    throw Parse_error(out.str());
  }

  bool eof() const noexcept { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char next() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_whitespace() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  void expect(char c) {
    if (eof() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Json parse_value(int depth) {
    if (depth > max_depth) fail("nesting too deep");
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json::Object object;
    skip_whitespace();
    if (!eof() && peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    for (;;) {
      skip_whitespace();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      skip_whitespace();
      object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (eof()) fail("unterminated object");
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Json(std::move(object));
  }

  Json parse_array(int depth) {
    expect('[');
    Json::Array array;
    skip_whitespace();
    if (!eof() && peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    for (;;) {
      skip_whitespace();
      array.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (eof()) fail("unterminated array");
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Json(std::move(array));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (c == '\\') {
        const char escape = next();
        switch (escape) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("invalid \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // needed for quest documents but are rejected loudly).
            if (code >= 0xD800 && code <= 0xDFFF) {
              fail("surrogate pairs are not supported");
            }
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            fail("invalid escape sequence");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      out.push_back(c);
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("invalid number");
    const std::string copy(token);
    char* end = nullptr;
    const double value = std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size() || !std::isfinite(value)) {
      fail("invalid number '" + copy + "'");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(double d, std::string& out) {
  QUEST_EXPECTS(std::isfinite(d), "JSON numbers must be finite");
  // Integers print without a fraction; everything else round-trips via
  // max_digits10.
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.0f", d);
    out += buffer;
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", d);
  out += buffer;
}

}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) type_error("bool");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  if (!is_number()) type_error("number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  if (!is_string()) type_error("string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  if (!is_array()) type_error("array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  if (!is_object()) type_error("object");
  return std::get<Object>(value_);
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  if (found == nullptr) {
    throw Parse_error("JSON object is missing key '" + std::string(key) +
                      "'");
  }
  return *found;
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) type_error("object");
  for (const auto& [k, v] : std::get<Object>(value_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::size_t index) const {
  const Array& array = as_array();
  if (index >= array.size()) {
    throw Parse_error("JSON array index out of range");
  }
  return array[index];
}

void Json::set(std::string key, Json value) {
  if (is_null()) value_ = Object{};
  if (!is_object()) type_error("object");
  std::get<Object>(value_).emplace_back(std::move(key), std::move(value));
}

void Json::push_back(Json value) {
  if (is_null()) value_ = Array{};
  if (!is_array()) type_error("array");
  std::get<Array>(value_).push_back(std::move(value));
}

namespace {

void dump_value(const Json& json, std::string& out, int indent, int depth);

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

void dump_value(const Json& json, std::string& out, int indent, int depth) {
  if (json.is_null()) {
    out += "null";
  } else if (json.is_bool()) {
    out += json.as_bool() ? "true" : "false";
  } else if (json.is_number()) {
    dump_number(json.as_number(), out);
  } else if (json.is_string()) {
    dump_string(json.as_string(), out);
  } else if (json.is_array()) {
    const auto& array = json.as_array();
    if (array.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < array.size(); ++i) {
      if (i) out.push_back(',');
      newline_indent(out, indent, depth + 1);
      dump_value(array[i], out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push_back(']');
  } else {
    const auto& object = json.as_object();
    if (object.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, value] : object) {
      if (!first) out.push_back(',');
      first = false;
      newline_indent(out, indent, depth + 1);
      dump_string(key, out);
      out.push_back(':');
      if (indent > 0) out.push_back(' ');
      dump_value(value, out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push_back('}');
  }
}

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) {
  Parser parser(text);
  return parser.parse_document();
}

bool operator==(const Json& a, const Json& b) { return a.value_ == b.value_; }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Parse_error("cannot open file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    throw Parse_error("error while reading '" + path + "'");
  }
  return buffer.str();
}

void write_file(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Parse_error("cannot open file '" + path + "' for writing");
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out.good()) throw Parse_error("error while writing '" + path + "'");
}

}  // namespace quest::io
