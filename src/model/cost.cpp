#include "quest/model/cost.hpp"

#include <algorithm>
#include <span>

#include "quest/common/error.hpp"

namespace quest::model {

double bottleneck_cost(const Instance& instance, const Plan& plan,
                       const Cost_model& model) {
  QUEST_EXPECTS(plan.is_permutation_of(instance.size()),
                "bottleneck_cost requires a complete plan");
  model.validate_for(instance);
  const Send_policy policy = model.policy();
  const bool independent = model.is_independent();
  const bool scaled = model.has_cost_profile();
  const auto& order = plan.order();
  const std::size_t n = order.size();
  double product = 1.0;
  double worst = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    const Service_id id = order[p];
    const Service& s = instance.service(id);
    const double sigma =
        independent ? s.selectivity
                    : model.conditional_selectivity(
                          instance, id, std::span(order.data(), p));
    const double cost = scaled ? s.cost * model.cost_scale(id) : s.cost;
    const double transfer = p + 1 < n ? instance.transfer(id, order[p + 1])
                                      : instance.sink_transfer(id);
    worst = std::max(worst,
                     product * stage_term(cost, sigma, transfer, policy));
    product *= sigma;
  }
  return worst;
}

double partial_epsilon(const Instance& instance, const Plan& plan,
                       const Cost_model& model) {
  Partial_plan_evaluator eval(instance, model);
  for (const Service_id id : plan) eval.append(id);
  return eval.epsilon();
}

Cost_breakdown cost_breakdown(const Instance& instance, const Plan& plan,
                              const Cost_model& model) {
  QUEST_EXPECTS(plan.is_permutation_of(instance.size()),
                "cost_breakdown requires a complete plan");
  model.validate_for(instance);
  const Send_policy policy = model.policy();
  const bool independent = model.is_independent();
  const bool scaled = model.has_cost_profile();
  Cost_breakdown result;
  const auto& order = plan.order();
  const std::size_t n = order.size();
  result.stage_costs.resize(n);
  result.input_fractions.resize(n);
  result.stage_selectivities.resize(n);
  double product = 1.0;
  for (std::size_t p = 0; p < n; ++p) {
    const Service_id id = order[p];
    const Service& s = instance.service(id);
    const double sigma =
        independent ? s.selectivity
                    : model.conditional_selectivity(
                          instance, id, std::span(order.data(), p));
    const double transfer = p + 1 < n ? instance.transfer(id, order[p + 1])
                                      : instance.sink_transfer(id);
    const double cost = scaled ? s.cost * model.cost_scale(id) : s.cost;
    result.input_fractions[p] = product;
    result.stage_selectivities[p] = sigma;
    result.stage_costs[p] =
        product * stage_term(cost, sigma, transfer, policy);
    product *= sigma;
  }
  const auto it =
      std::max_element(result.stage_costs.begin(), result.stage_costs.end());
  result.bottleneck_position =
      static_cast<std::size_t>(it - result.stage_costs.begin());
  result.cost = *it;
  return result;
}

Partial_plan_evaluator::Partial_plan_evaluator(const Instance& instance,
                                               Cost_model model)
    : instance_(&instance),
      model_(std::move(model)),
      gamma_(model_.interaction()),
      in_plan_(instance.size()) {
  model_.validate_for(instance);
  frames_.reserve(instance.size());
  order_.reserve(instance.size());
}

void Partial_plan_evaluator::append(Service_id id) {
  QUEST_EXPECTS(id < instance_->size(), "service id out of range");
  QUEST_EXPECTS(!in_plan_.test(id), "service already in the partial plan");
  const Service& s = instance_->service(id);
  Frame frame;
  frame.id = id;
  frame.bottleneck_pos = 0;
  frame.sigma = s.selectivity;
  if (gamma_ != nullptr) {
    // sigma(id | plan set): symmetric factors, so plan order is
    // irrelevant; recomputed fresh to stay drift-free under pop().
    for (const Service_id w : order_) {
      frame.sigma *= gamma_->at_unchecked(w, id);
    }
  }
  if (frames_.empty()) {
    frame.product_before = 1.0;
    frame.epsilon_after = 0.0;
  } else {
    const Frame& prev = frames_.back();
    frame.product_before = prev.product_through;
    // Appending fixes the previous last service's successor, determining
    // its stage term.
    const double fixed =
        prev.product_before *
        stage_term(model_.effective_cost(*instance_, prev.id), prev.sigma,
                   instance_->transfer(prev.id, id), model_.policy());
    if (fixed > prev.epsilon_after) {
      frame.epsilon_after = fixed;
      frame.bottleneck_pos = frames_.size() - 1;
    } else {
      // Ties keep the earliest position: the back-jump then prunes more.
      frame.epsilon_after = prev.epsilon_after;
      frame.bottleneck_pos = prev.bottleneck_pos;
    }
  }
  frame.product_through = frame.product_before * frame.sigma;
  frames_.push_back(frame);
  order_.push_back(id);
  in_plan_.set(id);
}

void Partial_plan_evaluator::pop() {
  QUEST_EXPECTS(!frames_.empty(), "pop() on an empty partial plan");
  in_plan_.reset(frames_.back().id);
  frames_.pop_back();
  order_.pop_back();
}

void Partial_plan_evaluator::clear() {
  frames_.clear();
  order_.clear();
  in_plan_.clear();
}

Service_id Partial_plan_evaluator::last() const {
  QUEST_EXPECTS(!frames_.empty(), "last() on an empty partial plan");
  return frames_.back().id;
}

double Partial_plan_evaluator::product_before_last() const {
  QUEST_EXPECTS(!frames_.empty(),
                "product_before_last() on an empty partial plan");
  return frames_.back().product_before;
}

double Partial_plan_evaluator::last_selectivity() const {
  QUEST_EXPECTS(!frames_.empty(),
                "last_selectivity() on an empty partial plan");
  return frames_.back().sigma;
}

std::size_t Partial_plan_evaluator::bottleneck_position() const {
  QUEST_EXPECTS(frames_.size() >= 2,
                "bottleneck_position() needs at least one determined term");
  return frames_.back().bottleneck_pos;
}

double Partial_plan_evaluator::term_if_appended(Service_id next) const {
  QUEST_EXPECTS(!frames_.empty(),
                "term_if_appended() on an empty partial plan");
  QUEST_EXPECTS(next < instance_->size(), "service id out of range");
  QUEST_EXPECTS(!in_plan_.test(next), "candidate already in the partial plan");
  const Frame& top = frames_.back();
  return top.product_before *
         stage_term(model_.effective_cost(*instance_, top.id), top.sigma,
                    instance_->transfer(top.id, next), model_.policy());
}

double Partial_plan_evaluator::complete_cost() const {
  QUEST_EXPECTS(full(), "complete_cost() requires a full plan");
  const Frame& top = frames_.back();
  const double final_term =
      top.product_before *
      stage_term(model_.effective_cost(*instance_, top.id), top.sigma,
                 instance_->sink_transfer(top.id), model_.policy());
  return std::max(top.epsilon_after, final_term);
}

Plan Partial_plan_evaluator::plan() const { return Plan(order_); }

}  // namespace quest::model
