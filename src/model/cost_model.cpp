#include "quest/model/cost_model.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <charconv>
#include <cstdlib>

#include "quest/common/error.hpp"
#include "quest/common/hash.hpp"
#include "quest/common/rng.hpp"

namespace quest::model {

namespace {

/// Shortest round-trip decimal of a double ("0.5", "4", "1e-06"):
/// distinct values always format distinctly, so distinct models can
/// never collide on Cost_model::key() — the plan cache's
/// never-cross-serve invariant rides on this.
std::string fmt_double(double value) {
  char buffer[32];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  QUEST_ASSERT(ec == std::errc{}, "double formatting cannot fail");
  return std::string(buffer, end);
}

/// FNV-1a content hash of a double sequence (shared Fnv1a: zero folded
/// so -0.0 and 0.0 key identically, matching operator==).
std::uint64_t hash_doubles(std::span<const double> values) {
  Fnv1a hash;
  for (const double value : values) hash.mix(value);
  return hash.digest();
}

void validate_clamps(double clamp_lo, double clamp_hi) {
  QUEST_EXPECTS(std::isfinite(clamp_lo) && std::isfinite(clamp_hi),
                "correlation clamps must be finite");
  QUEST_EXPECTS(clamp_lo >= 0.0 && clamp_lo <= clamp_hi,
                "correlation clamps must satisfy 0 <= clamp-lo <= clamp-hi");
}

}  // namespace

const char* to_string(Send_policy policy) noexcept {
  return policy == Send_policy::sequential ? "sequential" : "overlapped";
}

Send_policy parse_send_policy(std::string_view text) {
  if (text == "sequential") return Send_policy::sequential;
  if (text == "overlapped") return Send_policy::overlapped;
  throw Parse_error("policy must be 'sequential' or 'overlapped', got '" +
                    std::string(text) + "'");
}

const char* to_string(Selectivity_structure structure) noexcept {
  return structure == Selectivity_structure::independent ? "independent"
                                                         : "correlated";
}

Cost_model Cost_model::independent(Send_policy policy) {
  Cost_model model;
  model.policy_ = policy;
  return model;
}

Cost_model Cost_model::correlated(Matrix<double> gamma, Send_policy policy,
                                  double clamp_lo, double clamp_hi) {
  validate_clamps(clamp_lo, clamp_hi);
  const std::size_t n = gamma.rows();
  QUEST_EXPECTS(gamma.cols() == n && n >= 1,
                "correlation matrix must be square and non-empty");
  for (const double value : gamma.data()) {
    QUEST_EXPECTS(std::isfinite(value) && value >= 0.0,
                  "correlation factors must be finite and non-negative");
  }
  // Symmetrize and clamp: only the unordered pair {w, u} matters, which
  // is what keeps prefix-set selectivity products order-independent.
  for (std::size_t i = 0; i < n; ++i) {
    gamma(i, i) = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double factor = std::clamp(0.5 * (gamma(i, j) + gamma(j, i)),
                                       clamp_lo, clamp_hi);
      gamma(i, j) = factor;
      gamma(j, i) = factor;
    }
  }
  auto payload = std::make_shared<Correlation>();
  payload->clamp_lo = clamp_lo;
  payload->clamp_hi = clamp_hi;
  payload->params = "matrix=" + hex64(hash_doubles(gamma.data()));
  payload->gamma = std::move(gamma);
  Cost_model model;
  model.policy_ = policy;
  model.correlation_ = std::move(payload);
  return model;
}

Cost_model Cost_model::correlated_seeded(std::size_t n, double strength,
                                         std::uint64_t seed,
                                         Send_policy policy, double clamp_lo,
                                         double clamp_hi) {
  QUEST_EXPECTS(n >= 1, "correlated_seeded needs n >= 1");
  QUEST_EXPECTS(std::isfinite(strength) && strength >= 0.0,
                "correlation strength must be finite and non-negative");
  validate_clamps(clamp_lo, clamp_hi);
  Matrix<double> gamma = Matrix<double>::square(n, 1.0);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double factor =
          std::clamp(std::exp(strength * rng.uniform(-1.0, 1.0)), clamp_lo,
                     clamp_hi);
      gamma(i, j) = factor;
      gamma(j, i) = factor;
    }
  }
  auto payload = std::make_shared<Correlation>();
  payload->gamma = std::move(gamma);
  payload->clamp_lo = clamp_lo;
  payload->clamp_hi = clamp_hi;
  payload->params =
      "strength=" + fmt_double(strength) + ",seed=" + std::to_string(seed);
  Cost_model model;
  model.policy_ = policy;
  model.correlation_ = std::move(payload);
  return model;
}

Cost_model Cost_model::with_policy(Send_policy policy) const {
  Cost_model model = *this;
  model.policy_ = policy;
  return model;
}

const Matrix<double>* Cost_model::interaction() const noexcept {
  return correlation_ == nullptr ? nullptr : &correlation_->gamma;
}

double Cost_model::conditional_selectivity(
    const Instance& instance, Service_id u,
    std::span<const Service_id> placed) const {
  double sigma = instance.selectivity(u);
  if (correlation_ != nullptr) {
    const Matrix<double>& gamma = correlation_->gamma;
    for (const Service_id w : placed) {
      sigma *= gamma.at_unchecked(w, u);
    }
  }
  return sigma;
}

double Cost_model::conditional_selectivity(const Instance& instance,
                                           Service_id u,
                                           std::uint64_t placed_mask) const {
  double sigma = instance.selectivity(u);
  if (correlation_ != nullptr) {
    const Matrix<double>& gamma = correlation_->gamma;
    for (std::uint64_t bits = placed_mask; bits != 0; bits &= bits - 1) {
      sigma *= gamma.at_unchecked(
          static_cast<std::size_t>(std::countr_zero(bits)), u);
    }
  }
  return sigma;
}

std::vector<double> Cost_model::stage_selectivities(const Instance& instance,
                                                    const Plan& plan) const {
  std::vector<double> result;
  result.reserve(plan.size());
  const auto& order = plan.order();
  for (std::size_t p = 0; p < order.size(); ++p) {
    result.push_back(conditional_selectivity(
        instance, order[p], std::span(order.data(), p)));
  }
  return result;
}

std::optional<Selectivity_bounds> Cost_model::selectivity_bounds(
    const Instance& instance) const {
  validate_for(instance);
  const std::size_t n = instance.size();
  Selectivity_bounds bounds;
  bounds.lo.resize(n);
  bounds.hi.resize(n);
  for (Service_id u = 0; u < n; ++u) {
    double lo = instance.selectivity(u);
    double hi = lo;
    if (correlation_ != nullptr) {
      const Matrix<double>& gamma = correlation_->gamma;
      for (Service_id w = 0; w < n; ++w) {
        if (w == u) continue;
        const double factor = gamma.at_unchecked(w, u);
        hi *= std::max(1.0, factor);
        lo *= std::min(1.0, factor);
      }
    }
    bounds.lo[u] = lo;
    bounds.hi[u] = hi;
    if (!std::isfinite(hi)) bounds.hi_sound = false;
    if (hi > 1.0) bounds.all_hi_selective = false;
  }
  return bounds;
}

void Cost_model::validate_for(const Instance& instance) const {
  if (correlation_ == nullptr) return;
  QUEST_EXPECTS(correlation_->gamma.rows() == instance.size(),
                "cost model's correlation matrix is sized for " +
                    std::to_string(correlation_->gamma.rows()) +
                    " services, instance has " +
                    std::to_string(instance.size()));
}

std::string Cost_model::key() const {
  std::string key = to_string(policy_);
  key += '/';
  if (correlation_ == nullptr) {
    key += "independent";
  } else {
    key += "correlated:" + correlation_->params +
           ",clamp-lo=" + fmt_double(correlation_->clamp_lo) +
           ",clamp-hi=" + fmt_double(correlation_->clamp_hi);
  }
  return key;
}

bool operator==(const Cost_model& a, const Cost_model& b) {
  if (a.policy_ != b.policy_) return false;
  if ((a.correlation_ == nullptr) != (b.correlation_ == nullptr)) {
    return false;
  }
  if (a.correlation_ == nullptr || a.correlation_ == b.correlation_) {
    return true;
  }
  return a.correlation_->clamp_lo == b.correlation_->clamp_lo &&
         a.correlation_->clamp_hi == b.correlation_->clamp_hi &&
         a.correlation_->gamma == b.correlation_->gamma;
}

// ---- Cost_model_spec -------------------------------------------------

Cost_model Cost_model_spec::bind(std::size_t n) const {
  if (structure == Selectivity_structure::independent) {
    return Cost_model::independent(policy);
  }
  return Cost_model::correlated_seeded(n, strength, seed, policy, clamp_lo,
                                       clamp_hi);
}

std::string Cost_model_spec::to_string() const {
  if (structure == Selectivity_structure::independent) return "independent";
  return "correlated:strength=" + fmt_double(strength) +
         ",seed=" + std::to_string(seed) +
         ",clamp-lo=" + fmt_double(clamp_lo) +
         ",clamp-hi=" + fmt_double(clamp_hi);
}

const std::vector<std::string>& Cost_model_spec::structure_names() {
  static const std::vector<std::string> names = {"independent",
                                                 "correlated"};
  return names;
}

const std::vector<std::string>& Cost_model_spec::option_keys() {
  static const std::vector<std::string> keys = {"strength", "seed",
                                                "clamp-lo", "clamp-hi"};
  return keys;
}

namespace {

double parse_double_value(std::string_view key, std::string_view text) {
  const std::string buffer(text);
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (buffer.empty() || end != buffer.c_str() + buffer.size() ||
      !std::isfinite(value)) {
    throw Parse_error("cost model option '" + std::string(key) +
                      "': expected a finite number, got '" + buffer + "'");
  }
  return value;
}

std::uint64_t parse_uint_value(std::string_view key, std::string_view text) {
  std::uint64_t value = 0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) {
    throw Parse_error("cost model option '" + std::string(key) +
                      "': expected a non-negative integer, got '" +
                      std::string(text) + "'");
  }
  return value;
}

}  // namespace

Cost_model_spec parse_cost_model_spec(std::string_view model_text,
                                      std::string_view policy_text) {
  Cost_model_spec spec;
  spec.policy = parse_send_policy(policy_text);

  std::string_view name = model_text;
  std::string_view options_text;
  if (const auto colon = model_text.find(':');
      colon != std::string_view::npos) {
    name = model_text.substr(0, colon);
    options_text = model_text.substr(colon + 1);
    if (options_text.empty()) {
      throw Parse_error("cost model spec '" + std::string(model_text) +
                        "' has a ':' but no options");
    }
  }
  if (name == "independent") {
    if (!options_text.empty()) {
      throw Parse_error("the independent cost model takes no options");
    }
    return spec;
  }
  if (name != "correlated") {
    throw Parse_error("unknown cost model '" + std::string(name) +
                      "' (expected independent or correlated)");
  }
  spec.structure = Selectivity_structure::correlated;

  std::string_view rest = options_text;
  std::vector<std::string> seen;
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string_view piece =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (comma != std::string_view::npos && rest.empty()) {
      throw Parse_error("trailing comma in cost model spec '" +
                        std::string(model_text) + "'");
    }
    const auto eq = piece.find('=');
    if (eq == std::string_view::npos || eq == 0 ||
        eq + 1 >= piece.size()) {
      throw Parse_error("malformed cost model option '" +
                        std::string(piece) + "': expected key=value");
    }
    const std::string key(piece.substr(0, eq));
    const std::string_view value = piece.substr(eq + 1);
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
      throw Parse_error("duplicate cost model option '" + key + "'");
    }
    seen.push_back(key);
    if (key == "strength") {
      spec.strength = parse_double_value(key, value);
      if (spec.strength < 0.0) {
        throw Parse_error("cost model strength must be non-negative");
      }
    } else if (key == "seed") {
      spec.seed = parse_uint_value(key, value);
    } else if (key == "clamp-lo") {
      spec.clamp_lo = parse_double_value(key, value);
    } else if (key == "clamp-hi") {
      spec.clamp_hi = parse_double_value(key, value);
    } else {
      throw Parse_error("cost model has no option '" + key +
                        "' (valid: strength, seed, clamp-lo, clamp-hi)");
    }
  }
  if (spec.clamp_lo < 0.0 || spec.clamp_lo > spec.clamp_hi) {
    throw Parse_error(
        "cost model clamps must satisfy 0 <= clamp-lo <= clamp-hi");
  }
  return spec;
}

}  // namespace quest::model
