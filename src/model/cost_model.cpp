#include "quest/model/cost_model.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <charconv>
#include <cstdlib>

#include "quest/common/error.hpp"
#include "quest/common/hash.hpp"
#include "quest/common/rng.hpp"

namespace quest::model {

namespace {

/// Shortest round-trip decimal of a double ("0.5", "4", "1e-06"):
/// distinct values always format distinctly, so distinct models can
/// never collide on Cost_model::key() — the plan cache's
/// never-cross-serve invariant rides on this.
std::string fmt_double(double value) {
  char buffer[32];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  QUEST_ASSERT(ec == std::errc{}, "double formatting cannot fail");
  return std::string(buffer, end);
}

/// FNV-1a content hash of a double sequence (shared Fnv1a: zero folded
/// so -0.0 and 0.0 key identically, matching operator==).
std::uint64_t hash_doubles(std::span<const double> values) {
  Fnv1a hash;
  for (const double value : values) hash.mix(value);
  return hash.digest();
}

void validate_clamps(double clamp_lo, double clamp_hi) {
  QUEST_EXPECTS(std::isfinite(clamp_lo) && std::isfinite(clamp_hi),
                "correlation clamps must be finite");
  QUEST_EXPECTS(clamp_lo >= 0.0 && clamp_lo <= clamp_hi,
                "correlation clamps must satisfy 0 <= clamp-lo <= clamp-hi");
}

/// Standard normal quantiles for the supported tail objectives.
constexpr double k_z_p95 = 1.6448536269514722;
constexpr double k_z_p99 = 2.3263478740408408;

/// Mean-relative q-quantile of the tail family: the factor that turns a
/// service's mean cost into its q-quantile cost. Floored at 1 so a
/// quantile objective never prices a service below its mean (for very
/// heavy lognormal tails the mean exceeds the q-quantile).
double quantile_scale(Objective objective, Cost_tail tail, double param) {
  const double q = objective == Objective::p95 ? 0.95 : 0.99;
  if (tail == Cost_tail::pareto) {
    // Pareto(alpha, x_min): mean alpha*x_min/(alpha-1), quantile
    // x_min*(1-q)^(-1/alpha); the ratio is alpha-only.
    return std::max(
        1.0, (param - 1.0) / param * std::pow(1.0 - q, -1.0 / param));
  }
  const double z = objective == Objective::p95 ? k_z_p95 : k_z_p99;
  // Lognormal(mu, s): mean exp(mu + s^2/2), quantile exp(mu + s*z_q).
  return std::max(1.0, std::exp(param * z - 0.5 * param * param));
}

}  // namespace

const char* to_string(Send_policy policy) noexcept {
  return policy == Send_policy::sequential ? "sequential" : "overlapped";
}

Send_policy parse_send_policy(std::string_view text) {
  if (text == "sequential") return Send_policy::sequential;
  if (text == "overlapped") return Send_policy::overlapped;
  throw Parse_error("policy must be 'sequential' or 'overlapped', got '" +
                    std::string(text) + "'");
}

const char* to_string(Selectivity_structure structure) noexcept {
  return structure == Selectivity_structure::independent ? "independent"
                                                         : "correlated";
}

const char* to_string(Objective objective) noexcept {
  switch (objective) {
    case Objective::p95:
      return "p95";
    case Objective::p99:
      return "p99";
    default:
      return "mean";
  }
}

Objective parse_objective(std::string_view text) {
  if (text == "mean") return Objective::mean;
  if (text == "p95") return Objective::p95;
  if (text == "p99") return Objective::p99;
  throw Parse_error("objective must be 'mean', 'p95' or 'p99', got '" +
                    std::string(text) + "'");
}

const char* to_string(Cost_tail tail) noexcept {
  switch (tail) {
    case Cost_tail::pareto:
      return "pareto";
    case Cost_tail::lognormal:
      return "lognormal";
    default:
      return "none";
  }
}

Cost_model Cost_model::independent(Send_policy policy) {
  Cost_model model;
  model.policy_ = policy;
  return model;
}

Cost_model Cost_model::correlated(Matrix<double> gamma, Send_policy policy,
                                  double clamp_lo, double clamp_hi) {
  validate_clamps(clamp_lo, clamp_hi);
  const std::size_t n = gamma.rows();
  QUEST_EXPECTS(gamma.cols() == n && n >= 1,
                "correlation matrix must be square and non-empty");
  for (const double value : gamma.data()) {
    QUEST_EXPECTS(std::isfinite(value) && value >= 0.0,
                  "correlation factors must be finite and non-negative");
  }
  // Symmetrize and clamp: only the unordered pair {w, u} matters, which
  // is what keeps prefix-set selectivity products order-independent.
  for (std::size_t i = 0; i < n; ++i) {
    gamma(i, i) = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double factor = std::clamp(0.5 * (gamma(i, j) + gamma(j, i)),
                                       clamp_lo, clamp_hi);
      gamma(i, j) = factor;
      gamma(j, i) = factor;
    }
  }
  auto payload = std::make_shared<Correlation>();
  payload->clamp_lo = clamp_lo;
  payload->clamp_hi = clamp_hi;
  payload->params = "matrix=" + hex64(hash_doubles(gamma.data()));
  payload->gamma = std::move(gamma);
  Cost_model model;
  model.policy_ = policy;
  model.correlation_ = std::move(payload);
  return model;
}

Cost_model Cost_model::correlated_seeded(std::size_t n, double strength,
                                         std::uint64_t seed,
                                         Send_policy policy, double clamp_lo,
                                         double clamp_hi) {
  QUEST_EXPECTS(n >= 1, "correlated_seeded needs n >= 1");
  QUEST_EXPECTS(std::isfinite(strength) && strength >= 0.0,
                "correlation strength must be finite and non-negative");
  validate_clamps(clamp_lo, clamp_hi);
  Matrix<double> gamma = Matrix<double>::square(n, 1.0);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double factor =
          std::clamp(std::exp(strength * rng.uniform(-1.0, 1.0)), clamp_lo,
                     clamp_hi);
      gamma(i, j) = factor;
      gamma(j, i) = factor;
    }
  }
  auto payload = std::make_shared<Correlation>();
  payload->gamma = std::move(gamma);
  payload->clamp_lo = clamp_lo;
  payload->clamp_hi = clamp_hi;
  payload->params =
      "strength=" + fmt_double(strength) + ",seed=" + std::to_string(seed);
  Cost_model model;
  model.policy_ = policy;
  model.correlation_ = std::move(payload);
  return model;
}

Cost_model Cost_model::with_policy(Send_policy policy) const {
  Cost_model model = *this;
  model.policy_ = policy;
  return model;
}

Cost_model Cost_model::with_cost_tail(Objective objective, Cost_tail tail,
                                      double param) const {
  QUEST_EXPECTS(objective != Objective::mean,
                "a cost tail needs a quantile objective (p95/p99)");
  QUEST_EXPECTS(tail != Cost_tail::none,
                "with_cost_tail needs a tail family (pareto/lognormal)");
  QUEST_EXPECTS(std::isfinite(param), "cost tail parameter must be finite");
  if (tail == Cost_tail::pareto) {
    QUEST_EXPECTS(param > 1.0,
                  "Pareto cost-alpha must exceed 1: below that the mean is "
                  "infinite and no sound quantile-to-mean scale exists");
  } else {
    QUEST_EXPECTS(param > 0.0, "lognormal cost-sigma must be positive");
  }
  auto profile = std::make_shared<Cost_profile>();
  profile->objective = objective;
  profile->scales = {quantile_scale(objective, tail, param)};
  profile->params = std::string("objective=") + to_string(objective) +
                    ",cost-tail=" + to_string(tail) +
                    (tail == Cost_tail::pareto ? ",cost-alpha=" :
                                                 ",cost-sigma=") +
                    fmt_double(param);
  Cost_model model = *this;
  model.profile_ = std::move(profile);
  return model;
}

Cost_model Cost_model::with_cost_scales(Objective objective,
                                        std::vector<double> scales) const {
  QUEST_EXPECTS(objective != Objective::mean,
                "explicit cost scales need a quantile objective (p95/p99)");
  QUEST_EXPECTS(!scales.empty(),
                "cost scales need one entry (uniform) or one per service");
  for (const double scale : scales) {
    QUEST_EXPECTS(std::isfinite(scale) && scale > 0.0,
                  "cost scales must be finite and positive");
  }
  auto profile = std::make_shared<Cost_profile>();
  profile->objective = objective;
  profile->params = std::string("objective=") + to_string(objective) +
                    ",cost-scale=";
  for (std::size_t i = 0; i < scales.size(); ++i) {
    if (i != 0) profile->params += '|';
    profile->params += fmt_double(scales[i]);
  }
  profile->scales = std::move(scales);
  Cost_model model = *this;
  model.profile_ = std::move(profile);
  return model;
}

const Matrix<double>* Cost_model::interaction() const noexcept {
  return correlation_ == nullptr ? nullptr : &correlation_->gamma;
}

double Cost_model::conditional_selectivity(
    const Instance& instance, Service_id u,
    std::span<const Service_id> placed) const {
  double sigma = instance.selectivity(u);
  if (correlation_ != nullptr) {
    const Matrix<double>& gamma = correlation_->gamma;
    for (const Service_id w : placed) {
      sigma *= gamma.at_unchecked(w, u);
    }
  }
  return sigma;
}

double Cost_model::conditional_selectivity(const Instance& instance,
                                           Service_id u,
                                           std::uint64_t placed_mask) const {
  double sigma = instance.selectivity(u);
  if (correlation_ != nullptr) {
    const Matrix<double>& gamma = correlation_->gamma;
    for (std::uint64_t bits = placed_mask; bits != 0; bits &= bits - 1) {
      sigma *= gamma.at_unchecked(
          static_cast<std::size_t>(std::countr_zero(bits)), u);
    }
  }
  return sigma;
}

std::vector<double> Cost_model::stage_selectivities(const Instance& instance,
                                                    const Plan& plan) const {
  std::vector<double> result;
  result.reserve(plan.size());
  const auto& order = plan.order();
  for (std::size_t p = 0; p < order.size(); ++p) {
    result.push_back(conditional_selectivity(
        instance, order[p], std::span(order.data(), p)));
  }
  return result;
}

std::optional<Selectivity_bounds> Cost_model::selectivity_bounds(
    const Instance& instance) const {
  validate_for(instance);
  const std::size_t n = instance.size();
  Selectivity_bounds bounds;
  bounds.lo.resize(n);
  bounds.hi.resize(n);
  for (Service_id u = 0; u < n; ++u) {
    double lo = instance.selectivity(u);
    double hi = lo;
    if (correlation_ != nullptr) {
      const Matrix<double>& gamma = correlation_->gamma;
      for (Service_id w = 0; w < n; ++w) {
        if (w == u) continue;
        const double factor = gamma.at_unchecked(w, u);
        hi *= std::max(1.0, factor);
        lo *= std::min(1.0, factor);
      }
    }
    bounds.lo[u] = lo;
    bounds.hi[u] = hi;
    if (!std::isfinite(hi)) bounds.hi_sound = false;
    if (hi > 1.0) bounds.all_hi_selective = false;
  }
  return bounds;
}

void Cost_model::validate_for(const Instance& instance) const {
  if (correlation_ != nullptr) {
    QUEST_EXPECTS(correlation_->gamma.rows() == instance.size(),
                  "cost model's correlation matrix is sized for " +
                      std::to_string(correlation_->gamma.rows()) +
                      " services, instance has " +
                      std::to_string(instance.size()));
  }
  if (profile_ != nullptr && profile_->scales.size() != 1) {
    QUEST_EXPECTS(profile_->scales.size() == instance.size(),
                  "cost model's cost scales are sized for " +
                      std::to_string(profile_->scales.size()) +
                      " services, instance has " +
                      std::to_string(instance.size()));
  }
}

std::string Cost_model::key() const {
  std::string key = to_string(policy_);
  key += '/';
  if (correlation_ == nullptr) {
    key += "independent";
    if (profile_ != nullptr) key += ':' + profile_->params;
  } else {
    key += "correlated:" + correlation_->params +
           ",clamp-lo=" + fmt_double(correlation_->clamp_lo) +
           ",clamp-hi=" + fmt_double(correlation_->clamp_hi);
    if (profile_ != nullptr) key += ',' + profile_->params;
  }
  return key;
}

bool operator==(const Cost_model& a, const Cost_model& b) {
  if (a.policy_ != b.policy_) return false;
  if ((a.profile_ == nullptr) != (b.profile_ == nullptr)) return false;
  if (a.profile_ != nullptr && a.profile_ != b.profile_ &&
      (a.profile_->objective != b.profile_->objective ||
       a.profile_->scales != b.profile_->scales)) {
    return false;
  }
  if ((a.correlation_ == nullptr) != (b.correlation_ == nullptr)) {
    return false;
  }
  if (a.correlation_ == nullptr || a.correlation_ == b.correlation_) {
    return true;
  }
  return a.correlation_->clamp_lo == b.correlation_->clamp_lo &&
         a.correlation_->clamp_hi == b.correlation_->clamp_hi &&
         a.correlation_->gamma == b.correlation_->gamma;
}

// ---- Cost_model_spec -------------------------------------------------

namespace {

std::string join_scales(const std::vector<double>& values) {
  std::string joined;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) joined += '|';
    joined += fmt_double(values[i]);
  }
  return joined;
}

/// The objective-key suffix of a spec's canonical text; empty for mean.
std::string objective_suffix(const Cost_model_spec& spec) {
  if (spec.objective == Objective::mean) return {};
  std::string suffix =
      std::string("objective=") + to_string(spec.objective);
  if (!spec.cost_scale.empty()) {
    suffix += ",cost-scale=" + join_scales(spec.cost_scale);
    return suffix;
  }
  suffix += std::string(",cost-tail=") + to_string(spec.cost_tail);
  suffix += spec.cost_tail == Cost_tail::pareto
                ? ",cost-alpha=" + fmt_double(spec.cost_alpha)
                : ",cost-sigma=" + fmt_double(spec.cost_sigma);
  return suffix;
}

}  // namespace

Cost_model Cost_model_spec::bind(std::size_t n) const {
  Cost_model model;
  if (structure == Selectivity_structure::independent) {
    model = Cost_model::independent(policy);
  } else if (!matrix.empty()) {
    const std::size_t expected = n * (n - 1) / 2;
    if (matrix.size() != expected) {
      throw Parse_error(
          "cost model matrix holds " + std::to_string(matrix.size()) +
          " upper-triangle entries; a " + std::to_string(n) +
          "-service instance needs " + std::to_string(expected));
    }
    Matrix<double> gamma = Matrix<double>::square(n, 1.0);
    std::size_t at = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        gamma(i, j) = matrix[at];
        gamma(j, i) = matrix[at];
        ++at;
      }
    }
    model = Cost_model::correlated(std::move(gamma), policy, clamp_lo,
                                   clamp_hi);
  } else {
    model = Cost_model::correlated_seeded(n, strength, seed, policy,
                                          clamp_lo, clamp_hi);
  }
  if (objective == Objective::mean) return model;
  if (!cost_scale.empty()) {
    if (cost_scale.size() != 1 && cost_scale.size() != n) {
      throw Parse_error(
          "cost-scale holds " + std::to_string(cost_scale.size()) +
          " entries; expected 1 (uniform) or " + std::to_string(n) +
          " (one per service)");
    }
    return model.with_cost_scales(objective, cost_scale);
  }
  return model.with_cost_tail(
      objective, cost_tail,
      cost_tail == Cost_tail::pareto ? cost_alpha : cost_sigma);
}

std::string Cost_model_spec::to_string() const {
  const std::string suffix = objective_suffix(*this);
  if (structure == Selectivity_structure::independent) {
    return suffix.empty() ? "independent" : "independent:" + suffix;
  }
  std::string text = "correlated:";
  text += matrix.empty() ? "strength=" + fmt_double(strength) +
                               ",seed=" + std::to_string(seed)
                         : "matrix=" + join_scales(matrix);
  text += ",clamp-lo=" + fmt_double(clamp_lo) +
          ",clamp-hi=" + fmt_double(clamp_hi);
  if (!suffix.empty()) text += ',' + suffix;
  return text;
}

const std::vector<std::string>& Cost_model_spec::structure_names() {
  static const std::vector<std::string> names = {"independent",
                                                 "correlated"};
  return names;
}

const std::vector<std::string>& Cost_model_spec::option_keys() {
  static const std::vector<std::string> keys = {
      "strength",  "seed",       "clamp-lo",   "clamp-hi",  "matrix",
      "objective", "cost-tail",  "cost-alpha", "cost-sigma", "cost-scale"};
  return keys;
}

namespace {

double parse_double_value(std::string_view key, std::string_view text) {
  const std::string buffer(text);
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (buffer.empty() || end != buffer.c_str() + buffer.size() ||
      !std::isfinite(value)) {
    throw Parse_error("cost model option '" + std::string(key) +
                      "': expected a finite number, got '" + buffer + "'");
  }
  return value;
}

std::uint64_t parse_uint_value(std::string_view key, std::string_view text) {
  std::uint64_t value = 0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) {
    throw Parse_error("cost model option '" + std::string(key) +
                      "': expected a non-negative integer, got '" +
                      std::string(text) + "'");
  }
  return value;
}

/// '|'-separated finite doubles ("0.8|1.25|1"); at least one entry.
std::vector<double> parse_double_list(std::string_view key,
                                      std::string_view text) {
  std::vector<double> values;
  std::string_view rest = text;
  for (;;) {
    const auto bar = rest.find('|');
    const std::string_view piece =
        bar == std::string_view::npos ? rest : rest.substr(0, bar);
    values.push_back(parse_double_value(key, piece));
    if (bar == std::string_view::npos) break;
    rest = rest.substr(bar + 1);
  }
  return values;
}

}  // namespace

Cost_model_spec parse_cost_model_spec(std::string_view model_text,
                                      std::string_view policy_text) {
  Cost_model_spec spec;
  spec.policy = parse_send_policy(policy_text);

  std::string_view name = model_text;
  std::string_view options_text;
  if (const auto colon = model_text.find(':');
      colon != std::string_view::npos) {
    name = model_text.substr(0, colon);
    options_text = model_text.substr(colon + 1);
    if (options_text.empty()) {
      throw Parse_error("cost model spec '" + std::string(model_text) +
                        "' has a ':' but no options");
    }
  }
  if (name == "independent") {
    spec.structure = Selectivity_structure::independent;
  } else if (name == "correlated") {
    spec.structure = Selectivity_structure::correlated;
  } else {
    throw Parse_error("unknown cost model '" + std::string(name) +
                      "' (expected independent or correlated)");
  }
  const bool independent =
      spec.structure == Selectivity_structure::independent;

  std::string_view rest = options_text;
  std::vector<std::string> seen;
  const auto saw = [&seen](std::string_view key) {
    return std::find(seen.begin(), seen.end(), key) != seen.end();
  };
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string_view piece =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (comma != std::string_view::npos && rest.empty()) {
      throw Parse_error("trailing comma in cost model spec '" +
                        std::string(model_text) + "'");
    }
    const auto eq = piece.find('=');
    if (eq == std::string_view::npos || eq == 0 ||
        eq + 1 >= piece.size()) {
      throw Parse_error("malformed cost model option '" +
                        std::string(piece) + "': expected key=value");
    }
    const std::string key(piece.substr(0, eq));
    const std::string_view value = piece.substr(eq + 1);
    if (saw(key)) {
      throw Parse_error("duplicate cost model option '" + key + "'");
    }
    seen.push_back(key);
    const bool structure_key = key == "strength" || key == "seed" ||
                               key == "clamp-lo" || key == "clamp-hi" ||
                               key == "matrix";
    if (independent && structure_key) {
      throw Parse_error("the independent cost model takes only objective "
                        "options (objective, cost-tail, cost-alpha, "
                        "cost-sigma, cost-scale), not '" +
                        key + "'");
    }
    if (key == "strength") {
      spec.strength = parse_double_value(key, value);
      if (spec.strength < 0.0) {
        throw Parse_error("cost model strength must be non-negative");
      }
    } else if (key == "seed") {
      spec.seed = parse_uint_value(key, value);
    } else if (key == "clamp-lo") {
      spec.clamp_lo = parse_double_value(key, value);
    } else if (key == "clamp-hi") {
      spec.clamp_hi = parse_double_value(key, value);
    } else if (key == "matrix") {
      spec.matrix = parse_double_list(key, value);
      for (const double factor : spec.matrix) {
        if (factor < 0.0) {
          throw Parse_error(
              "cost model matrix factors must be non-negative");
        }
      }
    } else if (key == "objective") {
      spec.objective = parse_objective(value);
    } else if (key == "cost-tail") {
      if (value == "pareto") {
        spec.cost_tail = Cost_tail::pareto;
      } else if (value == "lognormal") {
        spec.cost_tail = Cost_tail::lognormal;
      } else {
        throw Parse_error("cost-tail must be 'pareto' or 'lognormal', "
                          "got '" + std::string(value) + "'");
      }
    } else if (key == "cost-alpha") {
      spec.cost_alpha = parse_double_value(key, value);
    } else if (key == "cost-sigma") {
      spec.cost_sigma = parse_double_value(key, value);
    } else if (key == "cost-scale") {
      spec.cost_scale = parse_double_list(key, value);
      for (const double scale : spec.cost_scale) {
        if (scale <= 0.0) {
          throw Parse_error("cost-scale entries must be positive");
        }
      }
    } else {
      throw Parse_error("cost model has no option '" + key +
                        "' (valid: strength, seed, clamp-lo, clamp-hi, "
                        "matrix, objective, cost-tail, cost-alpha, "
                        "cost-sigma, cost-scale)");
    }
  }
  if (spec.clamp_lo < 0.0 || spec.clamp_lo > spec.clamp_hi) {
    throw Parse_error(
        "cost model clamps must satisfy 0 <= clamp-lo <= clamp-hi");
  }
  if (!spec.matrix.empty() && (saw("strength") || saw("seed"))) {
    throw Parse_error(
        "cost model matrix= replaces the seeded matrix; it cannot be "
        "combined with strength= or seed=");
  }

  // Objective grammar: mean admits no distribution keys; a quantile
  // objective needs exactly one source of scales (a tail family or
  // explicit scales), and tail parameters must match their family.
  if (spec.objective == Objective::mean) {
    for (const char* key :
         {"cost-tail", "cost-alpha", "cost-sigma", "cost-scale"}) {
      if (saw(key)) {
        throw Parse_error(std::string("cost model option '") + key +
                          "' needs objective=p95 or objective=p99");
      }
    }
    return spec;
  }
  if (saw("cost-tail") && saw("cost-scale")) {
    throw Parse_error(
        "a quantile objective takes either cost-tail or cost-scale, "
        "not both");
  }
  if (!saw("cost-tail") && !saw("cost-scale")) {
    throw Parse_error("objective=" + std::string(to_string(spec.objective)) +
                      " needs a cost distribution: cost-tail=pareto|"
                      "lognormal (with cost-alpha/cost-sigma) or an "
                      "explicit cost-scale=");
  }
  if (saw("cost-alpha") && spec.cost_tail != Cost_tail::pareto) {
    throw Parse_error("cost-alpha applies only with cost-tail=pareto");
  }
  if (saw("cost-sigma") && spec.cost_tail != Cost_tail::lognormal) {
    throw Parse_error("cost-sigma applies only with cost-tail=lognormal");
  }
  if (spec.cost_tail == Cost_tail::pareto && spec.cost_alpha <= 1.0) {
    throw Parse_error(
        "Pareto cost-alpha must exceed 1: at or below 1 the mean cost is "
        "infinite, so no sound quantile bound exists (cap the fitted "
        "alpha above 1 or switch to cost-scale=)");
  }
  if (spec.cost_tail == Cost_tail::lognormal && spec.cost_sigma <= 0.0) {
    throw Parse_error("lognormal cost-sigma must be positive");
  }
  return spec;
}

}  // namespace quest::model
