#include "quest/model/explain.hpp"

#include <algorithm>
#include <sstream>

#include "quest/common/error.hpp"
#include "quest/common/table.hpp"

namespace quest::model {

std::string explain_plan(const Instance& instance, const Plan& plan,
                         const Cost_model& model) {
  const auto breakdown = cost_breakdown(instance, plan, model);
  Table table("plan: " + plan.to_string(instance) + "  (bottleneck cost " +
              Table::num(breakdown.cost, 3) + ")");
  table.set_header({"pos", "service", "tuples in", "c", "sigma", "t-out",
                    "stage cost", ""});
  const std::size_t n = plan.size();
  for (std::size_t p = 0; p < n; ++p) {
    const Service& s = instance.service(plan[p]);
    const double t_out = p + 1 < n ? instance.transfer(plan[p], plan[p + 1])
                                   : instance.sink_transfer(plan[p]);
    table.add_row({std::to_string(p),
                   s.name.empty() ? "WS" + std::to_string(plan[p]) : s.name,
                   Table::num(breakdown.input_fractions[p], 3),
                   Table::num(s.cost, 2),
                   Table::num(breakdown.stage_selectivities[p], 2),
                   Table::num(t_out, 2),
                   Table::num(breakdown.stage_costs[p], 3),
                   p == breakdown.bottleneck_position ? "<- bottleneck"
                                                      : ""});
  }
  table.add_footnote("tuples in = expected tuples reaching the stage per "
                     "input tuple; stage cost = tuples-in x " +
                     std::string(model.policy() == Send_policy::sequential
                                     ? "(c + sigma*t)"
                                     : "max(c, sigma*t)"));
  table.add_footnote("cost model: " + model.key() +
                     (model.is_independent()
                          ? ""
                          : "; sigma shows the conditional selectivity "
                            "given the stages before it"));
  std::ostringstream out;
  out << table;
  return out.str();
}

std::string compare_plans(const Instance& instance,
                          const std::vector<Labeled_plan>& plans,
                          const Cost_model& model) {
  QUEST_EXPECTS(!plans.empty(), "compare_plans needs at least one plan");
  struct Row {
    const Labeled_plan* entry;
    double cost;
    std::size_t bottleneck;
  };
  std::vector<Row> rows;
  rows.reserve(plans.size());
  for (const auto& entry : plans) {
    const auto breakdown = cost_breakdown(instance, entry.plan, model);
    rows.push_back({&entry, breakdown.cost, breakdown.bottleneck_position});
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) { return a.cost < b.cost; });
  const double best = rows.front().cost;

  Table table("plan comparison (" + std::to_string(plans.size()) +
              " candidates)");
  table.set_header({"label", "cost", "vs best", "bottleneck", "plan"});
  for (const Row& row : rows) {
    const Service& b =
        instance.service(row.entry->plan[row.bottleneck]);
    table.add_row({row.entry->label, Table::num(row.cost, 3),
                   best > 0.0 ? Table::num(row.cost / best, 3) : "-",
                   b.name.empty()
                       ? "WS" + std::to_string(row.entry->plan[row.bottleneck])
                       : b.name,
                   row.entry->plan.to_string(instance)});
  }
  std::ostringstream out;
  out << table;
  return out.str();
}

}  // namespace quest::model
