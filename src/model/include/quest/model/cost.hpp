// quest/model/cost.hpp
//
// The bottleneck cost metric of the paper (Eq. 1) and an incremental
// evaluator for partial plans, the workhorse of every optimizer. All
// entry points evaluate through a Cost_model (quest/model/cost_model.hpp):
// the send policy plus the selectivity structure.
//
// For a complete plan S = (s_0, ..., s_{n-1}):
//
//   cost(S) = max_i  P_i * term(c_i, sigma_i, t_i)
//
// where sigma_i = sigma(s_i | {s_0..s_{i-1}}) is the model's conditional
// selectivity (just sigma_{s_i} under the independent structure), P_i is
// the product of the conditional selectivities of the services before s_i
// (the average number of tuples reaching s_i per input tuple), t_i is the
// transfer cost from s_i to its successor (the sink link for the last
// service, zero by default), and term() depends on the send policy:
//
//   sequential: c + sigma * t   (single-threaded service: processing and
//                                sending of a tuple cannot overlap — the
//                                paper's Section 2 restriction)
//   overlapped: max(c, sigma*t) (processing overlaps sending; the "minor
//                                modification" for multi-threaded services)
//
// For a *partial* plan only the terms of services that already have a
// successor are determined; their maximum is the paper's measure epsilon,
// which is non-decreasing under extension (Lemma 1) for every cost model
// (the model's conditional selectivities are non-negative by
// construction, so stage terms are non-negative).

#pragma once

#include <cstddef>
#include <vector>

#include "quest/common/bitset64.hpp"
#include "quest/model/cost_model.hpp"
#include "quest/model/instance.hpp"
#include "quest/model/plan.hpp"

namespace quest::model {

/// Per-tuple time spent at one stage, before attenuation by upstream
/// selectivities. `selectivity` is the stage's conditional selectivity
/// under the active cost model.
constexpr double stage_term(double cost, double selectivity, double transfer,
                            Send_policy policy) noexcept {
  const double send = selectivity * transfer;
  return policy == Send_policy::sequential ? cost + send
                                           : (cost > send ? cost : send);
}

/// Bottleneck cost (Eq. 1) of a complete plan under `model`.
/// Precondition: `plan` is a permutation of the instance's services and
/// `model` fits the instance (Cost_model::validate_for).
double bottleneck_cost(const Instance& instance, const Plan& plan,
                       const Cost_model& model = {});

/// Fully-determined-terms maximum (the paper's epsilon) of a partial plan:
/// the max over all services that already have a successor. Zero for plans
/// of size < 2. Precondition: `plan` holds distinct, in-range services.
double partial_epsilon(const Instance& instance, const Plan& plan,
                       const Cost_model& model = {});

/// Detailed per-stage view of a complete plan's cost.
struct Cost_breakdown {
  /// P_i * term(...) for each plan position.
  std::vector<double> stage_costs;
  /// Expected tuples reaching each position per input tuple (P_i).
  std::vector<double> input_fractions;
  /// Conditional selectivity at each position under the cost model
  /// (equal to the services' base selectivities when independent).
  std::vector<double> stage_selectivities;
  /// Plan position of the (first) bottleneck stage.
  std::size_t bottleneck_position = 0;
  /// The bottleneck cost itself.
  double cost = 0.0;
};

/// Computes the full breakdown; same preconditions as bottleneck_cost.
Cost_breakdown cost_breakdown(const Instance& instance, const Plan& plan,
                              const Cost_model& model = {});

/// Incremental evaluator for growing/shrinking a partial plan, O(1) per
/// append/pop under the independent structure and O(plan size) under the
/// correlated one. Used by branch-and-bound and exhaustive search; exposed
/// publicly because heuristics and tests benefit from it too.
class Partial_plan_evaluator {
 public:
  explicit Partial_plan_evaluator(const Instance& instance,
                                  Cost_model model = {});

  /// Appends a service. Precondition: not already in the plan.
  void append(Service_id id);
  /// Removes the most recently appended service. Precondition: non-empty.
  void pop();
  /// Clears back to the empty plan.
  void clear();

  std::size_t size() const noexcept { return frames_.size(); }
  bool empty() const noexcept { return frames_.empty(); }
  bool full() const noexcept { return frames_.size() == instance_->size(); }
  bool contains(Service_id id) const { return in_plan_.test(id); }
  Service_id last() const;

  /// The paper's epsilon: max over fully-determined stage terms.
  /// Non-decreasing in append() (Lemma 1); 0 while size() < 2.
  double epsilon() const noexcept {
    return frames_.empty() ? 0.0 : frames_.back().epsilon_after;
  }

  /// Product of the conditional selectivities of every service in the plan
  /// (P_{k+1}: the input fraction any immediately-appended service sees).
  double product_through() const noexcept {
    return frames_.empty() ? 1.0 : frames_.back().product_through;
  }

  /// Input fraction of the last service in the plan (P_k).
  double product_before_last() const;

  /// Conditional selectivity of the last service given the services
  /// before it — the sigma its stage term uses. Precondition: non-empty.
  double last_selectivity() const;

  /// Plan position of the (earliest) stage achieving epsilon — the
  /// bottleneck service among the determined terms. Defined for size >= 2;
  /// the branch-and-bound back-jump (Lemma 3) unwinds to this position.
  std::size_t bottleneck_position() const;

  /// The determined term the append of `next` would fix for the current
  /// last service, without mutating the evaluator.
  double term_if_appended(Service_id next) const;

  /// Bottleneck cost of the plan interpreted as complete
  /// (epsilon joined with the last service's sink term).
  /// Precondition: full().
  double complete_cost() const;

  /// Current ordering (a copy).
  Plan plan() const;
  const std::vector<Service_id>& order() const noexcept { return order_; }

  /// Bitmask view of the plan set (bits 0..63; the subset engines and the
  /// search kernel consume this on n <= 64 instances).
  std::uint64_t placed_word() const noexcept { return in_plan_.word(); }

  const Instance& instance() const noexcept { return *instance_; }
  const Cost_model& cost_model() const noexcept { return model_; }
  Send_policy policy() const noexcept { return model_.policy(); }

 private:
  struct Frame {
    Service_id id;
    double sigma;            ///< sigma(id | services before it)
    double product_before;   ///< P_k for this service
    double product_through;  ///< P_k * sigma
    double epsilon_after;    ///< epsilon including this append's fixed term
    std::size_t bottleneck_pos;  ///< earliest argmax position of epsilon
  };

  const Instance* instance_;
  Cost_model model_;
  /// Cached correlation matrix (nullptr = independent fast path).
  const Matrix<double>* gamma_;
  std::vector<Frame> frames_;
  std::vector<Service_id> order_;
  /// Membership of order_ as a bitmask (single-word fast path for
  /// n <= 64; overflow words keep arbitrary-n callers working).
  Member_mask in_plan_;
};

}  // namespace quest::model
