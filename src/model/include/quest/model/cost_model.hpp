// quest/model/cost_model.hpp
//
// The cost model of an optimization request as a first-class value: the
// send policy (how a stage combines processing and forwarding time)
// bundled with a *selectivity structure* (how the selectivity of a service
// depends on the services applied before it).
//
// Structures:
//
//   independent — the paper's Eq. 1 assumption: sigma(u | S) == sigma_u
//     regardless of the prefix set S. The zero-overhead fast path; every
//     evaluator produces bit-identical results to the historical
//     Send_policy-parameterized API.
//
//   correlated — conditional selectivity backed by a pairwise interaction
//     matrix gamma:  sigma(u | S) = sigma_u * prod_{w in S} gamma(w, u).
//     gamma is symmetrized and clamped into [clamp_lo, clamp_hi] at
//     construction; gamma(w, u) > 1 means w's filter makes u pass *more*
//     tuples (positive correlation of the predicates), < 1 means u's
//     filtering is partially subsumed by w. The clamp keeps every factor
//     non-negative and finite, so stage terms stay non-negative and the
//     partial-plan epsilon remains monotone under extension — Lemma 1, and
//     with it the branch-and-bound's pruning, survives unchanged.
//
// Symmetry matters: with gamma(w, u) == gamma(u, w) the selectivity
// product of a prefix *set* is independent of the order within the set
// (each unordered pair contributes its factor exactly once), which is what
// keeps the subset-DP and frontier-search recurrences valid and lets every
// engine agree on correlated instances.
//
// For the search bounds (epsilon-bar / Lemma 2, and the admissible lower
// bound), the model provides per-service bounds on the conditional
// selectivity any prefix can attain (selectivity_bounds). When no sound
// finite *upper* bound exists — products overflowing to infinity — the
// bounds report hi_sound == false and engines fall back to
// Lemma-2-disabled search; the always-finite lower bounds keep
// admissible pruning alive.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "quest/common/matrix.hpp"
#include "quest/model/instance.hpp"
#include "quest/model/plan.hpp"

namespace quest::model {

/// How a single-service stage combines processing and forwarding cost.
enum class Send_policy {
  sequential,  ///< c + sigma * t — the paper's single-threaded services
  overlapped,  ///< max(c, sigma * t) — multi-threaded relaxation
};

/// "sequential" / "overlapped".
const char* to_string(Send_policy policy) noexcept;

/// Parses "sequential" / "overlapped"; throws Parse_error otherwise.
Send_policy parse_send_policy(std::string_view text);

/// How service selectivities compose along a plan prefix.
enum class Selectivity_structure {
  independent,
  correlated,
};

/// "independent" / "correlated".
const char* to_string(Selectivity_structure structure) noexcept;

/// What the optimizer minimizes when per-service costs are distributions
/// rather than constants. `mean` is the paper's Eq. 1 (expected per-tuple
/// cost); the quantile objectives replace each service's mean cost with
/// its tail quantile, a per-service constant factor — prefix-independent,
/// so every bound and lemma evaluates unchanged on the scaled costs.
enum class Objective {
  mean,
  p95,
  p99,
};

/// "mean" / "p95" / "p99".
const char* to_string(Objective objective) noexcept;

/// Parses "mean" / "p95" / "p99"; throws Parse_error otherwise.
Objective parse_objective(std::string_view text);

/// Tail family of a per-service cost distribution whose quantile the
/// model scales by (matching the workload generators' families).
enum class Cost_tail {
  none,       ///< constant costs — no distribution attached
  pareto,     ///< Pareto(alpha) around the service's mean cost
  lognormal,  ///< lognormal with log-space sigma around the mean cost
};

/// "none" / "pareto" / "lognormal".
const char* to_string(Cost_tail tail) noexcept;

/// Per-service bounds on the conditional selectivity attainable under any
/// prefix set (see Cost_model::selectivity_bounds). The lower bounds are
/// always finite (shrinking factors only); the upper bounds can overflow
/// to infinity under extreme amplification, in which case `hi_sound` is
/// false and only the lower bounds may be used.
struct Selectivity_bounds {
  std::vector<double> lo;  ///< admissible lower bounds (always finite)
  std::vector<double> hi;  ///< upper bounds; sound only when hi_sound
  /// True when every `hi` entry is finite — Lemma-2 closure (Epsilon_bar)
  /// requires this; the admissible lower bound does not.
  bool hi_sound = true;
  /// True when every upper bound is <= 1: no completion can ever amplify
  /// the tuple stream, the generalization of Instance::all_selective().
  bool all_hi_selective = true;
};

/// The first-class cost model: send policy + selectivity structure.
/// A cheap value type (an enum plus a shared immutable correlation
/// payload); copy freely, including into every opt::Request.
class Cost_model {
 public:
  /// Bounds applied to the interaction factors at construction.
  static constexpr double default_clamp_lo = 0.25;
  static constexpr double default_clamp_hi = 4.0;

  /// Independent Eq. 1 model with the sequential policy.
  Cost_model() = default;

  static Cost_model independent(
      Send_policy policy = Send_policy::sequential);

  /// Correlated model from an explicit pairwise interaction matrix.
  /// `gamma` must be square with finite, non-negative entries; it is
  /// symmetrized (averaged with its transpose), its off-diagonal entries
  /// clamped into [clamp_lo, clamp_hi], and its diagonal forced to 1.
  static Cost_model correlated(Matrix<double> gamma,
                               Send_policy policy = Send_policy::sequential,
                               double clamp_lo = default_clamp_lo,
                               double clamp_hi = default_clamp_hi);

  /// Correlated model with a seeded random interaction matrix for an
  /// n-service instance: off-diagonal factors exp(strength * U[-1, 1]),
  /// then clamped. strength 0 reproduces independent selectivities while
  /// exercising the correlated code path.
  static Cost_model correlated_seeded(
      std::size_t n, double strength, std::uint64_t seed,
      Send_policy policy = Send_policy::sequential,
      double clamp_lo = default_clamp_lo,
      double clamp_hi = default_clamp_hi);

  Send_policy policy() const noexcept { return policy_; }
  /// Same selectivity structure under a different send policy.
  Cost_model with_policy(Send_policy policy) const;

  /// Same model optimizing a tail quantile of per-service cost
  /// distributions: every service's cost is scaled by the mean-relative
  /// q-quantile of the tail family (q = 0.95 or 0.99). `objective` must
  /// be p95/p99 and `tail` pareto/lognormal; `param` is Pareto's alpha
  /// (must exceed 1 — below that the mean is infinite and no sound
  /// quantile-to-mean scale exists) or the lognormal log-space sigma
  /// (must be positive). The scale is floored at 1: a quantile objective
  /// never prices a service below its mean.
  Cost_model with_cost_tail(Objective objective, Cost_tail tail,
                            double param) const;

  /// Same model under explicit per-service cost scales (e.g. fitted
  /// quantile/mean ratios). `scales` holds one entry (uniform) or one per
  /// service, each finite and positive; `objective` must be p95/p99.
  Cost_model with_cost_scales(Objective objective,
                              std::vector<double> scales) const;

  /// The active objective; `mean` when no cost profile is attached.
  Objective objective() const noexcept {
    return profile_ == nullptr ? Objective::mean : profile_->objective;
  }
  bool has_cost_profile() const noexcept { return profile_ != nullptr; }

  /// The multiplicative cost scale of service `u` (1 under `mean`).
  double cost_scale(Service_id u) const noexcept {
    if (profile_ == nullptr) return 1.0;
    const auto& scales = profile_->scales;
    return scales.size() == 1 ? scales.front() : scales[u];
  }

  /// The cost the active objective charges for service `u`: the
  /// instance's (mean) cost times the profile scale. Every evaluator and
  /// bound reads costs through this — the scales are prefix-independent
  /// constants, so Lemmas 1-3 and both bounds stay sound unchanged.
  double effective_cost(const Instance& instance, Service_id u) const {
    return instance.service(u).cost * cost_scale(u);
  }

  Selectivity_structure structure() const noexcept {
    return correlation_ == nullptr ? Selectivity_structure::independent
                                   : Selectivity_structure::correlated;
  }
  bool is_independent() const noexcept { return correlation_ == nullptr; }

  /// The clamped symmetric interaction matrix; nullptr for independent.
  const Matrix<double>* interaction() const noexcept;

  /// sigma(u | placed): the conditional selectivity of `u` given the set
  /// of already-applied services. `placed` must hold distinct in-range ids
  /// not containing `u`; order is irrelevant (symmetric gamma).
  double conditional_selectivity(const Instance& instance, Service_id u,
                                 std::span<const Service_id> placed) const;

  /// Mask flavor for the subset engines (bit i set = service i placed).
  double conditional_selectivity(const Instance& instance, Service_id u,
                                 std::uint64_t placed_mask) const;

  /// Conditional selectivity of each position of `plan` (partial plans
  /// allowed) given the services before it.
  std::vector<double> stage_selectivities(const Instance& instance,
                                          const Plan& plan) const;

  /// Per-service bounds on the attainable conditional selectivity.
  /// When the upper-bound products overflow, the bounds come back with
  /// `hi_sound == false`: Lemma-2 closure must then be disabled, while
  /// the (always finite) lower bounds remain usable for admissible
  /// pruning. nullopt is reserved for structures that cannot bound
  /// selectivities at all; both built-ins always return bounds.
  std::optional<Selectivity_bounds> selectivity_bounds(
      const Instance& instance) const;

  /// Throws Precondition_error when the model cannot evaluate `instance`
  /// (a correlated interaction matrix sized for a different instance).
  void validate_for(const Instance& instance) const;

  /// Canonical identity string, e.g. "sequential/independent" or
  /// "overlapped/correlated:strength=0.5,seed=7,clamp-lo=0.25,clamp-hi=4".
  /// Equal models have equal keys; explicit-matrix models embed a content
  /// hash. Plan caches must never serve a plan across different keys.
  std::string key() const;

  /// Semantic equality: same policy, structure, clamps and interaction.
  friend bool operator==(const Cost_model& a, const Cost_model& b);

 private:
  struct Correlation {
    Matrix<double> gamma;  ///< symmetric, clamped, unit diagonal
    double clamp_lo = default_clamp_lo;
    double clamp_hi = default_clamp_hi;
    /// "strength=...,seed=..." or "matrix=<hash>", without clamps.
    std::string params;
  };

  struct Cost_profile {
    Objective objective = Objective::mean;
    /// One entry (uniform) or one per service; finite and positive.
    std::vector<double> scales;
    /// Canonical spec fragment, e.g. "objective=p95,cost-tail=pareto,
    /// cost-alpha=2.5" or "objective=p99,cost-scale=1.5|2".
    std::string params;
  };

  Send_policy policy_ = Send_policy::sequential;
  std::shared_ptr<const Correlation> correlation_;
  std::shared_ptr<const Cost_profile> profile_;
};

/// Instance-agnostic textual description of a cost model — what travels
/// on the wire (quest_serve's "model" / "policy" fields), on command
/// lines (quest_cli --model / --policy), and in engine specs (the shared
/// model= / policy= registry keys). bind(n) builds the Cost_model for an
/// n-service instance.
struct Cost_model_spec {
  Send_policy policy = Send_policy::sequential;
  Selectivity_structure structure = Selectivity_structure::independent;
  double strength = 0.5;
  std::uint64_t seed = 1;
  double clamp_lo = Cost_model::default_clamp_lo;
  double clamp_hi = Cost_model::default_clamp_hi;
  /// Explicit interaction matrix as its strict upper triangle in row-major
  /// order ('|'-separated on the wire); empty = seeded random matrix. This
  /// is how fitted models travel through the spec grammar. bind(n)
  /// requires exactly n*(n-1)/2 entries.
  std::vector<double> matrix;
  /// Objective over per-service cost distributions (valid on both
  /// structures); p95/p99 need exactly one of cost-tail or cost-scale.
  Objective objective = Objective::mean;
  Cost_tail cost_tail = Cost_tail::none;
  double cost_alpha = 2.0;  ///< Pareto tail index (cost-tail=pareto)
  double cost_sigma = 1.0;  ///< log-space sigma (cost-tail=lognormal)
  /// Explicit per-service cost scales ('|'-separated): one entry
  /// (uniform) or one per service; empty = derive from cost-tail.
  std::vector<double> cost_scale;

  Cost_model bind(std::size_t n) const;

  /// Canonical spec text (without the policy): "independent" or
  /// "correlated:strength=...,seed=...,clamp-lo=...,clamp-hi=...", plus
  /// the objective keys when an objective other than mean is set.
  std::string to_string() const;

  /// The documented structure names ("independent", "correlated").
  static const std::vector<std::string>& structure_names();
  /// The documented option keys ("strength", "seed", "clamp-lo",
  /// "clamp-hi", "matrix", "objective", "cost-tail", "cost-alpha",
  /// "cost-sigma", "cost-scale").
  static const std::vector<std::string>& option_keys();

  friend bool operator==(const Cost_model_spec&,
                         const Cost_model_spec&) = default;
};

/// Parses "independent" or "correlated[:key=value,...]" plus a policy
/// name into a spec. Grammar mirrors the optimizer registry
/// ("name[:key=value,key=value]"); unknown structures, unknown keys,
/// malformed pairs and out-of-range values throw Parse_error. The
/// independent structure accepts only the objective keys ("objective",
/// "cost-tail", "cost-alpha", "cost-sigma", "cost-scale").
Cost_model_spec parse_cost_model_spec(std::string_view model_text,
                                      std::string_view policy_text =
                                          "sequential");

}  // namespace quest::model
