// quest/model/explain.hpp
//
// Human-readable plan reports: where the time goes, which stage is the
// bottleneck, and how candidate plans compare. Built on cost_breakdown;
// used by the examples and handy at any debugging session.

#pragma once

#include <string>
#include <vector>

#include "quest/model/cost.hpp"

namespace quest::model {

/// Renders a per-stage table for a complete plan:
///
///   == plan: a -> b -> c (cost 4.5) ==
///   | pos | service | in-frac | c | sigma | t-out | stage cost |  |
///   ...                                              4.500  <- bottleneck
///
/// Preconditions as bottleneck_cost.
std::string explain_plan(const Instance& instance, const Plan& plan,
                         Send_policy policy = Send_policy::sequential);

/// One row per plan, best (lowest cost) first:
/// label, cost, ratio to best, bottleneck service.
struct Labeled_plan {
  std::string label;
  Plan plan;
};

std::string compare_plans(const Instance& instance,
                          const std::vector<Labeled_plan>& plans,
                          Send_policy policy = Send_policy::sequential);

}  // namespace quest::model
