// quest/model/explain.hpp
//
// Human-readable plan reports: where the time goes, which stage is the
// bottleneck, and how candidate plans compare. Built on cost_breakdown;
// used by the examples and handy at any debugging session. All reports
// evaluate through a Cost_model and name it in their footnotes.

#pragma once

#include <string>
#include <vector>

#include "quest/model/cost.hpp"

namespace quest::model {

/// Renders a per-stage table for a complete plan:
///
///   == plan: a -> b -> c (cost 4.5) ==
///   | pos | service | in-frac | c | sigma | t-out | stage cost |  |
///   ...                                              4.500  <- bottleneck
///
/// The sigma column shows the *conditional* selectivity at that position
/// under the model. Preconditions as bottleneck_cost.
std::string explain_plan(const Instance& instance, const Plan& plan,
                         const Cost_model& model = {});

/// One row per plan, best (lowest cost) first:
/// label, cost, ratio to best, bottleneck service.
struct Labeled_plan {
  std::string label;
  Plan plan;
};

std::string compare_plans(const Instance& instance,
                          const std::vector<Labeled_plan>& plans,
                          const Cost_model& model = {});

}  // namespace quest::model
