// quest/model/instance.hpp
//
// A problem instance: N services, the pairwise per-tuple transfer-cost
// matrix t_{i,j} of the decentralized (choreography) setting, and an
// optional per-service transfer cost back to the query originator ("sink").

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "quest/common/matrix.hpp"
#include "quest/model/service.hpp"

namespace quest::model {

/// Immutable problem instance.
///
/// Invariants (validated on construction):
///  * at least one service;
///  * every cost, selectivity, transfer and sink-transfer value is finite
///    and non-negative;
///  * the transfer matrix is square, n x n, with a zero diagonal.
///
/// The matrix need not be symmetric — decentralized links may be
/// asymmetric — and need not satisfy the triangle inequality.
class Instance {
 public:
  /// Builds an instance; `sink_transfer` may be empty (treated as all-zero:
  /// the paper's Eq. 1, where the last service pays no transfer).
  Instance(std::vector<Service> services, Matrix<double> transfer,
           std::vector<double> sink_transfer = {}, std::string name = {});

  std::size_t size() const noexcept { return services_.size(); }

  const Service& service(Service_id id) const;
  double cost(Service_id id) const { return service(id).cost; }
  double selectivity(Service_id id) const { return service(id).selectivity; }

  /// Per-tuple cost of shipping one tuple from service `from` to `to`.
  double transfer(Service_id from, Service_id to) const;

  /// Per-tuple cost of shipping a result tuple from `from` back to the
  /// query originator. Zero unless the instance models the return link.
  double sink_transfer(Service_id from) const {
    return sink_transfer_[from];
  }

  const std::vector<Service>& services() const noexcept { return services_; }
  const Matrix<double>& transfer_matrix() const noexcept { return transfer_; }
  const std::vector<double>& sink_transfers() const noexcept {
    return sink_transfer_;
  }
  const std::string& name() const noexcept { return name_; }

  /// True when every selectivity is <= 1 (all services act as filters) —
  /// the restricted setting of the brief announcement's Section 2.
  bool all_selective() const noexcept { return all_selective_; }

  /// True when t_{i,j} is identical for every i != j and the sink links are
  /// zero — the centralized special case of Srivastava et al. [1] for which
  /// a polynomial algorithm exists.
  bool uniform_transfer() const noexcept;

  /// Largest transfer cost out of `from` into any service of `allowed`
  /// (callable with signature bool(Service_id)), including the sink link.
  template <typename Pred>
  double max_outgoing_transfer(Service_id from, Pred allowed) const {
    double best = sink_transfer_[from];
    for (Service_id to = 0; to < size(); ++to) {
      if (to == from || !allowed(to)) continue;
      best = std::max(best, transfer_.at_unchecked(from, to));
    }
    return best;
  }

  friend bool operator==(const Instance& a, const Instance& b) {
    return a.services_ == b.services_ && a.transfer_ == b.transfer_ &&
           a.sink_transfer_ == b.sink_transfer_;
  }

 private:
  std::vector<Service> services_;
  Matrix<double> transfer_;
  std::vector<double> sink_transfer_;
  std::string name_;
  bool all_selective_ = true;
};

}  // namespace quest::model
