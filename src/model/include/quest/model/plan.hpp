// quest/model/plan.hpp
//
// A plan is a linear ordering of all (complete plan) or some (partial plan)
// services of an instance. Plans are what every optimizer returns and what
// the simulator and runtime execute.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "quest/model/service.hpp"

namespace quest::model {

class Instance;

/// Linear service ordering. A thin, validated wrapper over a vector of
/// Service_id; position 0 receives the input tuples.
class Plan {
 public:
  Plan() = default;
  explicit Plan(std::vector<Service_id> order) : order_(std::move(order)) {}

  /// The identity ordering 0, 1, ..., n-1.
  static Plan identity(std::size_t n);

  std::size_t size() const noexcept { return order_.size(); }
  bool empty() const noexcept { return order_.empty(); }

  Service_id operator[](std::size_t position) const;
  Service_id front() const;
  Service_id back() const;

  const std::vector<Service_id>& order() const noexcept { return order_; }

  void append(Service_id id) { order_.push_back(id); }
  void pop() { order_.pop_back(); }

  /// True iff the plan is a permutation of 0..n-1 (a complete plan for an
  /// n-service instance).
  bool is_permutation_of(std::size_t n) const;

  /// Position of each service in the plan; invalid_service marks absent
  /// services. The returned vector has `n` entries.
  std::vector<Service_id> positions(std::size_t n) const;

  /// Human-readable rendering using instance service names:
  /// "scan -> filter -> enrich".
  std::string to_string(const Instance& instance) const;
  /// Rendering with bare ids: "[3 0 2 1]".
  std::string to_string() const;

  friend bool operator==(const Plan&, const Plan&) = default;

  auto begin() const noexcept { return order_.begin(); }
  auto end() const noexcept { return order_.end(); }

 private:
  std::vector<Service_id> order_;
};

}  // namespace quest::model
