// quest/model/service.hpp
//
// The atoms of the problem model: a Web Service with a per-tuple processing
// cost and a selectivity, identified inside an Instance by a dense index.

#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace quest::model {

/// Dense index of a service inside an Instance (0 .. n-1).
using Service_id = std::uint32_t;

/// Sentinel for "no service".
inline constexpr Service_id invalid_service =
    std::numeric_limits<Service_id>::max();

/// A pipelined Web Service.
///
/// `cost` is the average time the service needs to process one input tuple
/// (the paper's c_i). `selectivity` is the average ratio of output to input
/// tuples (σ_i): < 1 for filters, > 1 for expanding services such as a
/// person -> credit-card-numbers lookup. Both are assumed constant and
/// independent of attribute values, as in the paper.
struct Service {
  double cost = 0.0;
  double selectivity = 1.0;
  std::string name;

  friend bool operator==(const Service&, const Service&) = default;
};

}  // namespace quest::model
