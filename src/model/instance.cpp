#include "quest/model/instance.hpp"

#include <cmath>

#include "quest/common/error.hpp"

namespace quest::model {

namespace {

void require_finite_non_negative(double value, const char* what) {
  QUEST_EXPECTS(std::isfinite(value), what);
  QUEST_EXPECTS(value >= 0.0, what);
}

}  // namespace

Instance::Instance(std::vector<Service> services, Matrix<double> transfer,
                   std::vector<double> sink_transfer, std::string name)
    : services_(std::move(services)),
      transfer_(std::move(transfer)),
      sink_transfer_(std::move(sink_transfer)),
      name_(std::move(name)) {
  const std::size_t n = services_.size();
  QUEST_EXPECTS(n >= 1, "an instance needs at least one service");
  QUEST_EXPECTS(transfer_.rows() == n && transfer_.cols() == n,
                "transfer matrix must be n x n");
  if (sink_transfer_.empty()) sink_transfer_.assign(n, 0.0);
  QUEST_EXPECTS(sink_transfer_.size() == n,
                "sink transfer vector must have one entry per service");

  for (const Service& s : services_) {
    require_finite_non_negative(s.cost, "service cost must be finite >= 0");
    require_finite_non_negative(
        s.selectivity, "service selectivity must be finite >= 0");
    if (s.selectivity > 1.0) all_selective_ = false;
  }
  for (std::size_t i = 0; i < n; ++i) {
    QUEST_EXPECTS(transfer_.at_unchecked(i, i) == 0.0,
                  "transfer matrix diagonal must be zero");
    for (std::size_t j = 0; j < n; ++j) {
      require_finite_non_negative(transfer_.at_unchecked(i, j),
                                  "transfer cost must be finite >= 0");
    }
    require_finite_non_negative(sink_transfer_[i],
                                "sink transfer must be finite >= 0");
  }
}

const Service& Instance::service(Service_id id) const {
  QUEST_EXPECTS(id < services_.size(), "service id out of range");
  return services_[id];
}

double Instance::transfer(Service_id from, Service_id to) const {
  QUEST_EXPECTS(from < size() && to < size(), "service id out of range");
  return transfer_.at_unchecked(from, to);
}

bool Instance::uniform_transfer() const noexcept {
  const std::size_t n = size();
  for (const double s : sink_transfer_) {
    if (s != 0.0) return false;
  }
  if (n < 2) return true;
  const double reference = transfer_.at_unchecked(0, 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (transfer_.at_unchecked(i, j) != reference) return false;
    }
  }
  return true;
}

}  // namespace quest::model
