#include "quest/model/plan.hpp"

#include <sstream>

#include "quest/common/bitset64.hpp"
#include "quest/common/error.hpp"
#include "quest/model/instance.hpp"

namespace quest::model {

Plan Plan::identity(std::size_t n) {
  std::vector<Service_id> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<Service_id>(i);
  return Plan(std::move(order));
}

Service_id Plan::operator[](std::size_t position) const {
  QUEST_EXPECTS(position < order_.size(), "plan position out of range");
  return order_[position];
}

Service_id Plan::front() const {
  QUEST_EXPECTS(!order_.empty(), "front() of an empty plan");
  return order_.front();
}

Service_id Plan::back() const {
  QUEST_EXPECTS(!order_.empty(), "back() of an empty plan");
  return order_.back();
}

bool Plan::is_permutation_of(std::size_t n) const {
  if (order_.size() != n) return false;
  Member_mask seen(n);
  for (const Service_id id : order_) {
    if (id >= n || seen.test(id)) return false;
    seen.set(id);
  }
  return true;
}

std::vector<Service_id> Plan::positions(std::size_t n) const {
  std::vector<Service_id> pos(n, invalid_service);
  for (std::size_t p = 0; p < order_.size(); ++p) {
    QUEST_EXPECTS(order_[p] < n, "plan references out-of-range service");
    pos[order_[p]] = static_cast<Service_id>(p);
  }
  return pos;
}

std::string Plan::to_string(const Instance& instance) const {
  std::ostringstream out;
  for (std::size_t p = 0; p < order_.size(); ++p) {
    if (p) out << " -> ";
    const Service& s = instance.service(order_[p]);
    if (s.name.empty()) {
      out << "WS" << order_[p];
    } else {
      out << s.name;
    }
  }
  return out.str();
}

std::string Plan::to_string() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t p = 0; p < order_.size(); ++p) {
    if (p) out << ' ';
    out << order_[p];
  }
  out << ']';
  return out.str();
}

}  // namespace quest::model
