#include "quest/opt/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "quest/common/rng.hpp"
#include "quest/common/timer.hpp"
#include "quest/opt/greedy.hpp"

namespace quest::opt {

using model::Plan;
using model::Service_id;

Result Annealing_optimizer::optimize(const Request& request) {
  validate_request(request);
  const auto& instance = *request.instance;
  const auto* precedence = request.precedence;
  const std::size_t n = instance.size();
  Timer timer;
  Search_stats stats;
  Rng rng(options_.seed);

  // Seed with greedy so annealing never does worse than the constructive
  // heuristic.
  Greedy_optimizer greedy;
  const Result seed = greedy.optimize(request);
  std::vector<Service_id> current = seed.plan.order();
  double current_cost = seed.cost;
  std::vector<Service_id> best = current;
  double best_cost = current_cost;
  stats.complete_plans = 1;

  if (n < 2) {
    Result result;
    result.plan = Plan(std::move(best));
    result.cost = best_cost;
    result.stats = stats;
    result.elapsed_seconds = timer.seconds();
    return result;
  }

  const double scale = std::max(best_cost, 1e-12);
  double temperature = options_.initial_temperature * scale;
  const double floor = options_.min_temperature * scale;

  std::vector<Service_id> neighbor;
  for (std::size_t iteration = 0; iteration < options_.iterations;
       ++iteration) {
    neighbor = current;
    const bool do_swap = rng.bernoulli(0.5);
    const auto i = static_cast<std::size_t>(rng.uniform_int(n));
    auto j = static_cast<std::size_t>(rng.uniform_int(n - 1));
    if (j >= i) ++j;
    if (do_swap) {
      std::swap(neighbor[i], neighbor[j]);
    } else {
      const Service_id moved = neighbor[i];
      neighbor.erase(neighbor.begin() + static_cast<std::ptrdiff_t>(i));
      neighbor.insert(neighbor.begin() + static_cast<std::ptrdiff_t>(j),
                      moved);
    }
    if (precedence != nullptr && !precedence->respects(neighbor)) {
      temperature = std::max(temperature * options_.cooling, floor);
      continue;
    }
    const double cost =
        model::bottleneck_cost(instance, Plan(neighbor), request.policy);
    ++stats.complete_plans;
    const double delta = cost - current_cost;
    if (delta <= 0.0 ||
        rng.uniform() < std::exp(-delta / std::max(temperature, 1e-300))) {
      current = neighbor;
      current_cost = cost;
      if (cost < best_cost) {
        best_cost = cost;
        best = current;
        ++stats.incumbent_updates;
      }
    }
    temperature = std::max(temperature * options_.cooling, floor);
  }

  Result result;
  result.plan = Plan(std::move(best));
  result.cost = best_cost;
  result.stats = stats;
  result.elapsed_seconds = timer.seconds();
  return result;
}

}  // namespace quest::opt
