#include "quest/opt/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "quest/common/rng.hpp"
#include "quest/opt/greedy.hpp"
#include "quest/opt/search_control.hpp"

namespace quest::opt {

using model::Plan;
using model::Service_id;

Result Annealing_optimizer::optimize(const Request& request) {
  validate_request(request);
  const auto& instance = *request.instance;
  const auto* precedence = request.precedence;
  const std::size_t n = instance.size();
  Search_stats stats;
  Search_control control(request, stats);
  Rng rng(effective_seed(request, options_.seed));

  // Seed with greedy so annealing never does worse than the constructive
  // heuristic; a request-supplied warm-start plan competes with (rather
  // than replaces) that seed, so a poor warm start cannot lower the
  // engine's floor either.
  Greedy_optimizer greedy;
  Request greedy_request = request;
  greedy_request.on_incumbent = nullptr;  // streamed below as incumbent 0
  const Result seed = greedy.optimize(greedy_request);
  if (stopped_early(seed.termination) || seed.plan.size() != n) {
    // Budget died during the constructive seed; deliver the incumbent
    // the nulled sub-request callback missed (when there is one) and
    // return.
    if (request.on_incumbent && seed.plan.size() == n) {
      request.on_incumbent(seed.plan, seed.cost, seed.stats);
    }
    return seed;
  }
  stats.nodes_expanded = seed.stats.nodes_expanded;
  stats.complete_plans = 1;
  std::vector<Service_id> current = seed.plan.order();
  double current_cost = seed.cost;
  if (request.warm_start != nullptr) {
    const double warm_cost = model::bottleneck_cost(
        instance, *request.warm_start, request.model);
    ++stats.complete_plans;
    if (warm_cost < current_cost) {
      current = request.warm_start->order();
      current_cost = warm_cost;
    }
  }
  std::vector<Service_id> best = current;
  double best_cost = current_cost;
  control.note_incumbent(Plan(best), best_cost);

  if (n < 2) {
    Result result;
    result.plan = Plan(std::move(best));
    result.cost = best_cost;
    result.stats = stats;
    control.finish(result, false);
    return result;
  }

  const double scale = std::max(best_cost, 1e-12);
  double temperature = options_.initial_temperature * scale;
  const double floor = options_.min_temperature * scale;

  std::vector<Service_id> neighbor;
  for (std::size_t iteration = 0;
       iteration < options_.iterations && !control.should_stop();
       ++iteration) {
    neighbor = current;
    const bool do_swap = rng.bernoulli(0.5);
    const auto i = static_cast<std::size_t>(rng.uniform_int(n));
    auto j = static_cast<std::size_t>(rng.uniform_int(n - 1));
    if (j >= i) ++j;
    if (do_swap) {
      std::swap(neighbor[i], neighbor[j]);
    } else {
      const Service_id moved = neighbor[i];
      neighbor.erase(neighbor.begin() + static_cast<std::ptrdiff_t>(i));
      neighbor.insert(neighbor.begin() + static_cast<std::ptrdiff_t>(j),
                      moved);
    }
    if (precedence != nullptr && !precedence->respects(neighbor)) {
      temperature = std::max(temperature * options_.cooling, floor);
      continue;
    }
    const double cost =
        model::bottleneck_cost(instance, Plan(neighbor), request.model);
    ++stats.complete_plans;
    const double delta = cost - current_cost;
    if (delta <= 0.0 ||
        rng.uniform() < std::exp(-delta / std::max(temperature, 1e-300))) {
      current = neighbor;
      current_cost = cost;
      if (cost < best_cost) {
        best_cost = cost;
        best = current;
        control.note_incumbent(Plan(best), best_cost);
      }
    }
    temperature = std::max(temperature * options_.cooling, floor);
  }

  Result result;
  result.plan = Plan(std::move(best));
  result.cost = best_cost;
  result.stats = stats;
  control.finish(result, false);
  return result;
}

}  // namespace quest::opt
