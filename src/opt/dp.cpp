#include "quest/opt/dp.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "quest/common/bitset64.hpp"
#include "quest/common/error.hpp"
#include "quest/opt/search_control.hpp"

namespace quest::opt {

using model::Plan;
using model::Service_id;
using model::stage_term;

Result Dp_optimizer::optimize(const Request& request) {
  validate_request(request);
  const auto& instance = *request.instance;
  const std::size_t n = instance.size();
  QUEST_EXPECTS(n <= max_services,
                "subset DP is limited to max_services services");
  const auto& cost_model = request.model;
  const auto policy = cost_model.policy();
  const bool independent = cost_model.is_independent();
  const auto* precedence = request.precedence;
  Result result;
  Search_stats stats;
  Search_control control(request, stats);

  const std::size_t full = bit64(n);
  constexpr double inf = std::numeric_limits<double>::infinity();

  // Conditional-selectivity product of every subset. Under the
  // independent structure this is prod_{w in S} sigma_w; under a
  // correlated model the symmetric interaction matrix makes the product
  // a set function, so P(S) = P(S \ {low}) * sigma(low | S \ {low}) is
  // well-defined regardless of insertion order.
  std::vector<double> prod(full);
  prod[0] = 1.0;
  for (std::size_t mask = 1; mask < full; ++mask) {
    const std::size_t low = lowest_bit(mask);
    const std::size_t rest = drop_lowest(mask);
    const double sigma =
        independent ? instance.selectivity(static_cast<Service_id>(low))
                    : cost_model.conditional_selectivity(
                          instance, static_cast<Service_id>(low), rest);
    prod[mask] = prod[rest] * sigma;
  }

  // Precedence: predecessor masks; u is addable to S iff pred_mask[u] ⊆ S.
  std::vector<std::size_t> pred_mask(n, 0);
  if (precedence != nullptr) {
    for (Service_id v = 0; v < n; ++v) {
      for (const Service_id p : precedence->predecessors(v)) {
        pred_mask[v] |= bit64(p);
      }
    }
  }

  std::vector<double> g(full * n, inf);
  std::vector<std::uint8_t> parent(full * n, 0xFF);
  auto at = [n](std::size_t mask, std::size_t j) { return mask * n + j; };

  for (Service_id a = 0; a < n; ++a) {
    if (pred_mask[a] != 0) continue;
    g[at(bit64(a), a)] = 0.0;  // no determined terms yet
  }

  for (std::size_t mask = 1; mask < full; ++mask) {
    if (control.should_stop()) break;
    for (std::size_t j = 0; j < n; ++j) {
      const double current = g[at(mask, j)];
      if (current == inf) continue;
      ++stats.nodes_expanded;
      const std::size_t without_j = without_bit(mask, j);
      const auto& sj = instance.service(static_cast<Service_id>(j));
      const double sigma_j =
          independent ? sj.selectivity
                      : cost_model.conditional_selectivity(
                            instance, static_cast<Service_id>(j), without_j);
      for (std::size_t u = 0; u < n; ++u) {
        if (has_bit(mask, u)) continue;
        if (!contains_all(mask, pred_mask[u])) continue;
        // Appending u fixes j's stage term.
        const double fixed =
            prod[without_j] *
            stage_term(cost_model.effective_cost(
                           instance, static_cast<Service_id>(j)),
                       sigma_j,
                       instance.transfer(static_cast<Service_id>(j),
                                         static_cast<Service_id>(u)),
                       policy);
        const double value = std::max(current, fixed);
        auto& slot = g[at(with_bit(mask, u), u)];
        if (value < slot) {
          slot = value;
          parent[at(with_bit(mask, u), u)] = static_cast<std::uint8_t>(j);
        }
      }
    }
  }

  if (control.stopped()) {
    // The sweep has no usable incumbent mid-flight: unlike the tree
    // searches, a partial table encodes no complete plan. Report honestly.
    result.stats = stats;
    control.finish(result, false);
    return result;
  }

  // Close full-set states with the sink term of the last service.
  double best_cost = inf;
  std::size_t best_last = 0;
  const std::size_t all = full - 1;
  for (std::size_t j = 0; j < n; ++j) {
    const double current = g[at(all, j)];
    if (current == inf) continue;
    const auto& sj = instance.service(static_cast<Service_id>(j));
    const std::size_t without_j = without_bit(all, j);
    const double sigma_j =
        independent ? sj.selectivity
                    : cost_model.conditional_selectivity(
                          instance, static_cast<Service_id>(j), without_j);
    const double final_term =
        prod[without_j] *
        stage_term(cost_model.effective_cost(
                       instance, static_cast<Service_id>(j)),
                   sigma_j,
                   instance.sink_transfer(static_cast<Service_id>(j)),
                   policy);
    const double cost = std::max(current, final_term);
    ++stats.complete_plans;
    if (cost < best_cost) {
      best_cost = cost;
      best_last = j;
    }
  }
  QUEST_ASSERT(best_cost < inf, "DP found no feasible ordering");

  // Reconstruct the plan by walking parents backwards.
  std::vector<Service_id> order(n);
  std::size_t mask = all;
  std::size_t j = best_last;
  for (std::size_t position = n; position-- > 0;) {
    order[position] = static_cast<Service_id>(j);
    const std::uint8_t p = parent[at(mask, j)];
    mask = without_bit(mask, j);
    j = p;
  }

  result.plan = Plan(std::move(order));
  result.cost = best_cost;
  control.note_final_incumbent(result.plan, result.cost);
  result.stats = stats;
  control.finish(result, true);
  return result;
}

}  // namespace quest::opt
