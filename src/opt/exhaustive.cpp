#include "quest/opt/exhaustive.hpp"

#include <limits>
#include <vector>

#include "quest/opt/search_control.hpp"

namespace quest::opt {

using model::Partial_plan_evaluator;
using model::Plan;
using model::Service_id;

namespace {

class Enumeration {
 public:
  Enumeration(const Request& request, bool bound)
      : instance_(*request.instance),
        precedence_(request.precedence),
        bound_(bound),
        eval_(instance_, request.model),
        placed_(instance_.size(), 0),
        control_(request, stats_) {}

  Result run() {
    descend();
    Result result;
    result.plan = best_;
    result.cost = rho_;
    result.stats = stats_;
    control_.finish(result, true);
    return result;
  }

 private:
  void descend() {
    if (control_.should_stop()) return;
    if (eval_.full()) {
      ++stats_.complete_plans;
      const double cost = eval_.complete_cost();
      if (cost < rho_) {
        rho_ = cost;
        best_ = eval_.plan();
        control_.note_incumbent(best_, rho_);
      }
      return;
    }
    if (bound_ && eval_.size() >= 2 && eval_.epsilon() >= rho_) {
      ++stats_.lemma1_cutoffs;
      return;
    }
    const std::size_t n = instance_.size();
    for (Service_id u = 0; u < n; ++u) {
      if (placed_[u]) continue;
      if (precedence_ && !precedence_->feasible_next(u, placed_)) continue;
      eval_.append(u);
      placed_[u] = 1;
      ++stats_.nodes_expanded;
      descend();
      placed_[u] = 0;
      eval_.pop();
      if (control_.stopped()) return;
    }
  }

  const model::Instance& instance_;
  const constraints::Precedence_graph* precedence_;
  bool bound_;
  Partial_plan_evaluator eval_;
  std::vector<char> placed_;
  double rho_ = std::numeric_limits<double>::infinity();
  Plan best_;
  Search_stats stats_;
  Search_control control_;  // binds stats_: keep it declared after
};

}  // namespace

Result Exhaustive_optimizer::optimize(const Request& request) {
  validate_request(request);
  Enumeration enumeration(request, bound_);
  return enumeration.run();
}

}  // namespace quest::opt
