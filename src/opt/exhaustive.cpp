#include "quest/opt/exhaustive.hpp"

#include <limits>

#include "quest/common/timer.hpp"

namespace quest::opt {

using model::Partial_plan_evaluator;
using model::Plan;
using model::Service_id;

namespace {

class Enumeration {
 public:
  Enumeration(const Request& request, bool bound)
      : instance_(*request.instance),
        precedence_(request.precedence),
        bound_(bound),
        eval_(instance_, request.policy),
        node_limit_(request.node_limit),
        time_limit_(request.time_limit_seconds),
        placed_(instance_.size(), 0) {}

  Result run() {
    descend();
    Result result;
    result.plan = best_;
    result.cost = rho_;
    result.hit_limit = aborted_;
    result.proven_optimal = !aborted_;
    result.stats = stats_;
    result.elapsed_seconds = timer_.seconds();
    return result;
  }

 private:
  bool aborted() {
    if (aborted_) return true;
    if (node_limit_ != 0 && stats_.nodes_expanded >= node_limit_) {
      aborted_ = true;
    } else if (time_limit_ > 0.0 && (++tick_ & 0x3FF) == 0 &&
               timer_.seconds() > time_limit_) {
      aborted_ = true;
    }
    return aborted_;
  }

  void descend() {
    if (aborted()) return;
    if (eval_.full()) {
      ++stats_.complete_plans;
      const double cost = eval_.complete_cost();
      if (cost < rho_) {
        rho_ = cost;
        best_ = eval_.plan();
        ++stats_.incumbent_updates;
      }
      return;
    }
    if (bound_ && eval_.size() >= 2 && eval_.epsilon() >= rho_) {
      ++stats_.lemma1_cutoffs;
      return;
    }
    const std::size_t n = instance_.size();
    for (Service_id u = 0; u < n; ++u) {
      if (placed_[u]) continue;
      if (precedence_ && !precedence_->feasible_next(u, placed_)) continue;
      eval_.append(u);
      placed_[u] = 1;
      ++stats_.nodes_expanded;
      descend();
      placed_[u] = 0;
      eval_.pop();
      if (aborted_) return;
    }
  }

  const model::Instance& instance_;
  const constraints::Precedence_graph* precedence_;
  bool bound_;
  Partial_plan_evaluator eval_;
  std::uint64_t node_limit_;
  double time_limit_;
  Timer timer_;
  std::uint64_t tick_ = 0;
  bool aborted_ = false;
  std::vector<char> placed_;
  double rho_ = std::numeric_limits<double>::infinity();
  Plan best_;
  Search_stats stats_;
};

}  // namespace

Result Exhaustive_optimizer::optimize(const Request& request) {
  validate_request(request);
  Enumeration enumeration(request, bound_);
  return enumeration.run();
}

}  // namespace quest::opt
