#include "quest/opt/frontier.hpp"

#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

#include "quest/common/bitset64.hpp"
#include "quest/common/error.hpp"
#include "quest/opt/search_control.hpp"

namespace quest::opt {

using model::Plan;
using model::Service_id;
using model::stage_term;

namespace {

/// (subset mask, last service) packed into one key.
constexpr std::uint64_t state_key(std::uint64_t mask, std::size_t last) {
  return (mask << 5) | last;
}

struct Entry {
  double priority;  // epsilon of the state; final cost for goal entries
  std::uint64_t mask;
  std::uint8_t last;
  bool goal;

  bool operator>(const Entry& other) const {
    return priority > other.priority;
  }
};

}  // namespace

Result Frontier_optimizer::optimize(const Request& request) {
  validate_request(request);
  const auto& instance = *request.instance;
  const std::size_t n = instance.size();
  QUEST_EXPECTS(n <= max_services,
                "frontier search is limited to max_services services");
  const auto& cost_model = request.model;
  const auto policy = cost_model.policy();
  const bool independent = cost_model.is_independent();
  Result result;
  Search_stats stats;
  Search_control control(request, stats);

  // Selectivity product per subset, built lazily would cost a popcount
  // walk; precompute like the DP (cheap relative to the map).
  const std::uint64_t full = full_mask64(n);

  std::vector<std::uint64_t> pred_mask(n, 0);
  if (request.precedence != nullptr) {
    for (Service_id v = 0; v < n; ++v) {
      for (const Service_id p : request.precedence->predecessors(v)) {
        pred_mask[v] |= bit64(p);
      }
    }
  }

  // Conditional-selectivity product over a mask, memoized sparsely.
  // Well-defined as a set function for both structures (the correlated
  // interaction matrix is symmetric).
  std::unordered_map<std::uint64_t, double> product_cache;
  product_cache.reserve(1024);
  auto product_of = [&](std::uint64_t mask) {
    const auto cached = product_cache.find(mask);
    if (cached != product_cache.end()) return cached->second;
    double product = 1.0;
    std::uint64_t built = 0;
    for (std::uint64_t bits = mask; bits != 0; bits = drop_lowest(bits)) {
      const auto low = static_cast<Service_id>(lowest_bit(bits));
      product *= independent
                     ? instance.selectivity(low)
                     : cost_model.conditional_selectivity(instance, low,
                                                          built);
      built = with_bit(built, low);
    }
    product_cache.emplace(mask, product);
    return product;
  };

  std::unordered_map<std::uint64_t, double> best;
  std::unordered_map<std::uint64_t, std::uint8_t> parent;
  best.reserve(4096);
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;

  for (Service_id a = 0; a < n; ++a) {
    if (pred_mask[a] != 0) continue;
    const std::uint64_t mask = bit64(a);
    best[state_key(mask, a)] = 0.0;
    // Even a single-service state flows through the full-mask branch so
    // the sink term is accounted for before the goal is closed.
    frontier.push({0.0, mask, static_cast<std::uint8_t>(a), false});
  }

  while (!frontier.empty()) {
    if (control.should_stop()) break;
    const Entry entry = frontier.top();
    frontier.pop();

    if (entry.goal) {
      // First closed goal = optimum: every other frontier entry already
      // costs at least this much and costs never decrease.
      std::vector<Service_id> order(n);
      std::uint64_t mask = entry.mask;
      std::size_t last = entry.last;
      for (std::size_t position = n; position-- > 0;) {
        order[position] = static_cast<Service_id>(last);
        const std::uint8_t p = parent[state_key(mask, last)];
        mask = without_bit(mask, last);
        last = p;
      }
      result.plan = Plan(std::move(order));
      result.cost = entry.priority;
      control.note_final_incumbent(result.plan, result.cost);
      result.stats = stats;
      control.finish(result, true);
      return result;
    }

    const auto key = state_key(entry.mask, entry.last);
    const auto known = best.find(key);
    if (known == best.end() || entry.priority > known->second) {
      continue;  // stale entry
    }
    ++stats.nodes_expanded;

    const auto& last_service =
        instance.service(static_cast<Service_id>(entry.last));
    const std::uint64_t without_last =
        without_bit(entry.mask, entry.last);
    const double product_before_last = product_of(without_last);
    const double sigma_last =
        independent ? last_service.selectivity
                    : cost_model.conditional_selectivity(
                          instance, static_cast<Service_id>(entry.last),
                          without_last);

    if (entry.mask == full) {
      const double final_term =
          product_before_last *
          stage_term(cost_model.effective_cost(
                         instance, static_cast<Service_id>(entry.last)),
                     sigma_last,
                     instance.sink_transfer(
                         static_cast<Service_id>(entry.last)),
                     policy);
      ++stats.complete_plans;
      frontier.push({std::max(entry.priority, final_term), entry.mask,
                     entry.last, true});
      continue;
    }

    for (std::size_t u = 0; u < n; ++u) {
      if (has_bit(entry.mask, u)) continue;
      if (!contains_all(entry.mask, pred_mask[u])) continue;
      const double fixed =
          product_before_last *
          stage_term(cost_model.effective_cost(
                         instance, static_cast<Service_id>(entry.last)),
                     sigma_last,
                     instance.transfer(static_cast<Service_id>(entry.last),
                                       static_cast<Service_id>(u)),
                     policy);
      const double value = std::max(entry.priority, fixed);
      const auto child_key = state_key(with_bit(entry.mask, u), u);
      const auto slot = best.find(child_key);
      if (slot == best.end() || value < slot->second) {
        best[child_key] = value;
        parent[child_key] = entry.last;
        frontier.push({value, with_bit(entry.mask, u),
                       static_cast<std::uint8_t>(u), false});
      }
    }
  }

  QUEST_ASSERT(control.stopped(),
               "frontier search must reach a goal state");
  result.stats = stats;
  control.finish(result, false);
  return result;
}

}  // namespace quest::opt
