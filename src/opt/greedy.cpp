#include "quest/opt/greedy.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "quest/common/error.hpp"
#include "quest/opt/search_control.hpp"

namespace quest::opt {

using model::Plan;
using model::Service_id;
using model::stage_term;

Result Greedy_optimizer::optimize(const Request& request) {
  validate_request(request);
  const auto& instance = *request.instance;
  const auto* precedence = request.precedence;
  const std::size_t n = instance.size();
  Result result;
  Search_stats stats;
  Search_control control(request, stats);

  model::Partial_plan_evaluator eval(instance, request.model);
  std::vector<char> placed(n, 0);

  if (n == 1) {
    if (!control.should_stop()) {
      eval.append(0);
      ++stats.nodes_expanded;
    }
  } else if (!control.should_stop()) {
    // Cheapest feasible pair by the position-0 stage term.
    double best_term = std::numeric_limits<double>::infinity();
    Service_id best_a = model::invalid_service;
    Service_id best_b = model::invalid_service;
    for (Service_id a = 0; a < n; ++a) {
      if (precedence && !precedence->predecessors(a).empty()) continue;
      const auto& sa = instance.service(a);
      for (Service_id b = 0; b < n; ++b) {
        if (b == a) continue;
        if (precedence) {
          const auto& preds = precedence->predecessors(b);
          const bool ok = std::all_of(preds.begin(), preds.end(),
                                      [a](Service_id p) { return p == a; });
          if (!ok) continue;
        }
        const double term =
            stage_term(request.model.effective_cost(instance, a),
                       sa.selectivity, instance.transfer(a, b),
                       request.model.policy());
        if (term < best_term) {
          best_term = term;
          best_a = a;
          best_b = b;
        }
      }
    }
    QUEST_ASSERT(best_a != model::invalid_service,
                 "no feasible starting pair");
    eval.append(best_a);
    eval.append(best_b);
    placed[best_a] = 1;
    placed[best_b] = 1;
    stats.nodes_expanded += 2;

    while (!eval.full() && !control.should_stop()) {
      Service_id next = model::invalid_service;
      double next_t = std::numeric_limits<double>::infinity();
      for (Service_id u = 0; u < n; ++u) {
        if (placed[u]) continue;
        if (precedence && !precedence->feasible_next(u, placed)) continue;
        const double t = instance.transfer(eval.last(), u);
        if (t < next_t) {
          next_t = t;
          next = u;
        }
      }
      QUEST_ASSERT(next != model::invalid_service,
                   "greedy found no feasible successor");
      eval.append(next);
      placed[next] = 1;
      ++stats.nodes_expanded;
    }
  }

  result.plan = eval.plan();
  if (eval.full()) {
    result.cost = eval.complete_cost();
    ++stats.complete_plans;
    control.note_incumbent(result.plan, result.cost);
  }
  // else: stopped mid-construction — partial plan, infinite cost.
  result.stats = stats;
  control.finish(result, false);
  return result;
}

Result Uniform_comm_optimizer::optimize(const Request& request) {
  validate_request(request);
  const auto& instance = *request.instance;
  const auto* precedence = request.precedence;
  const std::size_t n = instance.size();
  Result result;
  Search_stats stats;
  Search_control control(request, stats);

  // Mean off-diagonal transfer cost: the "flat network" the centralized
  // optimizer believes in.
  double t_bar = 0.0;
  if (n > 1) {
    double sum = 0.0;
    for (Service_id i = 0; i < n; ++i) {
      for (Service_id j = 0; j < n; ++j) {
        if (i != j) sum += instance.transfer(i, j);
      }
    }
    t_bar = sum / (static_cast<double>(n) * static_cast<double>(n - 1));
  }

  std::vector<double> gamma(n);
  for (Service_id u = 0; u < n; ++u) {
    const auto& s = instance.service(u);
    gamma[u] = stage_term(request.model.effective_cost(instance, u),
                          s.selectivity, t_bar,
                          request.model.policy());
  }

  // Ascending gamma; under precedence constraints, repeatedly emit the
  // feasible service with the smallest gamma (list scheduling).
  std::vector<Service_id> order;
  order.reserve(n);
  std::vector<char> placed(n, 0);
  while (order.size() < n && !control.should_stop()) {
    Service_id next = model::invalid_service;
    for (Service_id u = 0; u < n; ++u) {
      if (placed[u]) continue;
      if (precedence && !precedence->feasible_next(u, placed)) continue;
      if (next == model::invalid_service || gamma[u] < gamma[next]) next = u;
    }
    QUEST_ASSERT(next != model::invalid_service,
                 "no feasible service to schedule");
    order.push_back(next);
    placed[next] = 1;
    ++stats.nodes_expanded;
  }

  const bool complete = order.size() == n;
  result.plan = Plan(std::move(order));
  bool claim_optimal = false;
  if (complete) {
    result.cost =
        model::bottleneck_cost(instance, result.plan, request.model);
    ++stats.complete_plans;
    control.note_incumbent(result.plan, result.cost);
    // Optimal only in the uniform special case it was designed for.
    claim_optimal =
        instance.uniform_transfer() && instance.all_selective() &&
        request.model.is_independent() &&
        (precedence == nullptr || precedence->unconstrained());
  }
  result.stats = stats;
  control.finish(result, claim_optimal);
  return result;
}

}  // namespace quest::opt
