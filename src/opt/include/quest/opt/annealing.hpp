// quest/opt/annealing.hpp
//
// Simulated annealing over feasible orderings: random swap/insert moves,
// geometric cooling, Metropolis acceptance. Deterministic given the seed.

#pragma once

#include <cstdint>

#include "quest/opt/optimizer.hpp"

namespace quest::opt {

struct Annealing_options {
  /// Fallback seed; a non-zero Request::seed takes precedence.
  std::uint64_t seed = 1;
  std::size_t iterations = 20'000;
  double initial_temperature = 1.0;  ///< scaled by the seed plan's cost
  double cooling = 0.999;            ///< multiplicative per iteration
  double min_temperature = 1e-6;     ///< relative floor
};

class Annealing_optimizer final : public Optimizer {
 public:
  explicit Annealing_optimizer(Annealing_options options = {})
      : options_(options) {}

  std::string name() const override { return "annealing"; }
  Result optimize(const Request& request) override;

 private:
  Annealing_options options_;
};

}  // namespace quest::opt
