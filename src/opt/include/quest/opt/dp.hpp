// quest/opt/dp.hpp
//
// Exact bottleneck dynamic program over subsets (Held–Karp style),
// O(2^n · n^2) time and O(2^n · n) space. The strongest exact baseline:
// immune to instance hardness, but limited to n <= ~20 by memory.
//
// State g(S, j) = the minimum, over all feasible orderings of subset S
// ending in service j, of the maximum *determined* stage term (the
// epsilon of that partial plan). Appending u after (S, j) fixes j's term
// with transfer t(j, u); the final answer closes each full-set state with
// the sink term.

#pragma once

#include "quest/opt/optimizer.hpp"

namespace quest::opt {

/// Exact subset DP for the bottleneck ordering problem.
class Dp_optimizer final : public Optimizer {
 public:
  /// Instances above this size are rejected (memory = 2^n * n doubles).
  static constexpr std::size_t max_services = 22;

  std::string name() const override { return "dp"; }

  Result optimize(const Request& request) override;
};

}  // namespace quest::opt
