// quest/opt/exhaustive.hpp
//
// Exhaustive search over all (precedence-feasible) orderings. The ground
// truth for property tests and the n!-scale reference point of E1/E2.

#pragma once

#include "quest/opt/optimizer.hpp"

namespace quest::opt {

/// Depth-first enumeration of every feasible ordering.
///
/// With `bound_with_epsilon` the enumeration prunes branches whose partial
/// epsilon already reaches the incumbent (Lemma-1-only branch-and-bound);
/// without it the search visits every ordering — use only for tiny n or
/// under a Request budget (it is a well-behaved anytime engine: the best
/// incumbent streams out and survives an early stop).
class Exhaustive_optimizer final : public Optimizer {
 public:
  explicit Exhaustive_optimizer(bool bound_with_epsilon = false)
      : bound_(bound_with_epsilon) {}

  std::string name() const override {
    return bound_ ? "exhaustive-bounded" : "exhaustive";
  }

  Result optimize(const Request& request) override;

 private:
  bool bound_;
};

}  // namespace quest::opt
