// quest/opt/frontier.hpp
//
// Best-first (Dijkstra-style) exact search over (subset, last-service)
// states with bottleneck relaxation — the frontier variant of the subset
// DP. Where the DP (dp.hpp) sweeps every one of the 2^n * n states, the
// frontier search pops states in non-decreasing epsilon order and stops at
// the first closed goal, so easy instances finish long before the full
// state space is touched; the worst case matches the DP.
//
// State dominance is sound for the bottleneck metric: two orderings of
// the same subset ending in the same service present identical options to
// every completion (same remaining set, same selectivity product, same
// last service), so only the cheaper epsilon needs to survive.

#pragma once

#include "quest/opt/optimizer.hpp"

namespace quest::opt {

/// Exact best-first search; memory O(reached states), capped below.
class Frontier_optimizer final : public Optimizer {
 public:
  /// Instances above this size are rejected (same state space as the DP).
  static constexpr std::size_t max_services = 24;

  std::string name() const override { return "frontier"; }

  Result optimize(const Request& request) override;
};

}  // namespace quest::opt
