// quest/opt/greedy.hpp
//
// Constructive heuristics:
//
//  * Greedy_optimizer — the paper's expansion policy run once, with no
//    backtracking: start from the cheapest feasible pair, then repeatedly
//    append the remaining feasible service with the cheapest transfer from
//    the current last service. Identical to the branch-and-bound's first
//    descent.
//
//  * Uniform_comm_optimizer — the centralized baseline of Srivastava et
//    al. [1]: rank services by their position-independent stage term
//    gamma_u = term(c_u, sigma_u, t-bar) with t-bar the mean off-diagonal
//    transfer cost, and order ascending. For truly uniform transfer costs,
//    selectivities <= 1 and no precedence constraints this is *optimal*
//    (adjacent-exchange argument); on heterogeneous networks it is exactly
//    the "pretend the network is flat" plan whose degradation E5 measures.

#pragma once

#include "quest/opt/optimizer.hpp"

namespace quest::opt {

/// Cheapest-pair + cheapest-successor constructive heuristic.
class Greedy_optimizer final : public Optimizer {
 public:
  std::string name() const override { return "greedy"; }
  Result optimize(const Request& request) override;
};

/// Rank-by-gamma baseline; optimal for the uniform-communication special
/// case with selective services, a heuristic otherwise.
class Uniform_comm_optimizer final : public Optimizer {
 public:
  std::string name() const override { return "uniform-opt"; }
  Result optimize(const Request& request) override;
};

}  // namespace quest::opt
