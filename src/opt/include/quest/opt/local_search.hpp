// quest/opt/local_search.hpp
//
// Pipelined-plan local search: starting from a seed (greedy by default),
// repeatedly apply the best improving *swap* (exchange two positions) or
// *insert* (move one service to another position) until a local optimum.
// The standard metaheuristic yardstick for E3.

#pragma once

#include "quest/opt/optimizer.hpp"

namespace quest::opt {

struct Local_search_options {
  /// Consider position swaps.
  bool use_swap = true;
  /// Consider single-service moves.
  bool use_insert = true;
  /// Upper bound on improvement rounds (0 = until local optimum).
  std::size_t max_rounds = 0;
};

class Local_search_optimizer final : public Optimizer {
 public:
  explicit Local_search_optimizer(Local_search_options options = {})
      : options_(options) {}

  std::string name() const override { return "local-search"; }
  Result optimize(const Request& request) override;

  /// Polishes a specific plan instead of the greedy seed.
  Result improve(const Request& request, const model::Plan& seed);

 private:
  Local_search_options options_;
};

}  // namespace quest::opt
