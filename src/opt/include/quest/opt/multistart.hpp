// quest/opt/multistart.hpp
//
// Multi-start local search: local-search polish from several independent
// starting plans (the greedy seed plus random feasible restarts), keeping
// the best local optimum. The strongest practical heuristic in the suite
// and the fairest metaheuristic yardstick for the exact algorithm (E3).

#pragma once

#include <cstdint>

#include "quest/opt/local_search.hpp"
#include "quest/opt/optimizer.hpp"

namespace quest::opt {

struct Multistart_options {
  /// Fallback seed; a non-zero Request::seed takes precedence.
  std::uint64_t seed = 1;
  /// Restarts beyond the greedy-seeded first descent.
  std::size_t restarts = 8;
  Local_search_options local_search;
};

class Multistart_optimizer final : public Optimizer {
 public:
  explicit Multistart_optimizer(Multistart_options options = {})
      : options_(options) {}

  std::string name() const override { return "multistart"; }
  Result optimize(const Request& request) override;

 private:
  Multistart_options options_;
};

}  // namespace quest::opt
