// quest/opt/optimizer.hpp
//
// The optimizer abstraction shared by the paper's branch-and-bound
// (quest::core) and every baseline (quest::opt): a Request describing the
// problem and limits, a Result carrying the plan found plus search
// statistics, and an abstract Optimizer.

#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>

#include "quest/constraints/precedence.hpp"
#include "quest/model/cost.hpp"
#include "quest/model/instance.hpp"
#include "quest/model/plan.hpp"

namespace quest::opt {

/// Counters describing a single optimization run. Optimizers fill the
/// counters that apply to them; the rest stay zero.
struct Search_stats {
  /// Partial-plan tree nodes created (service appends).
  std::uint64_t nodes_expanded = 0;
  /// Complete plans whose cost was evaluated.
  std::uint64_t complete_plans = 0;
  /// Times the incumbent improved.
  std::uint64_t incumbent_updates = 0;
  /// Lemma 1: sibling loops cut because the newly fixed term reached the
  /// incumbent (each event skips all remaining, costlier siblings).
  std::uint64_t lemma1_cutoffs = 0;
  /// Lemma 1: children skipped by those cuts.
  std::uint64_t lemma1_children_skipped = 0;
  /// Lemma 2: subtrees collapsed because epsilon >= epsilon-bar.
  std::uint64_t lemma2_closures = 0;
  /// Lemma 3: back-jumps performed (prefix pruned up to the bottleneck).
  std::uint64_t lemma3_backjumps = 0;
  /// Lemma 3: siblings skipped while unwinding to the back-jump target.
  std::uint64_t lemma3_siblings_skipped = 0;
  /// Size-two seed prefixes: total / actually explored.
  std::uint64_t pairs_total = 0;
  std::uint64_t pairs_explored = 0;
  /// epsilon-bar evaluations performed.
  std::uint64_t ebar_evaluations = 0;
  /// quest extension: subtrees pruned by the admissible lower bound on
  /// undetermined terms (Bnb_options::enable_lower_bound).
  std::uint64_t lower_bound_prunes = 0;

  /// Sum of every prune-style counter; a coarse "work avoided" indicator.
  std::uint64_t total_prunes() const noexcept {
    return lemma1_cutoffs + lemma2_closures + lemma3_backjumps +
           lower_bound_prunes;
  }
};

/// A problem to optimize. The instance (and optional precedence graph)
/// must outlive the optimize() call.
struct Request {
  const model::Instance* instance = nullptr;
  model::Send_policy policy = model::Send_policy::sequential;
  /// Optional precedence constraints; nullptr means unconstrained.
  const constraints::Precedence_graph* precedence = nullptr;
  /// Stop after this many node expansions (0 = unlimited).
  std::uint64_t node_limit = 0;
  /// Stop after this much wall-clock time (0 = unlimited).
  double time_limit_seconds = 0.0;
};

/// Outcome of an optimization run.
struct Result {
  model::Plan plan;
  double cost = std::numeric_limits<double>::infinity();
  /// True when the optimizer proved `plan` optimal (exact methods that ran
  /// to completion). Heuristics always report false.
  bool proven_optimal = false;
  /// True when a limit stopped the search early.
  bool hit_limit = false;
  Search_stats stats;
  double elapsed_seconds = 0.0;
};

/// Abstract optimizer. Implementations must be reusable: optimize() may be
/// called repeatedly with different requests.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Short stable identifier used in tables ("bnb", "dp", "greedy", ...).
  virtual std::string name() const = 0;

  /// Solves (or approximates) the given request.
  /// Throws Precondition_error on malformed requests (null instance,
  /// precedence graph of the wrong size).
  virtual Result optimize(const Request& request) = 0;
};

/// Validates the request invariants shared by all optimizers.
void validate_request(const Request& request);

}  // namespace quest::opt
