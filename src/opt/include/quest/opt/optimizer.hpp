// quest/opt/optimizer.hpp
//
// The anytime optimizer abstraction shared by the paper's branch-and-bound
// (quest::core) and every baseline (quest::opt): a Request describing the
// problem, a unified Budget with cooperative cancellation and incumbent
// streaming, and a Result carrying the plan found, the reason the search
// stopped, and search statistics.

#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>

#include "quest/constraints/precedence.hpp"
#include "quest/model/cost.hpp"
#include "quest/model/cost_model.hpp"
#include "quest/model/instance.hpp"
#include "quest/model/plan.hpp"
#include "quest/opt/stop_token.hpp"

namespace quest::opt {

/// Counters describing a single optimization run. Optimizers fill the
/// counters that apply to them; the rest stay zero.
struct Search_stats {
  /// Partial-plan tree nodes created (service appends).
  std::uint64_t nodes_expanded = 0;
  /// Complete plans whose cost was evaluated.
  std::uint64_t complete_plans = 0;
  /// Times the incumbent improved.
  std::uint64_t incumbent_updates = 0;
  /// Lemma 1: sibling loops cut because the newly fixed term reached the
  /// incumbent (each event skips all remaining, costlier siblings).
  std::uint64_t lemma1_cutoffs = 0;
  /// Lemma 1: children skipped by those cuts.
  std::uint64_t lemma1_children_skipped = 0;
  /// Lemma 2: subtrees collapsed because epsilon >= epsilon-bar.
  std::uint64_t lemma2_closures = 0;
  /// Lemma 3: back-jumps performed (prefix pruned up to the bottleneck).
  std::uint64_t lemma3_backjumps = 0;
  /// Lemma 3: siblings skipped while unwinding to the back-jump target.
  std::uint64_t lemma3_siblings_skipped = 0;
  /// Size-two seed prefixes: total / actually explored.
  std::uint64_t pairs_total = 0;
  std::uint64_t pairs_explored = 0;
  /// epsilon-bar evaluations performed.
  std::uint64_t ebar_evaluations = 0;
  /// quest extension: subtrees pruned by the admissible lower bound on
  /// undetermined terms (Bnb_options::enable_lower_bound).
  std::uint64_t lower_bound_prunes = 0;
  /// Worker threads the engine actually ran (bnb-par). 0 means a
  /// single-threaded engine — the field doubles as a "was this parallel"
  /// flag for tooling (quest_cli --json, quest_serve result events).
  std::uint64_t engine_threads = 0;

  /// Sum of every prune-style counter; a coarse "work avoided" indicator.
  std::uint64_t total_prunes() const noexcept {
    return lemma1_cutoffs + lemma2_closures + lemma3_backjumps +
           lower_bound_prunes;
  }

  /// Work units charged against Budget::node_limit: tree-node expansions
  /// plus complete-plan evaluations, so heuristics that never expand a
  /// tree (annealing, random sampling, local search) are budgeted by the
  /// plans they cost out.
  std::uint64_t work() const noexcept {
    return nodes_expanded + complete_plans;
  }
};

/// Limits shared by every optimizer; all default to "unlimited".
///
/// Semantics (enforced uniformly by Search_control, see
/// quest/opt/search_control.hpp):
///  * dimensions compose — whichever limit fires first stops the search;
///  * every stop is *anytime*: the Result still carries the best incumbent
///    found so far and an honest Termination reason;
///  * node_limit is exact (checked on every work unit); the wall clock is
///    polled at least every 256 work units, so deadline overshoot is
///    bounded by 256 units of engine work;
///  * composite engines (multistart, portfolio, local-search's seeded
///    descent) charge sub-engine work against the same budget via
///    Search_control::remaining_budget().
struct Budget {
  /// Stop after this many work units — node expansions plus complete-plan
  /// evaluations (0 = unlimited). See Search_stats::work().
  std::uint64_t node_limit = 0;
  /// Stop after this much wall-clock time (0 = unlimited).
  double time_limit_seconds = 0.0;
  /// "Good enough" bound: stop as soon as an incumbent costs at most this
  /// (0 = disabled; bottleneck costs are non-negative, so 0 never fires).
  double cost_target = 0.0;
};

/// Why an optimize() call returned.
enum class Termination {
  /// Ran to completion and proved the returned plan optimal.
  optimal,
  /// Ran its full schedule without an optimality proof (heuristics, and
  /// exact engines relaxed by a suboptimality factor).
  completed,
  /// The node or wall-clock budget expired; the result holds the best
  /// incumbent found so far (possibly an incomplete plan with infinite
  /// cost when the budget died before the first complete plan).
  budget_exhausted,
  /// Request::stop asked for cancellation.
  cancelled,
  /// An incumbent reached Budget::cost_target.
  cost_target_reached,
};

/// True for the reasons that cut a search short (everything except a
/// natural optimal/completed finish).
constexpr bool stopped_early(Termination termination) noexcept {
  return termination != Termination::optimal &&
         termination != Termination::completed;
}

/// Stable lower-case identifier ("optimal", "budget-exhausted", ...).
const char* to_string(Termination termination) noexcept;

/// Streaming callback: invoked whenever the engine's incumbent improves,
/// with the improving plan, its cost, and the stats at that instant. The
/// plan reference is only valid during the call — copy to keep. Callbacks
/// run on the optimize() thread and may call Stop_source::request_stop().
using Incumbent_callback = std::function<void(
    const model::Plan& plan, double cost, const Search_stats& stats)>;

/// A problem to optimize. The instance (and optional precedence graph and
/// warm-start plan) must outlive the optimize() call.
struct Request {
  const model::Instance* instance = nullptr;
  /// The cost model to optimize under: send policy + selectivity
  /// structure (quest/model/cost_model.hpp). Defaults to the paper's
  /// independent Eq. 1 model with the sequential policy. A correlated
  /// model must be sized for `instance` (validate_request checks).
  model::Cost_model model;
  /// Optional precedence constraints; nullptr means unconstrained.
  const constraints::Precedence_graph* precedence = nullptr;
  /// Limits; all unlimited by default.
  Budget budget;
  /// Cooperative cancellation; default token never stops.
  Stop_token stop;
  /// Top-level seed for stochastic engines (annealing, multistart, random
  /// sampling). 0 = defer to the engine's own options; any other value
  /// overrides them, so one knob reproduces a whole portfolio run.
  std::uint64_t seed = 0;
  /// Optional incumbent stream; empty = no streaming.
  Incumbent_callback on_incumbent;
  /// Optional warm start: a known feasible complete plan (e.g. a cached
  /// incumbent from an earlier run on the same instance — the quest_serve
  /// plan cache feeds this). Must be a permutation of the instance's
  /// services respecting `precedence`; validate_request rejects anything
  /// else. Engines that maintain an incumbent (bnb, bnb-lb, local-search,
  /// annealing, multistart's first descent — and portfolio, which forwards
  /// the request to its phases) let this plan *compete with* their own
  /// constructive seed and start from the cheaper of the two: they never
  /// return anything costlier than either, a poor warm start cannot
  /// lower an engine's usual floor, and exact searches prune against the
  /// warm bound from the first node. Engines with no incumbent to seed
  /// ignore it. Never voids an optimality proof: the warm plan only
  /// supplies an upper bound.
  const model::Plan* warm_start = nullptr;
};

/// The seed a stochastic engine should draw from: the request's top-level
/// seed when set, the engine's own options otherwise.
constexpr std::uint64_t effective_seed(const Request& request,
                                       std::uint64_t options_seed) noexcept {
  return request.seed != 0 ? request.seed : options_seed;
}

/// Outcome of an optimization run.
struct Result {
  model::Plan plan;
  double cost = std::numeric_limits<double>::infinity();
  /// True when the optimizer proved `plan` optimal (exact methods that ran
  /// to completion). Heuristics always report false.
  bool proven_optimal = false;
  /// Why the run returned. Anything with stopped_early() true means the
  /// search was cut short and `plan` is the best incumbent at that point.
  Termination termination = Termination::completed;
  Search_stats stats;
  double elapsed_seconds = 0.0;
};

/// Abstract optimizer. Implementations must be reusable: optimize() may be
/// called repeatedly with different requests.
///
/// Thread-safety contract: an Optimizer instance is *not* thread-safe —
/// concurrent optimize() calls on one instance are undefined; build one
/// engine per thread (they are cheap, and the registry hands out fresh
/// instances). Distinct instances never share mutable state, so any number
/// may run in parallel — this is what the quest_serve worker pool relies
/// on. The Request's Stop_token may be triggered from any thread;
/// on_incumbent callbacks run on the optimize() thread.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Short stable identifier used in tables ("bnb", "dp", "greedy", ...).
  virtual std::string name() const = 0;

  /// Solves (or approximates) the given request.
  /// Throws Precondition_error on malformed requests (null instance,
  /// precedence graph of the wrong size, negative limits).
  virtual Result optimize(const Request& request) = 0;
};

/// Validates the request invariants shared by all optimizers.
void validate_request(const Request& request);

}  // namespace quest::opt
