// quest/opt/parallel_control.hpp
//
// The thread-safe extension of the Search_control contract for K-worker
// engines (core's bnb-par). The same three duties — budget enforcement,
// cancellation, incumbent streaming — split across two pieces:
//
//   * Shared_search_control: one per optimize() call, shared by every
//     worker. Owns the wall clock, the summed work counter, the sticky
//     first-stop-reason, and the serialized incumbent stream (the
//     request's on_incumbent callback fires under a mutex, in
//     monotonically improving order, from whichever worker won the
//     incumbent race — unlike the sequential engines, NOT necessarily
//     the optimize() thread).
//
//   * Worker_control: one per worker, satisfying the search kernel's
//     Control concept. Checks the shared stop flag and the request's
//     stop token on every call — cancellation latency stays one work
//     unit, same as sequential — and flushes this worker's work counter
//     into the shared sum periodically, so the node budget is enforced
//     within K * 64 units rather than exactly (the price of not
//     serializing every counter bump).

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "quest/common/timer.hpp"
#include "quest/opt/optimizer.hpp"

namespace quest::opt {

/// Shared half; see the file comment. All methods are thread-safe.
class Shared_search_control {
 public:
  explicit Shared_search_control(const Request& request)
      : request_(request) {}

  const Request& request() const noexcept { return request_; }

  /// Sticky stop: the first reason wins, later calls are no-ops.
  void request_stop(Termination reason) noexcept {
    int expected = -1;
    reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                    std::memory_order_acq_rel);
  }

  bool stopped() const noexcept {
    return reason_.load(std::memory_order_acquire) >= 0;
  }

  /// The winning stop reason; meaningless unless stopped().
  Termination reason() const noexcept {
    const int raw = reason_.load(std::memory_order_acquire);
    return raw >= 0 ? static_cast<Termination>(raw)
                    : Termination::completed;
  }

  /// Adds `delta` flushed work units to the shared sum and trips the
  /// node budget when the sum reaches it.
  void charge_work(std::uint64_t delta) noexcept {
    const std::uint64_t total =
        work_.fetch_add(delta, std::memory_order_relaxed) + delta;
    if (request_.budget.node_limit != 0 &&
        total >= request_.budget.node_limit) {
      request_stop(Termination::budget_exhausted);
    }
  }

  /// Polls the wall-clock deadline (called periodically by workers).
  void poll_deadline() noexcept {
    if (request_.budget.time_limit_seconds > 0.0 &&
        timer_.seconds() > request_.budget.time_limit_seconds) {
      request_stop(Termination::budget_exhausted);
    }
  }

  /// Serialized incumbent accounting: counts the update, streams the
  /// plan to the request's callback, and arms the cost-target stop.
  /// Callers guarantee monotonically improving costs (the parallel
  /// incumbent's publication lock provides this).
  void note_incumbent(const model::Plan& plan, double cost) {
    std::lock_guard<std::mutex> lock(stream_mutex_);
    ++stream_stats_.incumbent_updates;
    if (request_.on_incumbent) {
      request_.on_incumbent(plan, cost, stream_stats_);
    }
    if (!stopped() && request_.budget.cost_target > 0.0 &&
        cost <= request_.budget.cost_target) {
      request_stop(Termination::cost_target_reached);
    }
  }

  /// Incumbent-update count accumulated by note_incumbent. Only safe to
  /// read after every worker has joined.
  std::uint64_t incumbent_updates() const noexcept {
    return stream_stats_.incumbent_updates;
  }

  double elapsed_seconds() const { return timer_.seconds(); }

 private:
  const Request& request_;
  Timer timer_;
  std::atomic<std::uint64_t> work_{0};
  /// -1 = running; otherwise the int value of the winning Termination.
  std::atomic<int> reason_{-1};
  std::mutex stream_mutex_;
  /// Guarded by stream_mutex_. Streamed callbacks see only the incumbent
  /// counter here — per-worker search counters are merged after the join,
  /// not on the stream path.
  Search_stats stream_stats_;
};

/// Per-worker half, satisfying the search kernel's Control concept.
/// Binds the worker's private Search_stats (for work flushing); lives on
/// the worker's stack.
class Worker_control {
 public:
  Worker_control(Shared_search_control& shared, Search_stats& stats)
      : shared_(&shared), stats_(&stats) {}

  /// True once any stop condition fired anywhere; sticky per worker.
  bool should_stop() {
    if (stopped_) return true;
    if (shared_->stopped()) {
      stopped_ = true;
      return true;
    }
    if (shared_->request().stop.stop_requested()) {
      shared_->request_stop(Termination::cancelled);
      stopped_ = true;
      return true;
    }
    const std::uint64_t tick = ++tick_;
    if ((tick & 0x3F) == 1) {
      flush_work();
      if ((tick & 0xFF) == 1) shared_->poll_deadline();
      if (shared_->stopped()) {
        stopped_ = true;
        return true;
      }
    }
    return false;
  }

  /// Charges work performed since the last flush to the shared budget.
  /// Workers call this once more when they exit so no work goes
  /// unaccounted.
  void flush_work() {
    const std::uint64_t work = stats_->work();
    if (work > flushed_) {
      shared_->charge_work(work - flushed_);
      flushed_ = work;
    }
  }

  bool stopped() const noexcept { return stopped_; }

 private:
  Shared_search_control* shared_;
  Search_stats* stats_;
  std::uint64_t flushed_ = 0;
  std::uint64_t tick_ = 0;
  bool stopped_ = false;
};

}  // namespace quest::opt
