// quest/opt/random_sampler.hpp
//
// Best of K uniformly random feasible orderings — the weakest baseline,
// anchoring the quality axis of E3.

#pragma once

#include <cstdint>

#include "quest/opt/optimizer.hpp"

namespace quest::opt {

struct Random_sampler_options {
  /// Fallback seed; a non-zero Request::seed takes precedence.
  std::uint64_t seed = 1;
  std::size_t samples = 1000;
};

class Random_sampler_optimizer final : public Optimizer {
 public:
  explicit Random_sampler_optimizer(Random_sampler_options options = {})
      : options_(options) {}

  std::string name() const override { return "random"; }
  Result optimize(const Request& request) override;

 private:
  Random_sampler_options options_;
};

}  // namespace quest::opt
