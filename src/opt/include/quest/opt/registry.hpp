// quest/opt/registry.hpp
//
// A string-configurable optimizer registry: name -> factory with
// string-keyed options, so an engine can be built from a spec like
//
//   "annealing:iterations=50000,seed=7"
//   "bnb:warm-start=1,subopt=0.1"
//
// and drivers (bench harnesses, examples, tests, tools/quest_cli) can
// enumerate engines instead of hard-coding concrete classes. The class is
// pure machinery plus the quest::opt baseline registrations; the
// fully-populated process-wide registry — including the paper's
// branch-and-bound and the portfolio, which live a layer above — is
// core::engine_registry() (quest/core/engines.hpp).
//
// All spec errors (unknown engine, malformed key=value, unknown option,
// out-of-range value) throw Precondition_error with actionable messages.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "quest/opt/optimizer.hpp"

namespace quest::opt {

/// The parsed options of a spec. Factories read typed values with
/// defaults; value-parse failures throw Precondition_error naming the
/// engine, the key and the offending text.
class Spec_options {
 public:
  using Entries = std::vector<std::pair<std::string, std::string>>;

  Spec_options(std::string engine, Entries entries)
      : engine_(std::move(engine)), entries_(std::move(entries)) {}

  const std::string& engine() const noexcept { return engine_; }
  const Entries& entries() const noexcept { return entries_; }

  bool has(std::string_view key) const;
  std::uint64_t get_uint(std::string_view key, std::uint64_t fallback) const;
  std::size_t get_size(std::string_view key, std::size_t fallback) const;
  double get_double(std::string_view key, double fallback) const;
  bool get_bool(std::string_view key, bool fallback) const;
  std::string get_string(std::string_view key, std::string fallback) const;

 private:
  const std::string* find(std::string_view key) const;
  [[noreturn]] void fail(std::string_view key, std::string_view expected,
                         std::string_view got) const;

  std::string engine_;
  Entries entries_;
};

/// Name -> factory map with spec parsing. Not thread-safe for
/// concurrent mutation; the process-wide instance
/// (core::engine_registry()) is built once and then only read, which
/// any number of threads may do — quest_serve builds engines from it on
/// every admission.
class Registry {
 public:
  /// Builds an engine from its parsed spec options.
  using Factory =
      std::function<std::unique_ptr<Optimizer>(const Spec_options&)>;

  /// Registers `factory` under `name`. `option_keys` is the complete set
  /// of keys the factory understands — make() rejects any other key with
  /// a message listing these. Re-registering a name is API misuse.
  void add(std::string name, std::string summary,
           std::vector<std::string> option_keys, Factory factory);

  bool contains(std::string_view name) const;
  /// Engine names in registration order.
  std::vector<std::string> names() const;
  const std::string& summary(std::string_view name) const;
  const std::vector<std::string>& option_keys(std::string_view name) const;

  /// Parses "name" or "name:key=value,key=value" and builds the engine.
  ///
  /// Beyond the engine's own keys, every spec accepts the *shared*
  /// cost-model keys (shared_option_keys): `policy=` overrides the send
  /// policy of the request the engine runs, and `model=` (with the
  /// flattened `model-strength=`, `model-seed=`, `model-clamp-lo=`,
  /// `model-clamp-hi=` parameters) overrides the whole selectivity
  /// structure. An engine built from such a spec rebinds
  /// Request::model before optimizing; serving layers must fold the same
  /// override into their cache keys (see spec_model_override).
  std::unique_ptr<Optimizer> make(std::string_view spec) const;

  /// Spec syntax parser, exposed for tests and tools. Throws
  /// Precondition_error on empty names, options without '=', empty keys
  /// or values, and duplicate keys.
  static Spec_options parse_spec(std::string_view spec);

  /// Multi-line human-readable listing ("name — summary (options: ...)").
  std::string describe() const;

  /// The cost-model override keys every engine spec accepts: "policy",
  /// "model", "model-strength", "model-seed", "model-clamp-lo",
  /// "model-clamp-hi".
  static const std::vector<std::string>& shared_option_keys();

 private:
  struct Entry {
    std::string name;
    std::string summary;
    std::vector<std::string> option_keys;
    Factory factory;
  };

  const Entry* find(std::string_view name) const;

  std::vector<Entry> entries_;
};

/// The effective cost model an engine built from `spec` will run under:
/// `base` (typically the request's model) overridden by the spec's shared
/// cost-model keys, bound for an n-service instance. Returns `base`
/// unchanged when the spec carries no shared keys. Serving layers use
/// this so cache keys always reflect the model that actually evaluated
/// the plans. Throws Precondition_error on malformed specs or values.
model::Cost_model spec_model_override(std::string_view spec,
                                      const model::Cost_model& base,
                                      std::size_t n);

/// Registers the quest::opt baseline engines (greedy, uniform-opt,
/// local-search, multistart, annealing, random, exhaustive,
/// exhaustive-bounded, dp, frontier) into `registry`.
void register_baseline_optimizers(Registry& registry);

}  // namespace quest::opt
