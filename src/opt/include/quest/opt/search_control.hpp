// quest/opt/search_control.hpp
//
// The one place every optimizer enforces its Request's limits. A
// Search_control is constructed per optimize() call over the request and
// the engine's live Search_stats; the engine then
//
//   * calls should_stop() once per unit of search work and unwinds when it
//     returns true (node budget, wall-clock deadline, cancellation), and
//   * calls note_incumbent() whenever its incumbent improves, which counts
//     the update, streams the plan to Request::on_incumbent, and arms the
//     cost-target stop,
//
// and finally calls finish() to stamp the Result with the termination
// reason and elapsed time. Centralizing the checks is what makes every
// engine — including the heuristics that used to ignore limits — honor
// budgets identically and report Termination honestly.

#pragma once

#include <cstdint>

#include "quest/common/timer.hpp"
#include "quest/opt/optimizer.hpp"

namespace quest::opt {

/// Per-optimize() limit enforcement; see the file comment for the
/// engine-side protocol. Lives on the optimize() stack — one per call,
/// never shared across threads.
class Search_control {
 public:
  /// Binds to the engine's live stats so budget checks see every counter
  /// update without extra bookkeeping. Both references must outlive the
  /// control (they live on the optimize() stack).
  Search_control(const Request& request, Search_stats& stats)
      : request_(request), stats_(stats) {}

  /// True once any stop condition fired; sticky. The stop token and node
  /// budget are checked on every call; the wall clock is polled on the
  /// first call and every 256th after (cancellation latency is therefore
  /// one work unit, deadline latency at most 256).
  bool should_stop();

  /// Report an improved incumbent: counts it, streams it to the request's
  /// callback, and stops the search when it reaches the cost target.
  void note_incumbent(const model::Plan& plan, double cost);

  /// Variant for an engine's natural completion point (the DP's swept
  /// optimum, frontier's first closed goal): counts and streams, but does
  /// not arm the cost-target stop — no work is left to skip, so meeting
  /// the target must not void the optimality proof.
  void note_final_incumbent(const model::Plan& plan, double cost);

  bool stopped() const noexcept { return stopped_; }
  Termination reason() const noexcept { return reason_; }
  double elapsed_seconds() const { return timer_.seconds(); }

  /// The budget left for a sub-engine launched now (composite optimizers:
  /// multistart's descents, the portfolio's phases). Exhausted dimensions
  /// come back as the smallest non-zero value, never as "unlimited".
  Budget remaining_budget() const;

  /// Stamps termination, proven_optimal and elapsed time. `claim_optimal`
  /// is the engine's own exactness claim; it is voided by any early stop.
  void finish(Result& result, bool claim_optimal) const;

 private:
  void stop(Termination reason) noexcept {
    stopped_ = true;
    reason_ = reason;
  }

  const Request& request_;
  Search_stats& stats_;
  Timer timer_;
  std::uint64_t tick_ = 0;
  bool stopped_ = false;
  Termination reason_ = Termination::completed;
};

}  // namespace quest::opt
