// quest/opt/stop_token.hpp
//
// Cooperative cancellation for optimize() calls. A caller keeps a
// Stop_source, hands its token() to Request::stop, and may request a stop
// from any thread (or from the request's own incumbent callback); every
// optimizer polls the token at least once per unit of search work and
// returns its best incumbent with Termination::cancelled.
//
// Deliberately a minimal subset of std::stop_token: shared-flag semantics,
// no callbacks, copyable on both sides, and a default-constructed token
// that can never request a stop (so Request needs no null checks).

#pragma once

#include <atomic>
#include <memory>

namespace quest::opt {

class Stop_source;

/// Read side of a cancellation flag. Default-constructed tokens never
/// request a stop; copies share their source's flag. Thread-safe.
class Stop_token {
 public:
  Stop_token() = default;

  /// True once the owning Stop_source requested a stop.
  bool stop_requested() const noexcept {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

  /// True when this token is connected to a source at all.
  bool stop_possible() const noexcept { return flag_ != nullptr; }

 private:
  friend class Stop_source;
  explicit Stop_token(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Write side: owns the flag. request_stop() is sticky — once requested,
/// every connected token reports it forever.
class Stop_source {
 public:
  Stop_source() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  Stop_token token() const noexcept { return Stop_token(flag_); }

  void request_stop() noexcept {
    flag_->store(true, std::memory_order_relaxed);
  }

  bool stop_requested() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace quest::opt
