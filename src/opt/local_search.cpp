#include "quest/opt/local_search.hpp"

#include <algorithm>
#include <vector>

#include "quest/common/error.hpp"
#include "quest/opt/greedy.hpp"
#include "quest/opt/search_control.hpp"

namespace quest::opt {

using model::Plan;
using model::Service_id;

namespace {

bool respects(const constraints::Precedence_graph* precedence,
              const std::vector<Service_id>& order) {
  return precedence == nullptr || precedence->respects(order);
}

}  // namespace

Result Local_search_optimizer::optimize(const Request& request) {
  validate_request(request);
  Search_stats outer_stats;
  Search_control control(request, outer_stats);

  Greedy_optimizer greedy;
  Request greedy_request = request;
  greedy_request.on_incumbent = nullptr;  // improve() streams the seed
  const Result seed = greedy.optimize(greedy_request);
  outer_stats = seed.stats;  // charge the seed's work against the budget
  if (stopped_early(seed.termination) ||
      seed.plan.size() != request.instance->size()) {
    // Budget died during the constructive seed. Its plan (when complete)
    // was never streamed — the sub-request's callback is nulled — so
    // deliver the missed incumbent before handing the result back.
    if (request.on_incumbent &&
        seed.plan.size() == request.instance->size()) {
      request.on_incumbent(seed.plan, seed.cost, seed.stats);
    }
    return seed;
  }

  // A warm start competes with the greedy seed rather than replacing
  // it: the descent polishes whichever is cheaper, so the engine keeps
  // its never-worse-than-greedy floor even when the caller's plan
  // (typically a cached incumbent from another engine) is poor.
  const Plan* start = &seed.plan;
  if (request.warm_start != nullptr) {
    const double warm_cost = model::bottleneck_cost(
        *request.instance, *request.warm_start, request.model);
    ++outer_stats.complete_plans;
    if (warm_cost < seed.cost) start = request.warm_start;
  }

  Request sub = request;
  sub.budget = control.remaining_budget();
  Result result = improve(sub, *start);
  result.stats.nodes_expanded += seed.stats.nodes_expanded;
  // Charge the warm plan's evaluation (improve() counts its own seed).
  if (request.warm_start != nullptr) ++result.stats.complete_plans;
  result.elapsed_seconds = control.elapsed_seconds();
  return result;
}

Result Local_search_optimizer::improve(const Request& request,
                                       const Plan& seed) {
  validate_request(request);
  const auto& instance = *request.instance;
  const auto* precedence = request.precedence;
  QUEST_EXPECTS(seed.is_permutation_of(instance.size()),
                "local search needs a complete seed plan");
  QUEST_EXPECTS(respects(precedence, seed.order()),
                "seed plan violates precedence constraints");
  Search_stats stats;
  Search_control control(request, stats);

  std::vector<Service_id> current = seed.order();
  double current_cost =
      model::bottleneck_cost(instance, Plan(current), request.model);
  ++stats.complete_plans;
  control.note_incumbent(Plan(current), current_cost);
  const std::size_t n = current.size();

  std::size_t rounds = 0;
  bool improved = true;
  while (improved && !control.should_stop() &&
         (options_.max_rounds == 0 || rounds < options_.max_rounds)) {
    improved = false;
    ++rounds;
    std::vector<Service_id> best_neighbor;
    double best_cost = current_cost;

    auto consider = [&](std::vector<Service_id>& neighbor) {
      if (control.should_stop()) return;
      if (!respects(precedence, neighbor)) return;
      const double cost =
          model::bottleneck_cost(instance, Plan(neighbor), request.model);
      ++stats.complete_plans;
      if (cost < best_cost) {
        best_cost = cost;
        best_neighbor = neighbor;
      }
    };

    if (options_.use_swap) {
      for (std::size_t i = 0; i + 1 < n && !control.stopped(); ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
          std::vector<Service_id> neighbor = current;
          std::swap(neighbor[i], neighbor[j]);
          consider(neighbor);
        }
      }
    }
    if (options_.use_insert) {
      for (std::size_t from = 0; from < n && !control.stopped(); ++from) {
        for (std::size_t to = 0; to < n; ++to) {
          if (from == to) continue;
          std::vector<Service_id> neighbor = current;
          const Service_id moved = neighbor[from];
          neighbor.erase(neighbor.begin() + static_cast<std::ptrdiff_t>(from));
          neighbor.insert(neighbor.begin() + static_cast<std::ptrdiff_t>(to),
                          moved);
          consider(neighbor);
        }
      }
    }

    // A best improving move found before a stop is still a valid move.
    if (!best_neighbor.empty()) {
      current = std::move(best_neighbor);
      current_cost = best_cost;
      improved = true;
      control.note_incumbent(Plan(current), current_cost);
    }
  }

  Result result;
  result.plan = Plan(std::move(current));
  result.cost = current_cost;
  result.stats = stats;
  control.finish(result, false);
  return result;
}

}  // namespace quest::opt
