#include "quest/opt/multistart.hpp"

#include <optional>
#include <vector>

#include "quest/common/error.hpp"
#include "quest/common/rng.hpp"
#include "quest/opt/search_control.hpp"

namespace quest::opt {

using model::Plan;
using model::Service_id;

namespace {

/// Random feasible ordering (uniform over feasible draw sequences).
Plan random_feasible_plan(const model::Instance& instance,
                          const constraints::Precedence_graph* precedence,
                          Rng& rng) {
  const std::size_t n = instance.size();
  std::vector<Service_id> order;
  order.reserve(n);
  std::vector<char> placed(n, 0);
  std::vector<Service_id> feasible;
  while (order.size() < n) {
    feasible.clear();
    for (Service_id u = 0; u < n; ++u) {
      if (placed[u]) continue;
      if (precedence && !precedence->feasible_next(u, placed)) continue;
      feasible.push_back(u);
    }
    QUEST_ASSERT(!feasible.empty(), "no feasible service to draw");
    const Service_id pick =
        feasible[rng.uniform_int(static_cast<std::uint64_t>(feasible.size()))];
    order.push_back(pick);
    placed[pick] = 1;
  }
  return Plan(std::move(order));
}

}  // namespace

Result Multistart_optimizer::optimize(const Request& request) {
  validate_request(request);
  Search_stats stats;
  Search_control control(request, stats);
  Rng rng(effective_seed(request, options_.seed));
  Local_search_optimizer search(options_.local_search);

  // Descents run over sub-requests: same problem and stop token, but the
  // budget left at launch time, and no direct streaming (improvements are
  // streamed here, filtered to multistart-level bests).
  Request sub = request;
  sub.on_incumbent = nullptr;

  // Descent 0: the greedy-seeded polish.
  sub.budget = control.remaining_budget();
  Result best = search.optimize(sub);
  stats.nodes_expanded += best.stats.nodes_expanded;
  stats.complete_plans += best.stats.complete_plans;
  if (stopped_early(best.termination) ||
      best.plan.size() != request.instance->size()) {
    // Budget died during the first descent: keep its termination reason,
    // and deliver the incumbent the nulled sub-request callback missed.
    if (request.on_incumbent &&
        best.plan.size() == request.instance->size()) {
      request.on_incumbent(best.plan, best.cost, best.stats);
    }
    best.stats = stats;
    best.elapsed_seconds = control.elapsed_seconds();
    return best;
  }
  control.note_incumbent(best.plan, best.cost);

  // A restart that came back curtailed means the shared budget is gone
  // (or the caller cancelled): remember why and stop restarting — its
  // reason must survive into the final result even when this control's
  // own strided clock poll has not fired yet.
  std::optional<Termination> curtailed;
  for (std::size_t restart = 0;
       restart < options_.restarts && !control.should_stop(); ++restart) {
    const Plan start =
        random_feasible_plan(*request.instance, request.precedence, rng);
    sub.budget = control.remaining_budget();
    Result candidate = search.improve(sub, start);
    stats.complete_plans += candidate.stats.complete_plans;
    stats.nodes_expanded += candidate.stats.nodes_expanded;
    if (candidate.cost < best.cost) {
      best.plan = std::move(candidate.plan);
      best.cost = candidate.cost;
      control.note_incumbent(best.plan, best.cost);
    }
    if (stopped_early(candidate.termination)) {
      curtailed = candidate.termination;
      break;
    }
  }

  best.stats = stats;
  control.finish(best, false);
  if (!stopped_early(best.termination) && curtailed) {
    best.termination = *curtailed;
  }
  return best;
}

}  // namespace quest::opt
