#include "quest/opt/multistart.hpp"

#include <vector>

#include "quest/common/error.hpp"
#include "quest/common/rng.hpp"
#include "quest/common/timer.hpp"

namespace quest::opt {

using model::Plan;
using model::Service_id;

namespace {

/// Random feasible ordering (uniform over feasible draw sequences).
Plan random_feasible_plan(const model::Instance& instance,
                          const constraints::Precedence_graph* precedence,
                          Rng& rng) {
  const std::size_t n = instance.size();
  std::vector<Service_id> order;
  order.reserve(n);
  std::vector<char> placed(n, 0);
  std::vector<Service_id> feasible;
  while (order.size() < n) {
    feasible.clear();
    for (Service_id u = 0; u < n; ++u) {
      if (placed[u]) continue;
      if (precedence && !precedence->feasible_next(u, placed)) continue;
      feasible.push_back(u);
    }
    QUEST_ASSERT(!feasible.empty(), "no feasible service to draw");
    const Service_id pick =
        feasible[rng.uniform_int(static_cast<std::uint64_t>(feasible.size()))];
    order.push_back(pick);
    placed[pick] = 1;
  }
  return Plan(std::move(order));
}

}  // namespace

Result Multistart_optimizer::optimize(const Request& request) {
  validate_request(request);
  Timer timer;
  Rng rng(options_.seed);
  Local_search_optimizer search(options_.local_search);

  // Descent 0: the greedy-seeded polish.
  Result best = search.optimize(request);

  for (std::size_t restart = 0; restart < options_.restarts; ++restart) {
    const Plan start =
        random_feasible_plan(*request.instance, request.precedence, rng);
    Result candidate = search.improve(request, start);
    best.stats.complete_plans += candidate.stats.complete_plans;
    best.stats.nodes_expanded += candidate.stats.nodes_expanded;
    if (candidate.cost < best.cost) {
      best.plan = std::move(candidate.plan);
      best.cost = candidate.cost;
      ++best.stats.incumbent_updates;
    }
  }

  best.proven_optimal = false;
  best.elapsed_seconds = timer.seconds();
  return best;
}

}  // namespace quest::opt
