#include "quest/opt/optimizer.hpp"

#include "quest/common/error.hpp"

namespace quest::opt {

const char* to_string(Termination termination) noexcept {
  switch (termination) {
    case Termination::optimal:
      return "optimal";
    case Termination::completed:
      return "completed";
    case Termination::budget_exhausted:
      return "budget-exhausted";
    case Termination::cancelled:
      return "cancelled";
    case Termination::cost_target_reached:
      return "cost-target-reached";
  }
  return "unknown";
}

void validate_request(const Request& request) {
  QUEST_EXPECTS(request.instance != nullptr,
                "request.instance must not be null");
  request.model.validate_for(*request.instance);
  if (request.precedence != nullptr) {
    QUEST_EXPECTS(request.precedence->size() == request.instance->size(),
                  "precedence graph size must match the instance");
  }
  QUEST_EXPECTS(request.budget.time_limit_seconds >= 0.0,
                "time limit must be non-negative");
  QUEST_EXPECTS(request.budget.cost_target >= 0.0,
                "cost target must be non-negative");
  if (request.warm_start != nullptr) {
    QUEST_EXPECTS(
        request.warm_start->is_permutation_of(request.instance->size()),
        "warm-start plan must be a complete plan for the instance");
    QUEST_EXPECTS(request.precedence == nullptr ||
                      request.precedence->respects(
                          request.warm_start->order()),
                  "warm-start plan violates the precedence constraints");
  }
}

}  // namespace quest::opt
