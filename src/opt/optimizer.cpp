#include "quest/opt/optimizer.hpp"

#include "quest/common/error.hpp"

namespace quest::opt {

void validate_request(const Request& request) {
  QUEST_EXPECTS(request.instance != nullptr,
                "request.instance must not be null");
  if (request.precedence != nullptr) {
    QUEST_EXPECTS(request.precedence->size() == request.instance->size(),
                  "precedence graph size must match the instance");
  }
  QUEST_EXPECTS(request.time_limit_seconds >= 0.0,
                "time limit must be non-negative");
}

}  // namespace quest::opt
