#include "quest/opt/random_sampler.hpp"

#include <limits>
#include <vector>

#include "quest/common/error.hpp"
#include "quest/common/rng.hpp"
#include "quest/opt/search_control.hpp"

namespace quest::opt {

using model::Plan;
using model::Service_id;

namespace {

/// Uniformly random feasible ordering: repeatedly draw uniformly among the
/// currently feasible services. (Uniform over feasible *draw sequences*,
/// which is the standard cheap approximation of a uniform linear
/// extension.)
std::vector<Service_id> random_feasible_order(
    const model::Instance& instance,
    const constraints::Precedence_graph* precedence, Rng& rng) {
  const std::size_t n = instance.size();
  std::vector<Service_id> order;
  order.reserve(n);
  std::vector<char> placed(n, 0);
  std::vector<Service_id> feasible;
  feasible.reserve(n);
  while (order.size() < n) {
    feasible.clear();
    for (Service_id u = 0; u < n; ++u) {
      if (placed[u]) continue;
      if (precedence && !precedence->feasible_next(u, placed)) continue;
      feasible.push_back(u);
    }
    QUEST_ASSERT(!feasible.empty(), "no feasible service to draw");
    const Service_id pick =
        feasible[rng.uniform_int(static_cast<std::uint64_t>(feasible.size()))];
    order.push_back(pick);
    placed[pick] = 1;
  }
  return order;
}

}  // namespace

Result Random_sampler_optimizer::optimize(const Request& request) {
  validate_request(request);
  const auto& instance = *request.instance;
  Search_stats stats;
  Search_control control(request, stats);
  Rng rng(effective_seed(request, options_.seed));

  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<Service_id> best;
  for (std::size_t s = 0; s < options_.samples && !control.should_stop();
       ++s) {
    auto order = random_feasible_order(instance, request.precedence, rng);
    const double cost =
        model::bottleneck_cost(instance, Plan(order), request.model);
    ++stats.complete_plans;
    if (cost < best_cost) {
      best_cost = cost;
      best = std::move(order);
      control.note_incumbent(Plan(best), best_cost);
    }
  }

  Result result;
  result.plan = Plan(std::move(best));
  result.cost = best_cost;
  result.stats = stats;
  control.finish(result, false);
  return result;
}

}  // namespace quest::opt
