#include "quest/opt/registry.hpp"

#include <charconv>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <utility>

#include "quest/common/error.hpp"
#include "quest/opt/annealing.hpp"
#include "quest/opt/dp.hpp"
#include "quest/opt/exhaustive.hpp"
#include "quest/opt/frontier.hpp"
#include "quest/opt/greedy.hpp"
#include "quest/opt/local_search.hpp"
#include "quest/opt/multistart.hpp"
#include "quest/opt/random_sampler.hpp"

namespace quest::opt {

namespace {

std::string join(const std::vector<std::string>& items) {
  std::string joined;
  for (const auto& item : items) {
    if (!joined.empty()) joined += ", ";
    joined += item;
  }
  return joined;
}

/// The shared cost-model keys of an engine spec, parsed.
struct Shared_model_keys {
  std::optional<model::Send_policy> policy;
  bool has_model = false;
  model::Cost_model_spec spec;  ///< policy field filled at apply time
};

bool is_shared_key(std::string_view key) {
  for (const auto& shared : Registry::shared_option_keys()) {
    if (shared == key) return true;
  }
  return false;
}

Shared_model_keys parse_shared_keys(const Spec_options& options) {
  Shared_model_keys parsed;
  // One grammar, one parser: reassemble the flattened model-* keys into
  // the canonical cost-model spec text and defer every value check to
  // model::parse_cost_model_spec — the same rules quest_cli --model and
  // the serve protocol apply. Parse_error becomes the registry's usual
  // Precondition_error, prefixed with the engine for context.
  const bool has_structure_params =
      options.has("model-strength") || options.has("model-seed") ||
      options.has("model-clamp-lo") || options.has("model-clamp-hi") ||
      options.has("model-matrix");
  const bool has_profile_params =
      options.has("model-objective") || options.has("model-cost-tail") ||
      options.has("model-cost-alpha") || options.has("model-cost-sigma") ||
      options.has("model-cost-scale");
  std::string model_text = options.get_string("model", "independent");
  std::string suffix;
  const auto append_option = [&](const char* shared, const char* own) {
    if (!options.has(shared)) return;
    suffix += suffix.empty() ? ":" : ",";
    suffix += std::string(own) + "=" + options.get_string(shared, "");
  };
  if (model_text == "correlated") {
    append_option("model-strength", "strength");
    append_option("model-seed", "seed");
    append_option("model-clamp-lo", "clamp-lo");
    append_option("model-clamp-hi", "clamp-hi");
    append_option("model-matrix", "matrix");
  } else {
    QUEST_EXPECTS(!has_structure_params,
                  "optimizer '" + options.engine() +
                      "' spec uses correlated-only model-* keys without "
                      "model=correlated");
  }
  // The cost-profile keys apply to either structure, but only make sense
  // as part of an explicit model override — without model= they would
  // silently replace the request's model with a default-built one.
  QUEST_EXPECTS(!has_profile_params || options.has("model"),
                "optimizer '" + options.engine() +
                    "' spec uses model-objective/model-cost-* keys "
                    "without model=");
  append_option("model-objective", "objective");
  append_option("model-cost-tail", "cost-tail");
  append_option("model-cost-alpha", "cost-alpha");
  append_option("model-cost-sigma", "cost-sigma");
  append_option("model-cost-scale", "cost-scale");
  model_text += suffix;
  try {
    const model::Cost_model_spec spec = model::parse_cost_model_spec(
        model_text, options.get_string("policy", "sequential"));
    if (options.has("policy")) parsed.policy = spec.policy;
    if (options.has("model")) {
      parsed.has_model = true;
      parsed.spec = spec;
    }
  } catch (const Parse_error& error) {
    throw Precondition_error("optimizer '" + options.engine() +
                             "' cost-model override: " + error.what());
  }
  return parsed;
}

model::Cost_model apply_override(const Shared_model_keys& keys,
                                 const model::Cost_model& base,
                                 std::size_t n) {
  if (keys.has_model) {
    model::Cost_model_spec spec = keys.spec;
    spec.policy = keys.policy.value_or(base.policy());
    return spec.bind(n);
  }
  if (keys.policy.has_value()) return base.with_policy(*keys.policy);
  return base;
}

/// Rebinds Request::model before delegating — how a spec-level
/// `policy=` / `model=` override reaches the engine.
class Model_override_optimizer final : public Optimizer {
 public:
  Model_override_optimizer(std::unique_ptr<Optimizer> inner,
                           Shared_model_keys keys)
      : inner_(std::move(inner)), keys_(std::move(keys)) {}

  std::string name() const override { return inner_->name(); }

  Result optimize(const Request& request) override {
    // The base model may be anything — a full model= override replaces
    // it — so validation belongs to the inner engine, on the *bound*
    // request. Only the instance itself is needed here.
    QUEST_EXPECTS(request.instance != nullptr,
                  "request.instance must not be null");
    Request bound = request;
    bound.model =
        apply_override(keys_, request.model, request.instance->size());
    return inner_->optimize(bound);
  }

 private:
  std::unique_ptr<Optimizer> inner_;
  Shared_model_keys keys_;
};

}  // namespace

// ---- Spec_options ----------------------------------------------------

const std::string* Spec_options::find(std::string_view key) const {
  for (const auto& [entry_key, value] : entries_) {
    if (entry_key == key) return &value;
  }
  return nullptr;
}

void Spec_options::fail(std::string_view key, std::string_view expected,
                        std::string_view got) const {
  throw Precondition_error("optimizer '" + engine_ + "' option '" +
                           std::string(key) + "': expected " +
                           std::string(expected) + ", got '" +
                           std::string(got) + "'");
}

bool Spec_options::has(std::string_view key) const {
  return find(key) != nullptr;
}

std::uint64_t Spec_options::get_uint(std::string_view key,
                                     std::uint64_t fallback) const {
  const std::string* text = find(key);
  if (text == nullptr) return fallback;
  std::uint64_t value = 0;
  const char* end = text->data() + text->size();
  const auto [ptr, ec] = std::from_chars(text->data(), end, value);
  if (ec != std::errc{} || ptr != end) {
    fail(key, "a non-negative integer", *text);
  }
  return value;
}

std::size_t Spec_options::get_size(std::string_view key,
                                   std::size_t fallback) const {
  return static_cast<std::size_t>(get_uint(key, fallback));
}

double Spec_options::get_double(std::string_view key, double fallback) const {
  const std::string* text = find(key);
  if (text == nullptr) return fallback;
  char* end = nullptr;
  const double value = std::strtod(text->c_str(), &end);
  if (text->empty() || end != text->c_str() + text->size()) {
    fail(key, "a number", *text);
  }
  return value;
}

bool Spec_options::get_bool(std::string_view key, bool fallback) const {
  const std::string* text = find(key);
  if (text == nullptr) return fallback;
  if (*text == "true" || *text == "1" || *text == "yes" || *text == "on") {
    return true;
  }
  if (*text == "false" || *text == "0" || *text == "no" || *text == "off") {
    return false;
  }
  fail(key, "a boolean (true/false/1/0/yes/no/on/off)", *text);
}

std::string Spec_options::get_string(std::string_view key,
                                     std::string fallback) const {
  const std::string* text = find(key);
  return text != nullptr ? *text : fallback;
}

// ---- Registry --------------------------------------------------------

void Registry::add(std::string name, std::string summary,
                   std::vector<std::string> option_keys, Factory factory) {
  QUEST_EXPECTS(!name.empty(), "registry names must be non-empty");
  QUEST_EXPECTS(find(name) == nullptr,
                "optimizer '" + name + "' is already registered");
  QUEST_EXPECTS(factory != nullptr, "registry factories must be callable");
  entries_.push_back({std::move(name), std::move(summary),
                      std::move(option_keys), std::move(factory)});
}

const Registry::Entry* Registry::find(std::string_view name) const {
  for (const auto& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

bool Registry::contains(std::string_view name) const {
  return find(name) != nullptr;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> result;
  result.reserve(entries_.size());
  for (const auto& entry : entries_) result.push_back(entry.name);
  return result;
}

const std::string& Registry::summary(std::string_view name) const {
  const Entry* entry = find(name);
  QUEST_EXPECTS(entry != nullptr,
                "unknown optimizer '" + std::string(name) + "'");
  return entry->summary;
}

const std::vector<std::string>& Registry::option_keys(
    std::string_view name) const {
  const Entry* entry = find(name);
  QUEST_EXPECTS(entry != nullptr,
                "unknown optimizer '" + std::string(name) + "'");
  return entry->option_keys;
}

Spec_options Registry::parse_spec(std::string_view spec) {
  std::string_view name = spec;
  std::string_view options_text;
  if (const auto colon = spec.find(':'); colon != std::string_view::npos) {
    name = spec.substr(0, colon);
    options_text = spec.substr(colon + 1);
  }
  QUEST_EXPECTS(!name.empty(),
                "optimizer spec '" + std::string(spec) +
                    "' must start with an engine name "
                    "('name' or 'name:key=value,key=value')");

  QUEST_EXPECTS(name.size() == spec.size() || !options_text.empty(),
                "optimizer spec '" + std::string(spec) +
                    "' has a ':' but no options");

  Spec_options::Entries entries;
  std::string_view rest = options_text;
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string_view piece =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    QUEST_EXPECTS(comma == std::string_view::npos || !rest.empty(),
                  "trailing comma in spec '" + std::string(spec) + "'");
    const auto eq = piece.find('=');
    QUEST_EXPECTS(eq != std::string_view::npos && eq > 0 &&
                      eq + 1 < piece.size(),
                  "malformed option '" + std::string(piece) + "' in spec '" +
                      std::string(spec) +
                      "': expected key=value with a non-empty key and value");
    const std::string key(piece.substr(0, eq));
    for (const auto& [existing, value] : entries) {
      QUEST_EXPECTS(existing != key,
                    "duplicate option '" + key + "' in spec '" +
                        std::string(spec) + "'");
    }
    entries.emplace_back(key, std::string(piece.substr(eq + 1)));
  }
  return Spec_options(std::string(name), std::move(entries));
}

std::unique_ptr<Optimizer> Registry::make(std::string_view spec) const {
  Spec_options options = parse_spec(spec);
  const Entry* entry = find(options.engine());
  if (entry == nullptr) {
    throw Precondition_error("unknown optimizer '" + options.engine() +
                             "' (registered: " + join(names()) + ")");
  }
  Spec_options::Entries engine_entries;
  Spec_options::Entries shared_entries;
  for (const auto& [key, value] : options.entries()) {
    if (is_shared_key(key)) {
      shared_entries.emplace_back(key, value);
      continue;
    }
    bool known = false;
    for (const auto& valid : entry->option_keys) {
      if (valid == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      throw Precondition_error(
          "optimizer '" + entry->name + "' has no option '" + key +
          "' (valid: " +
          (entry->option_keys.empty() ? "none" : join(entry->option_keys)) +
          "; every engine also accepts " + join(shared_option_keys()) +
          ")");
    }
    engine_entries.emplace_back(key, value);
  }
  auto built = entry->factory(
      Spec_options(options.engine(), std::move(engine_entries)));
  if (!shared_entries.empty()) {
    Shared_model_keys keys = parse_shared_keys(
        Spec_options(options.engine(), std::move(shared_entries)));
    built = std::make_unique<Model_override_optimizer>(std::move(built),
                                                       std::move(keys));
  }
  return built;
}

const std::vector<std::string>& Registry::shared_option_keys() {
  static const std::vector<std::string> keys = {
      "policy",           "model",           "model-strength",
      "model-seed",       "model-clamp-lo",  "model-clamp-hi",
      "model-matrix",     "model-objective", "model-cost-tail",
      "model-cost-alpha", "model-cost-sigma", "model-cost-scale"};
  return keys;
}

model::Cost_model spec_model_override(std::string_view spec,
                                      const model::Cost_model& base,
                                      std::size_t n) {
  const Spec_options options = Registry::parse_spec(spec);
  Spec_options::Entries shared_entries;
  for (const auto& [key, value] : options.entries()) {
    if (is_shared_key(key)) shared_entries.emplace_back(key, value);
  }
  if (shared_entries.empty()) return base;
  const Shared_model_keys keys = parse_shared_keys(
      Spec_options(options.engine(), std::move(shared_entries)));
  return apply_override(keys, base, n);
}

std::string Registry::describe() const {
  std::ostringstream out;
  for (const auto& entry : entries_) {
    out << "  " << entry.name << " — " << entry.summary;
    if (!entry.option_keys.empty()) {
      out << " (options: " << join(entry.option_keys) << ")";
    }
    out << '\n';
  }
  return out.str();
}

// ---- baseline registrations ------------------------------------------

void register_baseline_optimizers(Registry& registry) {
  registry.add("greedy",
               "cheapest-pair + cheapest-successor constructive heuristic",
               {}, [](const Spec_options&) {
                 return std::make_unique<Greedy_optimizer>();
               });
  registry.add("uniform-opt",
               "rank-by-gamma centralized baseline (optimal on flat "
               "networks)",
               {}, [](const Spec_options&) {
                 return std::make_unique<Uniform_comm_optimizer>();
               });
  registry.add(
      "local-search", "best-improvement swap/insert descent from greedy",
      {"swap", "insert", "max-rounds"}, [](const Spec_options& options) {
        Local_search_options parsed;
        parsed.use_swap = options.get_bool("swap", parsed.use_swap);
        parsed.use_insert = options.get_bool("insert", parsed.use_insert);
        parsed.max_rounds = options.get_size("max-rounds", parsed.max_rounds);
        QUEST_EXPECTS(parsed.use_swap || parsed.use_insert,
                      "local-search needs at least one of swap/insert");
        return std::make_unique<Local_search_optimizer>(parsed);
      });
  registry.add(
      "multistart",
      "local-search polish from greedy plus random feasible restarts",
      {"seed", "restarts", "swap", "insert", "max-rounds"},
      [](const Spec_options& options) {
        Multistart_options parsed;
        parsed.seed = options.get_uint("seed", parsed.seed);
        parsed.restarts = options.get_size("restarts", parsed.restarts);
        parsed.local_search.use_swap =
            options.get_bool("swap", parsed.local_search.use_swap);
        parsed.local_search.use_insert =
            options.get_bool("insert", parsed.local_search.use_insert);
        parsed.local_search.max_rounds =
            options.get_size("max-rounds", parsed.local_search.max_rounds);
        QUEST_EXPECTS(
            parsed.local_search.use_swap || parsed.local_search.use_insert,
            "multistart needs at least one of swap/insert");
        return std::make_unique<Multistart_optimizer>(parsed);
      });
  registry.add(
      "annealing",
      "simulated annealing (swap/insert moves, geometric cooling)",
      {"seed", "iterations", "initial-temp", "cooling", "min-temp"},
      [](const Spec_options& options) {
        Annealing_options parsed;
        parsed.seed = options.get_uint("seed", parsed.seed);
        parsed.iterations = options.get_size("iterations", parsed.iterations);
        parsed.initial_temperature =
            options.get_double("initial-temp", parsed.initial_temperature);
        parsed.cooling = options.get_double("cooling", parsed.cooling);
        parsed.min_temperature =
            options.get_double("min-temp", parsed.min_temperature);
        QUEST_EXPECTS(parsed.initial_temperature > 0.0,
                      "annealing initial-temp must be positive");
        QUEST_EXPECTS(parsed.cooling > 0.0 && parsed.cooling <= 1.0,
                      "annealing cooling must be in (0, 1]");
        QUEST_EXPECTS(parsed.min_temperature >= 0.0,
                      "annealing min-temp must be non-negative");
        return std::make_unique<Annealing_optimizer>(parsed);
      });
  registry.add(
      "random", "best of K uniformly random feasible orderings",
      {"seed", "samples"}, [](const Spec_options& options) {
        Random_sampler_options parsed;
        parsed.seed = options.get_uint("seed", parsed.seed);
        parsed.samples = options.get_size("samples", parsed.samples);
        QUEST_EXPECTS(parsed.samples > 0,
                      "random sampler needs samples >= 1");
        return std::make_unique<Random_sampler_optimizer>(parsed);
      });
  registry.add("exhaustive", "unpruned DFS over every feasible ordering",
               {}, [](const Spec_options&) {
                 return std::make_unique<Exhaustive_optimizer>(false);
               });
  registry.add("exhaustive-bounded",
               "DFS pruned by the epsilon bound (Lemma-1-only search)", {},
               [](const Spec_options&) {
                 return std::make_unique<Exhaustive_optimizer>(true);
               });
  registry.add("dp", "exact subset DP (Held-Karp style), n <= 22", {},
               [](const Spec_options&) {
                 return std::make_unique<Dp_optimizer>();
               });
  registry.add("frontier",
               "exact best-first search over (subset, last) states", {},
               [](const Spec_options&) {
                 return std::make_unique<Frontier_optimizer>();
               });
}

}  // namespace quest::opt
