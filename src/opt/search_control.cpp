#include "quest/opt/search_control.hpp"

#include <algorithm>

namespace quest::opt {

bool Search_control::should_stop() {
  if (stopped_) return true;
  if (request_.stop.stop_requested()) {
    stop(Termination::cancelled);
    return true;
  }
  const Budget& budget = request_.budget;
  if (budget.node_limit != 0 && stats_.work() >= budget.node_limit) {
    stop(Termination::budget_exhausted);
    return true;
  }
  // Poll the clock on tick 1 (so microscopic limits stop even the
  // smallest engines) and then every 256 ticks.
  if (budget.time_limit_seconds > 0.0 && (++tick_ & 0xFF) == 1 &&
      timer_.seconds() > budget.time_limit_seconds) {
    stop(Termination::budget_exhausted);
    return true;
  }
  return false;
}

void Search_control::note_incumbent(const model::Plan& plan, double cost) {
  note_final_incumbent(plan, cost);
  if (!stopped_ && request_.budget.cost_target > 0.0 &&
      cost <= request_.budget.cost_target) {
    stop(Termination::cost_target_reached);
  }
}

void Search_control::note_final_incumbent(const model::Plan& plan,
                                          double cost) {
  ++stats_.incumbent_updates;
  if (request_.on_incumbent) request_.on_incumbent(plan, cost, stats_);
}

Budget Search_control::remaining_budget() const {
  Budget remaining = request_.budget;
  if (remaining.node_limit != 0) {
    const std::uint64_t used = stats_.work();
    remaining.node_limit =
        remaining.node_limit > used ? remaining.node_limit - used : 1;
  }
  if (remaining.time_limit_seconds > 0.0) {
    remaining.time_limit_seconds =
        std::max(remaining.time_limit_seconds - timer_.seconds(), 1e-9);
  }
  return remaining;
}

void Search_control::finish(Result& result, bool claim_optimal) const {
  result.proven_optimal = claim_optimal && !stopped_;
  result.termination = stopped_            ? reason_
                       : result.proven_optimal ? Termination::optimal
                                               : Termination::completed;
  result.elapsed_seconds = timer_.seconds();
}

}  // namespace quest::opt
