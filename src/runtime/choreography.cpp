#include "quest/runtime/choreography.hpp"

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#ifdef __linux__
#include <sys/prctl.h>
#endif

#include "quest/common/error.hpp"

namespace quest::runtime {

using model::Instance;
using model::Plan;

namespace {

using clock = std::chrono::steady_clock;

/// A block travelling down a link: `count` tuples, or the end-of-stream
/// marker.
struct Block {
  std::uint64_t count = 0;
  bool eos = false;
  /// When the block became available to the consumer (stamped inside
  /// push, after any back-pressure wait). Downstream work on the block
  /// cannot be scheduled before this instant — but clamping the consumer
  /// deadline to this stamp (rather than to "now" at pop return) keeps
  /// pop wake-up latency and accumulated oversleep recoverable by the
  /// deadline catch-up mechanism instead of baking one scheduling delay
  /// into the emulated timeline per block.
  clock::time_point ready{};
};

/// Bounded MPSC block queue with blocking push/pop.
class Channel {
 public:
  explicit Channel(std::size_t capacity) : capacity_(capacity) {}

  void push(Block block) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [this] { return blocks_.size() < capacity_; });
    block.ready = clock::now();
    blocks_.push_back(block);
    not_empty_.notify_one();
  }

  Block pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return !blocks_.empty(); });
    const Block block = blocks_.front();
    blocks_.pop_front();
    not_full_.notify_one();
    return block;
  }

 private:
  std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Block> blocks_;
  std::size_t capacity_;
};

struct Worker_state {
  double cost_us = 0.0;
  double selectivity = 0.0;
  double transfer_us = 0.0;  // per tuple, to the next hop (0 for sink)
  Channel* in = nullptr;
  Channel* out = nullptr;  // nullptr for the last service (sink collector)
  std::uint64_t block_size = 1;
  // results
  double busy_us = 0.0;
  std::uint64_t tuples_out = 0;
};

void run_service(Worker_state& state) {
#ifdef __linux__
  // Default timer slack (50 us) would dominate the emulated durations;
  // 1 us keeps deadline sleeps faithful.
  ::prctl(PR_SET_TIMERSLACK, 1000 /* ns */);
#endif
  double acc = 0.0;
  std::uint64_t out_buffer = 0;
  // Deadline accounting: each work item extends a running deadline rather
  // than sleeping relative to "now", so wake-up latency does not
  // accumulate across tuples within a burst.
  clock::time_point deadline = clock::now();

  auto work_for_us = [&state, &deadline](double us) {
    if (us <= 0.0) return;
    // The deadline is NOT clamped to "now" here: a late wake-up from the
    // previous sleep is absorbed by the next sleep_until (which returns
    // immediately while we are behind schedule), so overshoot does not
    // accumulate across tuples.
    deadline += std::chrono::duration_cast<clock::duration>(
        std::chrono::duration<double, std::micro>(us));
    std::this_thread::sleep_until(deadline);
    state.busy_us += us;
  };

  auto ship = [&](std::uint64_t count, bool eos) {
    work_for_us(static_cast<double>(count) * state.transfer_us);
    state.tuples_out += count;
    if (state.out != nullptr && (count > 0 || eos)) {
      state.out->push({count, eos});
    }
  };

  for (;;) {
    const Block block = state.in->pop();
    // Work on this block cannot have started before it was available.
    // (Clamping to block.ready, not clock::now(): the gap between the
    // producer's push and this thread actually waking is scheduler
    // latency, not emulated work, and must stay absorbable.)
    if (deadline < block.ready) deadline = block.ready;
    for (std::uint64_t i = 0; i < block.count; ++i) {
      work_for_us(state.cost_us);
      acc += state.selectivity;
      const double whole = std::floor(acc);
      acc -= whole;
      out_buffer += static_cast<std::uint64_t>(whole);
      if (out_buffer >= state.block_size) {
        ship(out_buffer, false);
        out_buffer = 0;
      }
    }
    if (block.eos) {
      ship(out_buffer, true);
      return;
    }
  }
}

}  // namespace

Runtime_result execute(const Instance& instance, const Plan& plan,
                       const Runtime_config& config) {
  QUEST_EXPECTS(plan.is_permutation_of(instance.size()),
                "execute requires a complete plan");
  QUEST_EXPECTS(config.input_tuples >= 1, "need at least one input tuple");
  QUEST_EXPECTS(config.block_size >= 1, "block size must be >= 1");
  QUEST_EXPECTS(config.time_scale_us > 0.0, "time scale must be positive");
  QUEST_EXPECTS(config.queue_capacity_blocks >= 1,
                "queue capacity must be >= 1");

  const std::size_t n = plan.size();
  std::vector<std::unique_ptr<Channel>> channels;
  channels.reserve(n + 1);
  for (std::size_t i = 0; i < n + 1; ++i) {
    channels.push_back(
        std::make_unique<Channel>(config.queue_capacity_blocks));
  }

  std::vector<Worker_state> workers(n);
  for (std::size_t p = 0; p < n; ++p) {
    const auto& s = instance.service(plan[p]);
    workers[p].cost_us = s.cost * config.time_scale_us;
    workers[p].selectivity = s.selectivity;
    const double t = p + 1 < n ? instance.transfer(plan[p], plan[p + 1])
                               : instance.sink_transfer(plan[p]);
    workers[p].transfer_us = t * config.time_scale_us;
    workers[p].in = channels[p].get();
    workers[p].out = channels[p + 1].get();
    workers[p].block_size = config.block_size;
  }

  const auto start = clock::now();
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    threads.emplace_back(run_service, std::ref(workers[p]));
  }

  // Inject the input as full blocks followed by the end-of-stream marker.
  std::uint64_t remaining = config.input_tuples;
  while (remaining > 0) {
    const std::uint64_t batch = std::min<std::uint64_t>(
        remaining, config.block_size);
    channels[0]->push({batch, false});
    remaining -= batch;
  }
  channels[0]->push({0, true});

  // Drain the sink: count tuples until the end-of-stream marker arrives.
  std::uint64_t delivered = 0;
  for (;;) {
    const Block block = channels[n]->pop();
    delivered += block.count;
    if (block.eos) break;
  }
  // The end timestamp is taken after join: every worker's scheduled work
  // has then demonstrably finished, so each busy_us is at most its
  // thread's lifetime and busy_fraction entries stay in [0, 1].
  for (auto& thread : threads) thread.join();
  const auto end = clock::now();

  Runtime_result result;
  result.wall_seconds = std::chrono::duration<double>(end - start).count();
  result.per_tuple_cost_units =
      result.wall_seconds * 1e6 /
      (static_cast<double>(config.input_tuples) * config.time_scale_us);
  result.predicted_cost = model::bottleneck_cost(instance, plan);
  result.tuples_delivered = delivered;
  result.busy_fraction.reserve(n);
  for (const auto& worker : workers) {
    result.busy_fraction.push_back(
        worker.busy_us / (result.wall_seconds * 1e6));
  }
  return result;
}

}  // namespace quest::runtime
