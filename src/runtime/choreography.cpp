// The stable runtime entry point. Validation lives here; the execution
// engine is the batched multi-service executor (executor.cpp), timed by
// the clock selected in the config. The pre-PR-2 thread-per-service
// backend is exactly the real-clock configuration with one worker per
// service (the worker_count == 0 default), so execute() keeps its
// historical behavior unless the caller opts into virtual time or a
// bounded pool.

#include "quest/runtime/choreography.hpp"

#include "quest/common/error.hpp"
#include "quest/runtime/clock.hpp"
#include "quest/runtime/executor.hpp"

namespace quest::runtime {

Runtime_result execute(const model::Instance& instance,
                       const model::Plan& plan,
                       const Runtime_config& config) {
  QUEST_EXPECTS(plan.is_permutation_of(instance.size()),
                "execute requires a complete plan");
  QUEST_EXPECTS(config.input_tuples >= 1, "need at least one input tuple");
  QUEST_EXPECTS(config.block_size >= 1, "block size must be >= 1");
  QUEST_EXPECTS(config.time_scale_us > 0.0, "time scale must be positive");
  QUEST_EXPECTS(config.queue_capacity_blocks >= 1,
                "queue capacity must be >= 1");
  config.model.validate_for(instance);

  const auto clock = make_execution_clock(config.clock_mode);
  return run_batched(instance, plan, config, *clock);
}

}  // namespace quest::runtime
