#include "quest/runtime/clock.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

namespace quest::runtime {

namespace {

using steady = std::chrono::steady_clock;

steady::duration to_duration(double us) {
  return std::chrono::duration_cast<steady::duration>(
      std::chrono::duration<double, std::micro>(us));
}

class Real_execution_clock final : public Execution_clock {
 public:
  Real_execution_clock() : start_(steady::now()) {}

  void work_completed(double instant_us) override {
    // sleep_until a past instant returns immediately: a worker that woke
    // late from the previous block catches up instead of drifting.
    std::this_thread::sleep_until(start_ + to_duration(instant_us));
  }

  double run_us() const override {
    return std::chrono::duration<double, std::micro>(steady::now() - start_)
        .count();
  }

 private:
  steady::time_point start_;
};

class Virtual_execution_clock final : public Execution_clock {
 public:
  void work_completed(double instant_us) override {
    std::lock_guard lock(mutex_);
    makespan_us_ = std::max(makespan_us_, instant_us);
  }

  double run_us() const override {
    std::lock_guard lock(mutex_);
    return makespan_us_;
  }

 private:
  mutable std::mutex mutex_;
  double makespan_us_ = 0.0;
};

}  // namespace

std::unique_ptr<Execution_clock> make_execution_clock(Clock_mode mode) {
  if (mode == Clock_mode::real) {
    return std::make_unique<Real_execution_clock>();
  }
  return std::make_unique<Virtual_execution_clock>();
}

}  // namespace quest::runtime
