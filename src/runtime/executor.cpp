#include "quest/runtime/executor.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#ifdef __linux__
#include <sys/prctl.h>
#endif

namespace quest::runtime {

using model::Instance;
using model::Plan;

namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

/// A block travelling down a link: `count` tuples, or the end-of-stream
/// marker (always the last block on its link).
struct Block {
  std::uint64_t count = 0;
  bool eos = false;
  /// Emulated instant (us since run start) the block left its producer;
  /// the consumer's timeline cannot start work on it earlier.
  double ready_us = 0.0;
};

/// One service of the plan, multiplexed onto the worker pool.
struct Service_task {
  // Wiring, immutable during the run. `downstream` is the index of the
  // next task — or `npos` for the last service, which ships into the
  // engine's collector (the one truth for the sink path: delivered tuples
  // are counted by the engine, no sink worker exists).
  double cost_us = 0.0;
  double selectivity = 0.0;
  double transfer_us = 0.0;  // per tuple, to the next hop (sink link last)
  std::uint64_t block_size = 1;
  std::size_t downstream = npos;

  // Inbox and scheduling flags, guarded by the engine mutex.
  std::deque<Block> inbox;
  bool claimed = false;
  bool done = false;

  // Local state, touched only by the worker holding the claim.
  double timeline_us = 0.0;  ///< the service's emulated clock
  double acc = 0.0;          ///< deterministic selectivity accumulator
  std::uint64_t out_buffer = 0;
  double busy_us = 0.0;
  std::uint64_t tuples_in = 0;
  std::uint64_t tuples_out = 0;
};

class Engine {
 public:
  Engine(std::vector<Service_task> tasks, std::size_t capacity_blocks,
         Execution_clock& clock)
      : tasks_(std::move(tasks)),
        capacity_(capacity_blocks),
        clock_(clock) {}

  /// Queues the whole input on the first service, ready at instant zero.
  /// (The source is not back-pressured; queue capacity flow-controls the
  /// links *between* services.)
  void inject(std::uint64_t input_tuples, std::uint64_t block_size) {
    std::uint64_t remaining = input_tuples;
    while (remaining > 0) {
      const std::uint64_t batch = std::min(remaining, block_size);
      tasks_[0].inbox.push_back({batch, false, 0.0});
      remaining -= batch;
    }
    tasks_[0].inbox.push_back({0, true, 0.0});
  }

  void run(std::size_t worker_count) {
    std::vector<std::thread> workers;
    workers.reserve(worker_count);
    for (std::size_t w = 0; w < worker_count; ++w) {
      workers.emplace_back(&Engine::worker_loop, this);
    }
    for (auto& worker : workers) worker.join();
  }

  const std::vector<Service_task>& tasks() const noexcept { return tasks_; }
  std::uint64_t delivered() const noexcept { return delivered_; }

 private:
  void worker_loop() {
#ifdef __linux__
    // Default timer slack (50 us) would dominate real-clock emulated
    // durations; 1 us keeps deadline sleeps faithful. Harmless under
    // virtual time (no sleeps).
    ::prctl(PR_SET_TIMERSLACK, 1000 /* ns */);
#endif
    std::unique_lock lock(mutex_);
    for (;;) {
      const std::size_t p = claim_runnable();
      if (p == npos) {
        if (done_count_ == tasks_.size()) return;
        wake_.wait(lock);
        continue;
      }
      Service_task& task = tasks_[p];
      // Claim a batch: up to `capacity_` blocks, preserving FIFO order.
      // The cap keeps the downstream queue overshoot bounded (capacity is
      // rechecked only between claims, not between pushes).
      std::deque<Block> batch;
      const std::size_t take = std::min(task.inbox.size(), capacity_);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(task.inbox.front());
        task.inbox.pop_front();
      }
      task.claimed = true;
      // The drained inbox is fresh capacity for the upstream producer.
      wake_.notify_all();
      lock.unlock();
      const bool finished = process_batch(task, batch);
      lock.lock();
      task.claimed = false;
      if (finished) {
        task.done = true;
        ++done_count_;
      }
      // Leftover inbox blocks (or the terminal state) may unblock waiters.
      if (done_count_ == tasks_.size() || !task.inbox.empty()) {
        wake_.notify_all();
      }
    }
  }

  /// A task is runnable when it has queued input, nobody holds its claim,
  /// and its downstream queue has space. Requires the engine mutex.
  std::size_t claim_runnable() const {
    for (std::size_t p = 0; p < tasks_.size(); ++p) {
      const Service_task& task = tasks_[p];
      if (task.claimed || task.done || task.inbox.empty()) continue;
      if (task.downstream != npos &&
          tasks_[task.downstream].inbox.size() >= capacity_) {
        continue;
      }
      return p;
    }
    return npos;
  }

  /// Advances `task`'s emulated timeline by `us` of chargeable work.
  static void work(Service_task& task, double us) {
    if (us <= 0.0) return;
    task.timeline_us += us;
    task.busy_us += us;
  }

  /// Charges the transfer, grounds the send-completion instant on the
  /// clock (real: sleep until then, so the block arrives downstream on
  /// schedule; virtual: fold into the makespan), and commits the block.
  void ship(Service_task& task, std::uint64_t count, bool eos) {
    work(task, static_cast<double>(count) * task.transfer_us);
    task.tuples_out += count;
    if (count == 0 && !eos) return;
    clock_.work_completed(task.timeline_us);
    std::lock_guard lock(mutex_);
    if (task.downstream == npos) {
      delivered_ += count;
    } else {
      tasks_[task.downstream].inbox.push_back(
          {count, eos, task.timeline_us});
    }
    wake_.notify_all();
  }

  /// Runs every block of `batch` through `task`'s tuple loop. Returns
  /// true when the end-of-stream marker was consumed (task finished).
  /// Runs unlocked: only claim-guarded task state and ship() are touched.
  bool process_batch(Service_task& task, std::deque<Block>& batch) {
    for (const Block& block : batch) {
      // Work on a block cannot start before the block left its producer.
      // A timeline already past `ready_us` is a service that fell behind
      // its input; it continues without penalty (pipeline overlap).
      if (task.timeline_us < block.ready_us) {
        task.timeline_us = block.ready_us;
      }
      task.tuples_in += block.count;
      for (std::uint64_t i = 0; i < block.count; ++i) {
        work(task, task.cost_us);
        task.acc += task.selectivity;
        const double whole = std::floor(task.acc);
        task.acc -= whole;
        task.out_buffer += static_cast<std::uint64_t>(whole);
        if (task.out_buffer >= task.block_size) {
          ship(task, task.out_buffer, false);
          task.out_buffer = 0;
        }
      }
      if (block.eos) {
        ship(task, task.out_buffer, true);
        return true;
      }
    }
    return false;
  }

  std::vector<Service_task> tasks_;
  std::size_t capacity_;
  Execution_clock& clock_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::size_t done_count_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace

std::size_t resolve_worker_count(const Runtime_config& config,
                                 std::size_t service_count) {
  if (config.worker_count > 0) return config.worker_count;
  if (config.clock_mode == Clock_mode::real) return service_count;
  const unsigned hardware = std::thread::hardware_concurrency();
  return std::min(service_count,
                  static_cast<std::size_t>(hardware > 0 ? hardware : 4));
}

Runtime_result run_batched(const Instance& instance, const Plan& plan,
                           const Runtime_config& config,
                           Execution_clock& clock) {
  const std::size_t n = plan.size();
  // Conditional selectivity of each stage given the services before it —
  // equal to the marginal under the default independent model.
  const std::vector<double> stage_sigma =
      config.model.stage_selectivities(instance, plan);
  std::vector<Service_task> tasks(n);
  for (std::size_t p = 0; p < n; ++p) {
    const auto& s = instance.service(plan[p]);
    tasks[p].cost_us = s.cost * config.time_scale_us;
    tasks[p].selectivity = stage_sigma[p];
    const double t = p + 1 < n ? instance.transfer(plan[p], plan[p + 1])
                               : instance.sink_transfer(plan[p]);
    tasks[p].transfer_us = t * config.time_scale_us;
    tasks[p].block_size = config.block_size;
    tasks[p].downstream = p + 1 < n ? p + 1 : npos;
  }

  Engine engine(std::move(tasks), config.queue_capacity_blocks, clock);
  engine.inject(config.input_tuples, config.block_size);
  engine.run(resolve_worker_count(config, n));

  Runtime_result result;
  const double run_us = clock.run_us();
  result.wall_seconds = run_us * 1e-6;
  result.per_tuple_cost_units =
      run_us /
      (static_cast<double>(config.input_tuples) * config.time_scale_us);
  result.predicted_cost =
      model::bottleneck_cost(instance, plan, config.model);
  result.tuples_delivered = engine.delivered();
  result.busy_fraction.reserve(n);
  result.tuples_in.reserve(n);
  result.tuples_out.reserve(n);
  for (const auto& task : engine.tasks()) {
    result.busy_fraction.push_back(run_us > 0.0 ? task.busy_us / run_us
                                                : 0.0);
    result.tuples_in.push_back(task.tuples_in);
    result.tuples_out.push_back(task.tuples_out);
  }
  return result;
}

}  // namespace quest::runtime
