// quest/runtime/choreography.hpp
//
// Decentralized execution of a pipelined plan — the choreography approach
// of the paper: tuples flow directly from each service to the next with no
// coordinator. Since PR 2 the execution engine is the batched multi-service
// executor (see executor.hpp): the plan's N services are multiplexed onto a
// fixed pool of M workers, and per-tuple processing / per-tuple transfer
// are emulated on a pluggable clock (see clock.hpp):
//
//   * Clock_mode::real — calibrated deadline sleeps stand in for service
//     work, so the pipeline exhibits true overlap in wall-clock time even
//     on single-core hosts. This is the "real experiments" substrate of
//     the reconstruction (E10): it validates the cost model against wall
//     time with genuine concurrency and scheduling noise.
//
//   * Clock_mode::virtual_time — the same engine with arithmetic time:
//     deterministic, immune to CPU contention, and able to execute plans
//     with hundreds of services on a handful of workers (the paper's
//     unbounded-services setting). This is what timing-sensitive tests
//     assert against.
//
// Both backends honor the same Runtime_result contract: per-tuple cost in
// model units comparable to Eq. 1, busy fractions in [0, 1], and a
// deterministic delivered-tuple count.

#pragma once

#include <cstdint>
#include <vector>

#include "quest/model/cost.hpp"
#include "quest/model/cost_model.hpp"
#include "quest/model/instance.hpp"
#include "quest/model/plan.hpp"
#include "quest/runtime/clock.hpp"

namespace quest::runtime {

struct Runtime_config {
  /// Tuples injected into the first service.
  std::uint64_t input_tuples = 2'000;
  /// Tuples per block on every link.
  std::uint64_t block_size = 32;
  /// Wall-clock microseconds that one model cost unit represents.
  /// (cost 2.0 with time_scale_us 50 -> 100 microseconds of emulated
  /// work.) Under the real clock, values well above the kernel wakeup
  /// latency (~10 us) keep the emulation faithful; virtual time is exact
  /// at any scale.
  double time_scale_us = 50.0;
  /// Soft bound on inter-service queue depth, in blocks; a service whose
  /// downstream queue is full is parked (not scheduled) until the consumer
  /// drains it. Flow control and memory bounding only — back-pressure
  /// waits are scheduler time, not emulated work, so they never enter the
  /// emulated timeline.
  std::size_t queue_capacity_blocks = 64;
  /// Workers in the execution pool. 0 = auto: one worker per service under
  /// the real clock (every emulated service can sleep independently, which
  /// preserves full pipeline overlap — the pre-PR-2 thread-per-service
  /// behavior), min(services, hardware threads) under virtual time. With
  /// the real clock, fewer workers than concurrently-active services
  /// serializes their sleeps and inflates wall time; virtual time is
  /// exact for any worker count.
  std::size_t worker_count = 0;
  /// Which clock drives the run (see quest/runtime/clock.hpp).
  Clock_mode clock_mode = Clock_mode::real;
  /// The world the tuples actually live in. Under a correlated model each
  /// stage thins at its *conditional* selectivity given the services
  /// before it (Cost_model::stage_selectivities), so executions exhibit
  /// the correlations the adaptive loop is meant to recover; the default
  /// independent model reproduces the historical behavior bit for bit.
  /// `predicted_cost` is evaluated under this model too.
  model::Cost_model model;
};

struct Runtime_result {
  /// Real clock: wall-clock seconds from injection start until every
  /// worker has finished (captured after join, so each service's busy time
  /// is contained in the interval). Virtual time: the emulated makespan in
  /// seconds. Either way busy_fraction entries lie in [0, 1].
  double wall_seconds = 0.0;
  /// wall_seconds per input tuple, in model cost units
  /// (wall / input_tuples / time_scale): directly comparable to Eq. 1.
  double per_tuple_cost_units = 0.0;
  /// Eq. 1 prediction for this plan (sequential policy).
  double predicted_cost = 0.0;
  /// Tuples that reached the output.
  std::uint64_t tuples_delivered = 0;
  /// Per plan position: busy fraction of the run.
  std::vector<double> busy_fraction;
  /// Per plan position: tuples consumed / produced by the stage — the
  /// observable the adaptive loop feeds to adapt::Observation_log
  /// (tuples_out[p] / tuples_in[p] estimates the stage's conditional
  /// selectivity).
  std::vector<std::uint64_t> tuples_in;
  std::vector<std::uint64_t> tuples_out;
};

/// Executes `plan` on the batched executor with the clock selected by
/// `config.clock_mode`. Selectivities are applied with the deterministic
/// accumulator (zero variance), so tuples_delivered is reproducible; under
/// virtual time the entire result is bit-for-bit deterministic.
/// Preconditions mirror sim::simulate.
Runtime_result execute(const model::Instance& instance,
                       const model::Plan& plan,
                       const Runtime_config& config = {});

}  // namespace quest::runtime
