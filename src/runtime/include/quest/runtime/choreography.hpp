// quest/runtime/choreography.hpp
//
// A real (thread-based) decentralized execution of a pipelined plan: one
// OS thread per service, direct bounded queues between consecutive
// services (no coordinator — the choreography approach of the paper), and
// calibrated deadline sleeps standing in for per-tuple processing and
// per-tuple transfer delay. Sleeping (rather than spinning) releases the
// CPU, so the pipeline exhibits true overlap even on single-core hosts —
// each emulated service behaves like an I/O-bound remote Web Service,
// which is exactly the paper's setting.
//
// This is the "real experiments" substrate of the reconstruction: where
// the simulator validates the cost model against modelled time, the
// runtime validates it against wall-clock time with genuine concurrency,
// queue contention and scheduling noise (E10).

#pragma once

#include <cstdint>
#include <vector>

#include "quest/model/cost.hpp"
#include "quest/model/instance.hpp"
#include "quest/model/plan.hpp"

namespace quest::runtime {

struct Runtime_config {
  /// Tuples injected into the first service.
  std::uint64_t input_tuples = 2'000;
  /// Tuples per block on every link.
  std::uint64_t block_size = 32;
  /// Wall-clock microseconds that one model cost unit represents.
  /// (cost 2.0 with time_scale_us 50 -> 100 microseconds of emulated
  /// work.) Values well above the kernel wakeup latency (~10 us) keep the
  /// emulation faithful.
  double time_scale_us = 50.0;
  /// Bounded inter-service queue capacity, in blocks; senders block when
  /// the downstream queue is full (pipelined back-pressure).
  std::size_t queue_capacity_blocks = 64;
};

struct Runtime_result {
  /// Wall-clock seconds from injection start until every service thread
  /// has finished (captured after join, so each worker's busy time is
  /// contained in the interval and busy_fraction entries lie in [0, 1]).
  double wall_seconds = 0.0;
  /// Wall-clock seconds per input tuple, in model cost units
  /// (wall / input_tuples / time_scale): directly comparable to Eq. 1.
  double per_tuple_cost_units = 0.0;
  /// Eq. 1 prediction for this plan (sequential policy).
  double predicted_cost = 0.0;
  /// Tuples that reached the output.
  std::uint64_t tuples_delivered = 0;
  /// Per plan position: busy fraction of the run.
  std::vector<double> busy_fraction;
};

/// Executes `plan` with real threads. Selectivities are applied with the
/// deterministic accumulator (zero variance), so tuples_delivered is
/// reproducible. Preconditions mirror sim::simulate.
Runtime_result execute(const model::Instance& instance,
                       const model::Plan& plan,
                       const Runtime_config& config = {});

}  // namespace quest::runtime
