// quest/runtime/clock.hpp
//
// The clock abstraction behind the batched runtime executor. The engine
// computes every service's timeline in *emulated microseconds since run
// start* with pure arithmetic; the clock decides what that timeline means:
//
//   * Clock_mode::real — reaching an emulated instant blocks the calling
//     worker until that instant of wall time (std::this_thread::sleep_until
//     on steady_clock). Late calls return immediately, so accumulated
//     oversleep is recovered instead of compounding — the deadline catch-up
//     behavior the original thread-per-service runtime relied on. This is
//     the wall-clock validation substrate (E10).
//
//   * Clock_mode::virtual_time — reaching an emulated instant only records
//     it; the run's "wall clock" is the largest instant any service
//     reached (the emulated makespan). No sleeps, no OS scheduler in the
//     loop: results are bit-for-bit deterministic and immune to CPU
//     contention from sibling processes, which is what lets the timing
//     tests run under `ctest -j` and lets plans with hundreds of services
//     execute on a handful of workers.

#pragma once

#include <memory>

namespace quest::runtime {

/// Which clock drives an execution (see file comment).
enum class Clock_mode {
  real,          ///< calibrated deadline sleeps; measures wall time
  virtual_time,  ///< deterministic arithmetic time; measures makespan
};

/// Maps emulated pipeline time onto a concrete clock. Instants are doubles
/// in microseconds since the clock was created (run start). Thread-safe:
/// every engine worker calls work_completed concurrently.
class Execution_clock {
 public:
  virtual ~Execution_clock() = default;

  /// A service's local timeline has reached `instant_us`: under the real
  /// clock, block until that instant of wall time (immediately if already
  /// past); under virtual time, fold it into the makespan and return.
  virtual void work_completed(double instant_us) = 0;

  /// Emulated microseconds covered by the run so far. Real: wall time
  /// elapsed since construction. Virtual: largest instant reached. Call
  /// after every worker has been joined for the final figure.
  virtual double run_us() const = 0;
};

/// Factory; the real clock's epoch is the moment of this call.
std::unique_ptr<Execution_clock> make_execution_clock(Clock_mode mode);

}  // namespace quest::runtime
