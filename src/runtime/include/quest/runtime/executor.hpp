// quest/runtime/executor.hpp
//
// The batched multi-service executor: the engine behind runtime::execute.
// The plan's N services become N cooperative tasks multiplexed onto a
// fixed pool of M workers. A worker claims a service that has input blocks
// queued (and downstream space), runs its tuple loop over the whole batch
// of pending blocks, commits the produced blocks downstream, and releases
// the claim — so one OS thread can carry hundreds of emulated services.
//
// Time is emulated, not measured: each service keeps a local timeline in
// microseconds since run start that advances by exactly the work Eq. 1
// charges it (cost per tuple, transfer per shipped tuple) and is clamped
// forward to each input block's ready instant — the pipeline dependency.
// Every produced block is stamped with the instant it left its producer.
// The Execution_clock (clock.hpp) then grounds that timeline: the real
// clock sleeps workers until each shipped block's instant of wall time,
// the virtual clock just folds instants into the makespan. Scheduler
// latency and worker contention therefore never corrupt the timeline —
// under the real clock they are absorbed by deadline catch-up, under
// virtual time they do not exist.
//
// The last service ships into the engine's collector (there is no sink
// worker): the engine counts delivered tuples directly, which is the
// single source of truth for the sink path.

#pragma once

#include <cstddef>

#include "quest/runtime/choreography.hpp"

namespace quest::runtime {

/// Number of pool workers an execution will actually use for
/// `service_count` services: `config.worker_count` when positive,
/// otherwise the clock-dependent auto choice documented on Runtime_config.
std::size_t resolve_worker_count(const Runtime_config& config,
                                 std::size_t service_count);

/// Runs `plan` on the batched engine, timed by `clock`. This is the
/// engine entry used by execute(); call it directly to supply your own
/// Execution_clock. Preconditions are checked by execute(); this function
/// assumes them.
Runtime_result run_batched(const model::Instance& instance,
                           const model::Plan& plan,
                           const Runtime_config& config,
                           Execution_clock& clock);

}  // namespace quest::runtime
