// quest/serve/instance_store.hpp
//
// The shared instance state of the serving layer: clients register an
// instance once under a name and optimize it many times by reference,
// instead of shipping the full JSON document with every request.
//
// Entries are immutable once stored and handed out as
// shared_ptr<const Stored_instance>, so an in-flight optimization keeps
// its instance alive even if the name is re-registered (or the store is
// destroyed) mid-run.
//
// Unlike the Plan_cache, the store is deliberately *unbounded*:
// registration is an explicit client action creating a named resource,
// and silently evicting one would break every later optimize-by-name
// request for it. The trust assumption is that clients register a
// bounded working set (re-registering a name replaces, it does not
// grow); admission control for hostile clients is a serving-layer
// follow-on tracked in the ROADMAP.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "quest/constraints/precedence.hpp"
#include "quest/model/instance.hpp"

namespace quest::serve {

/// An immutable registered instance: the problem, its optional precedence
/// constraints, and the content fingerprint used to key the plan cache.
struct Stored_instance {
  std::string name;
  model::Instance instance;
  std::optional<constraints::Precedence_graph> precedence;
  std::uint64_t fingerprint = 0;

  /// The precedence graph pointer the optimizer Request wants (nullptr
  /// when unconstrained).
  const constraints::Precedence_graph* precedence_ptr() const noexcept {
    return precedence ? &*precedence : nullptr;
  }
};

/// Thread-safe name -> instance map. All operations lock; entries are
/// shared_ptr-owned so get() results stay valid without the lock.
class Instance_store {
 public:
  /// Registers (or atomically replaces) `name`. Returns the stored entry;
  /// `replaced` (when non-null) reports whether a previous entry existed.
  std::shared_ptr<const Stored_instance> put(
      std::string name, model::Instance instance,
      std::optional<constraints::Precedence_graph> precedence,
      bool* replaced = nullptr);

  /// Looks up a registered name; nullptr when absent.
  std::shared_ptr<const Stored_instance> get(const std::string& name) const;

  std::size_t size() const;
  /// Registered names, in first-registration order.
  std::vector<std::string> names() const;

  /// All entries in first-registration order — the export side of the
  /// snapshot subsystem (quest/store/snapshot.hpp). The shared_ptrs keep
  /// the instances alive while a snapshot writer serializes them without
  /// holding the store's lock.
  std::vector<std::shared_ptr<const Stored_instance>> entries() const;

  /// Monotonic change counter, bumped on every put(). The snapshot
  /// writer's dirty tracking compares this against the version it last
  /// persisted, so an idle store is never rewritten.
  std::uint64_t version() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<const Stored_instance>> entries_;
  std::uint64_t version_ = 0;
};

}  // namespace quest::serve
