// quest/serve/plan_cache.hpp
//
// Cross-request plan memoization for the serving layer, with two tiers:
//
//  * exact tier — keyed by (instance fingerprint, cost-model key, engine
//    spec, budget class, seed): a repeated identical request is answered
//    instantly from the cache, without touching a worker's optimizer;
//  * warm-start tier — keyed by (fingerprint, cost-model key) only: the
//    best-known plan for the problem, fed into Request::warm_start on a
//    cache miss so a fresh search starts from the best incumbent any
//    previous request found.
//
// The cost-model key is Cost_model::key() — send policy plus selectivity
// structure. Costs are not comparable across models, so neither tier may
// ever serve a plan across differing keys: an "optimal" plan under the
// independent model is just a candidate under a correlated one, and a
// warm start from the wrong model would silently skew the search floor.
//
// The *budget class* quantizes Budget dimensions into coarse buckets
// (powers of two of milliseconds / work units), so requests that differ
// only by scheduling jitter in their deadline share an entry, while a
// 10x larger budget — which could legitimately find a better plan — maps
// to a different class and triggers a fresh (warm-started) search.
// Results that carry an optimality proof are reusable under *any* budget
// class: optimal is optimal regardless of how much budget was granted.
//
// Both tiers are bounded LRU (`capacity` entries each — the daemon must
// not grow without bound under an endless stream of distinct problems);
// all operations lock, counters are cumulative. Thread-safe.

#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "quest/model/cost_model.hpp"
#include "quest/model/plan.hpp"
#include "quest/opt/optimizer.hpp"

namespace quest::serve {

/// Identity of a cacheable optimize request.
struct Cache_key {
  std::uint64_t fingerprint = 0;
  /// Cost_model::key() of the model the request optimizes under.
  std::string model_key = model::Cost_model().key();
  std::string engine_spec;
  std::string budget_class;
  std::uint64_t seed = 0;

  friend bool operator==(const Cache_key&, const Cache_key&) = default;
};

/// The coarse budget bucket used in Cache_key ("w:*|t:*|c:0" for an
/// unlimited budget; each bounded dimension becomes its power-of-two
/// bucket index, the cost target its exact value).
std::string budget_class(const opt::Budget& budget);

/// What the cache remembers about a finished run.
struct Cached_plan {
  model::Plan plan;
  double cost = 0.0;
  opt::Termination termination = opt::Termination::completed;
  bool proven_optimal = false;
};

/// The two-tier cache itself. Thread-safe; one instance per Server.
class Plan_cache {
 public:
  /// `capacity` bounds the number of exact-tier entries (>= 1).
  explicit Plan_cache(std::size_t capacity = 256);

  /// Exact-tier lookup. Counts a lookup, and a hit or miss. A
  /// proven-optimal entry matches any budget class of the same
  /// (fingerprint, model key, engine spec, seed).
  std::optional<Cached_plan> lookup(const Cache_key& key);

  /// Remembers a finished run (complete plans only — the caller must not
  /// insert incomplete incumbents). Replaces an existing entry for the
  /// key only when the new result is better (cheaper, or proven optimal
  /// where the old one was not) — concurrent identical requests may race
  /// their inserts; evicts the least-recently-used entry beyond capacity.
  /// Also
  /// refreshes the warm-start tier when this cost beats the best known.
  /// Callers must not insert cancelled runs here: replaying a
  /// client-initiated cancellation to later identical requests would
  /// poison them — use remember_best() for those.
  void insert(const Cache_key& key, Cached_plan value);

  /// Warm-start-tier-only update: keeps the plan available as a warm
  /// start without making it an instant answer. The right call for
  /// cancelled runs, whose incumbent is real but whose termination is
  /// an artifact of one client's cancel.
  void remember_best(std::uint64_t fingerprint,
                     const std::string& model_key, Cached_plan value);

  /// Warm-start tier: best-known plan for the problem, regardless of
  /// which engine/budget produced it. Does not count as a hit or miss.
  std::optional<Cached_plan> best_known(
      std::uint64_t fingerprint, const std::string& model_key) const;

  std::size_t size() const;
  std::uint64_t lookups() const;
  std::uint64_t hits() const;
  std::uint64_t evictions() const;

  /// One warm-start-tier entry as exported by snapshot().
  struct Warm_entry {
    std::uint64_t fingerprint = 0;
    std::string model_key;
    Cached_plan value;
  };
  /// Both tiers, in least-recently-used-first order, for the snapshot
  /// subsystem (quest/store/snapshot.hpp): re-inserting in this order
  /// through insert()/remember_best() reproduces the cache's contents
  /// with the most recently used entries last (so they would be evicted
  /// last again).
  struct Contents {
    std::vector<std::pair<Cache_key, Cached_plan>> exact;
    std::vector<Warm_entry> warm;
  };
  Contents contents() const;

  /// Monotonic change counter, bumped on every insert()/remember_best().
  /// The snapshot writer's dirty tracking compares this against the
  /// version it last persisted. Lookups don't count: LRU recency is not
  /// worth a disk write.
  std::uint64_t version() const;

 private:
  struct Entry {
    Cache_key key;
    Cached_plan value;
    std::uint64_t last_used = 0;
  };
  struct Best_entry {
    std::uint64_t fingerprint;
    std::string model_key;
    Cached_plan value;
    std::uint64_t last_used = 0;
  };

  Entry* find_locked(const Cache_key& key);
  void remember_best_locked(std::uint64_t fingerprint,
                            const std::string& model_key,
                            const Cached_plan& value);

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  std::vector<Best_entry> best_;
  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace quest::serve
