// quest/serve/protocol.hpp
//
// The quest_serve wire protocol: line-delimited JSON, one client *op* per
// input line, one server *event* per output line. Transport-agnostic —
// the same codec serves stdin/stdout pipes and socket streams.
//
// Client -> server ops (`"op"` selects the variant):
//
//   {"op":"register","name":"prod","instance":{...instance document...}}
//   {"op":"optimize","id":"r1","instance":"prod" | {...inline doc...},
//    "optimizer":"bnb","budget":{"deadline_ms":500,"node_limit":0,
//    "cost_target":0},"seed":7,"policy":"sequential",
//    "model":"independent" | "correlated:strength=0.5,seed=7",
//    "stream":true,"cache":true,
//    "execute":{"tuples":10000,"block_size":32,"workers":4}}
//   {"op":"optimize_batch","id":"b1","requests":[{...optimize fields,
//    "id" optional (defaults to "b1/0","b1/1",...)...},...]}
//   {"op":"cancel","id":"r1"}
//   {"op":"observe","instance":"prod" | {...inline doc...},
//    "plan":[...], "tuples_in":[...], "tuples_out":[...],
//    "cost_count":[...]?,"cost_sum":[...]?,"cost_sq_sum":[...]?}
//   {"op":"refit","instance":"prod" | {...inline doc...},
//    "policy":"sequential","objective":"mean"|"p95"|"p99",
//    "min_samples":8?}
//   {"op":"stats"}
//   {"op":"shutdown","drain":true|false}
//
// Server -> client events (`"event"` tags the variant):
//
//   {"event":"registered","name":...,"services":...,"fingerprint":...,
//    "replaced":...}
//   {"event":"admitted","id":...,"queue_depth":...}
//   {"event":"incumbent","id":...,"cost":...,"elapsed_seconds":...,
//    "plan":[...]}                          (only when "stream" was true)
//   {"event":"result","id":...,"termination":...,"cost":...,"plan":[...],
//    "proven_optimal":...,"cached":...,"warm_started":...,
//    "elapsed_seconds":...,"stats":{...},"execution":{...}?}
//   {"event":"cancel-requested","id":...,"found":...}
//   {"event":"observed","fingerprint":...,"runs":...,"plans":...}
//   {"event":"refit","fingerprint":...,"model":...,"model_key":...,
//    "falsified":...,"runs":...,"max_abs_log_gamma":...,
//    "warm_seeded":...,"warm_cost":...?}
//   {"event":"batch-admitted","id":...,"count":...}
//   {"event":"stats", ...counters...}
//   {"event":"shutting-down","outstanding":...} then
//   {"event":"shutdown-complete","completed":...}
//   {"event":"error","code":...?,"id":...?,"message":...}
//
// Every malformed line or op yields an "error" event (with the request id
// when one could be parsed) instead of killing the session. Errors that
// clients are expected to branch on carry a machine-readable "code":
//
//   "parse"            malformed JSON / unknown op / bad field types
//   "line-overflow"    a request line exceeded the transport's size cap
//   "overloaded"       load shed: the admission queue (or the
//                      transport's connection limit) is full — retry
//                      later, with backoff
//   "unknown-instance" the op named an instance this server has no
//                      registration for — re-register (or send the
//                      document inline) and retry. The replicated
//                      router treats this as "replica missed": it
//                      replays the registration journal at the backend
//                      and retries on the client's behalf.
//
// Human-readable "message" text is never a contract; "code" is.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "quest/io/instance_io.hpp"
#include "quest/io/json.hpp"
#include "quest/model/cost_model.hpp"
#include "quest/opt/optimizer.hpp"

namespace quest::serve {

/// {"op":"register"} — parse the instance document eagerly so malformed
/// documents fail at registration, not at first use.
struct Register_op {
  std::string name;
  io::Instance_document document;
};

/// Optional post-optimization execution of the winning plan on the
/// virtual-clock runtime executor.
struct Execute_spec {
  std::uint64_t tuples = 10'000;
  std::uint64_t block_size = 32;
  std::size_t workers = 4;
};

/// {"op":"optimize"} — exactly one of `instance_name` /
/// `inline_instance` is set.
struct Optimize_op {
  std::string id;
  std::string instance_name;
  std::optional<io::Instance_document> inline_instance;
  std::string optimizer = "portfolio";
  opt::Budget budget;
  std::uint64_t seed = 0;
  /// The cost model of the request ("policy" + "model" fields), parsed
  /// eagerly so malformed specs fail at the protocol boundary; the server
  /// binds it to the resolved instance's size.
  model::Cost_model_spec model;
  bool stream = false;
  bool cache = true;
  std::optional<Execute_spec> execute;
};

/// {"op":"optimize_batch"} — many optimize requests in one line (e.g.
/// re-optimizing a whole workload after a cost-model change). Elements
/// are full optimize ops; an element without an "id" gets
/// "<batch id>/<index>". Each element is admitted (or load-shed)
/// individually and produces its own admitted/result events.
struct Batch_op {
  std::string id;
  std::vector<Optimize_op> requests;
};

/// {"op":"cancel"} — trips the Stop_token of the queued or running
/// request with this id; a no-op (found:false) for unknown ids.
struct Cancel_op {
  std::string id;
};

/// {"op":"observe"} — fold one execution's per-stage tuple counts (and
/// optional per-service cost moments) into the server's observation log
/// for the instance; the streaming substrate of the adaptive loop (see
/// quest/adapt/observation_log.hpp). `tuples_in`/`tuples_out` are per
/// plan position; the cost arrays, when present, are per service id and
/// all of length n.
struct Observe_op {
  std::string instance_name;
  std::optional<io::Instance_document> inline_instance;
  model::Plan plan;
  std::vector<std::uint64_t> tuples_in;
  std::vector<std::uint64_t> tuples_out;
  std::vector<std::uint64_t> cost_count;
  std::vector<double> cost_sum;
  std::vector<double> cost_sq_sum;
};

/// {"op":"refit"} — fit a cost model from the instance's observation log
/// (adapt::Model_fitter) and seed the warm-start cache tier under the
/// fitted model's key, so the first optimize under the fitted model is
/// an exact-tier miss that warm-starts from the best observed plan.
struct Refit_op {
  std::string instance_name;
  std::optional<io::Instance_document> inline_instance;
  model::Send_policy policy = model::Send_policy::sequential;
  model::Objective objective = model::Objective::mean;
  /// 0 keeps the fitter's default confidence gates.
  std::uint64_t min_samples = 0;
};

/// {"op":"stats"} — ask for a counters snapshot event.
struct Stats_op {};

/// {"op":"shutdown"} cancels everything still in flight; with
/// {"drain":true} the server instead finishes every admitted request
/// before exiting — the right mode for non-interactive piped sessions.
struct Shutdown_op {
  bool drain = false;
};

using Op = std::variant<Register_op, Optimize_op, Batch_op, Cancel_op,
                        Observe_op, Refit_op, Stats_op, Shutdown_op>;

/// The most elements one optimize_batch may carry — a parse-time cap so
/// a single hostile line cannot admit unbounded work.
inline constexpr std::size_t k_max_batch_requests = 1024;

/// Parses one client line. Throws Parse_error on malformed JSON, an
/// unknown "op", wrong field types, or invalid budgets — the server turns
/// that into a typed "error" event (code "parse").
Op parse_op(std::string_view line);

/// Event builders (the server's half of the protocol).
io::Json registered_event(const std::string& name, std::size_t services,
                          std::uint64_t fingerprint, bool replaced);
io::Json admitted_event(const std::string& id, std::size_t queue_depth);
io::Json incumbent_event(const std::string& id, double cost,
                         double elapsed_seconds, const model::Plan& plan);
io::Json cancel_event(const std::string& id, bool found);
io::Json observed_event(std::uint64_t fingerprint, std::uint64_t runs,
                        std::size_t plans);
io::Json batch_event(const std::string& id, std::size_t count);
/// `code` is the machine-readable error class (see the file comment);
/// empty omits the field — existing untyped emitters stay byte-stable.
io::Json error_event(const std::string& message, const std::string& id = {},
                     const std::string& code = {});
/// The load-shed reply: a typed "overloaded" error carrying the queue
/// state so clients can implement informed backoff.
io::Json overloaded_event(const std::string& id, std::size_t queue_depth,
                          std::size_t queue_cap);
/// The typed "unknown-instance" error for ops naming an instance this
/// server has never seen — one builder so the server and the replicated
/// router (which branches on the code to trigger journal repair) cannot
/// drift in how they spell it.
io::Json unknown_instance_event(const std::string& name,
                                const std::string& id = {});

/// The shared "result" event shape — one builder so the cached and
/// fresh-run paths cannot drift apart. `stats` may be nullptr (cached
/// results did no search work, so they carry no stats object); the
/// caller appends any execution report afterwards.
io::Json result_event(const std::string& id, opt::Termination termination,
                      const model::Plan& plan, double cost, bool complete,
                      bool proven_optimal, bool cached, bool warm_started,
                      const std::string& model_key, double elapsed_seconds,
                      const opt::Search_stats* stats);

}  // namespace quest::serve
