// quest/serve/server.hpp
//
// The quest serving layer: a long-lived, multi-threaded optimization
// service around the anytime optimizer API. Clients submit ops (see
// quest/serve/protocol.hpp); a fixed pool of worker threads drains the
// admission queue, each job running one registry-built engine under its
// own per-request Budget and Stop_token; results, streamed incumbents and
// errors flow back through a single serialized event sink.
//
// Request lifecycle:  admit -> optimize -> stream -> cache -> execute
//
//  * admit    — the op is validated (instance resolved through the shared
//               Instance_store, engine spec through core::engine_registry)
//               and the plan cache is consulted, all on the transport
//               thread: an identical repeat request is answered right
//               here, without queueing behind long-running jobs or
//               occupying a worker. Everything else is queued; an
//               "admitted" event acknowledges it either way.
//  * optimize — a worker runs the engine. A "cancel" op for the request id
//               trips its Stop_token; engines return their best incumbent
//               within one work unit (see quest/opt/stop_token.hpp), so
//               cancellation releases the worker promptly.
//  * stream   — with "stream": true, every improving incumbent is emitted
//               as it is found.
//  * cache    — finished plans enter the Plan_cache; an identical request
//               (same instance fingerprint, engine spec, budget class and
//               seed) is answered instantly without occupying a worker,
//               and any repeat request on the same problem warm-starts
//               from the best plan known so far — its result is floored
//               at that plan, so a warm-started run never comes back
//               costlier than what the cache already held.
//  * execute  — optionally, the winning plan runs on the virtual-clock
//               runtime executor and the measured per-tuple cost is
//               attached to the result event.
//
// Multi-client serving: the Server is the *service core* of the layered
// stack (transport -> session -> codec -> service; see
// quest/serve/transport.hpp). Each connected client is a Client_session
// opened with its own event sink; events for ops submitted through a
// session flow to that session's sink, and request ids are scoped per
// session so independent clients may both use "r1". The single-sink
// constructor keeps the embedded/stdio form working unchanged — it is a
// server with exactly one pre-opened session.
//
// Overload behavior: with Server_options::queue_cap > 0 the admission
// queue is bounded; an optimize op that would exceed it is load-shed
// with a typed "overloaded" error instead of queueing unboundedly
// (cache hits still answer instantly — they never queue).
//
// Thread-safety: handle()/handle_line() are meant for one transport
// thread (they are internally synchronized with the workers, not with
// each other). Event sinks are called under an internal mutex — one
// event at a time across all sessions, from transport and worker
// threads alike — and must not call back into the Server.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "quest/adapt/observation_log.hpp"
#include "quest/common/timer.hpp"
#include "quest/io/json.hpp"
#include "quest/serve/instance_store.hpp"
#include "quest/serve/plan_cache.hpp"
#include "quest/serve/protocol.hpp"

namespace quest::serve {

/// Durability counters shared between the serving core and the snapshot
/// subsystem (quest::store). The store layer sits *above* serve in the
/// module graph, so the Server cannot name its types; instead the two
/// sides share this plain bundle of atomics — the snapshot loader and
/// write-behind writer bump them, the Server reports them on its "stats"
/// event. All counters are cumulative since process start.
struct Durability_counters {
  /// Snapshot files written (periodic flushes + the shutdown flush).
  std::atomic<std::uint64_t> snapshot_writes{0};
  /// Total bytes across those writes.
  std::atomic<std::uint64_t> snapshot_bytes{0};
  /// Entries restored at warm boot (instances + exact + warm-start tier).
  std::atomic<std::uint64_t> warm_boot_entries{0};
  /// Snapshot records refused on load: bad checksum, truncated JSON,
  /// mismatched fingerprint or Cost_model::key(), bumped format version.
  std::atomic<std::uint64_t> stale_refused{0};
};

/// Construction-time configuration of a Server.
struct Server_options {
  /// Worker threads draining the admission queue (>= 1).
  std::size_t workers = 4;
  /// Exact-tier plan cache capacity.
  std::size_t cache_capacity = 256;
  /// Master switch for the plan cache (per-request "cache":false opts a
  /// single request out without disabling the tier).
  bool enable_cache = true;
  /// Nested-parallelism cap: the most worker threads any single job's
  /// engine may spawn (bnb-par), so total parallelism stays within
  /// `workers * engine_threads`. 0 = auto: hardware concurrency divided
  /// by the request workers, floored at 1 — the pool and the engines
  /// together never oversubscribe the machine. Enforced at admission by
  /// rewriting the job's `threads=` option (before the cache key is
  /// computed, so cached entries reflect the capped configuration).
  std::size_t engine_threads = 0;
  /// Bounded admission queue: an optimize op that would push the queue
  /// past this depth is load-shed with a typed "overloaded" error.
  /// 0 = unbounded (the legacy single-pipe behavior, where the one
  /// client is its own backpressure).
  std::size_t queue_cap = 0;
  /// Durability counters to report on "stats" events; nullptr (the
  /// default) means no snapshot subsystem is attached and the stats
  /// event keeps its legacy shape (no durability fields at all).
  std::shared_ptr<const Durability_counters> durability;
};

/// A snapshot of the server's counters. Throughput — completed requests
/// per second of server uptime — is the serving layer's first-class
/// metric, reported on every "stats" event.
struct Server_stats {
  std::size_t workers = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  /// Requests load-shed at admission (typed "overloaded" errors) —
  /// nonzero proves the bounded queue actually refused work.
  std::uint64_t shed = 0;
  std::size_t queue_cap = 0;
  /// Currently open client sessions (1 for the single-sink form).
  std::size_t sessions = 0;
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::size_t cache_entries = 0;
  std::size_t queue_depth = 0;
  std::size_t running = 0;
  /// High-water mark of concurrently running optimizations; proves the
  /// pool actually sustained N concurrent requests.
  std::size_t max_concurrent = 0;
  std::size_t instances = 0;
  /// The resolved per-job engine-thread cap (Server_options::engine_threads
  /// with 0 resolved against the hardware) — load tests read this off the
  /// stats event to verify the nested-parallelism cap.
  std::size_t engine_threads = 0;
  double uptime_seconds = 0.0;
  double throughput_rps = 0.0;
  /// True when a snapshot subsystem is attached
  /// (Server_options::durability); the counters below are only
  /// meaningful — and only emitted on the stats event — when set.
  bool durability = false;
  std::uint64_t snapshot_writes = 0;
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t warm_boot_entries = 0;
  std::uint64_t stale_refused = 0;
};

/// The serving loop: admission, worker pool, cancellation, cache, event
/// emission. One instance per process/transport; see the file comment
/// for the request lifecycle and threading contract.
class Server {
 public:
  /// Receives every outgoing event, one call at a time (internally
  /// serialized), from transport and worker threads alike. Must not call
  /// back into the Server.
  using Event_sink = std::function<void(const io::Json&)>;

  /// One connected client. Treat as opaque: obtain from open_session(),
  /// pass to handle()/handle_line(), release with close_session().
  struct Client_session {
    std::uint64_t id = 0;
    Event_sink sink;
    /// Cleared by close_session(); a closed session's events are
    /// dropped instead of reaching a sink whose transport is gone.
    std::atomic<bool> open{true};
  };
  using Session_ptr = std::shared_ptr<Client_session>;

  /// Starts `options.workers` worker threads immediately, with one
  /// pre-opened session around `sink` (the single-client/stdio form).
  Server(Server_options options, Event_sink sink);
  /// Multi-client form: no default session; every client arrives via
  /// open_session().
  explicit Server(Server_options options);
  /// Shuts down (cancelling anything in flight) and joins all workers.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Opens a client session whose events flow to `sink`. Request ids
  /// are scoped to the session.
  Session_ptr open_session(Event_sink sink);
  /// Drops a client: cancels its queued and running jobs (workers free
  /// up promptly) and suppresses its further events. Idempotent.
  void close_session(const Session_ptr& session);

  /// Parses and dispatches one protocol line for one session. Never
  /// throws: malformed input becomes a typed "error" event. Returns
  /// false once a shutdown op was processed (the transport loop should
  /// stop reading).
  bool handle_line(const Session_ptr& session, std::string_view line);

  /// Dispatches an already-parsed op (same contract as handle_line).
  bool handle(const Session_ptr& session, Op op);

  /// Single-client conveniences: the constructor-opened session.
  bool handle_line(std::string_view line);
  bool handle(Op op);

  /// Stops admitting and joins the workers. With `cancel_in_flight`
  /// (the default, and what the destructor does) every queued and
  /// running job is cancelled first — each still gets its "result"
  /// event, termination "cancelled". With false the workers finish all
  /// admitted work before exiting (the {"op":"shutdown","drain":true}
  /// path). Idempotent.
  void shutdown(bool cancel_in_flight = true);

  Server_stats stats() const;

  /// Introspection for tests and embedding drivers.
  Instance_store& instances() noexcept { return store_; }
  Plan_cache& cache() noexcept { return cache_; }

 private:
  struct Job;

  void handle_register(const Session_ptr& session, Register_op op);
  void handle_optimize(const Session_ptr& session, Optimize_op op);
  void handle_batch(const Session_ptr& session, Batch_op op);
  void handle_cancel(const Session_ptr& session, const Cancel_op& op);
  void handle_observe(const Session_ptr& session, Observe_op op);
  void handle_refit(const Session_ptr& session, const Refit_op& op);
  /// Resolves the instance reference shared by optimize/observe/refit:
  /// a registered name or an inline document (fingerprinted on the
  /// spot). nullptr + an emitted error event for unknown names.
  std::shared_ptr<const Stored_instance> resolve_instance(
      const Session_ptr& session, const std::string& name,
      std::optional<io::Instance_document>& inline_doc,
      const std::string& request_id);
  void emit_stats(const Session_ptr& session);
  /// The per-job engine-thread cap (options_.engine_threads, 0 resolved
  /// to hardware / workers, floored at 1).
  std::size_t engine_thread_cap() const;

  void worker_loop();
  void run_job(Job& job);
  /// Removes a finished job from active_ (mutex_ must be held) — always
  /// before its result/error event is emitted, so a client may reuse
  /// the id as soon as it reads the event.
  void retire_job_locked(const Job& job);
  /// Serialized event emission to one session's sink; dropped when the
  /// session was closed (its transport connection is gone).
  void emit(const Client_session& session, const io::Json& event);

  Server_options options_;
  Session_ptr default_session_;
  Instance_store store_;
  Plan_cache cache_;
  Timer uptime_;

  /// Per-fingerprint adaptive-loop state: the streaming observation log
  /// plus the distinct complete plans observed so far — re-costed at
  /// refit time to seed the warm-start tier under the fitted model's
  /// key (the exact tier misses on the new key; the warm tier hits).
  struct Adapt_state {
    adapt::Observation_log log;
    std::vector<model::Plan> plans;
  };
  mutable std::mutex adapt_mutex_;
  std::unordered_map<std::uint64_t, Adapt_state> adapt_;

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::shared_ptr<Job>> queue_;
  /// Queued + running jobs by request id (ids are single-use while
  /// active; reusable after the result event).
  std::vector<std::shared_ptr<Job>> active_;
  bool shutting_down_ = false;

  std::uint64_t admitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t shed_ = 0;
  std::size_t sessions_ = 0;
  std::uint64_t next_session_id_ = 1;

  std::atomic<std::size_t> running_{0};
  std::atomic<std::size_t> max_concurrent_{0};

  std::mutex sink_mutex_;
  std::vector<std::thread> workers_;
};

}  // namespace quest::serve
