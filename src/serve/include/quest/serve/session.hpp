// quest/serve/session.hpp
//
// The session layer of the serving stack (see transport.hpp for the
// layering diagram): between a Transport's raw byte chunks and the
// Server's line-oriented op API. For each transport connection it
//
//  * opens a Server session, so events for that client's requests flow
//    back to exactly that connection and request ids are scoped per
//    client (two connections may both be running "r1");
//  * reassembles newline-delimited request lines from arbitrary chunk
//    boundaries, enforcing a per-line size cap: an oversized line is
//    answered with a typed "line-overflow" error and discarded up to
//    its terminating newline, after which the session continues — a
//    hostile or buggy client cannot balloon server memory, and an
//    honest one gets a diagnosable error instead of a dropped
//    connection;
//  * closes the Server session when the connection goes away, so a
//    vanished client's queued and running jobs are cancelled and their
//    workers freed (configurable: the stdio pipe instead keeps its
//    session so EOF-then-drain still delivers results, matching the
//    original quest_serve behavior).
//
// A shutdown op ends the whole serve: the Server has already joined its
// workers by the time handle_line returns false, so the manager stops
// the transport, whose bounded flush delivers the final events.

#pragma once

#include <cstddef>
#include <unordered_map>

#include "quest/serve/server.hpp"
#include "quest/serve/transport.hpp"

namespace quest::serve {

/// Per-connection framing policy.
struct Session_options {
  /// Longest accepted request line, in bytes (excluding the newline).
  /// Longer lines are load-shed with a "line-overflow" error event.
  std::size_t max_line_bytes = 1 << 20;
  /// Whether a disconnect closes the Server session (cancelling the
  /// client's in-flight jobs, dropping its events). True for sockets;
  /// false for the stdio pipe, where EOF is followed by an explicit
  /// drain and the events must still reach stdout.
  bool close_session_on_disconnect = true;
};

/// Binds one Transport to one Server for the transport's lifetime. All
/// callbacks run on the transport's loop thread; the Server's worker
/// threads reach the transport only through Transport::send (which is
/// thread-safe by contract).
class Session_manager {
 public:
  Session_manager(Server& server, Transport& transport,
                  Session_options options = {});

  /// Runs the transport loop until it stops (shutdown op, stop() from
  /// another thread, or — for stdio — EOF). Returns true when a
  /// shutdown op ended the serve, false when the transport simply ran
  /// out (the caller then owns draining the server).
  bool serve();

 private:
  struct Connection_state {
    Server::Session_ptr session;
    /// Bytes received but not yet terminated by a newline.
    std::string inbuf;
    /// Overflow recovery: the current line already exceeded the cap and
    /// was reported; drop bytes until its terminating newline.
    bool discarding = false;
  };

  void on_open(Connection_id connection);
  void on_data(Connection_id connection, std::string_view chunk);
  void on_close(Connection_id connection);

  Server& server_;
  Transport& transport_;
  Session_options options_;
  std::unordered_map<Connection_id, Connection_state> connections_;
  bool shutdown_requested_ = false;
};

}  // namespace quest::serve
