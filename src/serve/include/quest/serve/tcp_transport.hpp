// quest/serve/tcp_transport.hpp
//
// The connection-scale transport: a single event-loop thread multiplexes
// up to `max_connections` non-blocking TCP sockets with epoll (poll(2)
// on non-Linux builds). Design points:
//
//  * One loop thread owns all sockets and connection state; worker
//    threads never touch a file descriptor. send() appends to the
//    connection's outbound buffer under a mutex and wakes the loop
//    through a self-pipe, so results stream out without a thread per
//    connection.
//  * Write-side backpressure: a connection whose outbound buffer
//    exceeds `write_buffer_cap` stops being *read* until the buffer
//    drains below half the cap. A slow or stalled reader therefore
//    cannot pump new requests into the server while its results pile
//    up — memory per connection stays bounded by what is already in
//    flight, and the admission queue sheds the rest.
//  * Accepting past `max_connections` writes a single typed
//    "overloaded" error line and closes — refusal is explicit, not a
//    silent RST.
//  * stop() finishes with a bounded flush pass so events emitted just
//    before shutdown ("shutdown-complete") still reach their clients.
//
// Thread contract: identical to Transport (run()/handlers on the loop
// thread, send()/close()/stop()/stats() from anywhere).

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "quest/serve/transport.hpp"

namespace quest::serve {

struct Tcp_options {
  /// Bind address; loopback by default (the service speaks plain TCP
  /// with no auth — exposing it wider is an explicit decision).
  std::string bind_address = "127.0.0.1";
  /// Listen port; 0 binds an ephemeral port, readable via port().
  std::uint16_t port = 0;
  /// Accept cap: connection attempts beyond this are refused with a
  /// typed "overloaded" error line.
  std::size_t max_connections = 1024;
  /// Backpressure threshold: stop reading a connection whose outbound
  /// buffer exceeds this many bytes; resume below half of it.
  std::size_t write_buffer_cap = 1 << 20;
  /// Bytes per read() call.
  std::size_t read_chunk = 64 * 1024;
  /// When > 0, pins SO_SNDBUF on accepted sockets. The default (0)
  /// leaves kernel autotuning on; tests pin it so the write-side
  /// backpressure path engages deterministically.
  int send_buffer_bytes = 0;
  /// How long stop() keeps flushing pending outbound bytes before
  /// closing connections that will not drain.
  double flush_timeout_seconds = 5.0;
};

/// Loop-lifetime counters, for tests and the load harness. Monotonic
/// except `connections` (currently open).
struct Tcp_stats {
  std::uint64_t accepted = 0;
  std::uint64_t refused = 0;
  std::uint64_t closed = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  /// Times a connection's reads were paused by the write-buffer cap —
  /// nonzero proves backpressure actually engaged.
  std::uint64_t reads_paused = 0;
  std::size_t connections = 0;
  std::size_t max_connections_seen = 0;
};

class Tcp_transport final : public Transport {
 public:
  /// Binds and listens immediately; throws quest::Error when the
  /// socket/bind/listen fails (address in use, bad address, ...).
  explicit Tcp_transport(Tcp_options options);
  ~Tcp_transport() override;

  Tcp_transport(const Tcp_transport&) = delete;
  Tcp_transport& operator=(const Tcp_transport&) = delete;

  /// The actually bound port (resolves an ephemeral request).
  std::uint16_t port() const noexcept;

  void run(const Handlers& handlers) override;
  void stop() override;
  bool send(Connection_id connection, std::string_view line) override;
  void close(Connection_id connection) override;

  Tcp_stats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace quest::serve
