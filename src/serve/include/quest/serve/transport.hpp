// quest/serve/transport.hpp
//
// The bottom layer of the serving stack: a Transport moves raw bytes
// between clients and the process, and knows nothing about lines, JSON,
// or the optimization service. The layering is
//
//   Transport (this file, tcp_transport.hpp)   bytes <-> connections
//     -> Session_manager (session.hpp)         framing, id scoping, fan-out
//       -> protocol.hpp                        ops <-> events (codec)
//         -> Server (server.hpp)               admission, workers, cache
//
// A transport owns a set of connections, each identified by a
// Connection_id that is never reused within one transport instance. It
// delivers inbound bytes to Handlers::on_data *on its own loop thread*
// (all handler callbacks are single-threaded), and accepts outbound
// event lines through send(), which is safe to call from any thread —
// the serving layer's worker pool finishes jobs on worker threads and
// sends results directly.
//
// Two implementations ship:
//  * Stdio_transport — exactly one connection (id 0) over stdin/stdout,
//    preserving the original quest_serve pipe behavior byte for byte:
//    one event per output line, flushed immediately.
//  * Tcp_transport (tcp_transport.hpp) — an epoll/poll event loop
//    multiplexing many non-blocking sockets with per-connection buffers
//    and write-side backpressure.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string_view>

namespace quest::serve {

/// Identifies one client connection within a transport. Ids are unique
/// for the lifetime of the transport (never reused after a close).
using Connection_id = std::uint64_t;

/// Byte-stream transport interface. See the file comment for the
/// threading contract: run()/handler callbacks are one loop thread,
/// send()/stop() may be called from any thread.
class Transport {
 public:
  struct Handlers {
    /// A connection appeared (before any of its data).
    std::function<void(Connection_id)> on_open;
    /// A chunk of inbound bytes (arbitrary framing — the session layer
    /// reassembles lines). The view is only valid during the call.
    std::function<void(Connection_id, std::string_view)> on_data;
    /// The connection is gone (EOF, error, or close()); no further
    /// callbacks will reference this id.
    std::function<void(Connection_id)> on_close;
  };

  virtual ~Transport() = default;

  /// Runs the transport loop until stop() (or, for stdio, EOF). Every
  /// handler is invoked on the calling thread.
  virtual void run(const Handlers& handlers) = 0;

  /// Makes run() return: stops accepting and reading immediately, then
  /// makes a bounded best effort to flush outbound buffers so events
  /// sent just before the stop (e.g. "shutdown-complete") still reach
  /// their clients. Thread-safe; callable from inside a handler.
  virtual void stop() = 0;

  /// Queues one event line (without the trailing newline — the
  /// transport frames it) to a connection. Returns false when the
  /// connection no longer exists; the line is then dropped, which is
  /// the correct fate of events for a vanished client. Thread-safe.
  virtual bool send(Connection_id connection, std::string_view line) = 0;

  /// Closes one connection (flushing what its outbound buffer holds).
  /// on_close fires on the loop thread. Thread-safe; unknown ids are a
  /// no-op.
  virtual void close(Connection_id connection) = 0;
};

/// The original quest_serve pipe loop as a Transport: one connection
/// (id 0), lines read from stdin on run()'s thread, events written to
/// stdout one per line and flushed immediately (clients drive
/// request/response loops interactively, so buffering would deadlock).
class Stdio_transport final : public Transport {
 public:
  void run(const Handlers& handlers) override;
  /// Takes effect after the current stdin line (getline cannot be
  /// interrupted portably); the session layer stops on a shutdown op
  /// before the next read, which is the path that matters.
  void stop() override { stopped_.store(true, std::memory_order_relaxed); }
  bool send(Connection_id connection, std::string_view line) override;
  void close(Connection_id connection) override;

 private:
  std::atomic<bool> stopped_{false};
  std::atomic<bool> closed_{false};
  std::mutex write_mutex_;
};

}  // namespace quest::serve
