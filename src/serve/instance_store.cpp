#include "quest/serve/instance_store.hpp"

#include <utility>

#include "quest/io/fingerprint.hpp"

namespace quest::serve {

std::shared_ptr<const Stored_instance> Instance_store::put(
    std::string name, model::Instance instance,
    std::optional<constraints::Precedence_graph> precedence, bool* replaced) {
  auto entry = std::make_shared<Stored_instance>(Stored_instance{
      std::move(name), std::move(instance), std::move(precedence), 0});
  entry->fingerprint =
      io::fingerprint(entry->instance, entry->precedence_ptr());

  std::lock_guard<std::mutex> lock(mutex_);
  ++version_;
  for (auto& existing : entries_) {
    if (existing->name == entry->name) {
      if (replaced != nullptr) *replaced = true;
      existing = entry;  // old shared_ptr stays alive with in-flight jobs
      return entry;
    }
  }
  if (replaced != nullptr) *replaced = false;
  entries_.push_back(entry);
  return entry;
}

std::shared_ptr<const Stored_instance> Instance_store::get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_) {
    if (entry->name == name) return entry;
  }
  return nullptr;
}

std::size_t Instance_store::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<std::string> Instance_store::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> result;
  result.reserve(entries_.size());
  for (const auto& entry : entries_) result.push_back(entry->name);
  return result;
}

std::vector<std::shared_ptr<const Stored_instance>> Instance_store::entries()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

std::uint64_t Instance_store::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return version_;
}

}  // namespace quest::serve
