#include "quest/serve/plan_cache.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "quest/common/error.hpp"
#include "quest/io/fingerprint.hpp"

namespace quest::serve {

namespace {

/// Power-of-two bucket of a positive count ("8" covers (128, 256]).
std::string count_bucket(std::uint64_t value) {
  if (value == 0) return "*";
  return std::to_string(std::bit_width(value - 1));
}

}  // namespace

std::string budget_class(const opt::Budget& budget) {
  std::string cls = "w:" + count_bucket(budget.node_limit);
  cls += "|t:";
  if (budget.time_limit_seconds <= 0.0) {
    cls += "*";
  } else {
    // Bucket by power of two of milliseconds: 400 ms and 510 ms share a
    // class, 400 ms and 4 s do not.
    const double ms = budget.time_limit_seconds * 1e3;
    const int bucket = ms <= 1.0 ? 0 : static_cast<int>(std::ceil(
                                           std::log2(ms) - 1e-9));
    cls += std::to_string(bucket);
  }
  cls += "|c:";
  if (budget.cost_target <= 0.0) {
    cls += "0";
  } else {
    // Exact identity via the bit pattern: a different target may make a
    // cached result invalid, so no two targets may collide.
    cls += io::hex64(std::bit_cast<std::uint64_t>(budget.cost_target));
  }
  return cls;
}

Plan_cache::Plan_cache(std::size_t capacity) : capacity_(capacity) {
  QUEST_EXPECTS(capacity >= 1, "plan cache capacity must be >= 1");
}

Plan_cache::Entry* Plan_cache::find_locked(const Cache_key& key) {
  for (auto& entry : entries_) {
    if (entry.key == key) return &entry;
  }
  // Optimality is budget-independent: a proven-optimal result for the
  // same problem, engine and seed answers any budget class.
  for (auto& entry : entries_) {
    if (entry.value.proven_optimal &&
        entry.key.fingerprint == key.fingerprint &&
        entry.key.model_key == key.model_key &&
        entry.key.engine_spec == key.engine_spec &&
        entry.key.seed == key.seed) {
      return &entry;
    }
  }
  return nullptr;
}

std::optional<Cached_plan> Plan_cache::lookup(const Cache_key& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++lookups_;
  Entry* entry = find_locked(key);
  if (entry == nullptr) return std::nullopt;
  ++hits_;
  entry->last_used = ++tick_;
  return entry->value;
}

void Plan_cache::remember_best_locked(std::uint64_t fingerprint,
                                      const std::string& model_key,
                                      const Cached_plan& value) {
  for (auto& best : best_) {
    if (best.fingerprint == fingerprint && best.model_key == model_key) {
      if (value.cost < best.value.cost) best.value = value;
      best.last_used = ++tick_;
      return;
    }
  }
  if (best_.size() >= capacity_) {
    auto victim = std::min_element(best_.begin(), best_.end(),
                                   [](const Best_entry& a,
                                      const Best_entry& b) {
                                     return a.last_used < b.last_used;
                                   });
    *victim = Best_entry{fingerprint, model_key, value, ++tick_};
    return;
  }
  best_.push_back({fingerprint, model_key, value, ++tick_});
}

void Plan_cache::remember_best(std::uint64_t fingerprint,
                               const std::string& model_key,
                               Cached_plan value) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++version_;
  remember_best_locked(fingerprint, model_key, value);
}

void Plan_cache::insert(const Cache_key& key, Cached_plan value) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++version_;
  remember_best_locked(key.fingerprint, key.model_key, value);

  for (auto& entry : entries_) {
    if (entry.key == key) {
      // Two concurrent identical requests can both miss and both finish;
      // wall-clock-bounded engines are nondeterministic under load, so
      // keep whichever result is better rather than whichever is later.
      if (value.cost < entry.value.cost ||
          (value.proven_optimal && !entry.value.proven_optimal)) {
        entry.value = std::move(value);
      }
      entry.last_used = ++tick_;
      return;
    }
  }
  if (entries_.size() >= capacity_) {
    auto victim = std::min_element(
        entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
          return a.last_used < b.last_used;
        });
    *victim = Entry{key, std::move(value), ++tick_};
    ++evictions_;
    return;
  }
  entries_.push_back(Entry{key, std::move(value), ++tick_});
}

std::optional<Cached_plan> Plan_cache::best_known(
    std::uint64_t fingerprint, const std::string& model_key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& best : best_) {
    if (best.fingerprint == fingerprint && best.model_key == model_key) {
      return best.value;  // reads deliberately don't bump the LRU tick:
    }                     // a problem nobody *solves* anymore may age out
  }
  return std::nullopt;
}

std::size_t Plan_cache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t Plan_cache::lookups() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lookups_;
}

std::uint64_t Plan_cache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t Plan_cache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

Plan_cache::Contents Plan_cache::contents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // LRU-first order: re-inserting the export sequentially reproduces the
  // relative recency of every entry.
  std::vector<const Entry*> exact_order;
  exact_order.reserve(entries_.size());
  for (const auto& entry : entries_) exact_order.push_back(&entry);
  std::sort(exact_order.begin(), exact_order.end(),
            [](const Entry* a, const Entry* b) {
              return a->last_used < b->last_used;
            });
  std::vector<const Best_entry*> warm_order;
  warm_order.reserve(best_.size());
  for (const auto& best : best_) warm_order.push_back(&best);
  std::sort(warm_order.begin(), warm_order.end(),
            [](const Best_entry* a, const Best_entry* b) {
              return a->last_used < b->last_used;
            });

  Contents contents;
  contents.exact.reserve(exact_order.size());
  for (const Entry* entry : exact_order) {
    contents.exact.emplace_back(entry->key, entry->value);
  }
  contents.warm.reserve(warm_order.size());
  for (const Best_entry* best : warm_order) {
    contents.warm.push_back(
        Warm_entry{best->fingerprint, best->model_key, best->value});
  }
  return contents;
}

std::uint64_t Plan_cache::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return version_;
}

}  // namespace quest::serve
