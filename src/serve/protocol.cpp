#include "quest/serve/protocol.hpp"

#include <utility>

#include "quest/common/error.hpp"
#include "quest/io/fingerprint.hpp"

namespace quest::serve {

namespace {

double number_field(const io::Json& object, std::string_view key,
                    double fallback) {
  const io::Json* field = object.find(key);
  if (field == nullptr) return fallback;
  const double value = field->as_number();
  if (value < 0.0) {
    throw Parse_error("field '" + std::string(key) +
                      "' must be non-negative");
  }
  return value;
}

/// Checked integer field: rejects values a uint64 cast could not
/// represent (the cast would be undefined behavior on client-supplied
/// input like {"node_limit":1e300}). 1e18 comfortably exceeds any
/// meaningful budget, seed or tuple count.
std::uint64_t uint_field(const io::Json& object, std::string_view key,
                         std::uint64_t fallback) {
  const double value =
      number_field(object, key, static_cast<double>(fallback));
  if (value > 1e18) {
    throw Parse_error("field '" + std::string(key) +
                      "' is too large (max 1e18)");
  }
  return static_cast<std::uint64_t>(value);
}

bool bool_field(const io::Json& object, std::string_view key, bool fallback) {
  const io::Json* field = object.find(key);
  return field == nullptr ? fallback : field->as_bool();
}

std::string string_field(const io::Json& object, std::string_view key,
                         std::string fallback) {
  const io::Json* field = object.find(key);
  return field == nullptr ? std::move(fallback) : field->as_string();
}

opt::Budget parse_budget(const io::Json& op) {
  opt::Budget budget;
  const io::Json* field = op.find("budget");
  if (field == nullptr) return budget;
  budget.time_limit_seconds = number_field(*field, "deadline_ms", 0.0) / 1e3;
  budget.node_limit = uint_field(*field, "node_limit", 0);
  budget.cost_target = number_field(*field, "cost_target", 0.0);
  return budget;
}

/// Parses one optimize op. `default_id` is the batch-element fallback;
/// empty means the "id" field is mandatory (the top-level op form).
Optimize_op parse_optimize(const io::Json& op,
                           const std::string& default_id = {}) {
  Optimize_op parsed;
  if (const io::Json* id = op.find("id"); id != nullptr) {
    parsed.id = id->as_string();
  } else {
    parsed.id = default_id;
  }
  if (parsed.id.empty()) {
    throw Parse_error("optimize op needs a non-empty 'id'");
  }
  const io::Json& instance = op.at("instance");
  if (instance.is_string()) {
    parsed.instance_name = instance.as_string();
  } else {
    parsed.inline_instance = io::instance_from_json(instance);
  }
  parsed.optimizer = string_field(op, "optimizer", "portfolio");
  parsed.budget = parse_budget(op);
  parsed.seed = uint_field(op, "seed", 0);
  parsed.model = model::parse_cost_model_spec(
      string_field(op, "model", "independent"),
      string_field(op, "policy", "sequential"));
  parsed.stream = bool_field(op, "stream", false);
  parsed.cache = bool_field(op, "cache", true);
  if (const io::Json* execute = op.find("execute"); execute != nullptr) {
    // Hard resource bounds, not just representability: `workers` creates
    // OS threads (running past the thread limit would terminate the
    // daemon) and `tuples` is uncancellable executor work.
    Execute_spec spec;
    spec.tuples = uint_field(*execute, "tuples", spec.tuples);
    if (spec.tuples < 1 || spec.tuples > 10'000'000) {
      throw Parse_error("execute.tuples must be in [1, 10000000]");
    }
    spec.block_size = uint_field(*execute, "block_size", spec.block_size);
    if (spec.block_size < 1 || spec.block_size > spec.tuples) {
      throw Parse_error("execute.block_size must be in [1, tuples]");
    }
    spec.workers = static_cast<std::size_t>(
        uint_field(*execute, "workers", spec.workers));
    if (spec.workers < 1 || spec.workers > 64) {
      throw Parse_error("execute.workers must be in [1, 64]");
    }
    parsed.execute = spec;
  }
  return parsed;
}

std::vector<std::uint64_t> uint_array(const io::Json& op,
                                      std::string_view key,
                                      bool required) {
  const io::Json* field = op.find(key);
  if (field == nullptr) {
    if (required) {
      throw Parse_error("observe op needs array field '" +
                        std::string(key) + "'");
    }
    return {};
  }
  const io::Json::Array& array = field->as_array();
  std::vector<std::uint64_t> values;
  values.reserve(array.size());
  for (const io::Json& element : array) {
    const double value = element.as_number();
    if (value < 0.0 || value > 1e18) {
      throw Parse_error("field '" + std::string(key) +
                        "' entries must be in [0, 1e18]");
    }
    values.push_back(static_cast<std::uint64_t>(value));
  }
  return values;
}

std::vector<double> number_array(const io::Json& op, std::string_view key) {
  const io::Json* field = op.find(key);
  if (field == nullptr) return {};
  const io::Json::Array& array = field->as_array();
  std::vector<double> values;
  values.reserve(array.size());
  for (const io::Json& element : array) {
    const double value = element.as_number();
    if (value < 0.0) {
      throw Parse_error("field '" + std::string(key) +
                        "' entries must be non-negative");
    }
    values.push_back(value);
  }
  return values;
}

/// Resolves the shared "instance" field shape (name or inline doc) of
/// the observe/refit ops.
void parse_instance_ref(const io::Json& op, std::string& name,
                        std::optional<io::Instance_document>& inline_doc) {
  const io::Json& instance = op.at("instance");
  if (instance.is_string()) {
    name = instance.as_string();
  } else {
    inline_doc = io::instance_from_json(instance);
  }
}

Observe_op parse_observe(const io::Json& op) {
  Observe_op parsed;
  parse_instance_ref(op, parsed.instance_name, parsed.inline_instance);
  const io::Json::Array& plan = op.at("plan").as_array();
  for (const io::Json& element : plan) {
    const double value = element.as_number();
    if (value < 0.0 || value > 1e6) {
      throw Parse_error("observe plan entries must be service ids");
    }
    parsed.plan.append(static_cast<model::Service_id>(value));
  }
  parsed.tuples_in = uint_array(op, "tuples_in", /*required=*/true);
  parsed.tuples_out = uint_array(op, "tuples_out", /*required=*/true);
  if (parsed.tuples_in.size() != parsed.plan.size() ||
      parsed.tuples_out.size() != parsed.plan.size()) {
    throw Parse_error(
        "observe tuples_in/tuples_out must match the plan length");
  }
  parsed.cost_count = uint_array(op, "cost_count", /*required=*/false);
  parsed.cost_sum = number_array(op, "cost_sum");
  parsed.cost_sq_sum = number_array(op, "cost_sq_sum");
  if (parsed.cost_count.size() != parsed.cost_sum.size() ||
      parsed.cost_count.size() != parsed.cost_sq_sum.size()) {
    throw Parse_error(
        "observe cost_count/cost_sum/cost_sq_sum must have equal length");
  }
  return parsed;
}

Refit_op parse_refit(const io::Json& op) {
  Refit_op parsed;
  parse_instance_ref(op, parsed.instance_name, parsed.inline_instance);
  parsed.policy =
      model::parse_send_policy(string_field(op, "policy", "sequential"));
  parsed.objective =
      model::parse_objective(string_field(op, "objective", "mean"));
  parsed.min_samples = uint_field(op, "min_samples", 0);
  return parsed;
}

}  // namespace

Op parse_op(std::string_view line) {
  const io::Json op = io::Json::parse(line);
  const std::string kind = op.at("op").as_string();
  if (kind == "register") {
    std::string name = op.at("name").as_string();
    if (name.empty()) {
      throw Parse_error("register op needs a non-empty 'name'");
    }
    return Register_op{std::move(name),
                       io::instance_from_json(op.at("instance"))};
  }
  if (kind == "optimize") return parse_optimize(op);
  if (kind == "optimize_batch") {
    Batch_op parsed;
    parsed.id = op.at("id").as_string();
    if (parsed.id.empty()) {
      throw Parse_error("optimize_batch op needs a non-empty 'id'");
    }
    const io::Json::Array& requests = op.at("requests").as_array();
    if (requests.empty()) {
      throw Parse_error("optimize_batch needs at least one request");
    }
    if (requests.size() > k_max_batch_requests) {
      throw Parse_error("optimize_batch is capped at " +
                        std::to_string(k_max_batch_requests) + " requests");
    }
    parsed.requests.reserve(requests.size());
    for (std::size_t index = 0; index < requests.size(); ++index) {
      parsed.requests.push_back(parse_optimize(
          requests[index], parsed.id + "/" + std::to_string(index)));
    }
    return parsed;
  }
  if (kind == "cancel") {
    Cancel_op parsed;
    parsed.id = op.at("id").as_string();
    return parsed;
  }
  if (kind == "observe") return parse_observe(op);
  if (kind == "refit") return parse_refit(op);
  if (kind == "stats") return Stats_op{};
  if (kind == "shutdown") {
    return Shutdown_op{bool_field(op, "drain", false)};
  }
  throw Parse_error("unknown op '" + kind +
                    "' (expected register, optimize, optimize_batch, "
                    "cancel, observe, refit, stats, or shutdown)");
}

io::Json registered_event(const std::string& name, std::size_t services,
                          std::uint64_t fingerprint, bool replaced) {
  io::Json event;
  event.set("event", io::Json("registered"));
  event.set("name", io::Json(name));
  event.set("services", io::Json(services));
  event.set("fingerprint", io::Json(io::hex64(fingerprint)));
  event.set("replaced", io::Json(replaced));
  return event;
}

io::Json admitted_event(const std::string& id, std::size_t queue_depth) {
  io::Json event;
  event.set("event", io::Json("admitted"));
  event.set("id", io::Json(id));
  event.set("queue_depth", io::Json(queue_depth));
  return event;
}

io::Json incumbent_event(const std::string& id, double cost,
                         double elapsed_seconds, const model::Plan& plan) {
  io::Json event;
  event.set("event", io::Json("incumbent"));
  event.set("id", io::Json(id));
  event.set("cost", io::Json(cost));
  event.set("elapsed_seconds", io::Json(elapsed_seconds));
  event.set("plan", io::to_json(plan));
  return event;
}

io::Json cancel_event(const std::string& id, bool found) {
  io::Json event;
  event.set("event", io::Json("cancel-requested"));
  event.set("id", io::Json(id));
  event.set("found", io::Json(found));
  return event;
}

io::Json observed_event(std::uint64_t fingerprint, std::uint64_t runs,
                        std::size_t plans) {
  io::Json event;
  event.set("event", io::Json("observed"));
  event.set("fingerprint", io::Json(io::hex64(fingerprint)));
  event.set("runs", io::Json(static_cast<double>(runs)));
  event.set("plans", io::Json(plans));
  return event;
}

io::Json batch_event(const std::string& id, std::size_t count) {
  io::Json event;
  event.set("event", io::Json("batch-admitted"));
  event.set("id", io::Json(id));
  event.set("count", io::Json(count));
  return event;
}

io::Json error_event(const std::string& message, const std::string& id,
                     const std::string& code) {
  io::Json event;
  event.set("event", io::Json("error"));
  if (!code.empty()) event.set("code", io::Json(code));
  if (!id.empty()) event.set("id", io::Json(id));
  event.set("message", io::Json(message));
  return event;
}

io::Json overloaded_event(const std::string& id, std::size_t queue_depth,
                          std::size_t queue_cap) {
  io::Json event = error_event(
      "server overloaded: admission queue is full (" +
          std::to_string(queue_depth) + "/" + std::to_string(queue_cap) +
          " queued); retry later",
      id, "overloaded");
  event.set("queue_depth", io::Json(queue_depth));
  event.set("queue_cap", io::Json(queue_cap));
  return event;
}

io::Json unknown_instance_event(const std::string& name,
                                const std::string& id) {
  return error_event("unknown instance '" + name + "' (register it first)",
                     id, "unknown-instance");
}

io::Json result_event(const std::string& id, opt::Termination termination,
                      const model::Plan& plan, double cost, bool complete,
                      bool proven_optimal, bool cached, bool warm_started,
                      const std::string& model_key, double elapsed_seconds,
                      const opt::Search_stats* stats) {
  io::Json event;
  event.set("event", io::Json("result"));
  event.set("id", io::Json(id));
  event.set("termination", io::Json(opt::to_string(termination)));
  event.set("cost", complete ? io::Json(cost) : io::Json());
  event.set("plan", io::to_json(plan));
  event.set("proven_optimal", io::Json(proven_optimal));
  event.set("complete", io::Json(complete));
  event.set("cached", io::Json(cached));
  event.set("warm_started", io::Json(warm_started));
  event.set("model", io::Json(model_key));
  event.set("elapsed_seconds", io::Json(elapsed_seconds));
  if (stats != nullptr) {
    io::Json stats_json;
    stats_json.set("nodes_expanded",
                   io::Json(static_cast<double>(stats->nodes_expanded)));
    stats_json.set("complete_plans",
                   io::Json(static_cast<double>(stats->complete_plans)));
    stats_json.set("incumbent_updates",
                   io::Json(static_cast<double>(stats->incumbent_updates)));
    stats_json.set("total_prunes",
                   io::Json(static_cast<double>(stats->total_prunes())));
    stats_json.set("engine_threads",
                   io::Json(static_cast<double>(stats->engine_threads)));
    event.set("stats", std::move(stats_json));
  }
  return event;
}

}  // namespace quest::serve
