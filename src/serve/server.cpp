#include "quest/serve/server.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "quest/adapt/model_fitter.hpp"
#include "quest/common/error.hpp"
#include "quest/core/engines.hpp"
#include "quest/opt/registry.hpp"
#include "quest/io/fingerprint.hpp"
#include "quest/runtime/choreography.hpp"

namespace quest::serve {

/// One admitted optimize request. Immutable after admission except for
/// the stop source (tripped by cancel/shutdown) — workers own the rest.
struct Server::Job {
  std::string id;
  /// The session that submitted the request: its sink receives the
  /// job's events, its id scopes the request id, and closing it cancels
  /// the job.
  Session_ptr session;
  std::shared_ptr<const Stored_instance> problem;
  std::string spec;
  std::unique_ptr<opt::Optimizer> optimizer;
  opt::Budget budget;
  std::uint64_t seed = 0;
  /// The effective cost model: the op's "policy"/"model" fields bound to
  /// the resolved instance, then overridden by any shared model keys in
  /// the engine spec — exactly what the engine will evaluate under, so
  /// the cache key can never disagree with the search.
  model::Cost_model model;
  bool stream = false;
  bool use_cache = true;
  std::optional<Execute_spec> execute;
  /// Computed once at admission; identifies the request to both cache
  /// tiers.
  Cache_key cache_key;
  opt::Stop_source stop;
};

namespace {

/// The optional execute stage, shared by the worker path and the
/// admission-time cache-hit path: run the plan on the virtual-clock
/// executor and attach the measured report to the result event (or an
/// "execution_error" — execution failures must not void the
/// optimization result).
void append_execution(io::Json& event, const model::Instance& instance,
                      const model::Plan& plan, const Execute_spec& spec) {
  runtime::Runtime_config config;
  config.input_tuples = spec.tuples;
  config.block_size = spec.block_size;
  config.worker_count = spec.workers;
  config.clock_mode = runtime::Clock_mode::virtual_time;
  try {
    const runtime::Runtime_result executed =
        runtime::execute(instance, plan, config);
    io::Json execution;
    execution.set("per_tuple_cost_units",
                  io::Json(executed.per_tuple_cost_units));
    execution.set("predicted_cost", io::Json(executed.predicted_cost));
    execution.set("tuples_delivered",
                  io::Json(static_cast<double>(executed.tuples_delivered)));
    event.set("execution", std::move(execution));
  } catch (const std::exception& error) {
    event.set("execution_error", io::Json(std::string(error.what())));
  }
}

/// Rewrites a spec that carries a `threads=` option (bnb-par itself, or
/// a portfolio dispatching to it) so the count is explicit and at most
/// `cap`. For bnb-par, 0 and absent resolve to the hardware concurrency
/// first; for portfolio, 0/1 means "sequential exact phase" and passes
/// through untouched. Other engines pass through. Making the capped
/// count explicit in the spec string means the cache key, the engine
/// build, and the result stats all see the same effective configuration.
std::string cap_engine_threads_in_spec(const std::string& spec,
                                       std::size_t cap) {
  const opt::Spec_options options = opt::Registry::parse_spec(spec);
  const bool parallel_engine = options.engine() == "bnb-par";
  const bool portfolio = options.engine() == "portfolio";
  if (!parallel_engine && !portfolio) return spec;
  std::size_t requested = options.get_size("threads", 0);
  if (portfolio && requested <= 1) return spec;  // sequential exact phase
  if (requested == 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    requested = hardware == 0 ? 1 : hardware;
  }
  const std::size_t effective = std::min(requested, cap);
  std::string rebuilt = options.engine();
  char separator = ':';
  bool replaced = false;
  for (const auto& [key, value] : options.entries()) {
    rebuilt += separator;
    separator = ',';
    if (key == "threads") {
      rebuilt += "threads=" + std::to_string(effective);
      replaced = true;
    } else {
      rebuilt += key + "=" + value;
    }
  }
  if (!replaced) {
    rebuilt += separator;
    rebuilt += "threads=" + std::to_string(effective);
  }
  return rebuilt;
}

}  // namespace

Server::Server(Server_options options)
    : options_(options), cache_(options.cache_capacity) {
  QUEST_EXPECTS(options_.workers >= 1, "server needs at least one worker");
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::Server(Server_options options, Event_sink sink) : Server(options) {
  QUEST_EXPECTS(sink != nullptr, "server needs an event sink");
  default_session_ = open_session(std::move(sink));
}

Server::~Server() { shutdown(); }

Server::Session_ptr Server::open_session(Event_sink sink) {
  QUEST_EXPECTS(sink != nullptr, "session needs an event sink");
  auto session = std::make_shared<Client_session>();
  session->sink = std::move(sink);
  std::lock_guard<std::mutex> lock(mutex_);
  session->id = next_session_id_++;
  ++sessions_;
  return session;
}

void Server::close_session(const Session_ptr& session) {
  if (session == nullptr) return;
  {
    // Under sink_mutex_ so that once close_session returns, no event
    // can still be entering this session's sink from a worker.
    std::lock_guard<std::mutex> lock(sink_mutex_);
    if (!session->open.exchange(false)) return;  // idempotent
  }
  std::lock_guard<std::mutex> lock(mutex_);
  --sessions_;
  // Free the workers: a vanished client's jobs have no reader anyway.
  for (const auto& job : active_) {
    if (job->session == session) job->stop.request_stop();
  }
}

void Server::emit(const Client_session& session, const io::Json& event) {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  if (session.open.load(std::memory_order_relaxed)) session.sink(event);
}

bool Server::handle_line(std::string_view line) {
  return handle_line(default_session_, line);
}

bool Server::handle(Op op) { return handle(default_session_, std::move(op)); }

bool Server::handle_line(const Session_ptr& session, std::string_view line) {
  QUEST_EXPECTS(session != nullptr, "handle_line needs a session");
  const auto content = line.find_first_not_of(" \t\r\n");
  if (content == std::string_view::npos) return true;  // blank keep-alive
  try {
    return handle(session, parse_op(line));
  } catch (const std::exception& error) {
    // quest::Error for protocol violations, but also any std::exception
    // (bad_alloc from a huge document, ...): a long-lived daemon must
    // not die because one line was hostile.
    // Try to salvage the request id so the client can correlate.
    std::string id;
    try {
      const io::Json op = io::Json::parse(line);
      if (const io::Json* field = op.find("id");
          field != nullptr && field->is_string()) {
        id = field->as_string();
      }
    } catch (const std::exception&) {
    }
    emit(*session, error_event(error.what(), id, "parse"));
    return true;
  }
}

bool Server::handle(const Session_ptr& session, Op op) {
  QUEST_EXPECTS(session != nullptr, "handle needs a session");
  if (const auto* request = std::get_if<Shutdown_op>(&op)) {
    std::size_t outstanding = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      outstanding = active_.size();
    }
    io::Json event;
    event.set("event", io::Json("shutting-down"));
    event.set("outstanding", io::Json(outstanding));
    event.set("drain", io::Json(request->drain));
    emit(*session, event);
    shutdown(/*cancel_in_flight=*/!request->drain);
    io::Json done;
    done.set("event", io::Json("shutdown-complete"));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done.set("completed", io::Json(static_cast<double>(completed_)));
      done.set("cancelled", io::Json(static_cast<double>(cancelled_)));
    }
    emit(*session, done);
    return false;
  }

  try {
    if (auto* reg = std::get_if<Register_op>(&op)) {
      handle_register(session, std::move(*reg));
    } else if (auto* optimize = std::get_if<Optimize_op>(&op)) {
      handle_optimize(session, std::move(*optimize));
    } else if (auto* batch = std::get_if<Batch_op>(&op)) {
      handle_batch(session, std::move(*batch));
    } else if (auto* cancel = std::get_if<Cancel_op>(&op)) {
      handle_cancel(session, *cancel);
    } else if (auto* observe = std::get_if<Observe_op>(&op)) {
      handle_observe(session, std::move(*observe));
    } else if (auto* refit = std::get_if<Refit_op>(&op)) {
      handle_refit(session, *refit);
    } else {
      emit_stats(session);
    }
  } catch (const std::exception& error) {
    emit(*session, error_event(error.what()));
  }
  return true;
}

void Server::handle_register(const Session_ptr& session, Register_op op) {
  bool replaced = false;
  const auto entry =
      store_.put(std::move(op.name), std::move(op.document.instance),
                 std::move(op.document.precedence), &replaced);
  emit(*session, registered_event(entry->name, entry->instance.size(),
                                  entry->fingerprint, replaced));
}

void Server::handle_batch(const Session_ptr& session, Batch_op op) {
  // The batch ack first, then each element admits (or sheds)
  // individually — a half-admitted batch is visible as such.
  emit(*session, batch_event(op.id, op.requests.size()));
  for (Optimize_op& element : op.requests) {
    handle_optimize(session, std::move(element));
  }
}

std::shared_ptr<const Stored_instance> Server::resolve_instance(
    const Session_ptr& session, const std::string& name,
    std::optional<io::Instance_document>& inline_doc,
    const std::string& request_id) {
  if (inline_doc) {
    auto entry = std::make_shared<Stored_instance>(
        Stored_instance{{}, std::move(inline_doc->instance),
                        std::move(inline_doc->precedence), 0});
    entry->fingerprint =
        io::fingerprint(entry->instance, entry->precedence_ptr());
    return entry;
  }
  auto problem = store_.get(name);
  if (problem == nullptr) {
    emit(*session, unknown_instance_event(name, request_id));
  }
  return problem;
}

void Server::handle_optimize(const Session_ptr& session, Optimize_op op) {
  auto job = std::make_shared<Job>();
  job->id = std::move(op.id);
  job->session = session;
  job->problem = resolve_instance(session, op.instance_name,
                                  op.inline_instance, job->id);
  if (job->problem == nullptr) return;

  job->spec = std::move(op.optimizer);
  job->budget = op.budget;
  job->seed = op.seed;
  job->stream = op.stream;
  job->use_cache = op.cache && options_.enable_cache;
  job->execute = op.execute;
  try {
    // Nested-parallelism cap, before the cache key and the engine build:
    // a parallel engine may use at most engine_thread_cap() threads, so
    // `workers * cap` bounds the process's total search parallelism.
    job->spec = cap_engine_threads_in_spec(job->spec, engine_thread_cap());
    const std::size_t n = job->problem->instance.size();
    job->model = opt::spec_model_override(job->spec, op.model.bind(n), n);
  } catch (const Error& error) {
    emit(*session, error_event(error.what(), job->id));
    return;
  }
  job->cache_key = Cache_key{job->problem->fingerprint, job->model.key(),
                             job->spec, budget_class(job->budget), job->seed};

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      emit(*session, error_event("server is shutting down", job->id));
      return;
    }
    const bool duplicate =
        std::any_of(active_.begin(), active_.end(), [&](const auto& other) {
          return other->session->id == session->id && other->id == job->id;
        });
    if (duplicate) {
      emit(*session, error_event(
                         "request id '" + job->id + "' is already in flight",
                         job->id));
      return;
    }
  }

  // Identical repeats are answered at admission, on the transport
  // thread: a cached request must never queue behind long-running jobs
  // or occupy a worker.
  if (job->use_cache) {
    if (auto cached = cache_.lookup(job->cache_key)) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++admitted_;
        ++completed_;
      }
      emit(*session, admitted_event(job->id, 0));
      io::Json event =
          result_event(job->id, cached->termination, cached->plan,
                       cached->cost, /*complete=*/true,
                       cached->proven_optimal, /*cached=*/true,
                       /*warm_started=*/false, job->model.key(),
                       /*elapsed_seconds=*/0.0, /*stats=*/nullptr);
      // Only the *optimization* is cached — a requested execute stage
      // still runs, on the cached plan (bounded by the protocol's
      // resource caps, so inline on the transport thread is fine).
      if (job->execute) {
        append_execution(event, job->problem->instance, cached->plan,
                         *job->execute);
      }
      emit(*session, event);
      return;
    }
  }

  // Load shedding, after the cache had its chance to answer for free:
  // a bounded queue that refuses with a typed error is how overload
  // stays a client-visible, recoverable condition rather than an
  // unbounded memory/latency spiral.
  if (options_.queue_cap > 0) {
    bool shed = false;
    std::size_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      depth = queue_.size();
      if (depth >= options_.queue_cap) {
        ++shed_;
        shed = true;
      }
    }
    if (shed) {
      emit(*session, overloaded_event(job->id, depth, options_.queue_cap));
      return;
    }
  }

  try {
    // Build the engine at admission so bad specs fail fast, before the
    // request occupies a worker — but after the cache lookup, which
    // answers repeats without paying for an engine at all.
    job->optimizer = core::make_optimizer(job->spec);
  } catch (const Error& error) {
    emit(*session, error_event(error.what(), job->id));
    return;
  }

  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    active_.push_back(job);
    ++admitted_;
    depth = queue_.size() + 1;
  }
  // Admission is acknowledged before the job becomes runnable, so the
  // "admitted" event always precedes the request's incumbents/result.
  emit(*session, admitted_event(job->id, depth));
  bool stranded = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // An embedder may call shutdown() from another thread between the
    // admission check above and this push; once the workers are joining,
    // a queued job would never be popped. Honor the "every admitted
    // request gets a result" guarantee right here instead.
    if (shutting_down_) {
      retire_job_locked(*job);
      ++completed_;
      ++cancelled_;
      stranded = true;
    } else {
      queue_.push_back(job);
    }
  }
  if (stranded) {
    emit(*session,
         result_event(job->id, opt::Termination::cancelled, model::Plan(),
                      /*cost=*/0.0, /*complete=*/false,
                      /*proven_optimal=*/false, /*cached=*/false,
                      /*warm_started=*/false, job->model.key(),
                      /*elapsed_seconds=*/0.0, /*stats=*/nullptr));
    return;
  }
  work_available_.notify_one();
}

void Server::handle_observe(const Session_ptr& session, Observe_op op) {
  const auto problem =
      resolve_instance(session, op.instance_name, op.inline_instance, {});
  if (problem == nullptr) return;
  const std::size_t n = problem->instance.size();
  for (const model::Service_id u : op.plan) {
    if (u >= n) {
      emit(*session, error_event("observe plan refers to service " +
                                 std::to_string(u) + " of an instance with " +
                                 std::to_string(n) + " services"));
      return;
    }
  }
  if (!op.cost_count.empty() && op.cost_count.size() != n) {
    emit(*session,
         error_event("observe cost arrays must have one entry per service"));
    return;
  }
  std::uint64_t runs = 0;
  std::size_t plans = 0;
  {
    std::lock_guard<std::mutex> lock(adapt_mutex_);
    auto [it, inserted] = adapt_.try_emplace(
        problem->fingerprint, Adapt_state{adapt::Observation_log(n), {}});
    Adapt_state& state = it->second;
    state.log.record_run(op.plan, op.tuples_in, op.tuples_out);
    for (std::size_t u = 0; u < op.cost_count.size(); ++u) {
      state.log.record_cost(static_cast<model::Service_id>(u),
                            op.cost_count[u], op.cost_sum[u],
                            op.cost_sq_sum[u]);
    }
    // Remember the plan for refit-time warm seeding: complete plans
    // only, deduplicated, bounded (the log itself is O(n^3) regardless).
    constexpr std::size_t k_max_observed_plans = 64;
    if (op.plan.is_permutation_of(n) &&
        state.plans.size() < k_max_observed_plans &&
        std::find(state.plans.begin(), state.plans.end(), op.plan) ==
            state.plans.end()) {
      state.plans.push_back(op.plan);
    }
    runs = state.log.runs();
    plans = state.plans.size();
  }
  emit(*session, observed_event(problem->fingerprint, runs, plans));
}

void Server::handle_refit(const Session_ptr& session, const Refit_op& op) {
  auto inline_doc = op.inline_instance;
  const auto problem =
      resolve_instance(session, op.instance_name, inline_doc, {});
  if (problem == nullptr) return;
  const std::size_t n = problem->instance.size();

  adapt::Fit_options options;
  if (op.min_samples > 0) {
    options.min_pair_samples = op.min_samples;
    options.min_marginal_samples = op.min_samples;
  }
  // Fit on a copy: the log is tiny (O(n^3)) and copying keeps the
  // adapt lock out of the dense solve.
  std::optional<adapt::Observation_log> log;
  std::vector<model::Plan> plans;
  {
    std::lock_guard<std::mutex> lock(adapt_mutex_);
    const auto it = adapt_.find(problem->fingerprint);
    if (it != adapt_.end() && it->second.log.size() == n) {
      log.emplace(it->second.log);
      plans = it->second.plans;
    }
  }
  if (!log.has_value() || log->runs() == 0) {
    emit(*session,
         error_event("refit: no observations recorded for this instance "
                     "(send observe ops first)"));
    return;
  }

  const adapt::Model_fitter fitter(options);
  const adapt::Fit_report report = fitter.fit(*log);
  const model::Cost_model_spec spec =
      fitter.to_spec(report, op.policy, op.objective);
  const model::Cost_model fitted = spec.bind(n);
  const std::string fitted_key = fitted.key();

  // Bridge the cache tiers: the fitted key has never been optimized
  // under, so the exact tier will miss — but re-costing the observed
  // plans under the fitted model gives the warm tier a sound floor,
  // and the first optimize under the fitted model warm-starts from it.
  bool warm_seeded = false;
  double warm_cost = 0.0;
  if (options_.enable_cache) {
    model::Plan best_plan;
    for (const model::Plan& plan : plans) {
      const double cost =
          model::bottleneck_cost(problem->instance, plan, fitted);
      if (!warm_seeded || cost < warm_cost) {
        warm_seeded = true;
        warm_cost = cost;
        best_plan = plan;
      }
    }
    if (warm_seeded) {
      cache_.remember_best(problem->fingerprint, fitted_key,
                           Cached_plan{std::move(best_plan), warm_cost,
                                       opt::Termination::completed,
                                       /*proven_optimal=*/false});
    }
  }

  io::Json event;
  event.set("event", io::Json("refit"));
  event.set("fingerprint", io::Json(io::hex64(problem->fingerprint)));
  event.set("model", io::Json(spec.to_string()));
  event.set("model_key", io::Json(fitted_key));
  event.set("falsified", io::Json(report.independent_falsified));
  event.set("max_abs_log_gamma", io::Json(report.max_abs_log_gamma));
  event.set("runs", io::Json(static_cast<double>(report.runs)));
  event.set("cost_sigma_capped", io::Json(report.cost_sigma_capped));
  event.set("warm_seeded", io::Json(warm_seeded));
  if (warm_seeded) event.set("warm_cost", io::Json(warm_cost));
  emit(*session, event);
}

void Server::handle_cancel(const Session_ptr& session, const Cancel_op& op) {
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& job : active_) {
      if (job->session->id == session->id && job->id == op.id) {
        job->stop.request_stop();
        found = true;
        break;
      }
    }
  }
  emit(*session, cancel_event(op.id, found));
}

void Server::emit_stats(const Session_ptr& session) {
  const Server_stats snapshot = stats();
  io::Json event;
  event.set("event", io::Json("stats"));
  event.set("workers", io::Json(snapshot.workers));
  event.set("admitted", io::Json(static_cast<double>(snapshot.admitted)));
  event.set("completed", io::Json(static_cast<double>(snapshot.completed)));
  event.set("cancelled", io::Json(static_cast<double>(snapshot.cancelled)));
  event.set("failed", io::Json(static_cast<double>(snapshot.failed)));
  event.set("queue_depth", io::Json(snapshot.queue_depth));
  event.set("running", io::Json(snapshot.running));
  event.set("max_concurrent", io::Json(snapshot.max_concurrent));
  event.set("instances", io::Json(snapshot.instances));
  event.set("engine_threads", io::Json(snapshot.engine_threads));
  if (snapshot.queue_cap > 0) {
    // Admission-control counters only exist for bounded queues; the
    // legacy unbounded configuration keeps its event shape unchanged.
    event.set("queue_cap", io::Json(snapshot.queue_cap));
    event.set("shed", io::Json(static_cast<double>(snapshot.shed)));
    event.set("sessions", io::Json(snapshot.sessions));
  }
  io::Json cache;
  cache.set("lookups", io::Json(static_cast<double>(snapshot.cache_lookups)));
  cache.set("hits", io::Json(static_cast<double>(snapshot.cache_hits)));
  cache.set("entries", io::Json(snapshot.cache_entries));
  event.set("cache", std::move(cache));
  if (snapshot.durability) {
    // Durability counters only exist when a snapshot subsystem is
    // attached (quest_serve --snapshot-path); without one the event
    // keeps its legacy shape byte for byte.
    event.set("snapshot_writes",
              io::Json(static_cast<double>(snapshot.snapshot_writes)));
    event.set("snapshot_bytes",
              io::Json(static_cast<double>(snapshot.snapshot_bytes)));
    event.set("warm_boot_entries",
              io::Json(static_cast<double>(snapshot.warm_boot_entries)));
    event.set("stale_refused",
              io::Json(static_cast<double>(snapshot.stale_refused)));
  }
  event.set("uptime_seconds", io::Json(snapshot.uptime_seconds));
  event.set("throughput_rps", io::Json(snapshot.throughput_rps));
  emit(*session, event);
}

Server_stats Server::stats() const {
  Server_stats snapshot;
  snapshot.workers = options_.workers;
  snapshot.queue_cap = options_.queue_cap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot.admitted = admitted_;
    snapshot.completed = completed_;
    snapshot.cancelled = cancelled_;
    snapshot.failed = failed_;
    snapshot.shed = shed_;
    snapshot.sessions = sessions_;
    snapshot.queue_depth = queue_.size();
  }
  snapshot.running = running_.load(std::memory_order_relaxed);
  snapshot.max_concurrent = max_concurrent_.load(std::memory_order_relaxed);
  snapshot.cache_lookups = cache_.lookups();
  snapshot.cache_hits = cache_.hits();
  snapshot.cache_entries = cache_.size();
  snapshot.instances = store_.size();
  snapshot.engine_threads = engine_thread_cap();
  if (options_.durability != nullptr) {
    const Durability_counters& durability = *options_.durability;
    snapshot.durability = true;
    snapshot.snapshot_writes =
        durability.snapshot_writes.load(std::memory_order_relaxed);
    snapshot.snapshot_bytes =
        durability.snapshot_bytes.load(std::memory_order_relaxed);
    snapshot.warm_boot_entries =
        durability.warm_boot_entries.load(std::memory_order_relaxed);
    snapshot.stale_refused =
        durability.stale_refused.load(std::memory_order_relaxed);
  }
  snapshot.uptime_seconds = uptime_.seconds();
  snapshot.throughput_rps =
      snapshot.uptime_seconds > 0.0
          ? static_cast<double>(snapshot.completed) / snapshot.uptime_seconds
          : 0.0;
  return snapshot;
}

std::size_t Server::engine_thread_cap() const {
  if (options_.engine_threads != 0) return options_.engine_threads;
  const unsigned hardware = std::thread::hardware_concurrency();
  const std::size_t budget = hardware == 0 ? 1 : hardware;
  return std::max<std::size_t>(1, budget / options_.workers);
}

void Server::shutdown(bool cancel_in_flight) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      // Already requested; fall through to join below (idempotent).
    } else {
      shutting_down_ = true;
      // Trip every queued and running job: queued jobs run against a
      // pre-cancelled token and return immediately, so the queue drains
      // with a "cancelled" result per admitted request. In drain mode
      // the workers instead finish all admitted work before exiting.
      if (cancel_in_flight) {
        for (const auto& job : active_) job->stop.request_stop();
      }
    }
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void Server::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down, queue drained
      job = queue_.front();
      queue_.pop_front();
    }
    // run_job() retires the job from active_ itself, *before* emitting
    // its result — a client that reads the result may immediately reuse
    // the id.
    run_job(*job);
  }
}

void Server::retire_job_locked(const Job& job) {
  active_.erase(std::remove_if(active_.begin(), active_.end(),
                               [&](const auto& other) {
                                 return other->session->id ==
                                            job.session->id &&
                                        other->id == job.id;
                               }),
                active_.end());
}

void Server::run_job(Job& job) {
  const std::size_t now_running =
      running_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::size_t peak = max_concurrent_.load(std::memory_order_relaxed);
  while (now_running > peak &&
         !max_concurrent_.compare_exchange_weak(peak, now_running,
                                                std::memory_order_relaxed)) {
  }
  struct Running_guard {
    std::atomic<std::size_t>& counter;
    ~Running_guard() { counter.fetch_sub(1, std::memory_order_relaxed); }
  } guard{running_};

  Timer timer;
  opt::Request request;
  request.instance = &job.problem->instance;
  request.precedence = job.problem->precedence_ptr();
  request.budget = job.budget;
  request.seed = job.seed;
  request.model = job.model;
  request.stop = job.stop.token();

  // Warm-start tier: any earlier result on this problem (whatever engine
  // or budget produced it) seeds the incumbent.
  model::Plan warm_plan;
  double warm_cost = 0.0;
  bool warm_started = false;
  if (job.use_cache) {
    if (auto best = cache_.best_known(job.cache_key.fingerprint,
                                      job.cache_key.model_key)) {
      warm_plan = std::move(best->plan);
      warm_cost = best->cost;
      request.warm_start = &warm_plan;
      warm_started = true;
    }
  }

  if (job.stream) {
    request.on_incumbent = [&](const model::Plan& plan, double cost,
                               const opt::Search_stats&) {
      emit(*job.session, incumbent_event(job.id, cost, timer.seconds(), plan));
    };
  }

  opt::Result result;
  try {
    result = job.optimizer->optimize(request);
  } catch (const std::exception& error) {
    // quest::Error for engine preconditions, but also bad_alloc & co.
    // (the DP on a large instance allocates gigabytes): an escaping
    // exception would std::terminate the daemon from this worker thread.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++failed_;
      retire_job_locked(job);
    }
    emit(*job.session, error_event(error.what(), job.id));
    return;
  }

  bool complete = result.plan.size() == job.problem->instance.size();
  // Warm-started results are floored at the plan the server already
  // knew: engines with no incumbent to seed (greedy, dp, ...) ignore
  // Request::warm_start, and a budget-starved run can come back worse —
  // either way the client must never receive a costlier answer than the
  // cache held. An optimality proof is unaffected: a proven-optimal
  // result can't cost more than any known plan, so it is never floored.
  if (warm_started && (!complete || result.cost > warm_cost)) {
    result.plan = std::move(warm_plan);
    result.cost = warm_cost;
    result.proven_optimal = false;
    complete = true;
  }
  if (complete && job.use_cache) {
    Cached_plan value{result.plan, result.cost, result.termination,
                      result.proven_optimal};
    if (result.termination == opt::Termination::cancelled) {
      // The incumbent is real, but "cancelled" is one client's decision,
      // not a property of the problem — replaying it to a later
      // identical request would rob that request of its full search.
      // Keep the plan as a warm start only.
      cache_.remember_best(job.cache_key.fingerprint,
                           job.cache_key.model_key, std::move(value));
    } else {
      cache_.insert(job.cache_key, std::move(value));
    }
  }

  io::Json event = result_event(job.id, result.termination, result.plan,
                                result.cost, complete,
                                result.proven_optimal, /*cached=*/false,
                                warm_started, job.model.key(),
                                result.elapsed_seconds, &result.stats);

  if (complete && job.execute) {
    append_execution(event, job.problem->instance, result.plan,
                     *job.execute);
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++completed_;
    if (result.termination == opt::Termination::cancelled) ++cancelled_;
    retire_job_locked(job);
  }
  emit(*job.session, event);
}

}  // namespace quest::serve
