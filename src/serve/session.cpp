#include "quest/serve/session.hpp"

#include <string>
#include <utility>

#include "quest/common/error.hpp"
#include "quest/serve/protocol.hpp"

namespace quest::serve {

Session_manager::Session_manager(Server& server, Transport& transport,
                                 Session_options options)
    : server_(server), transport_(transport), options_(options) {
  QUEST_EXPECTS(options_.max_line_bytes >= 2,
                "max_line_bytes must hold at least a tiny op");
}

bool Session_manager::serve() {
  Transport::Handlers handlers;
  handlers.on_open = [this](Connection_id id) { on_open(id); };
  handlers.on_data = [this](Connection_id id, std::string_view chunk) {
    on_data(id, chunk);
  };
  handlers.on_close = [this](Connection_id id) { on_close(id); };
  transport_.run(handlers);
  return shutdown_requested_;
}

void Session_manager::on_open(Connection_id connection) {
  Connection_state state;
  // The sink runs on Server worker threads as well as this loop thread;
  // Transport::send is thread-safe by contract, and a false return
  // (connection already gone) correctly drops the event.
  state.session = server_.open_session([this, connection](
                                           const io::Json& event) {
    transport_.send(connection, event.dump());
  });
  connections_.emplace(connection, std::move(state));
}

void Session_manager::on_data(Connection_id connection,
                              std::string_view chunk) {
  const auto found = connections_.find(connection);
  if (found == connections_.end()) return;
  Connection_state& state = found->second;

  if (state.discarding) {
    // Still inside an oversized line: drop up to its newline.
    const auto newline = chunk.find('\n');
    if (newline == std::string_view::npos) return;
    state.discarding = false;
    chunk.remove_prefix(newline + 1);
  }
  state.inbuf.append(chunk);

  std::size_t start = 0;
  for (;;) {
    const auto newline = state.inbuf.find('\n', start);
    if (newline == std::string::npos) break;
    const std::string_view line(state.inbuf.data() + start, newline - start);
    start = newline + 1;
    if (line.size() > options_.max_line_bytes) {
      transport_.send(connection,
                      error_event("request line exceeds " +
                                      std::to_string(options_.max_line_bytes) +
                                      " bytes and was discarded",
                                  {}, "line-overflow")
                          .dump());
      continue;
    }
    if (!server_.handle_line(state.session, line)) {
      // Shutdown op: the server has joined its workers; stopping the
      // transport flushes the final events and ends serve().
      shutdown_requested_ = true;
      transport_.stop();
      // `state` may dangle once stop() tears connections down via
      // on_close — drop the remaining buffered bytes and leave.
      return;
    }
  }
  state.inbuf.erase(0, start);

  // A partial line past the cap can never become an acceptable one:
  // report it now and discard until its newline arrives, so a hostile
  // client's memory use is bounded at one cap's worth per connection.
  if (state.inbuf.size() > options_.max_line_bytes) {
    transport_.send(connection,
                    error_event("request line exceeds " +
                                    std::to_string(options_.max_line_bytes) +
                                    " bytes and was discarded",
                                {}, "line-overflow")
                        .dump());
    state.inbuf.clear();
    state.inbuf.shrink_to_fit();
    state.discarding = true;
  }
}

void Session_manager::on_close(Connection_id connection) {
  const auto found = connections_.find(connection);
  if (found == connections_.end()) return;
  if (options_.close_session_on_disconnect) {
    server_.close_session(found->second.session);
  }
  connections_.erase(found);
}

}  // namespace quest::serve
