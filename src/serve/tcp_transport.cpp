#include "quest/serve/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <sys/epoll.h>
#else
#include <poll.h>
#endif

#include "quest/common/error.hpp"

namespace quest::serve {

namespace {

/// What a new connection beyond max_connections is told before the
/// socket closes — refusal is part of the protocol, not a silent RST.
constexpr std::string_view k_refusal_line =
    "{\"event\":\"error\",\"code\":\"overloaded\","
    "\"message\":\"connection limit reached\"}\n";

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

/// Readiness multiplexer: epoll on Linux, poll(2) elsewhere. One loop
/// thread owns it; the API is the common denominator of the two.
class Poller {
 public:
  struct Ready {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };

#if defined(__linux__)
  Poller() : epoll_fd_(::epoll_create1(EPOLL_CLOEXEC)) {
    if (epoll_fd_ < 0) throw_errno("epoll_create1");
  }
  ~Poller() { ::close(epoll_fd_); }

  void add(int fd, bool read, bool write) { ctl(EPOLL_CTL_ADD, fd, read, write); }
  void update(int fd, bool read, bool write) {
    ctl(EPOLL_CTL_MOD, fd, read, write);
  }
  void remove(int fd) { ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr); }

  void wait(std::vector<Ready>& out, int timeout_ms) {
    epoll_event events[128];
    const int count = ::epoll_wait(epoll_fd_, events, 128, timeout_ms);
    for (int i = 0; i < count; ++i) {
      Ready ready;
      ready.fd = events[i].data.fd;
      // HUP counts as readable so the read() path observes the EOF.
      ready.readable = (events[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      ready.writable = (events[i].events & EPOLLOUT) != 0;
      ready.error = (events[i].events & EPOLLERR) != 0;
      out.push_back(ready);
    }
  }

 private:
  void ctl(int op, int fd, bool read, bool write) {
    epoll_event event{};
    event.data.fd = fd;
    if (read) event.events |= EPOLLIN;
    if (write) event.events |= EPOLLOUT;
    ::epoll_ctl(epoll_fd_, op, fd, &event);
  }

  int epoll_fd_;
#else
  void add(int fd, bool read, bool write) { update(fd, read, write); }
  void update(int fd, bool read, bool write) {
    short events = 0;
    if (read) events |= POLLIN;
    if (write) events |= POLLOUT;
    interest_[fd] = events;
  }
  void remove(int fd) { interest_.erase(fd); }

  void wait(std::vector<Ready>& out, int timeout_ms) {
    std::vector<pollfd> fds;
    fds.reserve(interest_.size());
    for (const auto& [fd, events] : interest_) fds.push_back({fd, events, 0});
    const int count = ::poll(fds.data(), fds.size(), timeout_ms);
    if (count <= 0) return;
    for (const pollfd& entry : fds) {
      if (entry.revents == 0) continue;
      Ready ready;
      ready.fd = entry.fd;
      ready.readable = (entry.revents & (POLLIN | POLLHUP)) != 0;
      ready.writable = (entry.revents & POLLOUT) != 0;
      ready.error = (entry.revents & (POLLERR | POLLNVAL)) != 0;
      out.push_back(ready);
    }
  }

 private:
  std::unordered_map<int, short> interest_;
#endif
};

}  // namespace

struct Tcp_transport::Impl {
  /// One connection. The loop thread owns fd/interest state; `outbound`
  /// and the close/dirty flags are shared with sender threads under
  /// `mutex`.
  struct Conn {
    Connection_id id = 0;
    int fd = -1;
    /// Pending outbound bytes; `out_offset` marks the flushed prefix
    /// (compacted periodically instead of erasing per write).
    std::string outbound;
    std::size_t out_offset = 0;
    bool want_write = false;  // loop-side: EPOLLOUT armed
    bool paused = false;      // loop-side: reads off (backpressure)
    bool closing = false;     // flush remaining bytes, then close

    std::size_t pending_bytes() const { return outbound.size() - out_offset; }
  };

  explicit Impl(Tcp_options opts) : options(std::move(opts)) {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) throw_errno("socket");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(options.port);
    if (::inet_pton(AF_INET, options.bind_address.c_str(),
                    &address.sin_addr) != 1) {
      ::close(listen_fd);
      throw Error("tcp transport: bad bind address '" + options.bind_address +
                  "'");
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&address),
               sizeof(address)) != 0) {
      const int saved = errno;
      ::close(listen_fd);
      errno = saved;
      throw_errno("bind " + options.bind_address + ":" +
                  std::to_string(options.port));
    }
    if (::listen(listen_fd, 512) != 0) {
      const int saved = errno;
      ::close(listen_fd);
      errno = saved;
      throw_errno("listen");
    }
    set_nonblocking(listen_fd);
    sockaddr_in bound{};
    socklen_t length = sizeof(bound);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &length);
    bound_port = ntohs(bound.sin_port);

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      const int saved = errno;
      ::close(listen_fd);
      errno = saved;
      throw_errno("pipe");
    }
    wake_read = pipe_fds[0];
    wake_write = pipe_fds[1];
    set_nonblocking(wake_read);
    set_nonblocking(wake_write);
  }

  ~Impl() {
    for (auto& [fd, conn] : by_fd) ::close(fd);
    if (listen_fd >= 0) ::close(listen_fd);
    ::close(wake_read);
    ::close(wake_write);
  }

  void wake() {
    const char byte = 'w';
    // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
    [[maybe_unused]] const auto ignored = ::write(wake_write, &byte, 1);
  }

  // ---- sender-thread entry points -------------------------------------

  bool send(Connection_id id, std::string_view line) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      const auto entry = by_id.find(id);
      if (entry == by_id.end() || entry->second->closing) return false;
      Conn& conn = *entry->second;
      conn.outbound.append(line);
      conn.outbound.push_back('\n');
      dirty.push_back(id);
    }
    wake();
    return true;
  }

  void request_close(Connection_id id) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      const auto entry = by_id.find(id);
      if (entry == by_id.end()) return;
      entry->second->closing = true;
      dirty.push_back(id);
    }
    wake();
  }

  void request_stop() {
    stop_requested.store(true, std::memory_order_release);
    wake();
  }

  // ---- loop thread ----------------------------------------------------

  void run(const Handlers& handlers) {
    Poller poller;
    poller.add(listen_fd, /*read=*/true, /*write=*/false);
    poller.add(wake_read, /*read=*/true, /*write=*/false);

    std::vector<Poller::Ready> ready;
    std::vector<char> scratch(options.read_chunk);
    bool stopping = false;
    std::chrono::steady_clock::time_point flush_deadline{};

    for (;;) {
      ready.clear();
      poller.wait(ready, stopping ? 50 : -1);

      for (const Poller::Ready& event : ready) {
        if (event.fd == wake_read) {
          char buffer[256];
          while (::read(wake_read, buffer, sizeof(buffer)) > 0) {
          }
          continue;
        }
        if (event.fd == listen_fd) {
          if (!stopping) accept_all(poller, handlers);
          continue;
        }
        const auto entry = by_fd.find(event.fd);
        if (entry == by_fd.end()) continue;  // closed earlier this batch
        Conn* conn = entry->second.get();
        if (event.error) {
          close_conn(poller, conn, handlers);
          continue;
        }
        if (event.writable) {
          if (!flush_conn(poller, conn, handlers)) continue;  // conn gone
        }
        if (event.readable && !stopping) {
          if (!read_conn(poller, conn, scratch, handlers)) continue;
        }
      }

      process_dirty(poller, handlers);

      if (stop_requested.load(std::memory_order_acquire) && !stopping) {
        // Graceful wind-down: no more accepts or reads, but give the
        // outbound buffers a bounded chance to drain so final events
        // ("shutdown-complete", cancelled results) reach their clients.
        stopping = true;
        winding_down = true;
        poller.remove(listen_fd);
        for (auto& [fd, conn] : by_fd) {
          std::size_t pending = 0;
          {
            std::lock_guard<std::mutex> lock(mutex);
            pending = conn->pending_bytes();
          }
          conn->want_write = pending > 0;
          poller.update(fd, /*read=*/false, /*write=*/conn->want_write);
        }
        flush_deadline = std::chrono::steady_clock::now() +
                         std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(
                                 options.flush_timeout_seconds));
      }
      if (stopping) {
        bool pending = false;
        {
          std::lock_guard<std::mutex> lock(mutex);
          for (const auto& [fd, conn] : by_fd) {
            if (conn->pending_bytes() > 0) pending = true;
          }
        }
        if (!pending || std::chrono::steady_clock::now() >= flush_deadline) {
          break;
        }
      }
    }

    // Teardown on the loop thread: every surviving connection gets its
    // on_close so the session layer can release per-connection state.
    while (!by_fd.empty()) {
      close_conn(Poller_ref{}, by_fd.begin()->second.get(), handlers);
    }
  }

  void accept_all(Poller& poller, const Handlers& handlers) {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;  // EAGAIN or transient error: try next wait
      std::size_t open_now = 0;
      {
        std::lock_guard<std::mutex> lock(mutex);
        open_now = by_id.size();
      }
      if (open_now >= options.max_connections) {
        // Explicit refusal: one typed error line, then close. The
        // counter bumps before close(): a client observing the EOF must
        // already see the refusal in stats().
        [[maybe_unused]] const auto ignored =
            ::send(fd, k_refusal_line.data(), k_refusal_line.size(),
                   MSG_NOSIGNAL | MSG_DONTWAIT);
        {
          std::lock_guard<std::mutex> lock(mutex);
          ++counters.refused;
        }
        ::close(fd);
        continue;
      }
      set_nonblocking(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (options.send_buffer_bytes > 0) {
        ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options.send_buffer_bytes,
                     sizeof(options.send_buffer_bytes));
      }
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      Conn* raw = conn.get();
      {
        std::lock_guard<std::mutex> lock(mutex);
        raw->id = next_id++;
        by_id.emplace(raw->id, raw);
        ++counters.accepted;
        counters.max_connections_seen =
            std::max(counters.max_connections_seen, by_id.size());
      }
      by_fd.emplace(fd, std::move(conn));
      poller.add(fd, /*read=*/true, /*write=*/false);
      if (handlers.on_open) handlers.on_open(raw->id);
    }
  }

  bool read_conn(Poller& poller, Conn* conn, std::vector<char>& scratch,
                 const Handlers& handlers) {
    if (conn->paused || conn->closing) return true;
    const ssize_t count = ::read(conn->fd, scratch.data(), scratch.size());
    if (count == 0) {
      close_conn(poller, conn, handlers);
      return false;
    }
    if (count < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return true;
      }
      close_conn(poller, conn, handlers);
      return false;
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      counters.bytes_in += static_cast<std::uint64_t>(count);
    }
    if (handlers.on_data) {
      handlers.on_data(conn->id,
                       std::string_view(scratch.data(),
                                        static_cast<std::size_t>(count)));
    }
    // on_data may have queued replies (synchronous events) or closed the
    // connection; process_dirty() after the batch applies both.
    return by_fd.count(conn->fd) != 0;
  }

  /// Writes as much pending output as the socket accepts. Returns false
  /// when the connection was closed (error, or a drained `closing`).
  template <typename PollerT>
  bool flush_conn(PollerT&& poller, Conn* conn, const Handlers& handlers) {
    bool fatal = false;
    bool drained_close = false;
    {
      std::lock_guard<std::mutex> lock(mutex);
      while (conn->pending_bytes() > 0) {
        const ssize_t count =
            ::send(conn->fd, conn->outbound.data() + conn->out_offset,
                   conn->pending_bytes(), MSG_NOSIGNAL);
        if (count < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
          fatal = true;
          break;
        }
        conn->out_offset += static_cast<std::size_t>(count);
        counters.bytes_out += static_cast<std::uint64_t>(count);
      }
      if (conn->out_offset == conn->outbound.size()) {
        conn->outbound.clear();
        conn->out_offset = 0;
      } else if (conn->out_offset > (1u << 16)) {
        conn->outbound.erase(0, conn->out_offset);
        conn->out_offset = 0;
      }
      drained_close = conn->closing && conn->pending_bytes() == 0;
    }
    if (fatal || drained_close) {
      close_conn(poller, conn, handlers);
      return false;
    }
    update_interest(poller, conn);
    return true;
  }

  /// Applies backpressure state and poller interest from the current
  /// buffer fill: pause reads above the cap, resume below half of it,
  /// arm EPOLLOUT while anything is pending.
  template <typename PollerT>
  void update_interest(PollerT&& poller, Conn* conn) {
    std::size_t pending = 0;
    {
      std::lock_guard<std::mutex> lock(mutex);
      pending = conn->pending_bytes();
    }
    const bool want_write = pending > 0;
    bool paused = conn->paused;
    if (!paused && pending > options.write_buffer_cap) {
      paused = true;
      std::lock_guard<std::mutex> lock(mutex);
      ++counters.reads_paused;
    } else if (paused && pending < options.write_buffer_cap / 2) {
      paused = false;
    }
    if (want_write != conn->want_write || paused != conn->paused) {
      conn->want_write = want_write;
      conn->paused = paused;
      poller.update(conn->fd,
                    /*read=*/!paused && !conn->closing && !winding_down,
                    want_write);
    }
  }

  void process_dirty(Poller& poller, const Handlers& handlers) {
    std::vector<Connection_id> ids;
    {
      std::lock_guard<std::mutex> lock(mutex);
      ids.swap(dirty);
    }
    for (const Connection_id id : ids) {
      Conn* conn = nullptr;
      {
        std::lock_guard<std::mutex> lock(mutex);
        const auto entry = by_id.find(id);
        if (entry == by_id.end()) continue;
        conn = entry->second;
      }
      flush_conn(poller, conn, handlers);
    }
  }

  /// Poller stand-in for teardown, where the real poller is gone and
  /// only the fd bookkeeping matters.
  struct Poller_ref {
    void update(int, bool, bool) {}
    void remove(int) {}
  };

  template <typename PollerT>
  void close_conn(PollerT&& poller, Conn* conn, const Handlers& handlers) {
    const Connection_id id = conn->id;
    const int fd = conn->fd;
    poller.remove(fd);
    ::close(fd);
    {
      std::lock_guard<std::mutex> lock(mutex);
      by_id.erase(id);
      ++counters.closed;
    }
    by_fd.erase(fd);  // destroys conn
    if (handlers.on_close) handlers.on_close(id);
  }

  Tcp_options options;
  int listen_fd = -1;
  int wake_read = -1;
  int wake_write = -1;
  std::uint16_t bound_port = 0;

  /// Loop-thread-only: fd -> connection ownership.
  std::unordered_map<int, std::unique_ptr<Conn>> by_fd;

  /// Shared with sender threads.
  std::mutex mutex;
  std::unordered_map<Connection_id, Conn*> by_id;
  std::vector<Connection_id> dirty;
  Connection_id next_id = 1;
  Tcp_stats counters;

  /// Loop-thread-only: set once stop() was observed; reads stay off.
  bool winding_down = false;

  std::atomic<bool> stop_requested{false};
};

Tcp_transport::Tcp_transport(Tcp_options options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Tcp_transport::~Tcp_transport() = default;

std::uint16_t Tcp_transport::port() const noexcept {
  return impl_->bound_port;
}

void Tcp_transport::run(const Handlers& handlers) { impl_->run(handlers); }

void Tcp_transport::stop() { impl_->request_stop(); }

bool Tcp_transport::send(Connection_id connection, std::string_view line) {
  return impl_->send(connection, line);
}

void Tcp_transport::close(Connection_id connection) {
  impl_->request_close(connection);
}

Tcp_stats Tcp_transport::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  Tcp_stats snapshot = impl_->counters;
  snapshot.connections = impl_->by_id.size();
  return snapshot;
}

}  // namespace quest::serve
