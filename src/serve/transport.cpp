#include "quest/serve/transport.hpp"

#include <iostream>
#include <string>

namespace quest::serve {

void Stdio_transport::run(const Handlers& handlers) {
  if (handlers.on_open) handlers.on_open(0);
  std::string line;
  while (!stopped_.load(std::memory_order_relaxed) &&
         !closed_.load(std::memory_order_relaxed) &&
         std::getline(std::cin, line)) {
    // Re-attach the newline getline consumed: the session layer frames
    // uniformly over raw bytes, whatever the transport.
    line += '\n';
    if (handlers.on_data) handlers.on_data(0, line);
  }
  if (handlers.on_close) handlers.on_close(0);
}

bool Stdio_transport::send(Connection_id connection, std::string_view line) {
  if (connection != 0 || closed_.load(std::memory_order_relaxed)) {
    return false;
  }
  // One event per line, flushed immediately — byte-identical to the
  // original quest_serve stdout loop.
  std::lock_guard<std::mutex> lock(write_mutex_);
  std::cout << line << std::endl;
  return true;
}

void Stdio_transport::close(Connection_id connection) {
  if (connection != 0) return;
  closed_.store(true, std::memory_order_relaxed);
}

}  // namespace quest::serve
