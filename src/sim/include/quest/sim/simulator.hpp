// quest/sim/simulator.hpp
//
// Discrete-event simulator of a decentralized pipelined query: every
// service runs on its own (virtual) host, processes one tuple at a time,
// groups outputs into blocks, and ships each block directly to the next
// service in the plan — paying the pairwise transfer cost t_{i,j} per
// tuple, exactly the execution model behind Eq. 1.
//
// This is the "simulation experiments" substrate of the reconstruction
// (DESIGN.md): it validates that the bottleneck cost metric predicts the
// per-tuple response time of the modelled execution, and that plan
// rankings under Eq. 1 carry over to simulated makespans (E6, E9).

#pragma once

#include <cstdint>
#include <vector>

#include "quest/model/cost.hpp"
#include "quest/model/cost_model.hpp"
#include "quest/model/instance.hpp"
#include "quest/model/plan.hpp"

namespace quest::sim {

/// How a service decides how many output tuples an input tuple yields.
enum class Selectivity_mode {
  /// Deterministic low-discrepancy accumulator: after k inputs a service
  /// has emitted exactly floor(k * sigma) (+/- 1) outputs. Matches the
  /// expectation with zero variance — the right mode for validating the
  /// cost model.
  deterministic,
  /// Per-tuple randomization: Bernoulli(sigma) for sigma <= 1, plus
  /// floor(sigma) deterministic copies above 1.
  stochastic,
};

/// Shape of the per-tuple processing-cost noise, multiplied onto the
/// service's mean cost as a unit-mean draw — the heavy-tailed world the
/// quantile objectives (objective=p95/p99) and the adaptive fitter's
/// cost-tail estimates are about. `none` keeps costs deterministic
/// (modulo cost_jitter).
enum class Cost_noise { none, lognormal, pareto };

struct Sim_config {
  /// Tuples fed to the first service (all available at time zero).
  std::uint64_t input_tuples = 10'000;
  /// Tuples per transfer block; a block of b tuples occupies the link for
  /// b * t_{i,j} time (the paper: t is "the cost to transmit a block
  /// divided by the number of tuples it contains").
  std::uint64_t block_size = 32;
  /// Cost model the execution follows: the send policy shapes how a
  /// service interleaves processing and block shipping, and a correlated
  /// selectivity structure makes each service emit at its *conditional*
  /// selectivity given the stages before it in the plan.
  model::Cost_model model;
  Selectivity_mode selectivity_mode = Selectivity_mode::deterministic;
  /// Relative jitter on per-tuple processing times (0 = deterministic).
  double cost_jitter = 0.0;
  /// Per-tuple cost-noise multiplier (unit mean, so Eq. 1's mean
  /// prediction is unchanged): lognormal uses `cost_noise_param` as the
  /// log-scale sigma (> 0), pareto as the shape alpha (> 1 — the mean
  /// must exist for the multiplier to be normalizable).
  Cost_noise cost_noise = Cost_noise::none;
  double cost_noise_param = 1.0;
  /// Fixed per-block cost (handshake/latency) added on top of the
  /// per-tuple transfer time; makes the block-size trade-off of E9 real:
  /// effective per-tuple transfer is t + overhead / block_size.
  double per_block_overhead = 0.0;
  std::uint64_t seed = 1;
};

/// Per-service (per plan position) execution metrics.
struct Service_metrics {
  std::uint64_t tuples_in = 0;
  std::uint64_t tuples_out = 0;
  std::uint64_t blocks_sent = 0;
  /// Time spent processing tuples.
  double processing_time = 0.0;
  /// First and second moments of the realized per-tuple processing costs
  /// (model units) — what adapt::Observation_log ingests to estimate a
  /// service's cost distribution without retaining tuples.
  double cost_sum = 0.0;
  double cost_sq_sum = 0.0;
  /// Time spent shipping blocks (occupies the service under the
  /// sequential policy, a separate channel under overlapped).
  double send_time = 0.0;
  /// processing (+ sequential send) time / makespan.
  double utilization = 0.0;
};

struct Sim_result {
  /// Time at which the last service finished shipping its final block.
  double makespan = 0.0;
  /// Tuples that survived all filters and left the last service.
  std::uint64_t tuples_delivered = 0;
  /// makespan / input_tuples: the simulated per-tuple response time that
  /// Eq. 1 predicts as the bottleneck cost.
  double per_tuple_time = 0.0;
  /// Eq. 1 prediction for the same plan, for convenience.
  double predicted_cost = 0.0;
  /// Plan position with the highest utilization.
  std::size_t busiest_position = 0;
  std::vector<Service_metrics> services;
};

/// Runs the pipelined execution of `plan` over `instance`.
/// Preconditions: `plan` is a complete permutation, input_tuples >= 1,
/// block_size >= 1, 0 <= cost_jitter < 1.
Sim_result simulate(const model::Instance& instance, const model::Plan& plan,
                    const Sim_config& config = {});

}  // namespace quest::sim
