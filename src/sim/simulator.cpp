#include "quest/sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "quest/common/error.hpp"
#include "quest/common/rng.hpp"

namespace quest::sim {

using model::Instance;
using model::Plan;
using model::Send_policy;

namespace {

enum class Event_kind { arrival, wake };

struct Event {
  double time;
  std::uint64_t seq;  // FIFO tie-break for equal times
  std::size_t position;
  Event_kind kind;
  std::uint64_t count = 0;  // arrival payload
  bool eos = false;

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

struct Node {
  // static
  double cost = 0.0;
  double selectivity = 0.0;
  double transfer_out = 0.0;  // per-tuple cost to the next hop / sink
  // dynamic
  std::uint64_t queue = 0;
  bool eos_in = false;
  bool done = false;
  double acc = 0.0;  // deterministic-selectivity accumulator
  std::uint64_t out_buffer = 0;
  double busy_until = 0.0;
  double channel_until = 0.0;  // overlapped sends
  Service_metrics metrics;
};

class Simulation {
 public:
  Simulation(const Instance& instance, const Plan& plan,
             const Sim_config& config)
      : instance_(instance),
        config_(config),
        policy_(config.model.policy()),
        rng_(config.seed) {
    QUEST_EXPECTS(plan.is_permutation_of(instance.size()),
                  "simulate requires a complete plan");
    QUEST_EXPECTS(config.input_tuples >= 1, "need at least one input tuple");
    QUEST_EXPECTS(config.block_size >= 1, "block size must be >= 1");
    QUEST_EXPECTS(config.cost_jitter >= 0.0 && config.cost_jitter < 1.0,
                  "cost jitter must be in [0, 1)");
    QUEST_EXPECTS(config.per_block_overhead >= 0.0,
                  "per-block overhead must be non-negative");
    if (config.cost_noise == Cost_noise::lognormal) {
      QUEST_EXPECTS(config.cost_noise_param > 0.0,
                    "lognormal cost-noise sigma must be positive");
    } else if (config.cost_noise == Cost_noise::pareto) {
      QUEST_EXPECTS(config.cost_noise_param > 1.0,
                    "pareto cost-noise alpha must exceed 1 (finite mean)");
    }
    // Before stage_selectivities touches the correlation matrix: a
    // mis-sized model must fail loudly, not index out of bounds.
    config.model.validate_for(instance);
    const std::size_t n = plan.size();
    nodes_.resize(n);
    wake_armed_.assign(n, 0);
    // Per-position conditional selectivities: the plan is fixed, so a
    // correlated model resolves to one effective sigma per stage.
    const std::vector<double> sigmas =
        config.model.stage_selectivities(instance, plan);
    for (std::size_t p = 0; p < n; ++p) {
      const auto& s = instance.service(plan[p]);
      nodes_[p].cost = s.cost;
      nodes_[p].selectivity = sigmas[p];
      nodes_[p].transfer_out = p + 1 < n
                                   ? instance.transfer(plan[p], plan[p + 1])
                                   : instance.sink_transfer(plan[p]);
    }
    predicted_ = model::bottleneck_cost(instance, plan, config.model);
  }

  Sim_result run() {
    // All input tuples are available at time zero, followed by the
    // end-of-stream marker.
    push({0.0, seq_++, 0, Event_kind::arrival, config_.input_tuples, false});
    push({0.0, seq_++, 0, Event_kind::arrival, 0, true});

    while (!events_.empty()) {
      const Event event = events_.top();
      events_.pop();
      Node& node = nodes_[event.position];
      if (event.kind == Event_kind::arrival) {
        node.queue += event.count;
        node.metrics.tuples_in += event.count;
        if (event.eos) node.eos_in = true;
      }
      advance(event.position, event.time);
    }

    Sim_result result;
    result.makespan = makespan_;
    result.tuples_delivered = delivered_;
    result.per_tuple_time =
        makespan_ / static_cast<double>(config_.input_tuples);
    result.predicted_cost = predicted_;
    result.services.reserve(nodes_.size());
    double best_utilization = -1.0;
    for (std::size_t p = 0; p < nodes_.size(); ++p) {
      Service_metrics metrics = nodes_[p].metrics;
      const double busy =
          policy_ == Send_policy::sequential
              ? metrics.processing_time + metrics.send_time
              : std::max(metrics.processing_time, metrics.send_time);
      metrics.utilization = makespan_ > 0.0 ? busy / makespan_ : 0.0;
      if (metrics.utilization > best_utilization) {
        best_utilization = metrics.utilization;
        result.busiest_position = p;
      }
      result.services.push_back(metrics);
    }
    return result;
  }

 private:
  void push(Event event) { events_.push(event); }

  /// Lets the service at `position` make progress at time `now`.
  /// Processes at most one tuple per invocation, then re-arms a wake.
  void advance(std::size_t position, double now) {
    Node& node = nodes_[position];
    if (node.done) return;
    if (node.busy_until > now) {
      // Still busy; the pending wake scheduled at busy_until will return
      // here. (Arrivals during busy periods rely on that wake.)
      if (!wake_armed_[position]) arm_wake(position, node.busy_until);
      return;
    }
    wake_armed_[position] = false;

    if (node.queue > 0) {
      node.queue -= 1;
      double dt = node.cost;
      if (config_.cost_jitter > 0.0) {
        dt *= rng_.uniform(1.0 - config_.cost_jitter,
                           1.0 + config_.cost_jitter);
      }
      dt *= cost_noise_multiplier();
      node.metrics.processing_time += dt;
      node.metrics.cost_sum += dt;
      node.metrics.cost_sq_sum += dt * dt;
      node.busy_until = now + dt;
      const std::uint64_t outputs = emit(node);
      node.out_buffer += outputs;
      node.metrics.tuples_out += outputs;
      if (node.out_buffer >= config_.block_size) {
        send_block(position, node.busy_until);
      }
      arm_wake(position, node.busy_until);
      return;
    }

    if (node.eos_in) {
      // Upstream is exhausted and the queue is drained: flush and forward
      // the end-of-stream marker.
      double eos_time = now;
      if (node.out_buffer > 0) {
        send_block(position, now);
        eos_time = policy_ == Send_policy::sequential
                       ? node.busy_until
                       : node.channel_until;
      } else if (policy_ == Send_policy::overlapped) {
        eos_time = std::max(now, node.channel_until);
      }
      node.done = true;
      if (position + 1 < nodes_.size()) {
        push({eos_time, seq_++, position + 1, Event_kind::arrival, 0, true});
      } else {
        makespan_ = std::max(makespan_, eos_time);
      }
    }
  }

  /// Unit-mean multiplicative noise on one tuple's processing cost.
  double cost_noise_multiplier() {
    switch (config_.cost_noise) {
      case Cost_noise::none:
        return 1.0;
      case Cost_noise::lognormal: {
        const double s = config_.cost_noise_param;
        return rng_.lognormal(-0.5 * s * s, s);
      }
      case Cost_noise::pareto: {
        const double alpha = config_.cost_noise_param;
        return rng_.pareto((alpha - 1.0) / alpha, alpha);
      }
    }
    return 1.0;
  }

  std::uint64_t emit(Node& node) {
    if (config_.selectivity_mode == Selectivity_mode::deterministic) {
      node.acc += node.selectivity;
      const double whole = std::floor(node.acc);
      node.acc -= whole;
      return static_cast<std::uint64_t>(whole);
    }
    const double whole = std::floor(node.selectivity);
    const double frac = node.selectivity - whole;
    return static_cast<std::uint64_t>(whole) +
           (rng_.bernoulli(frac) ? 1u : 0u);
  }

  void send_block(std::size_t position, double start) {
    Node& node = nodes_[position];
    const std::uint64_t block = node.out_buffer;
    node.out_buffer = 0;
    if (block == 0) return;
    const double duration = config_.per_block_overhead +
                            static_cast<double>(block) * node.transfer_out;
    double arrival;
    if (policy_ == Send_policy::sequential) {
      // The single service thread ships the block itself.
      node.busy_until = std::max(node.busy_until, start) + duration;
      arrival = node.busy_until;
    } else {
      const double begin = std::max(node.channel_until, start);
      node.channel_until = begin + duration;
      arrival = node.channel_until;
    }
    node.metrics.send_time += duration;
    node.metrics.blocks_sent += 1;
    if (position + 1 < nodes_.size()) {
      push({arrival, seq_++, position + 1, Event_kind::arrival, block,
            false});
    } else {
      delivered_ += block;
      makespan_ = std::max(makespan_, arrival);
    }
  }

  void arm_wake(std::size_t position, double time) {
    if (wake_armed_[position]) return;
    wake_armed_[position] = true;
    push({time, seq_++, position, Event_kind::wake, 0, false});
  }

  const Instance& instance_;
  Sim_config config_;
  Send_policy policy_ = Send_policy::sequential;
  Rng rng_;
  std::vector<Node> nodes_;
  std::vector<char> wake_armed_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t seq_ = 0;
  std::uint64_t delivered_ = 0;
  double makespan_ = 0.0;
  double predicted_ = 0.0;
};

}  // namespace

Sim_result simulate(const Instance& instance, const Plan& plan,
                    const Sim_config& config) {
  Simulation simulation(instance, plan, config);
  return simulation.run();
}

}  // namespace quest::sim
