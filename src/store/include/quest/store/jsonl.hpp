// quest/store/jsonl.hpp
//
// The durable-state layer's shared JSONL record discipline: every
// line-oriented on-disk format in quest (the snapshot, the cluster
// layer's registration journal) is a sequence of JSON objects, one per
// line, each sealed with a trailing "crc" field — a byte-wise FNV-1a
// checksum over the record serialized *without* that field. Writers seal
// with sealed_line; loaders verify with checked_record; whole files are
// replaced via atomic_write_file's .tmp + rename so readers never see a
// torn file.
//
// Factoring these helpers here keeps exactly one checksum implementation
// (and one hex64 parser, and one atomic-replace path) across every
// format that claims "snapshot-grade" durability — a second hand-rolled
// copy is how checksum semantics silently fork.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "quest/io/json.hpp"

namespace quest::store {

/// Byte-wise FNV-1a over `text` — the per-record checksum of every JSONL
/// format in the store/cluster layers (common/hash.hpp folds 8-byte
/// words; records are text, so the classic byte-wise form fits here).
std::uint64_t jsonl_checksum(std::string_view text);

/// Renders a sealed record line: dump the payload, checksum those exact
/// bytes, then re-dump with "crc" appended last. checked_record strips
/// the trailing "crc" field and re-hashes, so writer and loader agree on
/// the covered bytes by construction.
std::string sealed_line(io::Json record);

/// Parses and checksum-verifies one sealed record line. True only when
/// `text` parses as a JSON object carrying a 16-digit "crc" whose value
/// matches the checksum of the record minus that field; `record` then
/// holds the parsed object (crc included). Never throws on bad input.
bool checked_record(const std::string& text, io::Json& record);

/// Strict 16-digit lower-case hex (the hex64 wire form) -> u64.
bool parse_hex64(const std::string& text, std::uint64_t& value);

/// Replaces `path` atomically: writes `contents` to `path + ".tmp"` and
/// renames into place, so a concurrent reader (or a crash mid-write)
/// sees either the previous file or the new one, never a torn mix.
/// Throws quest::Parse_error on I/O failure.
void atomic_write_file(const std::string& path, std::string_view contents);

}  // namespace quest::store
