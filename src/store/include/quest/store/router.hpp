// quest/store/router.hpp
//
// The fingerprint-sharding front of a quest_serve fleet. A Router speaks
// the ordinary quest_serve wire protocol to its clients over any
// serve::Transport, and forwards each op to the backend that *owns* the
// instance it concerns, where ownership is the consistent-hash mapping of
// the instance's content fingerprint (quest/store/shard_map.hpp). Because
// backends key their plan caches and snapshots by the same fingerprint,
// routing by it means every repeat request for an instance lands on the
// backend holding that instance's warm (and persisted) cache — the router
// is what makes K independent durable stores behave like one.
//
// The router is deliberately thin:
//
//  * register — parses the instance document just far enough to compute
//    its fingerprint, remembers name -> fingerprint, and forwards the raw
//    line to the owning shard. Validation beyond that is the backend's
//    job; its events stream back verbatim.
//  * optimize — resolves the target (registered name, or an inline
//    document fingerprinted on the spot), records id -> shard so a later
//    cancel can follow, and forwards the raw line. optimize_batch is
//    split into individual optimize forwards (elements may hash to
//    different shards); the router emits the batch-admitted event itself.
//  * cancel — forwarded to the shard that took the id; unknown ids get
//    the same found:false event a single server would emit.
//  * stats — fanned out to every reachable backend; the per-shard events
//    are intercepted and merged into one (counters summed, uptime maxed)
//    carrying "shards" / "shards_live" so callers can see fleet health.
//  * shutdown — forwarded to every reachable backend; the router waits
//    for their connections to close, then emits a single merged
//    shutting-down / shutdown-complete pair and stops its transport.
//
// Failure semantics: a backend that is down (unreachable at connect time,
// or whose connection drops mid-flight) sheds with the protocol's typed
// "overloaded" error — for the op being forwarded, and for every id still
// routed at a link that dies. The router reconnects lazily on the next op
// for that shard, so a restarted backend (warm-booting from its snapshot)
// heals without router intervention.
//
// Threading: client bytes arrive on the transport's loop thread, which
// also owns all routing decisions and backend writes. Each live backend
// connection has one reader thread forwarding its event lines to the
// owning client; per-client shared state (id routes, stats merges) is the
// only loop/reader overlap and sits behind a per-client mutex.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "quest/io/json.hpp"
#include "quest/serve/transport.hpp"
#include "quest/store/shard_map.hpp"

namespace quest::store {

/// Configuration of a Router.
struct Router_options {
  /// Backend addresses, "host:port", one per shard; index = shard id.
  std::vector<std::string> backends;
  /// Consistent-hash ring points per shard (Shard_map).
  std::size_t ring_points = 64;
  /// Inbound line cap, mirroring the session layer's overflow handling.
  std::size_t max_line_bytes = 1 << 20;
};

/// The sharding proxy. Construct with a listening transport, then
/// serve(); returns true when a client shutdown op ended the run (the
/// shutdown was forwarded to the fleet first).
class Router {
 public:
  /// Requires at least one backend. Backends are *not* contacted here —
  /// connections are opened lazily per client, per shard, on first use.
  Router(Router_options options, serve::Transport& transport);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Runs the transport loop until stop()/shutdown. Call once.
  bool serve();

 private:
  struct Client;

  /// One client's connection to one backend shard, with a reader thread
  /// pumping backend event lines back to that client.
  struct Link {
    std::size_t shard = 0;
    int fd = -1;
    std::shared_ptr<Client> client;
    std::thread reader;
    /// Set (once) by the reader on EOF/error; link_for replaces a down
    /// link with a fresh connection attempt.
    std::atomic<bool> down{false};
    /// Guarded by client->mutex: this link owes a stats event to the
    /// merge in flight.
    bool merge_member = false;
  };

  /// One front-side client connection and everything routed for it.
  struct Client {
    serve::Connection_id id = 0;
    std::string inbuf;
    bool discarding = false;
    /// Indexed by shard; null until first use, reset on reconnect.
    /// Loop thread only.
    std::vector<std::shared_ptr<Link>> links;

    std::mutex mutex;
    /// Request id -> owning shard, for cancel routing and for failing
    /// in-flight ids when a link dies. Cleaned on cancel, link death,
    /// and (best effort) observed result events.
    std::unordered_map<std::string, std::size_t> routes;
    /// Stats merge in flight: how many links still owe an event, and
    /// the events collected so far.
    std::size_t merge_pending = 0;
    std::vector<io::Json> merge_events;
    /// Shutdown forwarded: readers swallow the per-backend shutdown
    /// events and accumulate their counters here instead.
    bool closing = false;
    double shutdown_outstanding = 0;
    double shutdown_completed = 0;
  };

  void on_open(serve::Connection_id id);
  void on_data(serve::Connection_id id, std::string_view chunk);
  void on_close(serve::Connection_id id);

  /// Routes one complete client line; false ends the serve loop.
  bool handle_line(const std::shared_ptr<Client>& client,
                   std::string_view line);
  void route_optimize(const std::shared_ptr<Client>& client,
                      const io::Json& doc, const std::string& id,
                      std::string_view line);
  void handle_stats(const std::shared_ptr<Client>& client,
                    std::string_view line);
  bool handle_shutdown(const std::shared_ptr<Client>& client,
                       std::string_view line);

  /// Live link to `shard`, connecting (or reconnecting a dead link)
  /// as needed; nullptr when the backend is unreachable.
  std::shared_ptr<Link> link_for(const std::shared_ptr<Client>& client,
                                 std::size_t shard);
  bool forward(const std::shared_ptr<Client>& client, std::size_t shard,
               std::string_view line);
  void shed(const std::shared_ptr<Client>& client, const std::string& id,
            std::size_t shard);
  void teardown_links(const std::shared_ptr<Client>& client);

  void reader_loop(std::shared_ptr<Link> link);
  void handle_backend_line(const std::shared_ptr<Link>& link,
                           std::string_view line);
  void link_down(const std::shared_ptr<Link>& link);
  /// Completes the stats merge; caller holds client->mutex.
  void finish_merge_locked(Client& client);

  Router_options options_;
  serve::Transport& transport_;
  Shard_map map_;
  /// Loop thread only.
  std::unordered_map<serve::Connection_id, std::shared_ptr<Client>> clients_;
  /// Registered name -> instance fingerprint. Loop thread only. Names
  /// registered before a router restart are unknown to the new router;
  /// clients re-register (or send inline documents) after a router
  /// restart — backends dedupe by fingerprint, so re-registration is
  /// idempotent and cache-preserving.
  std::unordered_map<std::string, std::uint64_t> names_;
  bool shutdown_requested_ = false;
};

/// Builds the merged fleet stats event: numeric counters summed
/// ("uptime_seconds" maxed), the nested "cache" object summed fieldwise,
/// plus "shards" (fleet size) and "shards_live" (events merged). Exposed
/// for tests.
io::Json merge_stats_events(const std::vector<io::Json>& events,
                            std::size_t shards);

/// Blocking TCP connect to "host:port" with TCP_NODELAY set; -1 when the
/// address is malformed or the backend unreachable. Shared by the
/// sharding router, the cluster layer's replica router, and its health
/// prober — one dial path, one failure behavior.
int dial_backend(const std::string& address) noexcept;

/// Writes one newline-framed line to a backend socket; false on any
/// write error (callers treat the link as dead). MSG_NOSIGNAL keeps a
/// closed backend from raising SIGPIPE into the process.
bool send_backend_line(int fd, std::string_view line) noexcept;

/// Best-effort id extraction from a backend "result" line, so routers
/// can retire that id's route entry. Result events always start
/// {"event":"result","id":"..." (the builder's field order is fixed);
/// anything else returns empty and the entry stays until cancel or
/// client disconnect — bounded either way.
std::string result_event_id(std::string_view line);

}  // namespace quest::store
