// quest/store/shard_map.hpp
//
// Consistent hashing of instance fingerprints onto K shards — the
// partitioning function behind quest_router. Each shard contributes
// `ring_points` pseudo-random points to a 64-bit hash ring; a fingerprint
// is owned by the shard whose point follows the fingerprint's own hash
// (wrapping at the top of the ring).
//
// The property that matters operationally: growing the fleet from K to
// K+1 shards only moves the keys the new shard's points capture
// (~1/(K+1) of the space); every other fingerprint keeps its owner, and
// with it its backend's warm cache. A modulo mapping would reshuffle
// nearly everything and turn every resize into a fleet-wide cold boot.
//
// Replication extends the same walk: replicas(fingerprint, R) continues
// past the owning point to the first R *distinct* shards, so replica
// sets inherit both determinism and the K -> K+1 movement bound — a new
// shard can only insert itself into a replica list (displacing the
// list's tail), never reshuffle the surviving members.
//
// Ring points and key hashes both derive from the shared FNV-1a
// (quest/common/hash.hpp), so the mapping is deterministic across
// processes — the router and any external tooling agree on ownership
// without coordination.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace quest::store {

/// The fingerprint -> shard mapping. Immutable after construction;
/// cheap to copy; safe to share across threads.
class Shard_map {
 public:
  /// `shards` >= 1 backends, each with `ring_points` >= 1 ring points.
  /// 64 points per shard keeps the expected load imbalance within a few
  /// percent at smoke-test fleet sizes.
  explicit Shard_map(std::size_t shards, std::size_t ring_points = 64);

  /// Owner of `fingerprint`, in [0, shards()). Identical to
  /// replicas(fingerprint, 1).front().
  std::size_t shard_of(std::uint64_t fingerprint) const noexcept;

  /// The first min(count, shards()) *distinct* shards along the ring
  /// from the fingerprint's position — the replica set, primary first.
  /// Element 0 is shard_of(fingerprint) always; deterministic across
  /// processes; growing K -> K+1 can only insert the new shard into the
  /// list (pushing later members back), never reorder survivors.
  std::vector<std::size_t> replicas(std::uint64_t fingerprint,
                                    std::size_t count = 2) const;

  std::size_t shards() const noexcept { return shards_; }
  std::size_t ring_points() const noexcept { return ring_points_; }

 private:
  struct Point {
    std::uint64_t position;
    std::uint32_t shard;
  };

  std::size_t shards_;
  std::size_t ring_points_;
  /// Sorted by position; shard_of binary-searches the successor point.
  std::vector<Point> ring_;
};

}  // namespace quest::store
