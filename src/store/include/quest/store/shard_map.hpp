// quest/store/shard_map.hpp
//
// Consistent hashing of instance fingerprints onto K shards — the
// partitioning function behind quest_router. Each shard contributes
// `replicas` pseudo-random points to a 64-bit hash ring; a fingerprint
// is owned by the shard whose point follows the fingerprint's own hash
// (wrapping at the top of the ring).
//
// The property that matters operationally: growing the fleet from K to
// K+1 shards only moves the keys the new shard's points capture
// (~1/(K+1) of the space); every other fingerprint keeps its owner, and
// with it its backend's warm cache. A modulo mapping would reshuffle
// nearly everything and turn every resize into a fleet-wide cold boot.
//
// Ring points and key hashes both derive from the shared FNV-1a
// (quest/common/hash.hpp), so the mapping is deterministic across
// processes — the router and any external tooling agree on ownership
// without coordination.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace quest::store {

/// The fingerprint -> shard mapping. Immutable after construction;
/// cheap to copy; safe to share across threads.
class Shard_map {
 public:
  /// `shards` >= 1 backends, each with `replicas` >= 1 ring points.
  /// 64 points per shard keeps the expected load imbalance within a few
  /// percent at smoke-test fleet sizes.
  explicit Shard_map(std::size_t shards, std::size_t replicas = 64);

  /// Owner of `fingerprint`, in [0, shards()).
  std::size_t shard_of(std::uint64_t fingerprint) const noexcept;

  std::size_t shards() const noexcept { return shards_; }
  std::size_t replicas() const noexcept { return replicas_; }

 private:
  struct Point {
    std::uint64_t position;
    std::uint32_t shard;
  };

  std::size_t shards_;
  std::size_t replicas_;
  /// Sorted by position; shard_of binary-searches the successor point.
  std::vector<Point> ring_;
};

}  // namespace quest::store
