// quest/store/snapshot.hpp
//
// The durable-state layer's snapshot format: one JSONL file holding the
// serving layer's register-once/optimize-many state — the Instance_store
// plus both tiers of the Plan_cache — so a restarted quest_serve warm
// boots with every exact plan and warm-start seed it had before.
//
// File shape (one JSON object per line):
//
//   {"quest_snapshot":true,"format_version":1,"crc":"<hex16>"}
//   {"type":"instance","name":...,"fingerprint":"<hex16>","doc":{...},
//    "crc":"<hex16>"}
//   {"type":"exact","fingerprint":...,"model_key":...,"engine_spec":...,
//    "budget_class":...,"seed":"<hex16>","plan":[...],
//    "cost_bits":"<hex16>","termination":...,"proven_optimal":...,
//    "crc":"<hex16>"}
//   {"type":"warm","fingerprint":...,"model_key":...,"plan":[...],
//    "cost_bits":"<hex16>","termination":...,"proven_optimal":...,
//    "crc":"<hex16>"}
//
// Costs and seeds are stored as 16-digit hex renderings of their exact
// 64-bit patterns, so a warm-booted cache serves *byte-identical* results
// (no float-formatting round trip on the values that key or answer
// requests).
//
// Trust model: a snapshot is an unauthenticated local file that may be
// stale (written by an older build), torn (the process died mid-write —
// prevented by the atomic rename in write_snapshot, but a copied or
// hand-edited file can still be truncated), or corrupt. Load therefore
// REFUSES rather than trusts, entry by entry:
//
//   * the header line must parse, checksum, and carry the exact
//     k_snapshot_format_version — otherwise every following record is
//     refused (a bumped format is a different contract, not a partially
//     readable one);
//   * each record must checksum (FNV-1a over the record line minus its
//     "crc" field) — truncation and bit flips are refused per record;
//   * instance records must re-parse and re-fingerprint to the stored
//     fingerprint — an instance that hashes differently under this build
//     would silently mis-key every cache entry pointing at it;
//   * cache records must carry a Cost_model::key() that this build
//     *reproduces*: the key is re-parsed as a cost-model spec, re-bound,
//     and re-keyed — if the library's key schema or model semantics
//     changed (or the record was written under a model this build cannot
//     restate, e.g. an explicit-matrix model), the entry is refused,
//     because its plan and cost are not comparable under this build's
//     models;
//   * plans must be complete permutations matching the instance size
//     known for their fingerprint (when the snapshot or store knows it).
//
// Every refusal increments Load_report::stale_refused and is otherwise
// silent: warm boot is an optimization, and a cold cache is always
// correct. Nothing in load_snapshot ever throws on bad file contents.

#pragma once

#include <cstdint>
#include <string>

#include "quest/serve/instance_store.hpp"
#include "quest/serve/plan_cache.hpp"

namespace quest::store {

/// The on-disk format generation. Bump on any incompatible change to the
/// record shapes above; a loader refuses snapshots from any other
/// generation wholesale.
inline constexpr int k_snapshot_format_version = 1;

/// What write_snapshot produced.
struct Write_report {
  /// Records written (header + instances + exact + warm entries).
  std::size_t records = 0;
  /// Size of the snapshot file in bytes.
  std::size_t bytes = 0;
};

/// Serializes the store and both cache tiers to `path`, atomically: the
/// file is written to `path + ".tmp"` and renamed into place, so a
/// concurrent reader (or a crash mid-write) sees either the previous
/// snapshot or the new one, never a torn file. Throws quest::Parse_error
/// on I/O failure (unwritable directory, rename failure).
Write_report write_snapshot(const std::string& path,
                            const serve::Instance_store& store,
                            const serve::Plan_cache& cache);

/// What load_snapshot restored (and refused).
struct Load_report {
  /// False when `path` did not exist — a cold boot, not an error.
  bool file_found = false;
  /// False when the header line was missing, corrupt, or of a different
  /// format version; every data record is then refused.
  bool header_ok = false;
  std::size_t instances_loaded = 0;
  std::size_t exact_loaded = 0;
  std::size_t warm_loaded = 0;
  /// Records refused by the rules in the file comment.
  std::size_t stale_refused = 0;

  /// Entries restored across all three sections.
  std::size_t loaded() const noexcept {
    return instances_loaded + exact_loaded + warm_loaded;
  }
};

/// Restores a snapshot into `store` and `cache` (on top of whatever they
/// already hold — warm boot runs on empty ones). Never throws on bad
/// file contents: anything unreadable or stale is refused per record and
/// counted in the report. A missing file returns file_found == false.
Load_report load_snapshot(const std::string& path,
                          serve::Instance_store& store,
                          serve::Plan_cache& cache);

/// True when this build reproduces `model_key` exactly: the key parses
/// as "<policy>/<cost-model spec>" and re-binding that spec for an
/// n-service instance yields the same Cost_model::key(). The per-record
/// staleness test for cache entries (exposed for tests).
bool model_key_reproducible(const std::string& model_key, std::size_t n);

/// FNV-1a over the bytes of `text`, the per-record checksum (exposed for
/// tests that forge records).
std::uint64_t snapshot_checksum(std::string_view text);

}  // namespace quest::store
