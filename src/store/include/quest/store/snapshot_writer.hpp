// quest/store/snapshot_writer.hpp
//
// Write-behind persistence for the serving layer's durable state: a
// single background thread that periodically snapshots the
// Instance_store and Plan_cache (quest/store/snapshot.hpp) when — and
// only when — they changed since the last write.
//
// Dirty tracking rides on the monotonic version counters both containers
// expose (Instance_store::version, Plan_cache::version): a flush cycle
// reads the versions *before* serializing, writes the snapshot, and
// records those pre-write versions as clean. A mutation racing the write
// bumps the live counter past the recorded one, so the next cycle
// rewrites — a change can be persisted one interval late, never lost
// while the process lives.
//
// stop() (and the destructor) performs a final flush, so a clean
// shutdown — including quest_serve's SIGTERM/SIGINT path — always leaves
// the latest state on disk. Write failures (full disk, unwritable
// directory) are counted and remembered (last_error()), never thrown
// from the background thread: persistence must not take the serving
// process down.
//
// Counters: when constructed with a serve::Durability_counters bundle,
// every successful write bumps snapshot_writes/snapshot_bytes — the
// same counters the Server reports on its "stats" event, which is how
// load tests prove persistence actually engaged.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "quest/serve/instance_store.hpp"
#include "quest/serve/plan_cache.hpp"
#include "quest/serve/server.hpp"

namespace quest::store {

/// Configuration of a Snapshot_writer.
struct Snapshot_writer_options {
  /// Snapshot file path (written atomically via rename).
  std::string path;
  /// Dirty-check cadence. Each cycle writes only when the store or
  /// cache version moved since the last successful write.
  std::chrono::milliseconds interval{5000};
};

/// The write-behind thread. The store and cache must outlive the writer.
/// All public methods are thread-safe.
class Snapshot_writer {
 public:
  /// Starts the background thread. The state as of construction counts
  /// as clean only if `path` already reflects it — callers that warm
  /// boot from `path` first get exactly that for free; otherwise the
  /// first interval writes the initial snapshot (versions start dirty
  /// whenever either container is non-empty and unsnapshotted — the
  /// constructor simply records the current versions after a warm boot,
  /// so pass freshly booted containers).
  Snapshot_writer(Snapshot_writer_options options,
                  const serve::Instance_store& store,
                  const serve::Plan_cache& cache,
                  std::shared_ptr<serve::Durability_counters> counters =
                      nullptr);
  /// stop()s.
  ~Snapshot_writer();

  Snapshot_writer(const Snapshot_writer&) = delete;
  Snapshot_writer& operator=(const Snapshot_writer&) = delete;

  /// Synchronous flush: writes now when dirty (or when `force`), on the
  /// calling thread. Returns true when a snapshot was written.
  bool flush(bool force = false);

  /// Stops the background thread and performs a final flush. Idempotent.
  void stop();

  /// Successful writes so far.
  std::uint64_t writes() const;
  /// Failed writes so far (full disk, unwritable path, ...).
  std::uint64_t failures() const;
  /// Human-readable reason of the most recent failure; empty when none.
  std::string last_error() const;

 private:
  void loop();
  bool flush_locked(bool force);

  Snapshot_writer_options options_;
  const serve::Instance_store& store_;
  const serve::Plan_cache& cache_;
  std::shared_ptr<serve::Durability_counters> counters_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
  bool stopped_ = false;
  /// Versions covered by the last successful write; ~0 = never written,
  /// so the first dirty check fires whenever either container moved off
  /// its constructed state.
  std::uint64_t clean_store_version_ = 0;
  std::uint64_t clean_cache_version_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t failures_ = 0;
  std::string last_error_;

  std::thread thread_;
};

}  // namespace quest::store
