#include "quest/store/jsonl.hpp"

#include <cstdio>

#include "quest/common/error.hpp"
#include "quest/io/fingerprint.hpp"

namespace quest::store {

std::uint64_t jsonl_checksum(std::string_view text) {
  std::uint64_t state = 0xcbf29ce484222325ull;
  for (const char c : text) {
    state ^= static_cast<unsigned char>(c);
    state *= 0x100000001b3ull;
  }
  return state;
}

std::string sealed_line(io::Json record) {
  const std::uint64_t crc = jsonl_checksum(record.dump());
  record.set("crc", io::Json(io::hex64(crc)));
  return record.dump();
}

bool parse_hex64(const std::string& text, std::uint64_t& value) {
  if (text.size() != 16) return false;
  std::uint64_t parsed = 0;
  for (const char c : text) {
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    parsed = (parsed << 4) | static_cast<std::uint64_t>(digit);
  }
  value = parsed;
  return true;
}

bool checked_record(const std::string& text, io::Json& record) {
  try {
    record = io::Json::parse(text);
  } catch (const Error&) {
    return false;  // truncated or corrupt JSON
  }
  if (!record.is_object()) return false;
  const io::Json* crc = record.find("crc");
  if (crc == nullptr || !crc->is_string()) return false;
  std::uint64_t stored_crc = 0;
  if (!parse_hex64(crc->as_string(), stored_crc)) return false;
  io::Json stripped;
  for (const auto& [key, value] : record.as_object()) {
    if (key == "crc") continue;
    stripped.set(key, value);
  }
  return jsonl_checksum(stripped.dump()) == stored_crc;
}

void atomic_write_file(const std::string& path, std::string_view contents) {
  const std::string temp = path + ".tmp";
  io::write_file(temp, contents);
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    throw Parse_error("cannot rename file into place: " + path);
  }
}

}  // namespace quest::store
