#include "quest/store/router.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <utility>

#include "quest/common/error.hpp"
#include "quest/io/fingerprint.hpp"
#include "quest/io/instance_io.hpp"
#include "quest/serve/protocol.hpp"

namespace quest::store {

bool send_backend_line(int fd, std::string_view line) noexcept {
  std::string framed(line);
  framed.push_back('\n');
  std::size_t offset = 0;
  while (offset < framed.size()) {
    const ssize_t n = ::send(fd, framed.data() + offset,
                             framed.size() - offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    offset += static_cast<std::size_t>(n);
  }
  return true;
}

std::string result_event_id(std::string_view line) {
  constexpr std::string_view prefix = "{\"event\":\"result\",\"id\":\"";
  if (line.substr(0, prefix.size()) != prefix) return {};
  const auto rest = line.substr(prefix.size());
  std::string id;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == '\\') return {};  // escaped id: punt, keep the entry
    if (rest[i] == '"') return id;
    id.push_back(rest[i]);
  }
  return {};
}

int dial_backend(const std::string& address) noexcept {
  const auto colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == address.size()) {
    return -1;
  }
  const std::string host = address.substr(0, colon);
  const std::string port = address.substr(colon + 1);

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &results) != 0) {
    return -1;
  }
  int fd = -1;
  for (addrinfo* entry = results; entry != nullptr; entry = entry->ai_next) {
    fd = ::socket(entry->ai_family, entry->ai_socktype, entry->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, entry->ai_addr, entry->ai_addrlen) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      break;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  return fd;
}

io::Json merge_stats_events(const std::vector<io::Json>& events,
                            std::size_t shards) {
  std::vector<std::string> order;
  std::map<std::string, double> sums;
  std::vector<std::string> cache_order;
  std::map<std::string, double> cache_sums;
  bool saw_cache = false;

  for (const io::Json& event : events) {
    if (!event.is_object()) continue;
    for (const auto& [key, value] : event.as_object()) {
      if (key == "event") continue;
      if (key == "cache" && value.is_object()) {
        saw_cache = true;
        for (const auto& [cache_key, cache_value] : value.as_object()) {
          if (!cache_value.is_number()) continue;
          if (cache_sums.find(cache_key) == cache_sums.end()) {
            cache_order.push_back(cache_key);
          }
          cache_sums[cache_key] += cache_value.as_number();
        }
        continue;
      }
      if (!value.is_number()) continue;
      if (sums.find(key) == sums.end()) order.push_back(key);
      if (key == "uptime_seconds") {
        sums[key] = std::max(sums[key], value.as_number());
      } else {
        sums[key] += value.as_number();
      }
    }
  }

  io::Json merged;
  merged.set("event", "stats");
  merged.set("shards", static_cast<double>(shards));
  merged.set("shards_live", static_cast<double>(events.size()));
  for (const std::string& key : order) merged.set(key, sums[key]);
  if (saw_cache) {
    io::Json cache;
    for (const std::string& key : cache_order) cache.set(key, cache_sums[key]);
    merged.set("cache", std::move(cache));
  }
  return merged;
}

Router::Router(Router_options options, serve::Transport& transport)
    : options_(std::move(options)),
      transport_(transport),
      map_(std::max<std::size_t>(options_.backends.size(), 1),
           options_.ring_points) {
  QUEST_EXPECTS(!options_.backends.empty(),
                "router needs at least one backend");
  QUEST_EXPECTS(options_.max_line_bytes >= 2,
                "max_line_bytes must hold at least a tiny op");
}

Router::~Router() {
  // Transport callbacks have stopped by the time a Router dies; tear
  // down whatever links on_close did not get to.
  for (auto& [id, client] : clients_) teardown_links(client);
  clients_.clear();
}

bool Router::serve() {
  serve::Transport::Handlers handlers;
  handlers.on_open = [this](serve::Connection_id id) { on_open(id); };
  handlers.on_data = [this](serve::Connection_id id,
                            std::string_view chunk) { on_data(id, chunk); };
  handlers.on_close = [this](serve::Connection_id id) { on_close(id); };
  transport_.run(handlers);
  return shutdown_requested_;
}

void Router::on_open(serve::Connection_id id) {
  auto client = std::make_shared<Client>();
  client->id = id;
  client->links.resize(options_.backends.size());
  clients_.emplace(id, std::move(client));
}

void Router::on_data(serve::Connection_id id, std::string_view chunk) {
  const auto found = clients_.find(id);
  if (found == clients_.end()) return;
  const std::shared_ptr<Client> client = found->second;

  if (client->discarding) {
    const auto newline = chunk.find('\n');
    if (newline == std::string_view::npos) return;
    client->discarding = false;
    chunk.remove_prefix(newline + 1);
  }
  client->inbuf.append(chunk);

  std::size_t start = 0;
  for (;;) {
    const auto newline = client->inbuf.find('\n', start);
    if (newline == std::string::npos) break;
    const std::string_view line(client->inbuf.data() + start,
                                newline - start);
    start = newline + 1;
    if (line.size() > options_.max_line_bytes) {
      transport_.send(
          id, serve::error_event("request line exceeds " +
                                     std::to_string(options_.max_line_bytes) +
                                     " bytes and was discarded",
                                 {}, "line-overflow")
                  .dump());
      continue;
    }
    if (!handle_line(client, line)) {
      // Shutdown: the fleet has been told, the transport is stopping,
      // and `client` may be torn down by on_close — leave now.
      return;
    }
  }
  client->inbuf.erase(0, start);

  if (client->inbuf.size() > options_.max_line_bytes) {
    transport_.send(
        id, serve::error_event("request line exceeds " +
                                   std::to_string(options_.max_line_bytes) +
                                   " bytes and was discarded",
                               {}, "line-overflow")
                .dump());
    client->inbuf.clear();
    client->inbuf.shrink_to_fit();
    client->discarding = true;
  }
}

void Router::on_close(serve::Connection_id id) {
  const auto found = clients_.find(id);
  if (found == clients_.end()) return;
  teardown_links(found->second);
  clients_.erase(found);
}

void Router::teardown_links(const std::shared_ptr<Client>& client) {
  // Two passes: shut every socket down first so all readers unblock at
  // once, then join and close.
  for (const auto& link : client->links) {
    if (link != nullptr) ::shutdown(link->fd, SHUT_RDWR);
  }
  for (auto& link : client->links) {
    if (link == nullptr) continue;
    if (link->reader.joinable()) link->reader.join();
    ::close(link->fd);
    link.reset();
  }
}

bool Router::handle_line(const std::shared_ptr<Client>& client,
                         std::string_view line) {
  io::Json doc;
  std::string op;
  try {
    doc = io::Json::parse(line);
    op = doc.at("op").as_string();
  } catch (const std::exception& error) {
    transport_.send(client->id,
                    serve::error_event(error.what(), {}, "parse").dump());
    return true;
  }

  if (op == "register") {
    std::string name;
    std::uint64_t print = 0;
    try {
      name = doc.at("name").as_string();
      const io::Instance_document document =
          io::instance_from_json(doc.at("instance"));
      print = io::fingerprint(
          document.instance,
          document.precedence ? &*document.precedence : nullptr);
    } catch (const std::exception& error) {
      transport_.send(client->id,
                      serve::error_event(error.what(), {}, "parse").dump());
      return true;
    }
    const std::size_t shard = map_.shard_of(print);
    if (!forward(client, shard, line)) {
      shed(client, {}, shard);
      return true;
    }
    names_[name] = print;
    return true;
  }

  if (op == "optimize") {
    std::string id;
    if (const io::Json* field = doc.find("id");
        field != nullptr && field->is_string()) {
      id = field->as_string();
    }
    route_optimize(client, doc, id, line);
    return true;
  }

  if (op == "optimize_batch") {
    std::string id;
    if (const io::Json* field = doc.find("id");
        field != nullptr && field->is_string()) {
      id = field->as_string();
    }
    const io::Json* requests = doc.find("requests");
    if (requests == nullptr || !requests->is_array()) {
      transport_.send(
          client->id,
          serve::error_event("optimize_batch needs a \"requests\" array", id,
                             "parse")
              .dump());
      return true;
    }
    const auto& elements = requests->as_array();
    if (elements.size() > serve::k_max_batch_requests) {
      transport_.send(
          client->id,
          serve::error_event(
              "optimize_batch exceeds " +
                  std::to_string(serve::k_max_batch_requests) + " requests",
              id, "parse")
              .dump());
      return true;
    }
    transport_.send(client->id,
                    serve::batch_event(id, elements.size()).dump());
    for (std::size_t index = 0; index < elements.size(); ++index) {
      const io::Json& element = elements[index];
      if (!element.is_object()) {
        transport_.send(client->id,
                        serve::error_event("batch element " +
                                               std::to_string(index) +
                                               " is not an object",
                                           id, "parse")
                            .dump());
        continue;
      }
      // Rebuild the element as a standalone optimize op: elements may
      // hash to different shards, so the batch cannot be forwarded
      // whole. Field order is preserved; "op"/"id" land up front.
      std::string sub_id = id + "/" + std::to_string(index);
      if (const io::Json* field = element.find("id");
          field != nullptr && field->is_string()) {
        sub_id = field->as_string();
      }
      io::Json forward_op;
      forward_op.set("op", "optimize");
      forward_op.set("id", sub_id);
      for (const auto& [key, value] : element.as_object()) {
        if (key == "op" || key == "id") continue;
        forward_op.set(key, value);
      }
      route_optimize(client, forward_op, sub_id, forward_op.dump());
    }
    return true;
  }

  if (op == "cancel") {
    std::string id;
    try {
      id = doc.at("id").as_string();
    } catch (const std::exception& error) {
      transport_.send(client->id,
                      serve::error_event(error.what(), {}, "parse").dump());
      return true;
    }
    std::size_t shard = 0;
    bool routed = false;
    {
      std::lock_guard<std::mutex> lock(client->mutex);
      const auto route = client->routes.find(id);
      if (route != client->routes.end()) {
        shard = route->second;
        routed = true;
        client->routes.erase(route);
      }
    }
    if (!routed) {
      transport_.send(client->id, serve::cancel_event(id, false).dump());
      return true;
    }
    if (!forward(client, shard, line)) shed(client, id, shard);
    return true;
  }

  if (op == "stats") {
    handle_stats(client, line);
    return true;
  }

  if (op == "shutdown") {
    return handle_shutdown(client, line);
  }

  transport_.send(
      client->id,
      serve::error_event("unknown op \"" + op + "\"", {}, "parse").dump());
  return true;
}

void Router::route_optimize(const std::shared_ptr<Client>& client,
                            const io::Json& doc, const std::string& id,
                            std::string_view line) {
  const io::Json* instance = doc.find("instance");
  if (instance == nullptr) {
    transport_.send(
        client->id,
        serve::error_event("optimize needs an \"instance\"", id, "parse")
            .dump());
    return;
  }
  std::uint64_t print = 0;
  if (instance->is_string()) {
    const auto found = names_.find(instance->as_string());
    if (found == names_.end()) {
      transport_.send(
          client->id,
          serve::error_event("unknown instance \"" + instance->as_string() +
                                 "\" — register it through this router first",
                             id, "parse")
              .dump());
      return;
    }
    print = found->second;
  } else {
    try {
      const io::Instance_document document = io::instance_from_json(*instance);
      print = io::fingerprint(
          document.instance,
          document.precedence ? &*document.precedence : nullptr);
    } catch (const std::exception& error) {
      transport_.send(client->id,
                      serve::error_event(error.what(), id, "parse").dump());
      return;
    }
  }
  const std::size_t shard = map_.shard_of(print);
  if (!id.empty()) {
    std::lock_guard<std::mutex> lock(client->mutex);
    client->routes[id] = shard;
  }
  if (!forward(client, shard, line)) {
    if (!id.empty()) {
      std::lock_guard<std::mutex> lock(client->mutex);
      client->routes.erase(id);
    }
    shed(client, id, shard);
  }
}

void Router::handle_stats(const std::shared_ptr<Client>& client,
                          std::string_view line) {
  std::vector<std::shared_ptr<Link>> members;
  for (std::size_t shard = 0; shard < options_.backends.size(); ++shard) {
    if (auto link = link_for(client, shard)) members.push_back(link);
  }
  if (members.empty()) {
    transport_.send(client->id,
                    serve::error_event("all backend shards are unreachable",
                                       {}, "overloaded")
                        .dump());
    return;
  }
  {
    std::lock_guard<std::mutex> lock(client->mutex);
    if (client->merge_pending > 0) {
      transport_.send(
          client->id,
          serve::error_event("a stats merge is already in flight; retry", {})
              .dump());
      return;
    }
    client->merge_pending = members.size();
    client->merge_events.clear();
    for (const auto& member : members) member->merge_member = true;
  }
  for (const auto& member : members) {
    if (!send_backend_line(member->fd, line)) {
      // The reader's EOF path retires this link's share of the merge.
      ::shutdown(member->fd, SHUT_RDWR);
    }
  }
}

bool Router::handle_shutdown(const std::shared_ptr<Client>& client,
                             std::string_view line) {
  {
    std::lock_guard<std::mutex> lock(client->mutex);
    client->closing = true;
  }
  for (std::size_t shard = 0; shard < options_.backends.size(); ++shard) {
    const auto link = link_for(client, shard);
    if (link == nullptr) continue;
    if (!send_backend_line(link->fd, line)) ::shutdown(link->fd, SHUT_RDWR);
  }
  // Backends exit after their shutdown-complete; readers see EOF and
  // return. Joining here (readers keep forwarding drain-mode results
  // while we wait) bounds the wait by the fleet's own drain time.
  teardown_links(client);

  double outstanding = 0;
  double completed = 0;
  {
    std::lock_guard<std::mutex> lock(client->mutex);
    outstanding = client->shutdown_outstanding;
    completed = client->shutdown_completed;
  }
  io::Json down;
  down.set("event", "shutting-down");
  down.set("outstanding", outstanding);
  transport_.send(client->id, down.dump());
  io::Json done;
  done.set("event", "shutdown-complete");
  done.set("completed", completed);
  transport_.send(client->id, done.dump());

  shutdown_requested_ = true;
  transport_.stop();
  return false;
}

std::shared_ptr<Router::Link> Router::link_for(
    const std::shared_ptr<Client>& client, std::size_t shard) {
  auto& slot = client->links[shard];
  if (slot != nullptr && !slot->down.load(std::memory_order_acquire)) {
    return slot;
  }
  if (slot != nullptr) {
    // Dead link: its reader has exited (down is set on the way out);
    // reap it and try a fresh connection — this is the heal path after
    // a backend restart.
    if (slot->reader.joinable()) slot->reader.join();
    ::close(slot->fd);
    slot.reset();
  }
  const int fd = dial_backend(options_.backends[shard]);
  if (fd < 0) return nullptr;
  auto link = std::make_shared<Link>();
  link->shard = shard;
  link->fd = fd;
  link->client = client;
  link->reader = std::thread([this, link] { reader_loop(link); });
  slot = link;
  return link;
}

bool Router::forward(const std::shared_ptr<Client>& client, std::size_t shard,
                     std::string_view line) {
  const auto link = link_for(client, shard);
  if (link == nullptr) return false;
  if (!send_backend_line(link->fd, line)) {
    ::shutdown(link->fd, SHUT_RDWR);
    return false;
  }
  return true;
}

void Router::shed(const std::shared_ptr<Client>& client, const std::string& id,
                  std::size_t shard) {
  transport_.send(
      client->id,
      serve::error_event("backend shard " + std::to_string(shard) + " (" +
                             options_.backends[shard] +
                             ") is unavailable; retry later",
                         id, "overloaded")
          .dump());
}

void Router::reader_loop(std::shared_ptr<Link> link) {
  std::string buffer;
  char chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(link->fd, chunk, sizeof chunk);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const auto newline = buffer.find('\n', start);
      if (newline == std::string::npos) break;
      std::string_view line(buffer.data() + start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      handle_backend_line(link, line);
    }
    buffer.erase(0, start);
  }
  link_down(link);
}

void Router::handle_backend_line(const std::shared_ptr<Link>& link,
                                 std::string_view line) {
  const std::shared_ptr<Client>& client = link->client;
  {
    std::lock_guard<std::mutex> lock(client->mutex);
    if (link->merge_member || client->closing) {
      // Only now is parsing worth it: this line may be a stats event
      // owed to a merge, or a per-backend shutdown event to fold into
      // the single pair the router emits.
      try {
        io::Json event = io::Json::parse(line);
        const io::Json* tag = event.find("event");
        const std::string kind =
            tag != nullptr && tag->is_string() ? tag->as_string() : "";
        if (link->merge_member && kind == "stats") {
          link->merge_member = false;
          client->merge_events.push_back(std::move(event));
          if (client->merge_events.size() >= client->merge_pending) {
            finish_merge_locked(*client);
          }
          return;
        }
        if (client->closing &&
            (kind == "shutting-down" || kind == "shutdown-complete")) {
          const char* field =
              kind == "shutting-down" ? "outstanding" : "completed";
          double count = 0;
          if (const io::Json* value = event.find(field);
              value != nullptr && value->is_number()) {
            count = value->as_number();
          }
          (kind == "shutting-down" ? client->shutdown_outstanding
                                   : client->shutdown_completed) += count;
          return;
        }
      } catch (const std::exception&) {
        // Unparseable backend line: forward verbatim below.
      }
    }
  }
  const std::string finished = result_event_id(line);
  if (!finished.empty()) {
    std::lock_guard<std::mutex> lock(client->mutex);
    client->routes.erase(finished);
  }
  transport_.send(client->id, line);
}

void Router::link_down(const std::shared_ptr<Link>& link) {
  if (link->down.exchange(true, std::memory_order_acq_rel)) return;
  const std::shared_ptr<Client>& client = link->client;
  std::vector<std::string> failed;
  {
    std::lock_guard<std::mutex> lock(client->mutex);
    for (auto route = client->routes.begin();
         route != client->routes.end();) {
      if (route->second == link->shard) {
        failed.push_back(route->first);
        route = client->routes.erase(route);
      } else {
        ++route;
      }
    }
    if (link->merge_member) {
      link->merge_member = false;
      if (client->merge_pending > 0) --client->merge_pending;
      if (client->merge_pending == 0) {
        client->merge_events.clear();
        transport_.send(client->id,
                        serve::error_event(
                            "all backend shards dropped during stats merge",
                            {}, "overloaded")
                            .dump());
      } else if (client->merge_events.size() >= client->merge_pending) {
        finish_merge_locked(*client);
      }
    }
  }
  for (const std::string& id : failed) {
    transport_.send(
        client->id,
        serve::error_event("backend shard " + std::to_string(link->shard) +
                               " (" + options_.backends[link->shard] +
                               ") dropped; request abandoned — retry later",
                           id, "overloaded")
            .dump());
  }
}

void Router::finish_merge_locked(Client& client) {
  const io::Json merged =
      merge_stats_events(client.merge_events, options_.backends.size());
  client.merge_pending = 0;
  client.merge_events.clear();
  transport_.send(client.id, merged.dump());
}

}  // namespace quest::store
