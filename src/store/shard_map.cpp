#include "quest/store/shard_map.hpp"

#include <algorithm>

#include "quest/common/error.hpp"
#include "quest/common/hash.hpp"

namespace quest::store {

namespace {

std::uint64_t ring_point(std::uint64_t shard, std::uint64_t replica) {
  Fnv1a hash;
  hash.mix(shard);
  hash.mix(replica);
  return hash.digest();
}

std::uint64_t key_position(std::uint64_t fingerprint) {
  // One extra mixing round decorrelates the ring positions from raw
  // fingerprint structure (fingerprints are themselves FNV digests, but
  // external callers may feed arbitrary 64-bit keys).
  Fnv1a hash;
  hash.mix(fingerprint);
  return hash.digest();
}

}  // namespace

Shard_map::Shard_map(std::size_t shards, std::size_t ring_points)
    : shards_(shards), ring_points_(ring_points) {
  QUEST_EXPECTS(shards >= 1, "shard map needs at least one shard");
  QUEST_EXPECTS(ring_points >= 1, "shard map needs at least one ring point");
  ring_.reserve(shards * ring_points);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    for (std::size_t point = 0; point < ring_points; ++point) {
      ring_.push_back(
          Point{ring_point(shard, point), static_cast<std::uint32_t>(shard)});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    // Position ties (vanishingly rare) break by shard id so the mapping
    // stays independent of construction order.
    return a.position != b.position ? a.position < b.position
                                    : a.shard < b.shard;
  });
}

std::size_t Shard_map::shard_of(std::uint64_t fingerprint) const noexcept {
  const std::uint64_t position = key_position(fingerprint);
  const auto successor = std::lower_bound(
      ring_.begin(), ring_.end(), position,
      [](const Point& point, std::uint64_t key) {
        return point.position < key;
      });
  return successor != ring_.end() ? successor->shard : ring_.front().shard;
}

std::vector<std::size_t> Shard_map::replicas(std::uint64_t fingerprint,
                                             std::size_t count) const {
  std::vector<std::size_t> owners;
  if (count == 0) return owners;
  owners.reserve(std::min(count, shards_));
  const std::uint64_t position = key_position(fingerprint);
  const auto successor = std::lower_bound(
      ring_.begin(), ring_.end(), position,
      [](const Point& point, std::uint64_t key) {
        return point.position < key;
      });
  // Walk the whole ring once, wrapping at the top; every point visits its
  // shard in the same order shard_of would, so owners.front() is the
  // shard_of owner and later entries are the next distinct shards along
  // the walk.
  const std::size_t start =
      successor != ring_.end()
          ? static_cast<std::size_t>(successor - ring_.begin())
          : 0;
  for (std::size_t step = 0;
       step < ring_.size() && owners.size() < std::min(count, shards_);
       ++step) {
    const std::size_t shard = ring_[(start + step) % ring_.size()].shard;
    if (std::find(owners.begin(), owners.end(), shard) == owners.end()) {
      owners.push_back(shard);
    }
  }
  return owners;
}

}  // namespace quest::store
