#include "quest/store/shard_map.hpp"

#include <algorithm>

#include "quest/common/error.hpp"
#include "quest/common/hash.hpp"

namespace quest::store {

namespace {

std::uint64_t ring_point(std::uint64_t shard, std::uint64_t replica) {
  Fnv1a hash;
  hash.mix(shard);
  hash.mix(replica);
  return hash.digest();
}

std::uint64_t key_position(std::uint64_t fingerprint) {
  // One extra mixing round decorrelates the ring positions from raw
  // fingerprint structure (fingerprints are themselves FNV digests, but
  // external callers may feed arbitrary 64-bit keys).
  Fnv1a hash;
  hash.mix(fingerprint);
  return hash.digest();
}

}  // namespace

Shard_map::Shard_map(std::size_t shards, std::size_t replicas)
    : shards_(shards), replicas_(replicas) {
  QUEST_EXPECTS(shards >= 1, "shard map needs at least one shard");
  QUEST_EXPECTS(replicas >= 1, "shard map needs at least one replica");
  ring_.reserve(shards * replicas);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    for (std::size_t replica = 0; replica < replicas; ++replica) {
      ring_.push_back(Point{ring_point(shard, replica),
                            static_cast<std::uint32_t>(shard)});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    // Position ties (vanishingly rare) break by shard id so the mapping
    // stays independent of construction order.
    return a.position != b.position ? a.position < b.position
                                    : a.shard < b.shard;
  });
}

std::size_t Shard_map::shard_of(std::uint64_t fingerprint) const noexcept {
  const std::uint64_t position = key_position(fingerprint);
  const auto successor = std::lower_bound(
      ring_.begin(), ring_.end(), position,
      [](const Point& point, std::uint64_t key) {
        return point.position < key;
      });
  return successor != ring_.end() ? successor->shard : ring_.front().shard;
}

}  // namespace quest::store
