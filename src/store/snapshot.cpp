#include "quest/store/snapshot.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "quest/common/error.hpp"
#include "quest/common/hash.hpp"
#include "quest/io/fingerprint.hpp"
#include "quest/io/instance_io.hpp"
#include "quest/io/json.hpp"
#include "quest/model/cost_model.hpp"
#include "quest/store/jsonl.hpp"

namespace quest::store {

namespace {

const char* const k_termination_names[] = {
    "optimal", "completed", "budget-exhausted", "cancelled",
    "cost-target-reached"};
const opt::Termination k_terminations[] = {
    opt::Termination::optimal, opt::Termination::completed,
    opt::Termination::budget_exhausted, opt::Termination::cancelled,
    opt::Termination::cost_target_reached};

bool parse_termination(const std::string& text, opt::Termination& result) {
  for (std::size_t i = 0; i < std::size(k_terminations); ++i) {
    if (text == k_termination_names[i]) {
      result = k_terminations[i];
      return true;
    }
  }
  return false;
}

io::Json header_record() {
  io::Json header;
  header.set("quest_snapshot", io::Json(true));
  header.set("format_version", io::Json(k_snapshot_format_version));
  return header;
}

io::Json plan_to_json(const model::Plan& plan) {
  io::Json array;
  for (const model::Service_id id : plan) {
    array.push_back(io::Json(static_cast<std::size_t>(id)));
  }
  return array;
}

/// Shared fields of exact and warm records (everything but the key).
void set_plan_fields(io::Json& record, const serve::Cached_plan& value) {
  record.set("plan", plan_to_json(value.plan));
  record.set("cost_bits",
             io::Json(hex64(std::bit_cast<std::uint64_t>(value.cost))));
  record.set("termination", io::Json(opt::to_string(value.termination)));
  record.set("proven_optimal", io::Json(value.proven_optimal));
}

/// Parses and validates the shared plan fields of a cache record.
/// `instance_sizes` maps fingerprints whose instance is known (from this
/// snapshot or the pre-existing store) to their service count.
bool read_plan_fields(
    const io::Json& record, std::uint64_t fingerprint,
    const std::unordered_map<std::uint64_t, std::size_t>& instance_sizes,
    serve::Cached_plan& value) {
  const io::Json* plan_field = record.find("plan");
  const io::Json* cost_field = record.find("cost_bits");
  const io::Json* termination_field = record.find("termination");
  const io::Json* optimal_field = record.find("proven_optimal");
  if (plan_field == nullptr || !plan_field->is_array() ||
      cost_field == nullptr || !cost_field->is_string() ||
      termination_field == nullptr || !termination_field->is_string() ||
      optimal_field == nullptr || !optimal_field->is_bool()) {
    return false;
  }

  std::vector<model::Service_id> order;
  order.reserve(plan_field->as_array().size());
  for (const io::Json& element : plan_field->as_array()) {
    if (!element.is_number()) return false;
    const double number = element.as_number();
    if (number < 0.0 || number != std::floor(number)) return false;
    order.push_back(static_cast<model::Service_id>(number));
  }
  model::Plan plan(std::move(order));
  // Only complete plans are cacheable; and when the instance behind this
  // fingerprint is known, the plan must be sized for it.
  if (plan.empty() || !plan.is_permutation_of(plan.size())) return false;
  if (const auto known = instance_sizes.find(fingerprint);
      known != instance_sizes.end() && plan.size() != known->second) {
    return false;
  }

  std::uint64_t cost_bits = 0;
  if (!parse_hex64(cost_field->as_string(), cost_bits)) return false;
  const double cost = std::bit_cast<double>(cost_bits);
  if (!std::isfinite(cost) || cost < 0.0) return false;

  opt::Termination termination = opt::Termination::completed;
  if (!parse_termination(termination_field->as_string(), termination)) {
    return false;
  }

  value.plan = std::move(plan);
  value.cost = cost;
  value.termination = termination;
  value.proven_optimal = optimal_field->as_bool();
  return true;
}

/// Plain string field accessor; empty optional-style via bool return.
bool get_string(const io::Json& record, std::string_view key,
                std::string& out) {
  const io::Json* field = record.find(key);
  if (field == nullptr || !field->is_string()) return false;
  out = field->as_string();
  return true;
}

bool get_hex64(const io::Json& record, std::string_view key,
               std::uint64_t& out) {
  std::string text;
  return get_string(record, key, text) && parse_hex64(text, out);
}

}  // namespace

std::uint64_t snapshot_checksum(std::string_view text) {
  // One checksum for every JSONL format (snapshot, registration
  // journal): the shared store/jsonl.hpp implementation.
  return jsonl_checksum(text);
}

bool model_key_reproducible(const std::string& model_key, std::size_t n) {
  const auto slash = model_key.find('/');
  if (slash == std::string::npos || n == 0) return false;
  try {
    const model::Cost_model_spec spec = model::parse_cost_model_spec(
        std::string_view(model_key).substr(slash + 1),
        std::string_view(model_key).substr(0, slash));
    return spec.bind(n).key() == model_key;
  } catch (const Error&) {
    // Unparseable key: written by a different build's key schema, or a
    // model the wire grammar cannot restate (explicit-matrix models).
    return false;
  }
}

Write_report write_snapshot(const std::string& path,
                            const serve::Instance_store& store,
                            const serve::Plan_cache& cache) {
  Write_report report;
  std::string contents;
  const auto append = [&](std::string line) {
    contents += line;
    contents += '\n';
    ++report.records;
  };

  append(sealed_line(header_record()));

  // Instances first: the loader learns fingerprint -> size from them
  // before it validates the cache records that reference them.
  for (const auto& entry : store.entries()) {
    io::Json record;
    record.set("type", io::Json("instance"));
    record.set("name", io::Json(entry->name));
    record.set("fingerprint", io::Json(hex64(entry->fingerprint)));
    record.set("doc",
               io::to_json(entry->instance, entry->precedence_ptr()));
    append(sealed_line(std::move(record)));
  }

  const serve::Plan_cache::Contents contents_export = cache.contents();
  for (const auto& [key, value] : contents_export.exact) {
    io::Json record;
    record.set("type", io::Json("exact"));
    record.set("fingerprint", io::Json(hex64(key.fingerprint)));
    record.set("model_key", io::Json(key.model_key));
    record.set("engine_spec", io::Json(key.engine_spec));
    record.set("budget_class", io::Json(key.budget_class));
    record.set("seed", io::Json(hex64(key.seed)));
    set_plan_fields(record, value);
    append(sealed_line(std::move(record)));
  }
  for (const auto& warm : contents_export.warm) {
    io::Json record;
    record.set("type", io::Json("warm"));
    record.set("fingerprint", io::Json(hex64(warm.fingerprint)));
    record.set("model_key", io::Json(warm.model_key));
    set_plan_fields(record, warm.value);
    append(sealed_line(std::move(record)));
  }

  // Atomic rename-into-place: a crash between write and rename leaves
  // the previous snapshot intact; readers never see a torn file.
  atomic_write_file(path, contents);
  report.bytes = contents.size();
  return report;
}

Load_report load_snapshot(const std::string& path,
                          serve::Instance_store& store,
                          serve::Plan_cache& cache) {
  Load_report report;

  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) return report;  // cold boot — not an error
  report.file_found = true;

  std::vector<std::string> lines;
  std::string line;
  while (std::getline(file, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    lines.push_back(std::move(line));
  }

  // A record is admissible only if it parses, checksums (the shared
  // store/jsonl.hpp checked_record covers that stage), and re-derives
  // (fingerprint, model key, plan shape) under this build.

  // Header: anything less than a bit-exact, current-version header
  // refuses the entire file, record by record.
  {
    io::Json header;
    bool ok = !lines.empty() && checked_record(lines.front(), header);
    if (ok) {
      const io::Json* magic = header.find("quest_snapshot");
      const io::Json* version = header.find("format_version");
      ok = magic != nullptr && magic->is_bool() && magic->as_bool() &&
           version != nullptr && version->is_number() &&
           version->as_number() ==
               static_cast<double>(k_snapshot_format_version);
    }
    if (!ok) {
      report.stale_refused += lines.empty() ? 1 : lines.size();
      return report;
    }
    report.header_ok = true;
  }

  // Fingerprint -> service count for every instance this process can
  // see, so cache records are validated against real instance sizes.
  std::unordered_map<std::uint64_t, std::size_t> instance_sizes;
  for (const auto& entry : store.entries()) {
    instance_sizes.emplace(entry->fingerprint, entry->instance.size());
  }

  for (std::size_t i = 1; i < lines.size(); ++i) {
    io::Json record;
    if (!checked_record(lines[i], record)) {
      ++report.stale_refused;
      continue;
    }
    std::string type;
    if (!get_string(record, "type", type)) {
      ++report.stale_refused;
      continue;
    }

    if (type == "instance") {
      std::string name;
      std::uint64_t stored_fingerprint = 0;
      const io::Json* doc = record.find("doc");
      if (!get_string(record, "name", name) || name.empty() ||
          !get_hex64(record, "fingerprint", stored_fingerprint) ||
          doc == nullptr) {
        ++report.stale_refused;
        continue;
      }
      try {
        io::Instance_document document = io::instance_from_json(*doc);
        const std::uint64_t derived = io::fingerprint(
            document.instance,
            document.precedence ? &*document.precedence : nullptr);
        if (derived != stored_fingerprint) {
          // This build hashes the instance differently: every cache
          // entry keyed by the stored fingerprint would be mis-keyed.
          ++report.stale_refused;
          continue;
        }
        instance_sizes.emplace(derived, document.instance.size());
        store.put(std::move(name), std::move(document.instance),
                  std::move(document.precedence));
        ++report.instances_loaded;
      } catch (const std::exception&) {
        ++report.stale_refused;  // malformed instance document
      }
      continue;
    }

    if (type == "exact" || type == "warm") {
      std::uint64_t fingerprint = 0;
      std::string model_key;
      serve::Cached_plan value;
      if (!get_hex64(record, "fingerprint", fingerprint) ||
          !get_string(record, "model_key", model_key) ||
          !read_plan_fields(record, fingerprint, instance_sizes, value) ||
          !model_key_reproducible(model_key, value.plan.size())) {
        ++report.stale_refused;
        continue;
      }
      if (type == "warm") {
        cache.remember_best(fingerprint, model_key, std::move(value));
        ++report.warm_loaded;
        continue;
      }
      serve::Cache_key key;
      key.fingerprint = fingerprint;
      key.model_key = std::move(model_key);
      if (!get_string(record, "engine_spec", key.engine_spec) ||
          key.engine_spec.empty() ||
          !get_string(record, "budget_class", key.budget_class) ||
          key.budget_class.empty() ||
          !get_hex64(record, "seed", key.seed)) {
        ++report.stale_refused;
        continue;
      }
      // A cancelled termination never belongs in the exact tier (the
      // write side keeps those warm-only); refuse rather than replay
      // one client's cancellation to future requests.
      if (value.termination == opt::Termination::cancelled) {
        ++report.stale_refused;
        continue;
      }
      cache.insert(key, std::move(value));
      ++report.exact_loaded;
      continue;
    }

    ++report.stale_refused;  // unknown record type
  }
  return report;
}

}  // namespace quest::store
