#include "quest/store/snapshot_writer.hpp"

#include <utility>

#include "quest/common/error.hpp"
#include "quest/store/snapshot.hpp"

namespace quest::store {

Snapshot_writer::Snapshot_writer(
    Snapshot_writer_options options, const serve::Instance_store& store,
    const serve::Plan_cache& cache,
    std::shared_ptr<serve::Durability_counters> counters)
    : options_(std::move(options)),
      store_(store),
      cache_(cache),
      counters_(std::move(counters)),
      // The construction-time state counts as clean: the canonical
      // sequence is "load_snapshot, then attach the writer", and
      // rewriting what was just read would double every boot's I/O.
      // Anything that mutates after this line marks dirty.
      clean_store_version_(store.version()),
      clean_cache_version_(cache.version()) {
  QUEST_EXPECTS(!options_.path.empty(), "snapshot writer needs a path");
  QUEST_EXPECTS(options_.interval.count() > 0,
                "snapshot interval must be positive");
  thread_ = std::thread([this] { loop(); });
}

Snapshot_writer::~Snapshot_writer() { stop(); }

void Snapshot_writer::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    wake_.wait_for(lock, options_.interval,
                   [this] { return stopping_; });
    if (stopping_) break;
    flush_locked(/*force=*/false);
  }
}

bool Snapshot_writer::flush_locked(bool force) {
  // Versions are read *before* serializing: a mutation racing the write
  // bumps the live counter past these, so the next cycle re-persists it.
  const std::uint64_t store_version = store_.version();
  const std::uint64_t cache_version = cache_.version();
  const bool dirty = store_version != clean_store_version_ ||
                     cache_version != clean_cache_version_;
  if (!dirty && !force) return false;
  try {
    const Write_report report =
        write_snapshot(options_.path, store_, cache_);
    clean_store_version_ = store_version;
    clean_cache_version_ = cache_version;
    ++writes_;
    last_error_.clear();
    if (counters_ != nullptr) {
      counters_->snapshot_writes.fetch_add(1, std::memory_order_relaxed);
      counters_->snapshot_bytes.fetch_add(report.bytes,
                                          std::memory_order_relaxed);
    }
    return true;
  } catch (const std::exception& error) {
    ++failures_;
    last_error_ = error.what();
    return false;
  }
}

bool Snapshot_writer::flush(bool force) {
  std::lock_guard<std::mutex> lock(mutex_);
  return flush_locked(force);
}

void Snapshot_writer::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  stopped_ = true;
  // The final flush: whatever changed since the last periodic write
  // reaches disk before the process exits.
  flush_locked(/*force=*/false);
}

std::uint64_t Snapshot_writer::writes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return writes_;
}

std::uint64_t Snapshot_writer::failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failures_;
}

std::string Snapshot_writer::last_error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_error_;
}

}  // namespace quest::store
