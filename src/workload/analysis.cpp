#include "quest/workload/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "quest/common/stats.hpp"

namespace quest::workload {

using model::Instance;
using model::Service_id;

Instance_profile analyze(const Instance& instance) {
  Instance_profile profile;
  const std::size_t n = instance.size();
  profile.services = n;

  Running_stats sigma_stats;
  Running_stats cost_stats;
  double log_sigma_sum = 0.0;
  bool zero_sigma = false;
  std::size_t expanding = 0;
  for (Service_id u = 0; u < n; ++u) {
    const double sigma = instance.selectivity(u);
    sigma_stats.add(sigma);
    cost_stats.add(instance.cost(u));
    if (sigma > 1.0) ++expanding;
    if (sigma > 0.0) {
      log_sigma_sum += std::log(sigma);
    } else {
      zero_sigma = true;
    }
  }
  profile.selectivity_min = sigma_stats.min();
  profile.selectivity_max = sigma_stats.max();
  profile.selectivity_geomean =
      zero_sigma ? 0.0 : std::exp(log_sigma_sum / static_cast<double>(n));
  profile.expanding_fraction =
      static_cast<double>(expanding) / static_cast<double>(n);
  profile.cost_mean = cost_stats.mean();

  Running_stats transfer_stats;
  double t_min = std::numeric_limits<double>::infinity();
  double t_max = 0.0;
  for (Service_id i = 0; i < n; ++i) {
    for (Service_id j = 0; j < n; ++j) {
      if (i == j) continue;
      const double t = instance.transfer(i, j);
      transfer_stats.add(t);
      t_min = std::min(t_min, t);
      t_max = std::max(t_max, t);
    }
  }
  if (transfer_stats.count() > 0) {
    profile.transfer_mean = transfer_stats.mean();
    profile.transfer_cv = transfer_stats.mean() > 0.0
                              ? transfer_stats.stddev() / transfer_stats.mean()
                              : 0.0;
    profile.transfer_spread =
        t_min > 0.0 ? t_max / t_min
                    : (t_max > 0.0
                           ? std::numeric_limits<double>::infinity()
                           : 1.0);
  } else {
    // Single-service instance: no links.
    profile.transfer_spread = 1.0;
  }

  const double sigma_bar = sigma_stats.mean();
  const double denominator =
      profile.cost_mean + sigma_bar * profile.transfer_mean;
  profile.communication_share =
      denominator > 0.0 ? sigma_bar * profile.transfer_mean / denominator
                        : 0.0;

  if (profile.expanding_fraction > 0.0) {
    profile.regime = Hardness_regime::expanding;
  } else if (profile.selectivity_geomean >= 0.8) {
    profile.regime = Hardness_regime::near_tsp;
  } else {
    profile.regime = Hardness_regime::selective;
  }
  return profile;
}

std::string to_string(Hardness_regime regime) {
  switch (regime) {
    case Hardness_regime::selective:
      return "selective";
    case Hardness_regime::near_tsp:
      return "near-tsp";
    case Hardness_regime::expanding:
      return "expanding";
  }
  return "unknown";
}

}  // namespace quest::workload
