#include "quest/workload/generators.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "quest/common/error.hpp"

namespace quest::workload {

using model::Instance;
using model::Service;
using model::Service_id;

namespace {

std::vector<Service> make_services(std::size_t n, double cost_min,
                                   double cost_max, double sel_min,
                                   double sel_max, Rng& rng) {
  QUEST_EXPECTS(n >= 1, "generator needs n >= 1");
  QUEST_EXPECTS(cost_min >= 0.0 && cost_min <= cost_max,
                "invalid cost range");
  QUEST_EXPECTS(sel_min >= 0.0 && sel_min <= sel_max,
                "invalid selectivity range");
  std::vector<Service> services(n);
  for (std::size_t i = 0; i < n; ++i) {
    services[i].cost = rng.uniform(cost_min, cost_max);
    services[i].selectivity = rng.uniform(sel_min, sel_max);
    services[i].name = "WS" + std::to_string(i);
  }
  return services;
}

}  // namespace

Instance make_uniform(const Uniform_spec& spec, Rng& rng) {
  QUEST_EXPECTS(spec.transfer_min >= 0.0 &&
                    spec.transfer_min <= spec.transfer_max,
                "invalid transfer range");
  QUEST_EXPECTS(spec.sink_min >= 0.0 && spec.sink_min <= spec.sink_max,
                "invalid sink range");
  auto services =
      make_services(spec.n, spec.cost_min, spec.cost_max,
                    spec.selectivity_min, spec.selectivity_max, rng);
  Matrix<double> transfer = Matrix<double>::square(spec.n, 0.0);
  for (std::size_t i = 0; i < spec.n; ++i) {
    for (std::size_t j = spec.symmetric ? i + 1 : 0; j < spec.n; ++j) {
      if (i == j) continue;
      const double t = rng.uniform(spec.transfer_min, spec.transfer_max);
      transfer(i, j) = t;
      if (spec.symmetric) transfer(j, i) = t;
    }
  }
  std::vector<double> sink(spec.n, 0.0);
  if (spec.sink_max > 0.0) {
    for (auto& s : sink) s = rng.uniform(spec.sink_min, spec.sink_max);
  }
  return Instance(std::move(services), std::move(transfer), std::move(sink),
                  "uniform");
}

Instance make_clustered(const Clustered_spec& spec, Rng& rng) {
  QUEST_EXPECTS(spec.clusters >= 1, "need at least one cluster");
  QUEST_EXPECTS(spec.intra_transfer >= 0.0 && spec.inter_transfer >= 0.0,
                "transfer costs must be non-negative");
  QUEST_EXPECTS(spec.jitter >= 0.0 && spec.jitter < 1.0,
                "jitter must be in [0, 1)");
  auto services =
      make_services(spec.n, spec.cost_min, spec.cost_max,
                    spec.selectivity_min, spec.selectivity_max, rng);
  std::vector<std::size_t> cluster_of(spec.n);
  for (auto& c : cluster_of) {
    c = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::uint64_t>(spec.clusters)));
  }
  Matrix<double> transfer = Matrix<double>::square(spec.n, 0.0);
  for (std::size_t i = 0; i < spec.n; ++i) {
    for (std::size_t j = 0; j < spec.n; ++j) {
      if (i == j) continue;
      const double base = cluster_of[i] == cluster_of[j]
                              ? spec.intra_transfer
                              : spec.inter_transfer;
      transfer(i, j) =
          base * rng.uniform(1.0 - spec.jitter, 1.0 + spec.jitter);
    }
  }
  return Instance(std::move(services), std::move(transfer), {}, "clustered");
}

Instance make_euclidean(const Euclidean_spec& spec, Rng& rng) {
  QUEST_EXPECTS(spec.scale >= 0.0, "scale must be non-negative");
  QUEST_EXPECTS(spec.noise >= 0.0 && spec.noise < 1.0,
                "noise must be in [0, 1)");
  auto services =
      make_services(spec.n, spec.cost_min, spec.cost_max,
                    spec.selectivity_min, spec.selectivity_max, rng);
  std::vector<std::pair<double, double>> host(spec.n);
  for (auto& [x, y] : host) {
    x = rng.uniform();
    y = rng.uniform();
  }
  Matrix<double> transfer = Matrix<double>::square(spec.n, 0.0);
  for (std::size_t i = 0; i < spec.n; ++i) {
    for (std::size_t j = i + 1; j < spec.n; ++j) {
      const double dx = host[i].first - host[j].first;
      const double dy = host[i].second - host[j].second;
      const double distance = std::sqrt(dx * dx + dy * dy) / std::sqrt(2.0);
      const double t = spec.scale * distance *
                       rng.uniform(1.0 - spec.noise, 1.0 + spec.noise);
      transfer(i, j) = t;
      transfer(j, i) = t;
    }
  }
  return Instance(std::move(services), std::move(transfer), {}, "euclidean");
}

Instance make_heterogeneous(const Heterogeneity_spec& spec, Rng& rng) {
  QUEST_EXPECTS(spec.heterogeneity >= 0.0 && spec.heterogeneity <= 1.0,
                "heterogeneity must be in [0, 1]");
  QUEST_EXPECTS(spec.transfer_min >= 0.0 &&
                    spec.transfer_min <= spec.transfer_max,
                "invalid transfer range");
  auto services =
      make_services(spec.n, spec.cost_min, spec.cost_max,
                    spec.selectivity_min, spec.selectivity_max, rng);
  const double h = spec.heterogeneity;
  Matrix<double> transfer = Matrix<double>::square(spec.n, 0.0);
  for (std::size_t i = 0; i < spec.n; ++i) {
    for (std::size_t j = 0; j < spec.n; ++j) {
      if (i == j) continue;
      const double random_t =
          rng.uniform(spec.transfer_min, spec.transfer_max);
      transfer(i, j) = (1.0 - h) * spec.t_base + h * random_t;
    }
  }
  return Instance(std::move(services), std::move(transfer), {},
                  "heterogeneous");
}

Instance make_bottleneck_tsp(const Bottleneck_tsp_spec& spec, Rng& rng) {
  QUEST_EXPECTS(spec.transfer_min >= 0.0 &&
                    spec.transfer_min <= spec.transfer_max,
                "invalid transfer range");
  std::vector<Service> services(spec.n);
  for (std::size_t i = 0; i < spec.n; ++i) {
    services[i].cost = 0.0;
    services[i].selectivity = 1.0;
    services[i].name = "city" + std::to_string(i);
  }
  Matrix<double> transfer = Matrix<double>::square(spec.n, 0.0);
  for (std::size_t i = 0; i < spec.n; ++i) {
    for (std::size_t j = spec.symmetric ? i + 1 : 0; j < spec.n; ++j) {
      if (i == j) continue;
      const double t = rng.uniform(spec.transfer_min, spec.transfer_max);
      transfer(i, j) = t;
      if (spec.symmetric) transfer(j, i) = t;
    }
  }
  return Instance(std::move(services), std::move(transfer), {},
                  "bottleneck-tsp");
}

Instance make_heavy_tailed(const Heavy_tail_spec& spec, Rng& rng) {
  QUEST_EXPECTS(spec.n >= 1, "generator needs n >= 1");
  QUEST_EXPECTS(spec.pareto_alpha > 0.0, "pareto alpha must be positive");
  QUEST_EXPECTS(spec.lognormal_sigma >= 0.0,
                "lognormal sigma must be non-negative");
  QUEST_EXPECTS(spec.selectivity_scale > 0.0 &&
                    spec.selectivity_scale <= spec.selectivity_cap,
                "invalid selectivity scale/cap");
  QUEST_EXPECTS(spec.cost_scale > 0.0 && spec.cost_scale <= spec.cost_cap,
                "invalid cost scale/cap");
  QUEST_EXPECTS(spec.transfer_min >= 0.0 &&
                    spec.transfer_min <= spec.transfer_max,
                "invalid transfer range");

  // One draw >= `scale`, median `scale * 2^(1/alpha)` for Pareto and
  // exactly `scale` for lognormal; both capped.
  auto draw = [&](double scale, double cap) {
    double value;
    if (spec.tail == Tail_family::pareto) {
      // Inverse CDF with u in (0, 1]: scale * u^(-1/alpha).
      const double u = 1.0 - rng.uniform();
      value = scale * std::pow(u, -1.0 / spec.pareto_alpha);
    } else {
      value = scale * rng.lognormal(0.0, spec.lognormal_sigma);
    }
    return std::min(value, cap);
  };

  std::vector<Service> services(spec.n);
  for (std::size_t i = 0; i < spec.n; ++i) {
    services[i].cost = draw(spec.cost_scale, spec.cost_cap);
    services[i].selectivity =
        draw(spec.selectivity_scale, spec.selectivity_cap);
    services[i].name = "WS" + std::to_string(i);
  }
  Matrix<double> transfer = Matrix<double>::square(spec.n, 0.0);
  for (std::size_t i = 0; i < spec.n; ++i) {
    for (std::size_t j = 0; j < spec.n; ++j) {
      if (i != j) {
        transfer(i, j) = rng.uniform(spec.transfer_min, spec.transfer_max);
      }
    }
  }
  return Instance(std::move(services), std::move(transfer), {},
                  spec.tail == Tail_family::pareto ? "heavy-pareto"
                                                   : "heavy-lognormal");
}

constraints::Precedence_graph make_random_dag(std::size_t n, double density,
                                              Rng& rng) {
  QUEST_EXPECTS(density >= 0.0 && density <= 1.0,
                "density must be in [0, 1]");
  constraints::Precedence_graph graph(n);
  // A random relabeling hides the id order so edge direction does not
  // correlate with service ids.
  const auto label = rng.permutation(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(density)) {
        graph.add_edge(static_cast<Service_id>(label[i]),
                       static_cast<Service_id>(label[j]));
      }
    }
  }
  return graph;
}

}  // namespace quest::workload
