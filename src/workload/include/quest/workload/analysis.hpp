// quest/workload/analysis.hpp
//
// Instance analysis: the structural statistics that predict how the
// problem behaves — selectivity decay (drives Lemma-2 closures), link
// heterogeneity (drives the gap to the centralized optimum), expansion
// (drives search hardness). Used by bench footers, examples, and anyone
// deciding between the exact search and a heuristic.

#pragma once

#include <string>

#include "quest/model/instance.hpp"

namespace quest::workload {

/// Search-hardness regimes, in increasing order of expected effort.
enum class Hardness_regime {
  selective,  ///< geometric-mean sigma well below 1: closures fire early
  near_tsp,   ///< sigma concentrated near 1: bottleneck-TSP-like
  expanding,  ///< sigma > 1 present: the hardest regime (see E4)
};

struct Instance_profile {
  std::size_t services = 0;
  /// Geometric mean of the selectivities (0 if any sigma is 0).
  double selectivity_geomean = 0.0;
  double selectivity_min = 0.0;
  double selectivity_max = 0.0;
  /// Share of services with sigma > 1.
  double expanding_fraction = 0.0;
  /// Coefficient of variation (stddev / mean) of the off-diagonal
  /// transfer costs: 0 = flat network (the centralized special case),
  /// larger = more to gain from decentralization-aware ordering.
  double transfer_cv = 0.0;
  /// Mean off-diagonal transfer cost (the t-bar of uniform-opt).
  double transfer_mean = 0.0;
  /// max/min off-diagonal transfer ratio (infinity when min is 0).
  double transfer_spread = 0.0;
  /// Mean processing cost.
  double cost_mean = 0.0;
  /// Share of the mean stage term contributed by transfers
  /// (sigma-bar * t-bar / (c-bar + sigma-bar * t-bar)): communication-bound
  /// instances reward decentralized planning the most.
  double communication_share = 0.0;
  Hardness_regime regime = Hardness_regime::selective;
};

/// Computes the profile; O(n^2).
Instance_profile analyze(const model::Instance& instance);

/// Human-readable regime name ("selective", "near-tsp", "expanding").
std::string to_string(Hardness_regime regime);

}  // namespace quest::workload
