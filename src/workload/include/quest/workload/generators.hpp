// quest/workload/generators.hpp
//
// Synthetic problem-instance generators. These stand in for the paper's
// unavailable experimental workloads (see DESIGN.md, substitutions): each
// generator produces the structural feature a given experiment needs —
// heterogeneous links, clustered hosts, selectivity regimes, pure
// bottleneck-TSP structure — from an explicit 64-bit seed.

#pragma once

#include <cstddef>

#include "quest/common/rng.hpp"
#include "quest/constraints/precedence.hpp"
#include "quest/model/instance.hpp"

namespace quest::workload {

/// Independent-uniform instance: costs, selectivities and (asymmetric)
/// transfer costs drawn i.i.d. from the given ranges.
struct Uniform_spec {
  std::size_t n = 8;
  double cost_min = 0.5;
  double cost_max = 10.0;
  double selectivity_min = 0.1;
  double selectivity_max = 1.0;
  double transfer_min = 0.1;
  double transfer_max = 5.0;
  /// Force t_{i,j} == t_{j,i}.
  bool symmetric = false;
  /// Per-service transfer cost back to the query originator; both zero
  /// (the paper's Eq. 1) by default.
  double sink_min = 0.0;
  double sink_max = 0.0;
};

model::Instance make_uniform(const Uniform_spec& spec, Rng& rng);

/// Services placed on hosts grouped into clusters (data centers): cheap
/// intra-cluster links, expensive inter-cluster links, multiplicative
/// jitter. The canonical "decentralization matters" topology (E5).
struct Clustered_spec {
  std::size_t n = 12;
  std::size_t clusters = 3;
  double intra_transfer = 0.2;
  double inter_transfer = 4.0;
  /// Relative jitter: each link is scaled by U[1-jitter, 1+jitter].
  double jitter = 0.25;
  double cost_min = 0.5;
  double cost_max = 10.0;
  double selectivity_min = 0.1;
  double selectivity_max = 1.0;
};

model::Instance make_clustered(const Clustered_spec& spec, Rng& rng);

/// Hosts embedded in the unit square; transfer cost proportional to
/// Euclidean distance plus noise. Symmetric, roughly metric.
struct Euclidean_spec {
  std::size_t n = 12;
  double scale = 5.0;   ///< cost of crossing the whole square
  double noise = 0.05;  ///< relative per-link noise
  double cost_min = 0.5;
  double cost_max = 10.0;
  double selectivity_min = 0.1;
  double selectivity_max = 1.0;
};

model::Instance make_euclidean(const Euclidean_spec& spec, Rng& rng);

/// The E5 heterogeneity knob: every link interpolates between a flat
/// network (h = 0: all links equal t_base) and a fully random one (h = 1:
/// links i.i.d. in [transfer_min, transfer_max]).
struct Heterogeneity_spec {
  std::size_t n = 10;
  double heterogeneity = 0.5;  ///< h in [0, 1]
  double t_base = 2.0;
  double transfer_min = 0.1;
  double transfer_max = 5.0;
  double cost_min = 0.5;
  double cost_max = 10.0;
  double selectivity_min = 0.1;
  double selectivity_max = 1.0;
};

model::Instance make_heterogeneous(const Heterogeneity_spec& spec, Rng& rng);

/// The paper's hardness reduction (E7): selectivities 1, costs 0 — the
/// bottleneck cost metric degenerates to the largest link in the path, and
/// optimal ordering becomes bottleneck TSP (path variant).
struct Bottleneck_tsp_spec {
  std::size_t n = 10;
  double transfer_min = 1.0;
  double transfer_max = 100.0;
  bool symmetric = true;
};

model::Instance make_bottleneck_tsp(const Bottleneck_tsp_spec& spec,
                                    Rng& rng);

/// Heavy-tailed selectivity and cost regime: most services are cheap,
/// near-transparent filters while a few are extreme — the distributional
/// shape real service catalogs show, and the stress test for Eq. 1's
/// independence assumption when combined with a correlated cost model
/// (the "new workloads" ROADMAP item). Draws are capped so instances stay
/// finite-cost and the branch-and-bound's bounds stay meaningful.
enum class Tail_family {
  pareto,     ///< x_min * U^(-1/alpha): alpha <= 2 has infinite variance
  lognormal,  ///< exp(Normal(mu, s)): moderate tail, always finite moments
};

struct Heavy_tail_spec {
  std::size_t n = 12;
  Tail_family tail = Tail_family::pareto;
  /// Pareto shape; smaller = heavier tail (1.5 is very heavy).
  double pareto_alpha = 1.5;
  /// Lognormal log-scale sigma (mu is chosen so the median is `scale`).
  double lognormal_sigma = 1.0;
  /// Median-ish scale and hard cap of the selectivity draws. With
  /// cap > 1, occasional expanding services appear.
  double selectivity_scale = 0.2;
  double selectivity_cap = 3.0;
  /// Scale and cap of the per-tuple cost draws.
  double cost_scale = 1.0;
  double cost_cap = 50.0;
  /// Transfer costs stay uniform: the tail lives in the services.
  double transfer_min = 0.1;
  double transfer_max = 5.0;
};

model::Instance make_heavy_tailed(const Heavy_tail_spec& spec, Rng& rng);

/// Random DAG over n services: for every pair i < j under a random
/// relabeling, edge with probability `density`. density 0 = unconstrained;
/// 1 = a total order (one feasible plan).
constraints::Precedence_graph make_random_dag(std::size_t n, double density,
                                              Rng& rng);

}  // namespace quest::workload
