// quest/workload/scenarios.hpp
//
// Hand-built, named scenarios used by the examples and integration tests.
// credit_screening() is the paper's own motivating example (Section 1);
// the others are realistic WS-workflow shapes from the literature the
// paper builds on (WS-DBMS pipelines a la Srivastava et al.).

#pragma once

#include "quest/constraints/precedence.hpp"
#include "quest/model/instance.hpp"

namespace quest::workload {

/// A named scenario: an instance plus (possibly empty) precedence
/// constraints.
struct Scenario {
  model::Instance instance;
  constraints::Precedence_graph precedence;
  std::string description;
};

/// The paper's Section-1 example, extended to a 6-service screening
/// pipeline over three data centers:
///   0 card-lookup      sigma 3.2  (person -> credit card numbers, expands)
///   1 payment-history  sigma 0.3  (keeps good payers)
///   2 fraud-blacklist  sigma 0.92
///   3 address-verify   sigma 0.75
///   4 income-estimate  sigma 1.0  (pure enrichment)
///   5 risk-score       sigma 0.55
/// card-lookup must precede risk-score (the score needs card numbers).
Scenario credit_screening();

/// An astronomy cross-matching pipeline: all services selective, spread
/// over two sites with a slow cross-site link; source-extraction precedes
/// everything else.
Scenario sky_survey();

/// A log-analytics pipeline with one expanding service (session
/// reconstruction) and heterogeneous cloud-region links.
Scenario log_analytics();

}  // namespace quest::workload
