#include "quest/workload/scenarios.hpp"

#include <utility>
#include <vector>

namespace quest::workload {

using model::Instance;
using model::Service;
using quest::Matrix;

namespace {

/// Builds a transfer matrix from per-service data-center ids with fixed
/// intra/inter costs modulated by a deterministic per-pair variation, so
/// scenarios are reproducible without an RNG.
Matrix<double> site_matrix(const std::vector<int>& site, double intra,
                           double inter) {
  const std::size_t n = site.size();
  Matrix<double> t = Matrix<double>::square(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double base = site[i] == site[j] ? intra : inter;
      // Deterministic +-15% variation per ordered pair.
      const double wiggle =
          1.0 +
          0.15 * (static_cast<double>((i * 7 + j * 13) % 11) / 5.0 - 1.0);
      t(i, j) = base * wiggle;
    }
  }
  return t;
}

}  // namespace

Scenario credit_screening() {
  std::vector<Service> services = {
      {1.8, 3.2, "card-lookup"},     {0.9, 0.30, "payment-history"},
      {0.5, 0.92, "fraud-blacklist"}, {1.2, 0.75, "address-verify"},
      {2.5, 1.0, "income-estimate"},  {1.6, 0.55, "risk-score"},
  };
  // Three data centers: {0,1} | {2,3} | {4,5}.
  const std::vector<int> site = {0, 0, 1, 1, 2, 2};
  Instance instance(std::move(services), site_matrix(site, 0.25, 3.5), {},
                    "credit-screening");
  constraints::Precedence_graph precedence(instance.size());
  precedence.add_edge(0, 5);  // risk-score consumes card numbers
  return {std::move(instance), std::move(precedence),
          "Customer screening: find credit cards of applicants with a good "
          "payment history (the paper's Section-1 example)"};
}

Scenario sky_survey() {
  std::vector<Service> services = {
      {3.0, 0.60, "source-extract"}, {1.1, 0.85, "dedup"},
      {2.2, 0.40, "cross-match"},    {0.8, 0.70, "quality-filter"},
      {4.5, 0.25, "classify"},       {1.4, 0.90, "photometry"},
      {0.6, 0.95, "astrometry"},
  };
  const std::vector<int> site = {0, 0, 1, 0, 1, 1, 0};
  Instance instance(std::move(services), site_matrix(site, 0.15, 6.0), {},
                    "sky-survey");
  constraints::Precedence_graph precedence(instance.size());
  for (model::Service_id v = 1; v < instance.size(); ++v) {
    precedence.add_edge(0, v);  // everything needs extracted sources
  }
  precedence.add_edge(1, 2);  // cross-match after dedup
  return {std::move(instance), std::move(precedence),
          "Astronomy survey pipeline across two sites with a slow "
          "cross-site link"};
}

Scenario log_analytics() {
  std::vector<Service> services = {
      {0.4, 0.50, "parse"},          {0.7, 2.4, "sessionize"},
      {1.5, 0.35, "bot-filter"},     {2.1, 0.80, "geo-enrich"},
      {0.9, 0.65, "anomaly-detect"}, {1.2, 0.45, "pii-scrub"},
      {3.4, 0.30, "aggregate"},      {0.5, 0.75, "dedupe"},
  };
  const std::vector<int> site = {0, 1, 1, 2, 0, 2, 1, 0};
  Instance instance(std::move(services), site_matrix(site, 0.3, 2.8), {},
                    "log-analytics");
  constraints::Precedence_graph precedence(instance.size());
  precedence.add_edge(0, 1);  // sessionize needs parsed records
  precedence.add_edge(1, 6);  // aggregate consumes sessions
  return {std::move(instance), std::move(precedence),
          "Click-stream analytics with one expanding service "
          "(sessionization, sigma > 1) across three cloud regions"};
}

}  // namespace quest::workload
