// The tentpole acceptance test for the adaptive loop, end to end on the
// real virtual-clock executor: a hidden correlated model drives
// executions, the observation log sees only per-stage tuple counts, the
// fitter reconstructs a model, and re-optimizing under the fit must land
// within 5% of the plan an oracle holding the hidden model would pick —
// over 20 seeds. The falsification flag must also be right in both
// directions: correlated truths trip it, independent truths never do.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "quest/adapt/model_fitter.hpp"
#include "quest/adapt/observation_log.hpp"
#include "quest/core/engines.hpp"
#include "quest/model/cost.hpp"
#include "quest/model/cost_model.hpp"
#include "quest/runtime/choreography.hpp"
#include "support/generators.hpp"
#include "support/helpers.hpp"

namespace quest::adapt {
namespace {

using model::Cost_model;
using model::Instance;
using model::Plan;

constexpr std::size_t k_seeds = 20;
constexpr std::size_t k_runs = 30;
constexpr std::uint64_t k_tuples = 8'000;

/// Executes `runs` random plans of `instance` on the virtual-clock
/// executor under `hidden` and returns the resulting observation log.
Observation_log observe_executions(const Instance& instance,
                                   const Cost_model& hidden,
                                   std::size_t runs, Rng& rng) {
  Observation_log log(instance.size());
  runtime::Runtime_config config;
  config.input_tuples = k_tuples;
  config.clock_mode = runtime::Clock_mode::virtual_time;
  config.model = hidden;
  for (std::size_t r = 0; r < runs; ++r) {
    const Plan plan = test::gen_plan(rng, instance.size());
    const runtime::Runtime_result result =
        runtime::execute(instance, plan, config);
    log.record_run(plan, result.tuples_in, result.tuples_out);
  }
  return log;
}

double optimal_cost_under(const Instance& instance, const Cost_model& model,
                          Plan* plan_out = nullptr) {
  opt::Request request;
  request.instance = &instance;
  request.model = model;
  const opt::Result result = core::make_optimizer("bnb")->optimize(request);
  EXPECT_TRUE(result.proven_optimal);
  if (plan_out != nullptr) *plan_out = result.plan;
  return result.cost;
}

TEST(Adapt_round_trip, fitted_replan_is_within_5_percent_of_oracle) {
  for (std::uint64_t seed = 1; seed <= k_seeds; ++seed) {
    Rng rng(seed * 7919);
    const Instance instance = test::gen_instance(rng, 7, 0.4, 0.9);
    const Cost_model hidden = Cost_model::correlated_seeded(
        instance.size(), rng.uniform(0.6, 1.0), rng());

    Observation_log log = observe_executions(instance, hidden, k_runs, rng);
    const Model_fitter fitter;
    const Fit_report report = fitter.fit(log);
    EXPECT_TRUE(report.independent_falsified)
        << "seed " << seed << ": a strength>=0.6 correlated truth must "
        << "falsify independence (max |log gamma| = "
        << report.max_abs_log_gamma << ")";

    const Cost_model fitted =
        fitter.to_spec(report, hidden.policy(), model::Objective::mean)
            .bind(instance.size());

    Plan fitted_plan;
    optimal_cost_under(instance, fitted, &fitted_plan);
    const double fitted_true_cost =
        model::bottleneck_cost(instance, fitted_plan, hidden);
    const double oracle_cost = optimal_cost_under(instance, hidden);

    EXPECT_LE(fitted_true_cost, 1.05 * oracle_cost)
        << "seed " << seed << ": plan optimized under the fitted model "
        << "costs " << fitted_true_cost << " under the hidden truth; the "
        << "oracle achieves " << oracle_cost;
  }
}

TEST(Adapt_round_trip, independent_truth_is_never_falsified) {
  for (std::uint64_t seed = 1; seed <= k_seeds; ++seed) {
    Rng rng(seed * 104729);
    const Instance instance = test::gen_instance(rng, 7, 0.4, 0.9);
    const Cost_model hidden =
        Cost_model::independent(test::gen_policy(rng));

    Observation_log log = observe_executions(instance, hidden, k_runs, rng);
    const Fit_report report = Model_fitter().fit(log);
    EXPECT_FALSE(report.independent_falsified)
        << "seed " << seed << ": max |log gamma| = "
        << report.max_abs_log_gamma;
  }
}

}  // namespace
}  // namespace quest::adapt
