// Property tests of the fit round trip (tests/support/property.hpp):
// across hundreds of generated hidden models, the fitter must recover the
// parameters it was shown — and must *not* hallucinate structure that is
// not there.
//
// Laws:
//   1. Parameter recovery — observations synthesized from a known
//      explicit-matrix correlated model give back every well-sampled
//      interaction factor and marginal within a tight log-space bound.
//   2. No false falsification — on observations drawn from an
//      *independent* model with realistic binomial sampling noise at
//      large tuple counts, `independent_falsified` stays off.
//   3. Guaranteed falsification — a hidden model with a strong
//      interaction (gamma = 3) is flagged.
//   4. Spec round trip — the fitted spec re-parses through the public
//      grammar to an identical model key (snapshot reproducibility).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "quest/adapt/model_fitter.hpp"
#include "quest/adapt/observation_log.hpp"
#include "quest/model/cost_model.hpp"
#include "support/generators.hpp"
#include "support/property.hpp"
#include "support/synthetic_runs.hpp"

namespace quest::adapt {
namespace {

using model::Cost_model;
using model::Cost_model_spec;
using model::Service_id;
using test::Property_config;

/// One generated round-trip case: a hidden explicit-matrix model over a
/// random instance, plus the seed that drives the observation plans.
struct Fit_case {
  std::size_t n = 0;
  Cost_model_spec hidden_spec;
  std::uint64_t instance_seed = 0;
  std::uint64_t plan_seed = 0;
};

Fit_case gen_fit_case(Rng& rng, double log_spread) {
  Fit_case c;
  c.n = static_cast<std::size_t>(rng.uniform_int(3, 6));
  c.hidden_spec = test::gen_matrix_spec(rng, c.n, log_spread);
  c.instance_seed = rng();
  c.plan_seed = rng();
  return c;
}

/// Shrinks by pulling interaction factors toward 1 — a surviving
/// counterexample names the interactions that actually break the fit.
std::vector<Fit_case> shrink_fit_case(const Fit_case& c) {
  std::vector<Fit_case> out;
  for (auto& spec : test::shrink_matrix_spec(c.hidden_spec)) {
    Fit_case smaller = c;
    smaller.hidden_spec = std::move(spec);
    out.push_back(std::move(smaller));
  }
  return out;
}

Fit_report fit_synthetic(const Fit_case& c, std::size_t runs,
                         std::uint64_t tuples, Rng* noise) {
  Rng instance_rng(c.instance_seed);
  const model::Instance instance =
      test::gen_instance(instance_rng, c.n, 0.3, 0.9);
  const Cost_model hidden = c.hidden_spec.bind(c.n);
  Observation_log log(c.n);
  Rng plan_rng(c.plan_seed);
  test::synthesize_runs(log, instance, hidden, runs, tuples, plan_rng,
                        noise);
  return Model_fitter().fit(log);
}

TEST(Fitter_property, recovers_matrix_and_marginals) {
  test::check_property<Fit_case>(
      "fit recovers the hidden parameters", Property_config{},
      [](Rng& rng) { return gen_fit_case(rng, 0.5); }, shrink_fit_case,
      [](const Fit_case& c) -> ::testing::AssertionResult {
        const Fit_report report = fit_synthetic(c, 50, 10'000'000, nullptr);
        Rng instance_rng(c.instance_seed);
        const model::Instance instance =
            test::gen_instance(instance_rng, c.n, 0.3, 0.9);
        const Cost_model hidden = c.hidden_spec.bind(c.n);
        const Matrix<double>& truth = *hidden.interaction();
        for (Service_id u = 0; u < c.n; ++u) {
          if (report.marginal_sampled[u] != 0) {
            const double err = std::fabs(
                std::log(report.marginal[u]) -
                std::log(instance.service(u).selectivity));
            auto ok = QUEST_PROP(err <= 0.05);
            if (!ok) return ok << "marginal of service " << u << ": fit "
                               << report.marginal[u] << " vs true "
                               << instance.service(u).selectivity;
          }
          for (Service_id w = u + 1; w < c.n; ++w) {
            if (!report.pair_sampled_at(u, w)) continue;
            const double err = std::fabs(std::log(report.gamma_at(u, w)) -
                                         std::log(truth(u, w)));
            auto ok = QUEST_PROP(err <= 0.05);
            if (!ok) return ok << "gamma(" << u << "," << w << "): fit "
                               << report.gamma_at(u, w) << " vs true "
                               << truth(u, w) << " on n=" << c.n;
          }
        }
        return ::testing::AssertionSuccess();
      });
}

TEST(Fitter_property, independent_never_falsified_on_independent_draws) {
  test::check_property<std::uint64_t>(
      "independent draws never falsify independence", Property_config{},
      [](Rng& rng) { return rng(); },
      [](const std::uint64_t& seed) -> ::testing::AssertionResult {
        Rng rng(seed);
        const std::size_t n = static_cast<std::size_t>(rng.uniform_int(3, 6));
        const model::Instance instance =
            test::gen_instance(rng, n, 0.3, 0.9);
        const Cost_model hidden =
            Cost_model::independent(test::gen_policy(rng));
        Observation_log log(n);
        Rng plan_rng(rng());
        Rng noise(rng());
        test::synthesize_runs(log, instance, hidden, 80, 200'000,
                              plan_rng, &noise);
        const Fit_report report = Model_fitter().fit(log);
        return QUEST_PROP(!report.independent_falsified)
               << "max |log gamma| = " << report.max_abs_log_gamma
               << " on n=" << n << " seed=" << seed;
      });
}

TEST(Fitter_property, strong_interaction_is_falsified) {
  test::check_property<Fit_case>(
      "a gamma=3 interaction falsifies independence", Property_config{},
      [](Rng& rng) {
        Fit_case c = gen_fit_case(rng, 0.4);
        c.hidden_spec.matrix[0] = 3.0;  // pair (0, 1): log 3 >> 0.1
        return c;
      },
      [](const Fit_case& c) -> ::testing::AssertionResult {
        const Fit_report report = fit_synthetic(c, 60, 1'000'000, nullptr);
        return QUEST_PROP(report.independent_falsified)
               << "max |log gamma| = " << report.max_abs_log_gamma;
      });
}

TEST(Fitter_property, fitted_spec_round_trips_through_the_grammar) {
  test::check_property<Fit_case>(
      "to_spec -> to_string -> parse preserves the model key",
      Property_config{},
      [](Rng& rng) { return gen_fit_case(rng, 0.6); },
      [](const Fit_case& c) -> ::testing::AssertionResult {
        const Fit_report report = fit_synthetic(c, 40, 1'000'000, nullptr);
        const Model_fitter fitter;
        // Exercise both the mean and a quantile objective emission.
        for (const model::Objective objective :
             {model::Objective::mean, model::Objective::p95}) {
          const Cost_model_spec spec =
              fitter.to_spec(report, c.hidden_spec.policy, objective);
          const Cost_model_spec reparsed = model::parse_cost_model_spec(
              spec.to_string(), model::to_string(c.hidden_spec.policy));
          const std::string key = spec.bind(c.n).key();
          const std::string reparsed_key = reparsed.bind(c.n).key();
          auto ok = QUEST_PROP(key == reparsed_key);
          if (!ok) return ok << key << " vs " << reparsed_key;
        }
        return ::testing::AssertionSuccess();
      });
}

}  // namespace
}  // namespace quest::adapt
