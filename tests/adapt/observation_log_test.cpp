// Unit tests of adapt::Observation_log: the streaming sufficient
// statistics are exactly the normal equations of the per-service
// log-selectivity regression, so small hand-computable cases pin every
// accumulator — Gram entries, right-hand sides, sample and co-occurrence
// counts, cost moments — and the merge operation is the plain sum.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "quest/adapt/observation_log.hpp"
#include "quest/common/error.hpp"
#include "quest/model/plan.hpp"

namespace quest::adapt {
namespace {

using model::Plan;

Plan make_plan(std::vector<model::Service_id> order) {
  return Plan(std::move(order));
}

TEST(Observation_log, rejects_empty_service_set) {
  EXPECT_THROW(Observation_log(0), Precondition_error);
}

TEST(Observation_log, accumulates_normal_equations_of_one_run) {
  Observation_log log(2);
  const std::vector<std::uint64_t> in{100, 50};
  const std::vector<std::uint64_t> out{50, 10};
  log.record_run(make_plan({0, 1}), in, out);

  EXPECT_EQ(log.runs(), 1u);
  EXPECT_EQ(log.stage_samples(0), 1u);
  EXPECT_EQ(log.stage_samples(1), 1u);
  // Service 1 ran behind {0}; service 0 ran on an empty prefix.
  EXPECT_EQ(log.pair_samples(1, 0), 1u);
  EXPECT_EQ(log.pair_samples(0, 1), 0u);

  // Service 0: regressors (1, 0, 0), y = log 0.5.
  const auto rhs0 = log.normal_rhs(0);
  EXPECT_DOUBLE_EQ(rhs0[0], std::log(0.5));
  EXPECT_DOUBLE_EQ(rhs0[1], 0.0);
  EXPECT_DOUBLE_EQ(rhs0[2], 0.0);
  const auto gram0 = log.normal_matrix(0);
  EXPECT_DOUBLE_EQ(gram0[0], 1.0);  // intercept x intercept

  // Service 1: regressors (1, [0 placed] = 1, 0), y = log 0.2.
  const auto rhs1 = log.normal_rhs(1);
  EXPECT_DOUBLE_EQ(rhs1[0], std::log(0.2));
  EXPECT_DOUBLE_EQ(rhs1[1], std::log(0.2));
  EXPECT_DOUBLE_EQ(rhs1[2], 0.0);
  const auto gram1 = log.normal_matrix(1);
  const std::size_t stride = 3;
  EXPECT_DOUBLE_EQ(gram1[0 * stride + 0], 1.0);
  EXPECT_DOUBLE_EQ(gram1[0 * stride + 1], 1.0);
  EXPECT_DOUBLE_EQ(gram1[1 * stride + 1], 1.0);
  // Row/column of service 1 itself is structurally zero.
  EXPECT_DOUBLE_EQ(gram1[2 * stride + 2], 0.0);
}

TEST(Observation_log, skips_stages_without_tuple_flow) {
  Observation_log log(3);
  // Stage 1 produced nothing, so stage 2 consumed nothing: only stage 0
  // and stage 1... stage 1 has out == 0 -> skipped too. Only stage 0
  // yields a sample.
  log.record_run(make_plan({0, 1, 2}), std::vector<std::uint64_t>{10, 5, 0},
                 std::vector<std::uint64_t>{5, 0, 0});
  EXPECT_EQ(log.stage_samples(0), 1u);
  EXPECT_EQ(log.stage_samples(1), 0u);
  EXPECT_EQ(log.stage_samples(2), 0u);
  EXPECT_EQ(log.pair_samples(1, 0), 0u);
}

TEST(Observation_log, rejects_malformed_runs) {
  Observation_log log(2);
  const std::vector<std::uint64_t> two{10, 10};
  const std::vector<std::uint64_t> one{10};
  EXPECT_THROW(log.record_run(make_plan({0, 1}), one, two),
               Precondition_error);
  EXPECT_THROW(log.record_run(make_plan({0, 0}), two, two),
               Precondition_error);
}

TEST(Observation_log, cost_moments_accumulate) {
  Observation_log log(2);
  log.record_cost(1, 2, 6.0, 20.0);
  log.record_cost(1, 2, 6.0, 20.0);
  const Cost_stats& stats = log.cost_stats(1);
  EXPECT_EQ(stats.count, 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  // E[x^2] - mean^2 = 10 - 9.
  EXPECT_DOUBLE_EQ(stats.variance(), 1.0);
  EXPECT_THROW(log.record_cost(0, 1, -1.0, 1.0), Precondition_error);
}

TEST(Observation_log, merge_sums_every_statistic) {
  Observation_log a(2);
  Observation_log b(2);
  const std::vector<std::uint64_t> in{100, 50};
  const std::vector<std::uint64_t> out{50, 10};
  a.record_run(make_plan({0, 1}), in, out);
  b.record_run(make_plan({0, 1}), in, out);
  b.record_cost(0, 1, 2.0, 4.0);
  a.merge(b);

  EXPECT_EQ(a.runs(), 2u);
  EXPECT_EQ(a.stage_samples(0), 2u);
  EXPECT_EQ(a.pair_samples(1, 0), 2u);
  EXPECT_DOUBLE_EQ(a.normal_rhs(1)[0], 2.0 * std::log(0.2));
  EXPECT_EQ(a.cost_stats(0).count, 1u);

  Observation_log wrong_size(3);
  EXPECT_THROW(a.merge(wrong_size), Precondition_error);
}

}  // namespace
}  // namespace quest::adapt
