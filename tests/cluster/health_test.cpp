// Health_monitor: probe-driven dead/live verdicts against a real
// loopback listener, immediate mark_dead reporting, and the dead->live
// transition hook the replica router hangs journal repair on. Timing
// assertions are deadline-polls (no exact-interval checks), so a loaded
// CI machine only makes the test slower, not flaky.

#include "quest/cluster/health.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "quest/serve/tcp_transport.hpp"

namespace quest {
namespace {

using cluster::Health_monitor;
using cluster::Health_options;

/// Polls `done` for up to five seconds.
template <typename Predicate>
bool eventually(Predicate&& done) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return done();
}

TEST(Health_monitor_test, ProbesSeparateLiveFromDead) {
  // A bound, listening socket (the transport need not run for the TCP
  // handshake to complete) next to a port nothing listens on.
  serve::Tcp_options tcp;
  tcp.port = 0;
  serve::Tcp_transport listener(tcp);

  Health_options options;
  options.backends = {"127.0.0.1:" + std::to_string(listener.port()),
                      "127.0.0.1:1"};
  options.probe_interval = std::chrono::milliseconds(20);
  options.max_backoff = std::chrono::milliseconds(100);

  Health_monitor monitor(options, nullptr, nullptr);
  // Optimistic start: everything is live until proven otherwise.
  EXPECT_TRUE(monitor.alive(0));
  EXPECT_TRUE(monitor.alive(1));

  monitor.start();
  EXPECT_TRUE(eventually([&] { return !monitor.alive(1); }));
  EXPECT_TRUE(monitor.alive(0));
  EXPECT_EQ(monitor.live_count(), 1u);
  EXPECT_EQ(monitor.degraded_count(), 1u);
  monitor.stop();
}

TEST(Health_monitor_test, MarkDeadIsImmediateAndProbesRevive) {
  serve::Tcp_options tcp;
  tcp.port = 0;
  serve::Tcp_transport listener(tcp);

  Health_options options;
  options.backends = {"127.0.0.1:" + std::to_string(listener.port())};
  options.probe_interval = std::chrono::milliseconds(20);
  options.max_backoff = std::chrono::milliseconds(100);

  std::atomic<int> revived{0};
  std::atomic<int> downed{0};
  Health_monitor monitor(
      options, [&](std::size_t) { ++revived; },
      [&](std::size_t) { ++downed; });
  monitor.start();

  // A send failure reports death without waiting for a probe...
  monitor.mark_dead(0);
  EXPECT_FALSE(monitor.alive(0));
  EXPECT_EQ(downed.load(), 1);
  // ...and the prober revives it (the listener is still there), firing
  // the dead->live hook the router repairs on.
  EXPECT_TRUE(eventually([&] { return monitor.alive(0); }));
  EXPECT_GE(revived.load(), 1);
  monitor.stop();
}

TEST(Health_monitor_test, OutOfRangeShardsAreIgnored) {
  Health_options options;
  options.backends = {"127.0.0.1:1"};
  Health_monitor monitor(options, nullptr, nullptr);
  monitor.mark_dead(7);  // no crash, no state change
  EXPECT_FALSE(monitor.alive(7));
  EXPECT_EQ(monitor.live_count(), 1u);
}

}  // namespace
}  // namespace quest
