// Registration_journal: record/replace/replay semantics, persistence
// round trips through the sealed-JSONL file format, bounded compaction,
// and the paranoid load path — a record whose checksum, shape, or
// embedded register line fails verification is refused, never replayed
// (replaying a mis-keyed registration would route repairs to the wrong
// shard).

#include "quest/cluster/registration_journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "quest/io/fingerprint.hpp"
#include "quest/io/instance_io.hpp"
#include "quest/io/json.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using cluster::Journal_options;
using cluster::Registration_journal;

struct Temp_path {
  std::string path;
  explicit Temp_path(const std::string& name)
      : path(::testing::TempDir() + name) {
    std::remove(path.c_str());
  }
  ~Temp_path() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
};

/// A real register line (the journal's load path re-parses and
/// re-fingerprints it, so a hand-faked line would be refused).
struct Registration {
  std::uint64_t fingerprint;
  std::string name;
  std::string line;
};

Registration make_registration(const std::string& name, std::uint64_t seed) {
  const model::Instance instance = test::selective_instance(5, seed);
  Registration out;
  out.fingerprint = io::fingerprint(instance);
  out.name = name;
  out.line = "{\"op\":\"register\",\"name\":\"" + name +
             "\",\"instance\":" + io::to_json(instance).dump() + "}";
  return out;
}

TEST(Registration_journal_test, RecordsReplaceAndReplayInOrder) {
  Registration_journal journal(Journal_options{});  // in-memory
  const auto a = make_registration("a", 1);
  const auto b = make_registration("b", 2);
  journal.record(a.fingerprint, a.name, a.line);
  journal.record(b.fingerprint, b.name, b.line);
  EXPECT_EQ(journal.size(), 2u);
  EXPECT_EQ(journal.line_for(a.fingerprint), a.line);
  EXPECT_EQ(journal.line_for(b.fingerprint), b.line);
  EXPECT_EQ(journal.line_for(0xdeadbeef), "");

  // Re-recording the same fingerprint replaces, it does not grow.
  journal.record(a.fingerprint, "a-renamed", a.line);
  EXPECT_EQ(journal.size(), 2u);

  const auto entries = journal.entries();
  ASSERT_EQ(entries.size(), 2u);
  // Replay order is insertion order (oldest first).
  EXPECT_EQ(entries[0].fingerprint, a.fingerprint);
  EXPECT_EQ(entries[0].name, "a-renamed");
  EXPECT_EQ(entries[1].fingerprint, b.fingerprint);
}

TEST(Registration_journal_test, PersistsAcrossReopen) {
  Temp_path temp("quest_journal_roundtrip");
  const auto a = make_registration("a", 3);
  const auto b = make_registration("b", 4);
  {
    Registration_journal journal(Journal_options{temp.path, 64});
    journal.record(a.fingerprint, a.name, a.line);
    journal.record(b.fingerprint, b.name, b.line);
    EXPECT_EQ(journal.io_failures(), 0u);
  }
  Registration_journal reopened(Journal_options{temp.path, 64});
  EXPECT_TRUE(reopened.load_report().file_found);
  EXPECT_TRUE(reopened.load_report().header_ok);
  EXPECT_EQ(reopened.load_report().entries_loaded, 2u);
  EXPECT_EQ(reopened.load_report().stale_refused, 0u);
  EXPECT_EQ(reopened.line_for(a.fingerprint), a.line);
  EXPECT_EQ(reopened.line_for(b.fingerprint), b.line);
}

TEST(Registration_journal_test, CompactsPastTheBound) {
  Temp_path temp("quest_journal_compact");
  const auto a = make_registration("a", 5);
  Registration_journal journal(Journal_options{temp.path, 4});
  // 12 re-registrations of one fingerprint: the file would accumulate 12
  // appended records, but the bound forces compaction down to the single
  // live one.
  for (int i = 0; i < 12; ++i) {
    journal.record(a.fingerprint, a.name, a.line);
  }
  EXPECT_EQ(journal.size(), 1u);

  std::ifstream in(temp.path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  // Header plus at most max_records data lines survive on disk.
  EXPECT_LE(lines.size(), 1u + 4u);
  EXPECT_GE(lines.size(), 2u);
}

TEST(Registration_journal_test, LiveSetIsBounded) {
  Registration_journal journal(Journal_options{"", 2});
  const auto a = make_registration("a", 6);
  const auto b = make_registration("b", 7);
  const auto c = make_registration("c", 8);
  journal.record(a.fingerprint, a.name, a.line);
  journal.record(b.fingerprint, b.name, b.line);
  journal.record(c.fingerprint, c.name, c.line);
  // Oldest entry evicted: the journal is a bounded repair buffer.
  EXPECT_EQ(journal.size(), 2u);
  EXPECT_EQ(journal.line_for(a.fingerprint), "");
  EXPECT_EQ(journal.line_for(c.fingerprint), c.line);
}

TEST(Registration_journal_test, CorruptRecordsAreRefusedNotReplayed) {
  Temp_path temp("quest_journal_corrupt");
  const auto a = make_registration("a", 9);
  const auto b = make_registration("b", 10);
  {
    Registration_journal journal(Journal_options{temp.path, 64});
    journal.record(a.fingerprint, a.name, a.line);
    journal.record(b.fingerprint, b.name, b.line);
  }
  // Flip a byte inside the second record's payload.
  std::ifstream in(temp.path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  const auto pos = contents.rfind("\"name\":\"b\"");
  ASSERT_NE(pos, std::string::npos);
  contents[pos + 8] = 'x';
  std::ofstream out(temp.path, std::ios::trunc);
  out << contents;
  out.close();

  Registration_journal reopened(Journal_options{temp.path, 64});
  EXPECT_TRUE(reopened.load_report().header_ok);
  EXPECT_EQ(reopened.load_report().entries_loaded, 1u);
  EXPECT_EQ(reopened.load_report().stale_refused, 1u);
  EXPECT_EQ(reopened.line_for(a.fingerprint), a.line);
  EXPECT_EQ(reopened.line_for(b.fingerprint), "");
}

TEST(Registration_journal_test, MismatchedFingerprintIsRefused) {
  Temp_path temp("quest_journal_miskey");
  const auto a = make_registration("a", 11);
  {
    // Record under a *wrong* fingerprint: the line itself is valid and
    // checksums fine, but on load it re-fingerprints to a different
    // value — exactly the mis-keyed case replay must refuse.
    Registration_journal journal(Journal_options{temp.path, 64});
    journal.record(a.fingerprint ^ 1, a.name, a.line);
  }
  Registration_journal reopened(Journal_options{temp.path, 64});
  EXPECT_EQ(reopened.load_report().entries_loaded, 0u);
  EXPECT_EQ(reopened.load_report().stale_refused, 1u);
}

TEST(Registration_journal_test, BadHeaderRefusesTheWholeFile) {
  Temp_path temp("quest_journal_header");
  {
    std::ofstream out(temp.path);
    out << "{\"not_a_journal\":true}\n";
  }
  Registration_journal journal(Journal_options{temp.path, 64});
  EXPECT_TRUE(journal.load_report().file_found);
  EXPECT_FALSE(journal.load_report().header_ok);
  EXPECT_EQ(journal.size(), 0u);

  // Recording into the refused file starts it over with a valid header.
  const auto a = make_registration("a", 12);
  journal.record(a.fingerprint, a.name, a.line);
  Registration_journal reopened(Journal_options{temp.path, 64});
  EXPECT_TRUE(reopened.load_report().header_ok);
  EXPECT_EQ(reopened.load_report().entries_loaded, 1u);
}

TEST(Registration_journal_test, MissingFileIsACleanColdStart) {
  Temp_path temp("quest_journal_cold");
  Registration_journal journal(Journal_options{temp.path, 64});
  EXPECT_FALSE(journal.load_report().file_found);
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.io_failures(), 0u);
}

}  // namespace
}  // namespace quest
