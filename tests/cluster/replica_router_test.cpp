// Replica_router construction contracts and counter surface. The full
// failure/repair behavior (kill a backend under load, failover, journal
// replay on rejoin) is process-level and lives in the scripted
// serve/replication_smoke ctest (scripts/loadgen.py --replicas); these
// tests pin what can be checked in-process: option validation and the
// zeroed counter surface the merged stats event reads from.

#include "quest/cluster/replica_router.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "quest/common/error.hpp"
#include "quest/serve/transport.hpp"

namespace quest {
namespace {

using cluster::Replica_options;
using cluster::Replica_router;

Replica_options three_backends() {
  Replica_options options;
  // Port 1: nothing listens there — constructing a router never dials
  // (connections are on-demand), so unreachable backends are fine.
  options.backends = {"127.0.0.1:1", "127.0.0.1:1", "127.0.0.1:1"};
  options.replicas = 2;
  // Keep the probe thread quiet for the test's lifetime.
  options.probe_interval = std::chrono::minutes(1);
  options.max_backoff = std::chrono::minutes(1);
  return options;
}

TEST(Replica_router_test, ValidatesItsOptions) {
  serve::Stdio_transport transport;

  Replica_options no_backends = three_backends();
  no_backends.backends.clear();
  EXPECT_THROW(Replica_router(no_backends, transport), Error);

  Replica_options zero_replicas = three_backends();
  zero_replicas.replicas = 0;
  EXPECT_THROW(Replica_router(zero_replicas, transport), Error);

  Replica_options too_many = three_backends();
  too_many.replicas = 4;  // more than the three backends
  EXPECT_THROW(Replica_router(too_many, transport), Error);

  Replica_options tiny_lines = three_backends();
  tiny_lines.max_line_bytes = 1;
  EXPECT_THROW(Replica_router(tiny_lines, transport), Error);
}

TEST(Replica_router_test, ConstructsWithFullReplication) {
  serve::Stdio_transport transport;
  Replica_options options = three_backends();
  options.replicas = 3;  // R == K: every key everywhere
  Replica_router router(options, transport);
  EXPECT_EQ(router.replica_failovers(), 0u);
  EXPECT_EQ(router.repairs(), 0u);
  EXPECT_EQ(router.replica_lag(), 0u);
}

TEST(Replica_router_test, CountersStartAtZero) {
  serve::Stdio_transport transport;
  Replica_router router(three_backends(), transport);
  EXPECT_EQ(router.replica_failovers(), 0u);
  EXPECT_EQ(router.repairs(), 0u);
  EXPECT_EQ(router.replica_lag(), 0u);
}

}  // namespace
}  // namespace quest
