#include <gtest/gtest.h>

#include <vector>

#include "quest/common/cli.hpp"
#include "quest/common/error.hpp"

namespace quest {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args);
  return argv;
}

TEST(Cli_test, DefaultsSurviveEmptyParse) {
  Cli cli("prog", "test");
  auto& n = cli.add_int("n", 12, "size");
  auto& x = cli.add_double("x", 1.5, "ratio");
  auto& flag = cli.add_bool("flag", false, "toggle");
  auto& name = cli.add_string("name", "abc", "label");
  const auto argv = argv_of({});
  cli.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(n.value, 12);
  EXPECT_FALSE(n.set);
  EXPECT_DOUBLE_EQ(x.value, 1.5);
  EXPECT_FALSE(flag.value);
  EXPECT_EQ(name.value, "abc");
}

TEST(Cli_test, ParsesEqualsAndSpaceForms) {
  Cli cli("prog", "test");
  auto& n = cli.add_int("n", 0, "size");
  auto& x = cli.add_double("x", 0.0, "ratio");
  auto& name = cli.add_string("name", "", "label");
  const auto argv = argv_of({"--n=42", "--x", "2.75", "--name=hello"});
  cli.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(n.value, 42);
  EXPECT_TRUE(n.set);
  EXPECT_DOUBLE_EQ(x.value, 2.75);
  EXPECT_EQ(name.value, "hello");
}

TEST(Cli_test, BooleanForms) {
  Cli cli("prog", "test");
  auto& a = cli.add_bool("a", false, "");
  auto& b = cli.add_bool("b", true, "");
  auto& c = cli.add_bool("c", false, "");
  const auto argv = argv_of({"--a", "--b=false", "--c=yes"});
  cli.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(a.value);
  EXPECT_FALSE(b.value);
  EXPECT_TRUE(c.value);
}

TEST(Cli_test, NegativeNumbers) {
  Cli cli("prog", "test");
  auto& n = cli.add_int("n", 0, "");
  auto& x = cli.add_double("x", 0.0, "");
  const auto argv = argv_of({"--n=-7", "--x=-2.5"});
  cli.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(n.value, -7);
  EXPECT_DOUBLE_EQ(x.value, -2.5);
}

TEST(Cli_test, PositionalArgumentsCollected) {
  Cli cli("prog", "test");
  cli.add_int("n", 0, "");
  const auto argv = argv_of({"file1", "--n=1", "file2"});
  cli.parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "file1");
  EXPECT_EQ(cli.positional()[1], "file2");
}

TEST(Cli_test, Errors) {
  Cli cli("prog", "test");
  cli.add_int("n", 0, "");
  {
    const auto argv = argv_of({"--unknown=1"});
    EXPECT_THROW(cli.parse(static_cast<int>(argv.size()), argv.data()),
                 Parse_error);
  }
  {
    const auto argv = argv_of({"--n=abc"});
    EXPECT_THROW(cli.parse(static_cast<int>(argv.size()), argv.data()),
                 Parse_error);
  }
  {
    const auto argv = argv_of({"--n"});
    EXPECT_THROW(cli.parse(static_cast<int>(argv.size()), argv.data()),
                 Parse_error);
  }
}

TEST(Cli_test, MalformedDoubleAndBool) {
  Cli cli("prog", "test");
  cli.add_double("x", 0.0, "");
  cli.add_bool("b", false, "");
  {
    const auto argv = argv_of({"--x=1.2.3"});
    EXPECT_THROW(cli.parse(static_cast<int>(argv.size()), argv.data()),
                 Parse_error);
  }
  {
    const auto argv = argv_of({"--b=maybe"});
    EXPECT_THROW(cli.parse(static_cast<int>(argv.size()), argv.data()),
                 Parse_error);
  }
}

TEST(Cli_test, DuplicateRegistrationThrows) {
  Cli cli("prog", "test");
  cli.add_int("n", 0, "");
  EXPECT_THROW(cli.add_double("n", 0.0, ""), Precondition_error);
}

TEST(Cli_test, UsageListsFlags) {
  Cli cli("prog", "does things");
  cli.add_int("n", 3, "instance size");
  cli.add_bool("csv", false, "emit csv");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("prog"), std::string::npos);
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("instance size"), std::string::npos);
  EXPECT_NE(usage.find("--csv"), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

}  // namespace
}  // namespace quest
