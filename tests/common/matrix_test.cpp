#include <gtest/gtest.h>

#include "quest/common/error.hpp"
#include "quest/common/matrix.hpp"

namespace quest {
namespace {

TEST(Matrix_test, ConstructionAndFill) {
  Matrix<int> m(2, 3, 7);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.empty());
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), 7);
  }
  m.fill(-1);
  EXPECT_EQ(m(1, 2), -1);
}

TEST(Matrix_test, DefaultIsEmpty) {
  const Matrix<double> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(Matrix_test, SquareFactory) {
  const auto m = Matrix<double>::square(4, 1.5);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_DOUBLE_EQ(m(3, 3), 1.5);
}

TEST(Matrix_test, IndexingIsRowMajorAndMutable) {
  Matrix<int> m(2, 2);
  m(0, 1) = 5;
  m(1, 0) = 9;
  EXPECT_EQ(m.data()[1], 5);
  EXPECT_EQ(m.data()[2], 9);
  EXPECT_EQ(m.at_unchecked(0, 1), 5);
}

TEST(Matrix_test, BoundsChecking) {
  Matrix<int> m(2, 3);
  EXPECT_THROW(m(2, 0), Precondition_error);
  EXPECT_THROW(m(0, 3), Precondition_error);
  const Matrix<int>& cm = m;
  EXPECT_THROW(cm(5, 5), Precondition_error);
}

TEST(Matrix_test, RowMaxIf) {
  Matrix<double> m(2, 4, 0.0);
  m(0, 0) = 3.0;
  m(0, 1) = 9.0;
  m(0, 2) = 5.0;
  m(0, 3) = 1.0;
  const double all = m.row_max_if(0, [](std::size_t) { return true; }, -1.0);
  EXPECT_DOUBLE_EQ(all, 9.0);
  const double no_one =
      m.row_max_if(0, [](std::size_t c) { return c != 1; }, -1.0);
  EXPECT_DOUBLE_EQ(no_one, 5.0);
  const double none = m.row_max_if(0, [](std::size_t) { return false; }, -1.0);
  EXPECT_DOUBLE_EQ(none, -1.0);
  EXPECT_THROW(m.row_max_if(2, [](std::size_t) { return true; }, 0.0),
               Precondition_error);
}

TEST(Matrix_test, Equality) {
  Matrix<int> a(2, 2, 1);
  Matrix<int> b(2, 2, 1);
  EXPECT_TRUE(a == b);
  b(1, 1) = 2;
  EXPECT_FALSE(a == b);
  const Matrix<int> c(2, 3, 1);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace quest
