#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "quest/common/error.hpp"
#include "quest/common/rng.hpp"

namespace quest {
namespace {

TEST(Rng_test, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng_test, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng_test, UniformIsInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng_test, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.uniform(-3.0, 5.5);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.5);
  }
  EXPECT_THROW(rng.uniform(2.0, 1.0), Precondition_error);
  EXPECT_DOUBLE_EQ(rng.uniform(4.0, 4.0), 4.0);
}

TEST(Rng_test, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng_test, UniformIntCoversRangeWithoutBias) {
  Rng rng(13);
  std::vector<int> histogram(5, 0);
  const int draws = 50'000;
  for (int i = 0; i < draws; ++i) {
    const auto v = rng.uniform_int(5);
    ASSERT_LT(v, 5u);
    ++histogram[v];
  }
  for (const int count : histogram) {
    EXPECT_NEAR(count, draws / 5, draws / 50);
  }
  EXPECT_THROW(rng.uniform_int(0), Precondition_error);
}

TEST(Rng_test, UniformIntInclusiveRange) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(rng.uniform_int(3, 3), 3);
  EXPECT_THROW(rng.uniform_int(4, 3), Precondition_error);
}

TEST(Rng_test, BernoulliEdgesAndRate) {
  Rng rng(19);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int hits = 0;
  const int draws = 50'000;
  for (int i = 0; i < draws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.02);
}

TEST(Rng_test, NormalMomentsAreSane) {
  Rng rng(23);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += (x - 10.0) * (x - 10.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / n), 2.0, 0.05);
  EXPECT_THROW(rng.normal(0.0, -1.0), Precondition_error);
}

TEST(Rng_test, ExponentialMeanMatchesRate) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(4.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
  EXPECT_THROW(rng.exponential(0.0), Precondition_error);
}

TEST(Rng_test, ZipfBoundsAndSkew) {
  Rng rng(31);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 20'000; ++i) {
    const auto k = rng.zipf(10, 1.2);
    ASSERT_LT(k, 10u);
    ++histogram[k];
  }
  EXPECT_GT(histogram[0], histogram[4]);
  EXPECT_GT(histogram[0], histogram[9]);
  EXPECT_THROW(rng.zipf(0, 1.0), Precondition_error);
  EXPECT_THROW(rng.zipf(4, -0.5), Precondition_error);
}

TEST(Rng_test, ZipfExponentZeroIsRoughlyUniform) {
  Rng rng(37);
  std::vector<int> histogram(4, 0);
  const int draws = 40'000;
  for (int i = 0; i < draws; ++i) ++histogram[rng.zipf(4, 0.0)];
  for (const int count : histogram) {
    EXPECT_NEAR(count, draws / 4, draws / 40);
  }
}

TEST(Rng_test, PermutationIsValidAndShuffles) {
  Rng rng(41);
  const auto perm = rng.permutation(50);
  ASSERT_EQ(perm.size(), 50u);
  std::vector<bool> seen(50, false);
  for (const auto v : perm) {
    ASSERT_LT(v, 50u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
  // Vanishingly unlikely to be the identity.
  bool identity = true;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] != i) identity = false;
  }
  EXPECT_FALSE(identity);
}

TEST(Rng_test, ForkProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.fork();
  bool differs = false;
  for (int i = 0; i < 16; ++i) {
    if (parent() != child()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng_test, SplitmixIsStable) {
  // Pin the seeding path so instance generation stays reproducible across
  // refactors (EXPERIMENTS.md depends on it).
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  EXPECT_EQ(first, 0xe220a8397b1dcdafull);
}

}  // namespace
}  // namespace quest
