#include <gtest/gtest.h>

#include <cmath>

#include "quest/common/error.hpp"
#include "quest/common/stats.hpp"

namespace quest {
namespace {

TEST(Running_stats_test, EmptyIsZero) {
  const Running_stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(Running_stats_test, MatchesNaiveFormulas) {
  Running_stats s;
  const double values[] = {1.0, 4.0, 9.0, 16.0, 25.0};
  double sum = 0.0;
  for (const double v : values) {
    s.add(v);
    sum += v;
  }
  const double mean = sum / 5.0;
  double var = 0.0;
  for (const double v : values) var += (v - mean) * (v - mean);
  var /= 4.0;
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 25.0);
  EXPECT_DOUBLE_EQ(s.sum(), sum);
}

TEST(Running_stats_test, SingleObservationHasZeroVariance) {
  Running_stats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Running_stats_test, MergeEqualsSequential) {
  Running_stats all;
  Running_stats left;
  Running_stats right;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10.0;
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Running_stats_test, MergeWithEmptyIsIdentity) {
  Running_stats s;
  s.add(1.0);
  s.add(2.0);
  Running_stats empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  empty.merge(s);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Sample_stats_test, PercentileInterpolates) {
  Sample_stats s;
  for (const double v : {10.0, 20.0, 30.0, 40.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 17.5);
}

TEST(Sample_stats_test, PercentileAfterMoreAddsResorts) {
  Sample_stats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(1.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 9.0);
}

TEST(Sample_stats_test, ErrorsOnMisuse) {
  Sample_stats s;
  EXPECT_THROW(s.percentile(50.0), Precondition_error);
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1.0), Precondition_error);
  EXPECT_THROW(s.percentile(101.0), Precondition_error);
}

TEST(Geometric_mean_test, MatchesDefinition) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0}), 4.0);
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean({2.0, 8.0, 4.0}), 4.0, 1e-12);
  EXPECT_THROW(geometric_mean({}), Precondition_error);
  EXPECT_THROW(geometric_mean({1.0, 0.0}), Precondition_error);
  EXPECT_THROW(geometric_mean({-2.0}), Precondition_error);
}

}  // namespace
}  // namespace quest
