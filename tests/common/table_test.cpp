#include <gtest/gtest.h>

#include <sstream>

#include "quest/common/error.hpp"
#include "quest/common/table.hpp"

namespace quest {
namespace {

TEST(Table_test, RendersTitleHeaderRowsAndNotes) {
  Table t("demo");
  t.set_header({"n", "cost"});
  t.add_row({"8", "1.25"});
  t.add_row({"16", "2.50"});
  t.add_footnote("all costs in ms");
  std::ostringstream out;
  out << t;
  const std::string text = out.str();
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find(" n |"), std::string::npos);  // right-aligned header
  EXPECT_NE(text.find("cost"), std::string::npos);
  EXPECT_NE(text.find("1.25"), std::string::npos);
  EXPECT_NE(text.find("2.50"), std::string::npos);
  EXPECT_NE(text.find("* all costs in ms"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table_test, ColumnsAlignToWidestCell) {
  Table t("");
  t.set_header({"x"});
  t.add_row({"wide-cell"});
  std::ostringstream out;
  t.render(out);
  // Every data line must have the same width.
  std::string line;
  std::istringstream in(out.str());
  std::size_t width = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
}

TEST(Table_test, CsvEscapesNothingButSeparatesCells) {
  Table t("ignored");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream out;
  t.render_csv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(Table_test, RowWidthMismatchThrows) {
  Table t("x");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Precondition_error);
}

TEST(Table_test, NumFormatsFixedDigits) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 0), "1");
  EXPECT_EQ(Table::num(-0.5, 3), "-0.500");
}

TEST(Table_test, CountInsertsThousandsSeparators) {
  EXPECT_EQ(Table::count(0), "0");
  EXPECT_EQ(Table::count(999), "999");
  EXPECT_EQ(Table::count(1000), "1,000");
  EXPECT_EQ(Table::count(1234567), "1,234,567");
}

}  // namespace
}  // namespace quest
