#include <gtest/gtest.h>

#include "quest/common/error.hpp"
#include "quest/common/rng.hpp"
#include "quest/constraints/precedence.hpp"
#include "quest/workload/generators.hpp"

namespace quest {
namespace {

using constraints::Precedence_graph;
using model::Service_id;

TEST(Precedence_test, EmptyGraphIsUnconstrained) {
  const Precedence_graph g(4);
  EXPECT_EQ(g.size(), 4u);
  EXPECT_TRUE(g.unconstrained());
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.respects({3, 1, 0, 2}));
}

TEST(Precedence_test, EdgesAndQueries) {
  Precedence_graph g(4);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(2, 0));
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_FALSE(g.unconstrained());
  EXPECT_EQ(g.successors(0).size(), 1u);
  EXPECT_EQ(g.predecessors(3).size(), 1u);
  // Duplicate edges are ignored.
  g.add_edge(0, 2);
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(Precedence_test, CycleAndSelfEdgeRejected) {
  Precedence_graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_THROW(g.add_edge(2, 0), Precondition_error);
  EXPECT_THROW(g.add_edge(1, 1), Precondition_error);
  EXPECT_THROW(g.add_edge(0, 5), Precondition_error);
}

TEST(Precedence_test, Reachability) {
  Precedence_graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  EXPECT_TRUE(g.reachable(0, 2));
  EXPECT_TRUE(g.reachable(0, 0));
  EXPECT_FALSE(g.reachable(2, 0));
  EXPECT_FALSE(g.reachable(0, 4));
}

TEST(Precedence_test, FeasibleNextAndRespects) {
  Precedence_graph g(3);
  g.add_edge(0, 1);
  std::vector<char> placed(3, 0);
  EXPECT_TRUE(g.feasible_next(0, placed));
  EXPECT_FALSE(g.feasible_next(1, placed));
  EXPECT_TRUE(g.feasible_next(2, placed));
  placed[0] = 1;
  EXPECT_TRUE(g.feasible_next(1, placed));

  EXPECT_TRUE(g.respects({0, 1, 2}));
  EXPECT_TRUE(g.respects({2, 0, 1}));
  EXPECT_FALSE(g.respects({1, 0, 2}));
  EXPECT_TRUE(g.respects({0}));       // partial
  EXPECT_FALSE(g.respects({1}));      // partial but already violating
  EXPECT_THROW(g.respects({0, 0}), Precondition_error);
}

TEST(Precedence_test, TopologicalOrderIsValidAndDeterministic) {
  Precedence_graph g(5);
  g.add_edge(4, 0);
  g.add_edge(4, 2);
  g.add_edge(2, 1);
  const auto order = g.topological_order();
  EXPECT_EQ(order.size(), 5u);
  EXPECT_TRUE(g.respects(order));
  EXPECT_EQ(order, g.topological_order());  // deterministic
  // Smallest-id-first among ready nodes: 3 and 4 are initially ready.
  EXPECT_EQ(order.front(), 3u);
}

TEST(Precedence_test, LinearExtensionCounts) {
  Precedence_graph empty(3);
  EXPECT_DOUBLE_EQ(empty.count_linear_extensions(), 6.0);

  Precedence_graph chain(4);
  chain.add_edge(0, 1);
  chain.add_edge(1, 2);
  chain.add_edge(2, 3);
  EXPECT_DOUBLE_EQ(chain.count_linear_extensions(), 1.0);

  // A fork 0 -> {1, 2}: orders 0,1,2 / 0,2,1 plus 3 free slots... with
  // n = 3 exactly: 0 first, then 1,2 in either order -> 2.
  Precedence_graph fork(3);
  fork.add_edge(0, 1);
  fork.add_edge(0, 2);
  EXPECT_DOUBLE_EQ(fork.count_linear_extensions(), 2.0);
}

TEST(Precedence_test, RandomDagsAreAcyclicAndDensityBehaves) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = workload::make_random_dag(8, 0.4, rng);
    EXPECT_EQ(g.topological_order().size(), 8u);  // asserts acyclicity
  }
  const auto free_graph = workload::make_random_dag(6, 0.0, rng);
  EXPECT_TRUE(free_graph.unconstrained());
  const auto total = workload::make_random_dag(6, 1.0, rng);
  EXPECT_DOUBLE_EQ(total.count_linear_extensions(), 1.0);
}

TEST(Precedence_test, SizeValidation) {
  EXPECT_THROW(Precedence_graph(0), Precondition_error);
  Precedence_graph g(2);
  std::vector<char> wrong(3, 0);
  EXPECT_THROW(g.feasible_next(0, wrong), Precondition_error);
}

}  // namespace
}  // namespace quest
