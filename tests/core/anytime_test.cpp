// The anytime contract: mid-search cancellation via Stop_token returns the
// best incumbent promptly with Termination::cancelled, incumbents stream
// while the search runs, and the cost target short-circuits exact search.
// The hard instances here are bottleneck-TSP reductions (E7): bnb's
// pruning has no leverage, so the search reliably outlives the test's
// cancellation points.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "quest/common/timer.hpp"
#include "quest/core/branch_and_bound.hpp"
#include "quest/core/engines.hpp"
#include "quest/opt/stop_token.hpp"
#include "quest/workload/generators.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using core::Bnb_optimizer;
using opt::Request;
using opt::Termination;

model::Instance btsp_instance(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  workload::Bottleneck_tsp_spec spec;
  spec.n = n;
  return workload::make_bottleneck_tsp(spec, rng);
}

/// Cancellation latency the driver enforces: once the stop is requested,
/// the engine must return within this long.
constexpr double cancel_latency_budget_seconds = 0.05;

TEST(Anytime_test, BnbCancelledFromTheIncumbentCallback) {
  // Deterministic mid-search cancellation: the callback fires on the
  // first incumbent (deep inside the search) and requests a stop; bnb
  // must return exactly that incumbent as Termination::cancelled.
  const auto instance = btsp_instance(12, 5);
  opt::Stop_source source;
  Request request;
  request.instance = &instance;
  request.stop = source.token();
  double first_incumbent = -1.0;
  request.on_incumbent = [&](const model::Plan&, double cost,
                             const opt::Search_stats&) {
    if (first_incumbent < 0.0) first_incumbent = cost;
    source.request_stop();
  };
  Bnb_optimizer bnb;
  const auto result = bnb.optimize(request);
  EXPECT_EQ(result.termination, Termination::cancelled);
  EXPECT_FALSE(result.proven_optimal);
  ASSERT_TRUE(result.plan.is_permutation_of(instance.size()));
  EXPECT_TRUE(test::costs_equal(result.cost, first_incumbent));
  EXPECT_TRUE(test::costs_equal(
      result.cost, model::bottleneck_cost(instance, result.plan)));
}

TEST(Anytime_test, AnnealingCancelledFromTheIncumbentCallback) {
  const auto instance = test::selective_instance(12, 9);
  opt::Stop_source source;
  Request request;
  request.instance = &instance;
  request.stop = source.token();
  request.seed = 3;
  std::atomic<int> incumbents{0};
  request.on_incumbent = [&](const model::Plan&, double, const
                             opt::Search_stats&) {
    ++incumbents;
    source.request_stop();
  };
  const auto result = core::make_optimizer("annealing:iterations=10000000")
                          ->optimize(request);
  EXPECT_EQ(result.termination, Termination::cancelled);
  EXPECT_EQ(incumbents.load(), 1);  // the greedy seed, then the stop bit
  EXPECT_TRUE(result.plan.is_permutation_of(instance.size()));
  EXPECT_TRUE(test::costs_equal(
      result.cost, model::bottleneck_cost(instance, result.plan)));
}

TEST(Anytime_test, BnbCancelsWithinTheLatencyBudget) {
  // Wall-clock variant: cancel from another thread mid-flight. The
  // canceller waits for the first streamed incumbent (so the cancelled
  // result is guaranteed to carry a complete plan even when a loaded
  // ctest -j delays the search) plus a beat, then stops the run; the
  // engine must return within the 50 ms latency budget of that instant.
  // The safety-net deadline keeps a broken cancellation path from
  // hanging the suite.
  const auto instance = btsp_instance(13, 11);
  opt::Stop_source source;
  Request request;
  request.instance = &instance;
  request.stop = source.token();
  request.budget.time_limit_seconds = 20.0;  // safety net only

  Timer timer;
  std::atomic<bool> has_incumbent{false};
  request.on_incumbent = [&](const model::Plan&, double,
                             const opt::Search_stats&) {
    has_incumbent.store(true, std::memory_order_release);
  };
  std::atomic<double> cancelled_at{-1.0};
  std::thread canceller([&] {
    while (!has_incumbent.load(std::memory_order_acquire) &&
           timer.seconds() < 10.0) {
      std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    cancelled_at.store(timer.seconds(), std::memory_order_release);
    source.request_stop();
  });
  Bnb_optimizer bnb;
  const auto result = bnb.optimize(request);
  const double elapsed = timer.seconds();
  canceller.join();

  if (result.termination == Termination::cancelled) {
    EXPECT_LE(elapsed, cancelled_at.load() + cancel_latency_budget_seconds);
    EXPECT_TRUE(result.plan.is_permutation_of(instance.size()));
    EXPECT_TRUE(test::costs_equal(
        result.cost, model::bottleneck_cost(instance, result.plan)));
  } else {
    // The machine solved a 13-service bottleneck TSP before the cancel
    // landed — legitimate on an extraordinarily fast host.
    EXPECT_EQ(result.termination, Termination::optimal);
  }
}

TEST(Anytime_test, AnnealingCancelsWithinTheLatencyBudget) {
  const auto instance = test::selective_instance(14, 13);
  opt::Stop_source source;
  Request request;
  request.instance = &instance;
  request.stop = source.token();
  request.seed = 5;
  request.budget.time_limit_seconds = 20.0;  // safety net only

  Timer timer;
  // Wait for the greedy seed to stream (so a complete incumbent exists
  // even under load) before cancelling.
  std::atomic<bool> has_incumbent{false};
  request.on_incumbent = [&](const model::Plan&, double,
                             const opt::Search_stats&) {
    has_incumbent.store(true, std::memory_order_release);
  };
  std::atomic<double> cancelled_at{-1.0};
  std::thread canceller([&] {
    while (!has_incumbent.load(std::memory_order_acquire) &&
           timer.seconds() < 10.0) {
      std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    cancelled_at.store(timer.seconds(), std::memory_order_release);
    source.request_stop();
  });
  // Enough iterations to outlive the cancel point by orders of magnitude.
  const auto result = core::make_optimizer("annealing:iterations=200000000")
                          ->optimize(request);
  const double elapsed = timer.seconds();
  canceller.join();

  EXPECT_EQ(result.termination, Termination::cancelled);
  EXPECT_LE(elapsed, cancelled_at.load() + cancel_latency_budget_seconds);
  EXPECT_TRUE(result.plan.is_permutation_of(instance.size()));
}

TEST(Anytime_test, PreCancelledTokenReturnsImmediately) {
  const auto instance = test::selective_instance(8, 2);
  opt::Stop_source source;
  source.request_stop();
  Request request;
  request.instance = &instance;
  request.stop = source.token();
  Bnb_optimizer bnb;
  const auto result = bnb.optimize(request);
  EXPECT_EQ(result.termination, Termination::cancelled);
  EXPECT_EQ(result.plan.size(), 0u);
}

TEST(Anytime_test, CostTargetShortCircuitsTheExactSearch) {
  const auto instance = test::selective_instance(11, 17);
  Request request;
  request.instance = &instance;
  Bnb_optimizer reference;
  const auto exact = reference.optimize(request);
  ASSERT_TRUE(exact.proven_optimal);

  // Accept anything within 2x of optimal: the first descent qualifies
  // almost immediately, so the search must stop far before the proof.
  request.budget.cost_target = exact.cost * 2.0;
  Bnb_optimizer satisficer;
  const auto good_enough = satisficer.optimize(request);
  if (good_enough.termination == Termination::cost_target_reached) {
    EXPECT_LE(good_enough.cost, request.budget.cost_target);
    EXPECT_FALSE(good_enough.proven_optimal);
    EXPECT_LE(good_enough.stats.nodes_expanded,
              exact.stats.nodes_expanded);
  } else {
    // Degenerate: even the first incumbent was already optimal and above
    // the target only if costs were zero — accept a clean optimal run.
    EXPECT_EQ(good_enough.termination, Termination::optimal);
  }

  // Deadline variant of "good enough": the streamed best under a real
  // deadline is a valid plan whose cost the result reports faithfully.
  Request deadline_request;
  deadline_request.instance = &instance;
  deadline_request.budget.time_limit_seconds = 0.02;
  const auto under_deadline = Bnb_optimizer().optimize(deadline_request);
  if (under_deadline.plan.size() == instance.size()) {
    EXPECT_TRUE(test::costs_equal(
        under_deadline.cost,
        model::bottleneck_cost(instance, under_deadline.plan)));
  }
}

}  // namespace
}  // namespace quest
