// Correctness of the branch-and-bound: on every instance family and every
// configuration, it must return exactly the optimum found by exhaustive
// search (small n) or the subset DP (larger n).

#include <gtest/gtest.h>

#include "quest/core/branch_and_bound.hpp"
#include "quest/opt/dp.hpp"
#include "quest/opt/exhaustive.hpp"
#include "quest/workload/generators.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using core::Bnb_optimizer;
using core::Bnb_options;
using core::Epsilon_bar_mode;
using model::Instance;
using model::Send_policy;
using opt::Request;

Request request_for(const Instance& instance,
                    Send_policy policy = Send_policy::sequential) {
  Request request;
  request.instance = &instance;
  request.model = model::Cost_model::independent(policy);
  return request;
}

void expect_matches_exhaustive(const Instance& instance,
                               const Request& request,
                               const Bnb_options& options = {}) {
  Bnb_optimizer bnb(options);
  opt::Exhaustive_optimizer exhaustive;
  const auto got = bnb.optimize(request);
  const auto want = exhaustive.optimize(request);
  ASSERT_TRUE(want.proven_optimal);
  EXPECT_TRUE(got.proven_optimal);
  EXPECT_TRUE(test::costs_equal(got.cost, want.cost))
      << "instance " << instance.name() << ", plan " << got.plan.to_string();
  // The returned plan must actually achieve the reported cost.
  EXPECT_TRUE(test::costs_equal(
      got.cost, model::bottleneck_cost(instance, got.plan, request.model)));
}

// ---- parameterized sweep over sizes and seeds --------------------------

struct Sweep_param {
  std::size_t n;
  std::uint64_t seed;
};

class Bnb_matches_exhaustive
    : public ::testing::TestWithParam<Sweep_param> {};

TEST_P(Bnb_matches_exhaustive, Selective) {
  const auto [n, seed] = GetParam();
  const Instance instance = test::selective_instance(n, seed);
  expect_matches_exhaustive(instance, request_for(instance));
}

TEST_P(Bnb_matches_exhaustive, ExpandingServices) {
  const auto [n, seed] = GetParam();
  const Instance instance = test::expanding_instance(n, seed);
  expect_matches_exhaustive(instance, request_for(instance));
}

TEST_P(Bnb_matches_exhaustive, WithSinkTransfers) {
  const auto [n, seed] = GetParam();
  const Instance instance = test::sink_instance(n, seed);
  expect_matches_exhaustive(instance, request_for(instance));
}

TEST_P(Bnb_matches_exhaustive, OverlappedPolicy) {
  const auto [n, seed] = GetParam();
  const Instance instance = test::selective_instance(n, seed);
  expect_matches_exhaustive(instance,
                            request_for(instance, Send_policy::overlapped));
}

TEST_P(Bnb_matches_exhaustive, LooseEpsilonBar) {
  const auto [n, seed] = GetParam();
  const Instance instance = test::selective_instance(n, seed);
  Bnb_options options;
  options.ebar_mode = Epsilon_bar_mode::loose;
  expect_matches_exhaustive(instance, request_for(instance), options);
}

TEST_P(Bnb_matches_exhaustive, ClosureDisabled) {
  const auto [n, seed] = GetParam();
  const Instance instance = test::selective_instance(n, seed);
  Bnb_options options;
  options.enable_closure = false;
  expect_matches_exhaustive(instance, request_for(instance), options);
}

TEST_P(Bnb_matches_exhaustive, BackjumpDisabled) {
  const auto [n, seed] = GetParam();
  const Instance instance = test::selective_instance(n, seed);
  Bnb_options options;
  options.enable_backjump = false;
  expect_matches_exhaustive(instance, request_for(instance), options);
}

TEST_P(Bnb_matches_exhaustive, WarmStart) {
  const auto [n, seed] = GetParam();
  const Instance instance = test::selective_instance(n, seed);
  Bnb_options options;
  options.warm_start = true;
  expect_matches_exhaustive(instance, request_for(instance), options);
}

TEST_P(Bnb_matches_exhaustive, LowerBoundExtension) {
  const auto [n, seed] = GetParam();
  const Instance instance = test::expanding_instance(n, seed);
  Bnb_options options;
  options.enable_lower_bound = true;
  expect_matches_exhaustive(instance, request_for(instance), options);
}

TEST_P(Bnb_matches_exhaustive, ZeroSuboptimalityIsExact) {
  const auto [n, seed] = GetParam();
  const Instance instance = test::selective_instance(n, seed);
  Bnb_options options;
  options.suboptimality = 0.0;
  expect_matches_exhaustive(instance, request_for(instance), options);
}

TEST_P(Bnb_matches_exhaustive, SuboptimalityGuaranteeHolds) {
  const auto [n, seed] = GetParam();
  const Instance instance = test::selective_instance(n, seed);
  opt::Exhaustive_optimizer exhaustive;
  const auto request = request_for(instance);
  const double optimum = exhaustive.optimize(request).cost;
  for (const double delta : {0.05, 0.25, 1.0}) {
    Bnb_options options;
    options.suboptimality = delta;
    Bnb_optimizer bnb(options);
    const auto result = bnb.optimize(request);
    EXPECT_FALSE(result.proven_optimal);
    // The relaxed search must stay within its advertised factor...
    EXPECT_LE(result.cost,
              optimum * (1.0 + delta) * (1.0 + test::cost_tolerance))
        << "delta " << delta;
    // ...and still return a real, feasible plan achieving the cost.
    EXPECT_TRUE(result.plan.is_permutation_of(n));
    EXPECT_TRUE(test::costs_equal(
        result.cost, model::bottleneck_cost(instance, result.plan)));
  }
}

TEST_P(Bnb_matches_exhaustive, WithPrecedence) {
  const auto [n, seed] = GetParam();
  const Instance instance = test::selective_instance(n, seed);
  Rng rng(seed ^ 0xDA6u);
  const auto dag = workload::make_random_dag(n, 0.3, rng);
  Request request = request_for(instance);
  request.precedence = &dag;
  Bnb_optimizer bnb;
  opt::Exhaustive_optimizer exhaustive;
  const auto got = bnb.optimize(request);
  const auto want = exhaustive.optimize(request);
  EXPECT_TRUE(test::costs_equal(got.cost, want.cost));
  EXPECT_TRUE(dag.respects(got.plan.order()));
  EXPECT_TRUE(got.plan.is_permutation_of(n));
}

TEST_P(Bnb_matches_exhaustive, ClusteredTopology) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  workload::Clustered_spec spec;
  spec.n = n;
  const Instance instance = workload::make_clustered(spec, rng);
  expect_matches_exhaustive(instance, request_for(instance));
}

TEST_P(Bnb_matches_exhaustive, BottleneckTspReduction) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  workload::Bottleneck_tsp_spec spec;
  spec.n = n;
  const Instance instance = workload::make_bottleneck_tsp(spec, rng);
  expect_matches_exhaustive(instance, request_for(instance));
}

std::vector<Sweep_param> sweep_params() {
  std::vector<Sweep_param> params;
  for (std::size_t n = 2; n <= 8; ++n) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      params.push_back({n, seed * 7919});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Bnb_matches_exhaustive,
                         ::testing::ValuesIn(sweep_params()),
                         [](const auto& param_info) {
                           return "n" + std::to_string(param_info.param.n) +
                                  "_seed" +
                                  std::to_string(param_info.param.seed);
                         });

// ---- spot checks against the subset DP at sizes exhaustive cannot reach -

TEST(Bnb_matches_dp, Size12Selective) {
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    const Instance instance = test::selective_instance(12, seed);
    Bnb_optimizer bnb;
    opt::Dp_optimizer dp;
    const auto request = request_for(instance);
    const auto got = bnb.optimize(request);
    const auto want = dp.optimize(request);
    EXPECT_TRUE(test::costs_equal(got.cost, want.cost)) << "seed " << seed;
  }
}

// Expanding services (sigma > 1) weaken Lemma-1/2 pruning, so the exact
// cross-check stays at n = 10 (n = 13 already takes minutes; see
// EXPERIMENTS.md, E4).
TEST(Bnb_matches_dp, Size10Expanding) {
  const Instance instance = test::expanding_instance(10, 99);
  Bnb_optimizer bnb;
  opt::Dp_optimizer dp;
  const auto request = request_for(instance);
  EXPECT_TRUE(
      test::costs_equal(bnb.optimize(request).cost, dp.optimize(request).cost));
}

TEST(Bnb_matches_dp, Size14BottleneckTsp) {
  Rng rng(4242);
  workload::Bottleneck_tsp_spec spec;
  spec.n = 14;
  const Instance instance = workload::make_bottleneck_tsp(spec, rng);
  Bnb_optimizer bnb;
  opt::Dp_optimizer dp;
  const auto request = request_for(instance);
  EXPECT_TRUE(
      test::costs_equal(bnb.optimize(request).cost, dp.optimize(request).cost));
}

// ---- degenerate shapes --------------------------------------------------

TEST(Bnb_edge_cases, SingleService) {
  const Instance instance({{2.5, 0.5, "only"}},
                          Matrix<double>::square(1, 0.0));
  Bnb_optimizer bnb;
  const auto result = bnb.optimize(request_for(instance));
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.plan.size(), 1u);
  EXPECT_TRUE(test::costs_equal(result.cost, 2.5));
}

TEST(Bnb_edge_cases, TwoServicesPicksCheaperOrder) {
  // a: cost 1, sigma 0.5; b: cost 10, sigma 0.5; t symmetric 1.
  Matrix<double> t = Matrix<double>::square(2, 0.0);
  t(0, 1) = t(1, 0) = 1.0;
  const Instance instance({{1.0, 0.5, "a"}, {10.0, 0.5, "b"}}, std::move(t));
  Bnb_optimizer bnb;
  const auto result = bnb.optimize(request_for(instance));
  // a first: max(1 + 0.5*1, 0.5*10) = 5; b first: max(10.5, 0.5) = 10.5.
  EXPECT_TRUE(test::costs_equal(result.cost, 5.0));
  EXPECT_EQ(result.plan[0], 0u);
}

TEST(Bnb_edge_cases, ZeroCostsAndTransfers) {
  const Instance instance({{0.0, 0.5, "a"}, {0.0, 0.5, "b"}, {0.0, 1.0, "c"}},
                          Matrix<double>::square(3, 0.0));
  Bnb_optimizer bnb;
  const auto result = bnb.optimize(request_for(instance));
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_TRUE(test::costs_equal(result.cost, 0.0));
}

TEST(Bnb_edge_cases, ZeroSelectivityShortCircuitsDownstream) {
  // A sigma = 0 filter kills all downstream flow; optimal plans place the
  // expensive service after it.
  Matrix<double> t = Matrix<double>::square(3, 0.0);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) t(i, j) = 1.0;
    }
  }
  const Instance instance({{1.0, 0.0, "kill"}, {100.0, 0.5, "heavy"},
                           {1.0, 0.5, "light"}},
                          std::move(t));
  Bnb_optimizer bnb;
  opt::Exhaustive_optimizer exhaustive;
  const auto request = request_for(instance);
  const auto got = bnb.optimize(request);
  EXPECT_TRUE(
      test::costs_equal(got.cost, exhaustive.optimize(request).cost));
  // "heavy" must not run before "kill".
  const auto positions = got.plan.positions(3);
  EXPECT_GT(positions[1], positions[0]);
}

TEST(Bnb_edge_cases, TotalOrderPrecedenceLeavesOnePlan) {
  const Instance instance = test::selective_instance(6, 5);
  constraints::Precedence_graph chain(6);
  for (model::Service_id v = 0; v + 1 < 6; ++v) chain.add_edge(v, v + 1);
  Request request = request_for(instance);
  request.precedence = &chain;
  Bnb_optimizer bnb;
  const auto result = bnb.optimize(request);
  EXPECT_EQ(result.plan, model::Plan::identity(6));
  EXPECT_TRUE(test::costs_equal(
      result.cost,
      model::bottleneck_cost(instance, model::Plan::identity(6))));
}

// When the cost model cannot provide sound selectivity *upper* bounds
// (here the attainable-product bounds overflow to infinity), the search
// must fall back to Lemma-2-disabled operation — still exact via
// Lemma 1/3, with the admissible lower bound surviving on the
// always-finite lower bounds.
TEST(Bnb_fallback, UnsoundBoundsDisableClosureButStayExact) {
  const std::size_t n = 6;
  const Instance instance = test::selective_instance(n, 42);
  Matrix<double> gamma = Matrix<double>::square(n, 1.0);
  // Two enormous (finite) interactions onto service 1: any bound over
  // all prefixes multiplies them and overflows, but real plans that keep
  // service 1 early stay finite, so an optimum exists.
  gamma(0, 1) = gamma(1, 0) = 1e200;
  gamma(2, 1) = gamma(1, 2) = 1e200;
  const auto cost_model = model::Cost_model::correlated(
      std::move(gamma), Send_policy::sequential, 0.0, 1e300);
  const auto bounds = cost_model.selectivity_bounds(instance);
  ASSERT_TRUE(bounds.has_value());
  ASSERT_FALSE(bounds->hi_sound);

  Request request;
  request.instance = &instance;
  request.model = cost_model;

  Bnb_options with_everything;
  with_everything.enable_closure = true;
  with_everything.enable_lower_bound = true;
  Bnb_optimizer bnb(with_everything);
  opt::Exhaustive_optimizer exhaustive;
  const auto got = bnb.optimize(request);
  const auto want = exhaustive.optimize(request);
  ASSERT_TRUE(want.proven_optimal);
  EXPECT_TRUE(got.proven_optimal);
  EXPECT_TRUE(test::costs_equal(got.cost, want.cost));
  // The fallback really was taken: no closure could have fired — but
  // the admissible lower bound (finite lo products) stays available.
  EXPECT_EQ(got.stats.lemma2_closures, 0u);
  EXPECT_EQ(got.stats.ebar_evaluations, 0u);
}

// Correlated models flow through the same exactness sweep: bnb (all
// pruning on) against exhaustive ground truth.
TEST_P(Bnb_matches_exhaustive, CorrelatedModel) {
  const auto [n, seed] = GetParam();
  const Instance instance = test::selective_instance(n, seed);
  Request request = request_for(instance);
  request.model =
      model::Cost_model::correlated_seeded(n, 0.7, seed * 3 + 1);
  expect_matches_exhaustive(instance, request);
}

}  // namespace
}  // namespace quest
