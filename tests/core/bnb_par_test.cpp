// The parallel engine's contract (quest/core/bnb_par.hpp): the same
// optimal cost as the sequential exact engines under every cost model,
// a run-to-run stable canonical plan regardless of thread count or
// interleaving, and the sequential engines' 50 ms cancellation latency
// even with eight workers in flight.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "quest/common/timer.hpp"
#include "quest/core/bnb_par.hpp"
#include "quest/core/branch_and_bound.hpp"
#include "quest/core/engines.hpp"
#include "quest/opt/dp.hpp"
#include "quest/opt/exhaustive.hpp"
#include "quest/opt/stop_token.hpp"
#include "quest/workload/generators.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using core::Bnb_optimizer;
using core::Bnb_par_optimizer;
using core::Bnb_par_options;
using opt::Request;
using opt::Termination;

model::Instance btsp_instance(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  workload::Bottleneck_tsp_spec spec;
  spec.n = n;
  return workload::make_bottleneck_tsp(spec, rng);
}

opt::Result run_par(const model::Instance& instance, std::size_t threads,
                    model::Cost_model cost_model = {}) {
  Bnb_par_options options;
  options.threads = threads;
  Bnb_par_optimizer par(options);
  Request request;
  request.instance = &instance;
  request.model = cost_model;
  return par.optimize(request);
}

/// Same latency budget anytime_test enforces for the sequential engines.
constexpr double cancel_latency_budget_seconds = 0.05;

TEST(Bnb_par_test, MatchesSequentialOptimaOnIndependentModels) {
  // 20 seeds; every exact engine must land on one optimal cost, and the
  // parallel engine must match it at 1 and at 4 workers.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto instance = test::selective_instance(9, seed);
    Request request;
    request.instance = &instance;
    const auto bnb = Bnb_optimizer().optimize(request);
    const auto dp = opt::Dp_optimizer().optimize(request);
    const auto exhaustive = opt::Exhaustive_optimizer().optimize(request);
    EXPECT_TRUE(test::costs_equal(bnb.cost, dp.cost)) << "seed " << seed;
    EXPECT_TRUE(test::costs_equal(bnb.cost, exhaustive.cost))
        << "seed " << seed;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const auto par = run_par(instance, threads);
      EXPECT_TRUE(par.proven_optimal) << "seed " << seed;
      EXPECT_TRUE(par.plan.is_permutation_of(instance.size()));
      EXPECT_TRUE(test::costs_equal(par.cost, bnb.cost))
          << "seed " << seed << ", threads " << threads;
      EXPECT_TRUE(test::costs_equal(
          par.cost, model::bottleneck_cost(instance, par.plan)));
      EXPECT_EQ(par.stats.engine_threads, threads);
    }
  }
}

TEST(Bnb_par_test, MatchesSequentialOptimaOnCorrelatedModels) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto instance = test::selective_instance(9, seed);
    const auto cost_model =
        model::Cost_model::correlated_seeded(9, 0.7, seed * 3 + 1);
    Request request;
    request.instance = &instance;
    request.model = cost_model;
    const auto bnb = Bnb_optimizer().optimize(request);
    const auto dp = opt::Dp_optimizer().optimize(request);
    const auto exhaustive = opt::Exhaustive_optimizer().optimize(request);
    EXPECT_TRUE(test::costs_equal(bnb.cost, dp.cost)) << "seed " << seed;
    EXPECT_TRUE(test::costs_equal(bnb.cost, exhaustive.cost))
        << "seed " << seed;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const auto par = run_par(instance, threads, cost_model);
      EXPECT_TRUE(par.proven_optimal) << "seed " << seed;
      EXPECT_TRUE(test::costs_equal(par.cost, bnb.cost))
          << "seed " << seed << ", threads " << threads;
      EXPECT_TRUE(test::costs_equal(
          par.cost, model::bottleneck_cost(instance, par.plan, cost_model)));
    }
  }
}

TEST(Bnb_par_test, PlanIsDeterministicAcrossRunsAtEightThreads) {
  // Ten repetitions at eight workers: interleavings differ wildly from
  // run to run, the returned plan must not.
  for (std::uint64_t seed : {3u, 17u}) {
    const auto instance = test::selective_instance(12, seed);
    const auto reference = run_par(instance, 8);
    ASSERT_TRUE(reference.proven_optimal);
    for (int rep = 1; rep < 10; ++rep) {
      const auto repeat = run_par(instance, 8);
      EXPECT_EQ(repeat.plan.order(), reference.plan.order())
          << "seed " << seed << ", rep " << rep;
      EXPECT_EQ(repeat.cost, reference.cost) << "bit-identical, not just ~=";
    }
  }
}

TEST(Bnb_par_test, PlanIsIndependentOfThreadCount) {
  // The canonical reconstruction never sees the worker count, so 1, 2, 4
  // and 8 threads must return the identical plan, not just equal costs.
  const auto instance = test::selective_instance(12, 29);
  const auto reference = run_par(instance, 1);
  ASSERT_TRUE(reference.proven_optimal);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    const auto par = run_par(instance, threads);
    EXPECT_EQ(par.plan.order(), reference.plan.order())
        << "threads " << threads;
    EXPECT_EQ(par.cost, reference.cost);
  }
}

TEST(Bnb_par_test, RegistrySpecRoundTrip) {
  const auto instance = test::selective_instance(10, 7);
  Request request;
  request.instance = &instance;
  const auto seq = Bnb_optimizer().optimize(request);
  const auto par = core::make_optimizer("bnb-par:threads=3");
  EXPECT_EQ(par->name(), "bnb-par");
  const auto result = par->optimize(request);
  EXPECT_TRUE(test::costs_equal(result.cost, seq.cost));
  EXPECT_EQ(result.stats.engine_threads, 3u);
  EXPECT_THROW(core::make_optimizer("bnb-par:threads=257"), Error);
  EXPECT_THROW(core::make_optimizer("bnb-par:subopt=0.5"), Error);
}

TEST(Bnb_par_test, CancelsWithinTheLatencyBudgetAtEightThreads) {
  // Mirror of anytime_test's sequential latency check: cancel from
  // another thread mid-flight on a pruning-resistant bottleneck-TSP
  // instance; with eight workers in flight the engine must still join
  // them all and return within the 50 ms budget.
  const auto instance = btsp_instance(13, 11);
  opt::Stop_source source;
  Request request;
  request.instance = &instance;
  request.stop = source.token();
  request.budget.time_limit_seconds = 20.0;  // safety net only

  Timer timer;
  std::atomic<bool> has_incumbent{false};
  request.on_incumbent = [&](const model::Plan&, double,
                             const opt::Search_stats&) {
    has_incumbent.store(true, std::memory_order_release);
  };
  std::atomic<double> cancelled_at{-1.0};
  std::thread canceller([&] {
    while (!has_incumbent.load(std::memory_order_acquire) &&
           timer.seconds() < 10.0) {
      std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    cancelled_at.store(timer.seconds(), std::memory_order_release);
    source.request_stop();
  });
  Bnb_par_options options;
  options.threads = 8;
  Bnb_par_optimizer par(options);
  const auto result = par.optimize(request);
  const double elapsed = timer.seconds();
  canceller.join();

  if (result.termination == Termination::cancelled) {
    EXPECT_LE(elapsed, cancelled_at.load() + cancel_latency_budget_seconds);
    EXPECT_FALSE(result.proven_optimal);
    EXPECT_TRUE(result.plan.is_permutation_of(instance.size()));
    EXPECT_TRUE(test::costs_equal(
        result.cost, model::bottleneck_cost(instance, result.plan)));
  } else {
    // Eight workers solved a 13-service bottleneck TSP before the cancel
    // landed — legitimate on a fast host.
    EXPECT_EQ(result.termination, Termination::optimal);
  }
}

TEST(Bnb_par_test, CostTargetStopsTheParallelSearch) {
  const auto instance = btsp_instance(12, 5);
  // A greedy-reachable target: the warm start satisfies it immediately.
  Request probe;
  probe.instance = &instance;
  const auto optimal = Bnb_optimizer().optimize(probe);
  Request request;
  request.instance = &instance;
  request.budget.cost_target = optimal.cost * 100.0;
  Bnb_par_options options;
  options.threads = 4;
  const auto result = Bnb_par_optimizer(options).optimize(request);
  if (result.termination == Termination::cost_target_reached) {
    EXPECT_FALSE(result.proven_optimal);
    EXPECT_TRUE(result.plan.is_permutation_of(instance.size()));
    EXPECT_LE(result.cost, request.budget.cost_target);
  } else {
    // The whole search can finish before any worker observes the stop.
    EXPECT_EQ(result.termination, Termination::optimal);
  }
}

TEST(Bnb_par_test, SingleServiceShortCircuit) {
  const auto instance = test::selective_instance(1, 4);
  const auto result = run_par(instance, 8);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.plan.size(), 1u);
  EXPECT_EQ(result.stats.engine_threads, 1u);
}

}  // namespace
}  // namespace quest
