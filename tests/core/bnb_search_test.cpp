// Behavioural tests of the branch-and-bound search machinery: statistics,
// limits, pruning effectiveness, determinism.

#include <gtest/gtest.h>

#include "quest/core/branch_and_bound.hpp"
#include "quest/opt/exhaustive.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using core::Bnb_optimizer;
using core::Bnb_options;
using model::Instance;
using opt::Request;

Request request_for(const Instance& instance) {
  Request request;
  request.instance = &instance;
  return request;
}

TEST(Bnb_search, ExploresFarFewerNodesThanExhaustive) {
  const Instance instance = test::selective_instance(9, 42);
  Bnb_optimizer bnb;
  opt::Exhaustive_optimizer exhaustive;
  const auto request = request_for(instance);
  const auto pruned = bnb.optimize(request);
  const auto full = exhaustive.optimize(request);
  EXPECT_LT(pruned.stats.nodes_expanded, full.stats.nodes_expanded / 10)
      << "bnb should prune the vast majority of the tree";
}

TEST(Bnb_search, PairSeedingCountsAreConsistent) {
  const std::size_t n = 8;
  const Instance instance = test::selective_instance(n, 7);
  Bnb_optimizer bnb;
  const auto result = bnb.optimize(request_for(instance));
  EXPECT_EQ(result.stats.pairs_total, n * (n - 1));
  EXPECT_GE(result.stats.pairs_explored, 1u);
  EXPECT_LE(result.stats.pairs_explored, result.stats.pairs_total);
}

TEST(Bnb_search, PruningCountersFireOnRealInstances) {
  const Instance instance = test::selective_instance(10, 123);
  Bnb_optimizer bnb;
  const auto result = bnb.optimize(request_for(instance));
  EXPECT_GT(result.stats.lemma1_cutoffs, 0u);
  EXPECT_GT(result.stats.lemma2_closures, 0u);
  EXPECT_GT(result.stats.lemma3_backjumps, 0u);
  EXPECT_GT(result.stats.ebar_evaluations, 0u);
  EXPECT_GT(result.stats.incumbent_updates, 0u);
}

TEST(Bnb_search, NodeLimitReturnsFeasibleButUnproven) {
  const Instance instance = test::selective_instance(11, 9);
  Request request = request_for(instance);
  // First find the true optimum.
  Bnb_optimizer reference;
  const auto optimal = reference.optimize(request);
  ASSERT_TRUE(optimal.proven_optimal);

  // A limit below the length of the first descent guarantees an abort.
  request.budget.node_limit = 4;
  Bnb_optimizer limited;
  const auto result = limited.optimize(request);
  EXPECT_EQ(result.termination, opt::Termination::budget_exhausted);
  EXPECT_FALSE(result.proven_optimal);
  EXPECT_LE(result.stats.nodes_expanded, 6u);  // limit + one pair seed
  if (result.plan.size() == instance.size()) {
    EXPECT_GE(result.cost, optimal.cost * (1.0 - test::cost_tolerance));
  }
}

TEST(Bnb_search, TimeLimitIsRespected) {
  const Instance instance = test::selective_instance(14, 31);
  Request request = request_for(instance);
  request.budget.time_limit_seconds = 1e-6;  // essentially instant
  Bnb_optimizer bnb;
  const auto result = bnb.optimize(request);
  // Tiny budget: either it finished very fast or it aborted cleanly.
  if (opt::stopped_early(result.termination)) {
    EXPECT_EQ(result.termination, opt::Termination::budget_exhausted);
    EXPECT_FALSE(result.proven_optimal);
  } else {
    EXPECT_TRUE(result.proven_optimal);
  }
}

TEST(Bnb_search, DeterministicAcrossRuns) {
  const Instance instance = test::selective_instance(9, 5);
  Bnb_optimizer bnb;
  const auto first = bnb.optimize(request_for(instance));
  const auto second = bnb.optimize(request_for(instance));
  EXPECT_EQ(first.plan, second.plan);
  EXPECT_EQ(first.stats.nodes_expanded, second.stats.nodes_expanded);
  EXPECT_EQ(first.stats.lemma2_closures, second.stats.lemma2_closures);
}

TEST(Bnb_search, WarmStartNeverExpandsMoreThanColdOnPairExit) {
  const Instance instance = test::selective_instance(10, 77);
  Bnb_options warm;
  warm.warm_start = true;
  Bnb_optimizer warm_bnb(warm);
  Bnb_optimizer cold_bnb;
  const auto warm_result = warm_bnb.optimize(request_for(instance));
  const auto cold_result = cold_bnb.optimize(request_for(instance));
  EXPECT_TRUE(test::costs_equal(warm_result.cost, cold_result.cost));
}

TEST(Bnb_search, ExactEbarClosesAtLeastAsOftenAsLoose) {
  const Instance instance = test::selective_instance(10, 19);
  Bnb_options loose;
  loose.ebar_mode = core::Epsilon_bar_mode::loose;
  Bnb_optimizer exact_bnb;
  Bnb_optimizer loose_bnb(loose);
  const auto exact_result = exact_bnb.optimize(request_for(instance));
  const auto loose_result = loose_bnb.optimize(request_for(instance));
  EXPECT_TRUE(test::costs_equal(exact_result.cost, loose_result.cost));
  // The tighter bound cannot explore more nodes on the same tree order.
  EXPECT_LE(exact_result.stats.nodes_expanded,
            loose_result.stats.nodes_expanded);
}

TEST(Bnb_search, AblationsCostMoreNodes) {
  const Instance instance = test::selective_instance(10, 57);
  Bnb_optimizer full_bnb;
  Bnb_options no_closure;
  no_closure.enable_closure = false;
  Bnb_optimizer ablated(no_closure);
  const auto with = full_bnb.optimize(request_for(instance));
  const auto without = ablated.optimize(request_for(instance));
  EXPECT_TRUE(test::costs_equal(with.cost, without.cost));
  EXPECT_LE(with.stats.nodes_expanded, without.stats.nodes_expanded);
}

TEST(Bnb_search, NameReflectsConfiguration) {
  EXPECT_EQ(Bnb_optimizer().name(), "bnb");
  Bnb_options options;
  options.ebar_mode = core::Epsilon_bar_mode::loose;
  options.enable_closure = false;
  EXPECT_EQ(Bnb_optimizer(options).name(), "bnb-loose-noclosure");
  Bnb_options extended;
  extended.enable_lower_bound = true;
  extended.suboptimality = 0.1;
  EXPECT_EQ(Bnb_optimizer(extended).name(), "bnb-lb-subopt");
}

TEST(Bnb_search, LowerBoundPrunesFireOnExpandingInstances) {
  const Instance instance = test::expanding_instance(9, 99);
  Bnb_options options;
  options.enable_lower_bound = true;
  Bnb_optimizer with_lb(options);
  Bnb_optimizer without_lb;
  const auto pruned = with_lb.optimize(request_for(instance));
  const auto plain = without_lb.optimize(request_for(instance));
  EXPECT_TRUE(test::costs_equal(pruned.cost, plain.cost));
  EXPECT_GT(pruned.stats.lower_bound_prunes, 0u);
  EXPECT_LE(pruned.stats.nodes_expanded, plain.stats.nodes_expanded);
}

TEST(Bnb_search, SuboptimalitySearchesFewerNodes) {
  const Instance instance = test::selective_instance(11, 3);
  Bnb_options relaxed;
  relaxed.suboptimality = 0.5;
  Bnb_optimizer fast(relaxed);
  Bnb_optimizer exact;
  const auto request = request_for(instance);
  const auto approx = fast.optimize(request);
  const auto truth = exact.optimize(request);
  EXPECT_LE(approx.stats.nodes_expanded, truth.stats.nodes_expanded);
  EXPECT_LE(approx.cost, truth.cost * 1.5 * (1.0 + test::cost_tolerance));
  EXPECT_GE(approx.cost, truth.cost * (1.0 - test::cost_tolerance));
}

TEST(Bnb_search, NegativeSuboptimalityRejected) {
  const Instance instance = test::selective_instance(4, 1);
  Bnb_options options;
  options.suboptimality = -0.1;
  Bnb_optimizer bnb(options);
  EXPECT_THROW(bnb.optimize(request_for(instance)), Precondition_error);
}

TEST(Bnb_search, RejectsMalformedRequests) {
  Bnb_optimizer bnb;
  Request request;  // null instance
  EXPECT_THROW(bnb.optimize(request), Precondition_error);

  const Instance instance = test::selective_instance(4, 3);
  constraints::Precedence_graph wrong_size(5);
  request.instance = &instance;
  request.precedence = &wrong_size;
  EXPECT_THROW(bnb.optimize(request), Precondition_error);

  request.precedence = nullptr;
  request.budget.time_limit_seconds = -1.0;
  EXPECT_THROW(bnb.optimize(request), Precondition_error);

  request.budget.time_limit_seconds = 0.0;
  request.budget.cost_target = -0.5;
  EXPECT_THROW(bnb.optimize(request), Precondition_error);
}

}  // namespace
}  // namespace quest
