// docs/engines.md is a contract: this test parses it and fails when the
// documented engine list or any engine's option keys drift from
// core::engine_registry(). The doc's machine-readable structure:
//
//   * each engine is a heading line  ## `name`
//   * each of its options is a table row starting  | `key` |
//     inside that engine's section.
//
// The file path is baked in by CMake (QUEST_ENGINES_DOC), so the test
// runs from any working directory.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "quest/core/engines.hpp"
#include "quest/io/json.hpp"
#include "quest/model/cost_model.hpp"

#ifndef QUEST_ENGINES_DOC
#error "QUEST_ENGINES_DOC must point at docs/engines.md"
#endif

namespace quest {
namespace {

/// First `backticked` token of a line, or empty.
std::string backticked(const std::string& line) {
  const auto open = line.find('`');
  if (open == std::string::npos) return {};
  const auto close = line.find('`', open + 1);
  if (close == std::string::npos) return {};
  return line.substr(open + 1, close - open - 1);
}

struct Documented_engines {
  /// Engine -> documented option keys.
  std::map<std::string, std::set<std::string>> options;
  /// Engines in heading order.
  std::vector<std::string> order;
};

void parse_doc(const std::string& text, Documented_engines& doc) {
  std::istringstream lines(text);
  std::string line;
  std::string current;
  while (std::getline(lines, line)) {
    if (line.rfind("## ", 0) == 0) {
      current = backticked(line);
      ASSERT_FALSE(current.empty())
          << "engine heading without a `name`: " << line;
      ASSERT_EQ(doc.options.count(current), 0u)
          << "duplicate engine section: " << current;
      doc.options[current] = {};
      doc.order.push_back(current);
      continue;
    }
    if (current.empty()) continue;
    // Option rows: "| `key` | ..." — the header row ("| Option |") and
    // the separator row have no backticked first cell.
    if (line.rfind("| `", 0) == 0) {
      const std::string key = backticked(line);
      ASSERT_FALSE(key.empty());
      doc.options[current].insert(key);
    }
  }
}

TEST(Engine_docs_test, DocMatchesTheRegistry) {
  const std::string text = io::read_file(QUEST_ENGINES_DOC);
  Documented_engines doc;
  parse_doc(text, doc);

  const auto& registry = core::engine_registry();
  const std::vector<std::string> registered = registry.names();

  // Every registered engine is documented; nothing phantom is.
  const std::set<std::string> documented(doc.order.begin(), doc.order.end());
  for (const auto& name : registered) {
    EXPECT_EQ(documented.count(name), 1u)
        << "engine '" << name
        << "' is registered but missing from docs/engines.md";
  }
  for (const auto& name : doc.order) {
    EXPECT_TRUE(std::find(registered.begin(), registered.end(), name) !=
                registered.end())
        << "docs/engines.md documents '" << name
        << "', which is not in the registry";
  }

  // Per engine, the documented option keys match exactly.
  for (const auto& name : registered) {
    if (documented.count(name) == 0) continue;  // reported above
    const auto& keys = registry.option_keys(name);
    const std::set<std::string> expected(keys.begin(), keys.end());
    EXPECT_EQ(doc.options.at(name), expected)
        << "option keys for '" << name
        << "' drifted between the registry and docs/engines.md";
  }
}

TEST(Engine_docs_test, CostModelSectionMatchesTheLibrary) {
  // The "### Cost models" intro section documents three machine-checkable
  // vocabularies: the selectivity structures, the correlated spec options
  // (model::Cost_model_spec), and the shared engine-spec override keys
  // (opt::Registry::shared_option_keys). Their backticked table rows must
  // be exactly the library's sets — no phantom keys, nothing undocumented.
  const std::string text = io::read_file(QUEST_ENGINES_DOC);
  std::istringstream lines(text);
  std::string line;
  bool in_section = false;
  std::set<std::string> documented;
  while (std::getline(lines, line)) {
    if (line.rfind("### Cost models", 0) == 0) {
      in_section = true;
      continue;
    }
    if (line.rfind("## ", 0) == 0) in_section = false;  // engines begin
    if (!in_section) continue;
    if (line.rfind("| `", 0) == 0) {
      const std::string key = backticked(line);
      ASSERT_FALSE(key.empty());
      documented.insert(key);
    }
  }
  ASSERT_FALSE(documented.empty())
      << "docs/engines.md is missing the '### Cost models' section";

  std::set<std::string> expected;
  for (const auto& name : model::Cost_model_spec::structure_names()) {
    expected.insert(name);
  }
  for (const auto& key : model::Cost_model_spec::option_keys()) {
    expected.insert(key);
  }
  for (const auto& key : opt::Registry::shared_option_keys()) {
    expected.insert(key);
  }
  EXPECT_EQ(documented, expected)
      << "cost-model vocabulary drifted between the library and "
         "docs/engines.md";
}

TEST(Engine_docs_test, DocOrderFollowsRegistrationOrder) {
  // Keeps the reference scannable next to `quest_cli --list` output: the
  // engines appear in the doc in registration order.
  const std::string text = io::read_file(QUEST_ENGINES_DOC);
  Documented_engines doc;
  parse_doc(text, doc);

  const std::vector<std::string> registered =
      core::engine_registry().names();
  std::vector<std::string> documented_registered;
  for (const auto& name : doc.order) {
    if (std::find(registered.begin(), registered.end(), name) !=
        registered.end()) {
      documented_registered.push_back(name);
    }
  }
  EXPECT_EQ(documented_registered, registered);
}

}  // namespace
}  // namespace quest
