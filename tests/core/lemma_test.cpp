// Direct verification of the paper's three lemmas on random instances.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "quest/core/branch_and_bound.hpp"
#include "quest/core/measures.hpp"
#include "quest/model/cost.hpp"
#include "quest/opt/exhaustive.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using core::Epsilon_bar;
using core::Epsilon_bar_mode;
using model::Instance;
using model::Partial_plan_evaluator;
using model::Plan;
using model::Service_id;

// Lemma 1: epsilon never decreases as a partial plan grows, and the final
// cost is at least the epsilon of every prefix.
TEST(Lemma1, EpsilonIsMonotoneUnderExtension) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::size_t n = 10;
    const Instance instance = test::expanding_instance(n, seed);
    Rng rng(seed);
    const auto order = rng.permutation(n);
    Partial_plan_evaluator eval(instance);
    double previous = 0.0;
    for (const std::size_t id : order) {
      eval.append(static_cast<Service_id>(id));
      EXPECT_GE(eval.epsilon(), previous - 1e-15);
      previous = eval.epsilon();
    }
    EXPECT_GE(eval.complete_cost(), previous - 1e-15);
  }
}

// Lemma 2: when epsilon >= epsilon-bar, *every* completion of the partial
// plan has cost exactly epsilon. Verified by enumerating all completions.
TEST(Lemma2, AllCompletionsCostEpsilonAfterClosure) {
  std::size_t closures_checked = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const std::size_t n = 7;
    const Instance instance = test::selective_instance(n, seed);
    const Epsilon_bar ebar(instance, model::Cost_model{},
                           Epsilon_bar_mode::exact);
    Rng rng(seed * 131);
    for (int trial = 0; trial < 30; ++trial) {
      const auto order = rng.permutation(n);
      const std::size_t prefix_len =
          2 + static_cast<std::size_t>(rng.uniform_int(n - 2));
      Partial_plan_evaluator eval(instance);
      for (std::size_t p = 0; p < prefix_len; ++p) {
        eval.append(static_cast<Service_id>(order[p]));
      }
      std::vector<Service_id> remaining;
      for (std::size_t p = prefix_len; p < n; ++p) {
        remaining.push_back(static_cast<Service_id>(order[p]));
      }
      if (eval.epsilon() < ebar.evaluate(eval, remaining)) continue;
      ++closures_checked;
      std::sort(remaining.begin(), remaining.end());
      do {
        Plan full = eval.plan();
        for (const Service_id id : remaining) full.append(id);
        EXPECT_TRUE(test::costs_equal(
            model::bottleneck_cost(instance, full), eval.epsilon()))
            << "seed " << seed << " trial " << trial;
      } while (std::next_permutation(remaining.begin(), remaining.end()));
    }
  }
  // The sweep must actually exercise the lemma.
  EXPECT_GT(closures_checked, 10u);
}

// Lemma 3: no plan extending a prefix stored in V beats the final optimum.
TEST(Lemma3, StoredPrefixesCannotBeatTheOptimum) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const std::size_t n = 7;
    const Instance instance = test::selective_instance(n, seed * 17);
    core::Bnb_options options;
    options.record_pruned_prefixes = true;
    core::Bnb_optimizer bnb(options);
    opt::Request request;
    request.instance = &instance;
    const auto result = bnb.optimize(request);
    ASSERT_TRUE(result.proven_optimal);

    const auto& store = bnb.pruned_prefixes();
    ASSERT_EQ(store.dropped(), 0u);
    for (const auto& prefix : store.prefixes()) {
      // Enumerate every completion of the stored prefix.
      std::vector<Service_id> remaining;
      for (Service_id u = 0; u < n; ++u) {
        if (std::find(prefix.begin(), prefix.end(), u) == prefix.end()) {
          remaining.push_back(u);
        }
      }
      std::sort(remaining.begin(), remaining.end());
      do {
        Plan full{std::vector<Service_id>(prefix.begin(), prefix.end())};
        for (const Service_id id : remaining) full.append(id);
        EXPECT_GE(model::bottleneck_cost(instance, full),
                  result.cost * (1.0 - test::cost_tolerance))
            << "prefix extension beats the optimum";
      } while (std::next_permutation(remaining.begin(), remaining.end()));
    }
  }
}

// The hardness reduction quoted in the paper: with unit selectivities and
// zero costs the bottleneck metric is the largest transfer on the path.
TEST(Reduction, BottleneckTspCostIsMaxPathEdge) {
  Rng rng(77);
  workload::Bottleneck_tsp_spec spec;
  spec.n = 9;
  const Instance instance = workload::make_bottleneck_tsp(spec, rng);
  for (int trial = 0; trial < 50; ++trial) {
    const auto order = rng.permutation(spec.n);
    Plan plan;
    for (const std::size_t id : order) {
      plan.append(static_cast<Service_id>(id));
    }
    double max_edge = 0.0;
    for (std::size_t p = 0; p + 1 < spec.n; ++p) {
      max_edge =
          std::max(max_edge, instance.transfer(plan[p], plan[p + 1]));
    }
    EXPECT_TRUE(
        test::costs_equal(model::bottleneck_cost(instance, plan), max_edge));
  }
}

}  // namespace
}  // namespace quest
