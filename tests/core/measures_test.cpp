// Property tests for the epsilon-bar measure: it must upper-bound every
// stage term any completion of a partial plan can still produce (this is
// exactly what Lemma 2's soundness needs).

#include <gtest/gtest.h>

#include <vector>

#include "quest/core/measures.hpp"
#include "quest/model/cost.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using core::Epsilon_bar;
using core::Epsilon_bar_mode;
using model::Instance;
using model::Partial_plan_evaluator;
using model::Plan;
using model::Send_policy;
using model::Service_id;

struct Param {
  std::uint64_t seed;
  Send_policy policy;
  bool expanding;
  /// Run the property under a correlated cost model too: the measures
  /// must stay sound for any structure with sound selectivity bounds.
  bool correlated = false;
};

model::Cost_model make_model(const Param& param, std::size_t n) {
  return param.correlated
             ? model::Cost_model::correlated_seeded(n, 0.6,
                                                    param.seed * 11 + 3,
                                                    param.policy)
             : model::Cost_model::independent(param.policy);
}

class Epsilon_bar_property : public ::testing::TestWithParam<Param> {};

/// For a random prefix of a random full ordering, every stage term of the
/// completed plan that was not already determined by the prefix must be
/// <= epsilon-bar.
TEST_P(Epsilon_bar_property, BoundsEveryUndeterminedTerm) {
  const auto param = GetParam();
  const std::size_t n = 9;
  const Instance instance =
      param.expanding ? test::expanding_instance(n, param.seed)
                      : test::sink_instance(n, param.seed);
  const model::Cost_model cost_model = make_model(param, n);
  Rng rng(param.seed * 31 + 7);

  for (int trial = 0; trial < 40; ++trial) {
    const auto order = rng.permutation(n);
    const std::size_t prefix_len =
        2 + static_cast<std::size_t>(rng.uniform_int(n - 2));  // [2, n-1]

    Partial_plan_evaluator eval(instance, cost_model);
    for (std::size_t p = 0; p < prefix_len; ++p) {
      eval.append(static_cast<Service_id>(order[p]));
    }
    std::vector<Service_id> remaining;
    for (std::size_t p = prefix_len; p < n; ++p) {
      remaining.push_back(static_cast<Service_id>(order[p]));
    }

    for (const auto mode :
         {Epsilon_bar_mode::exact, Epsilon_bar_mode::loose}) {
      const Epsilon_bar ebar(instance, cost_model, mode);
      const double bound = ebar.evaluate(eval, remaining);

      // Complete the plan in the sampled order and compare each stage term
      // from position prefix_len-1 (the dangling term) onwards.
      Plan full;
      for (const std::size_t id : order) {
        full.append(static_cast<Service_id>(id));
      }
      const auto breakdown =
          model::cost_breakdown(instance, full, cost_model);
      for (std::size_t p = prefix_len - 1; p < n; ++p) {
        EXPECT_LE(breakdown.stage_costs[p],
                  bound * (1.0 + test::cost_tolerance) + 1e-12)
            << "mode " << static_cast<int>(mode) << " position " << p
            << " trial " << trial;
      }
    }
  }
}

/// exact is never looser than loose.
TEST_P(Epsilon_bar_property, ExactAtMostLoose) {
  const auto param = GetParam();
  const std::size_t n = 8;
  const Instance instance =
      param.expanding ? test::expanding_instance(n, param.seed)
                      : test::selective_instance(n, param.seed);
  const model::Cost_model cost_model = make_model(param, n);
  Rng rng(param.seed);
  const Epsilon_bar exact(instance, cost_model, Epsilon_bar_mode::exact);
  const Epsilon_bar loose(instance, cost_model, Epsilon_bar_mode::loose);

  for (int trial = 0; trial < 25; ++trial) {
    const auto order = rng.permutation(n);
    const std::size_t prefix_len =
        2 + static_cast<std::size_t>(rng.uniform_int(n - 2));
    Partial_plan_evaluator eval(instance, cost_model);
    for (std::size_t p = 0; p < prefix_len; ++p) {
      eval.append(static_cast<Service_id>(order[p]));
    }
    std::vector<Service_id> remaining;
    for (std::size_t p = prefix_len; p < n; ++p) {
      remaining.push_back(static_cast<Service_id>(order[p]));
    }
    EXPECT_LE(exact.evaluate(eval, remaining),
              loose.evaluate(eval, remaining) * (1.0 + 1e-12));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Epsilon_bar_property,
    ::testing::Values(Param{3, Send_policy::sequential, false},
                      Param{4, Send_policy::sequential, true},
                      Param{5, Send_policy::overlapped, false},
                      Param{6, Send_policy::overlapped, true},
                      Param{7, Send_policy::sequential, false},
                      Param{8, Send_policy::sequential, true},
                      Param{9, Send_policy::sequential, false, true},
                      Param{10, Send_policy::sequential, true, true},
                      Param{11, Send_policy::overlapped, false, true},
                      Param{12, Send_policy::overlapped, true, true}),
    [](const auto& param_info) {
      return "seed" + std::to_string(param_info.param.seed) +
             (param_info.param.policy == Send_policy::overlapped ? "_ovl"
                                                                 : "_seq") +
             (param_info.param.expanding ? "_exp" : "_sel") +
             (param_info.param.correlated ? "_corr" : "");
    });

/// Admissibility of the quest-extension lower bound: no completion of the
/// partial plan may cost less than the bound.
TEST_P(Epsilon_bar_property, LowerBoundIsAdmissible) {
  const auto param = GetParam();
  const std::size_t n = 9;
  const Instance instance =
      param.expanding ? test::expanding_instance(n, param.seed)
                      : test::sink_instance(n, param.seed);
  const model::Cost_model cost_model = make_model(param, n);
  const core::Lower_bound lower(instance, cost_model);
  Rng rng(param.seed * 53 + 1);

  for (int trial = 0; trial < 40; ++trial) {
    const auto order = rng.permutation(n);
    const std::size_t prefix_len =
        2 + static_cast<std::size_t>(rng.uniform_int(n - 2));
    Partial_plan_evaluator eval(instance, cost_model);
    for (std::size_t p = 0; p < prefix_len; ++p) {
      eval.append(static_cast<Service_id>(order[p]));
    }
    std::vector<Service_id> remaining;
    for (std::size_t p = prefix_len; p < n; ++p) {
      remaining.push_back(static_cast<Service_id>(order[p]));
    }
    const double bound = lower.evaluate(eval, remaining);

    Plan full;
    for (const std::size_t id : order) {
      full.append(static_cast<Service_id>(id));
    }
    const double cost =
        model::bottleneck_cost(instance, full, cost_model);
    EXPECT_GE(cost, bound * (1.0 - test::cost_tolerance) - 1e-12)
        << "trial " << trial;
    // The lower bound never exceeds the upper bound.
    const Epsilon_bar ebar(instance, cost_model, Epsilon_bar_mode::exact);
    EXPECT_LE(bound, ebar.evaluate(eval, remaining) * (1.0 + 1e-12));
  }
}

TEST(Epsilon_bar_test, RequiresNonEmptyPlanAndRemaining) {
  const Instance instance = test::selective_instance(4, 1);
  const Epsilon_bar ebar(instance, model::Cost_model{},
                         Epsilon_bar_mode::exact);
  Partial_plan_evaluator eval(instance);
  const std::vector<Service_id> remaining{2, 3};
  EXPECT_THROW(ebar.evaluate(eval, remaining), Precondition_error);
  eval.append(0);
  EXPECT_THROW(ebar.evaluate(eval, {}), Precondition_error);
}

}  // namespace
}  // namespace quest
