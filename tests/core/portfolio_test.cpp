#include <gtest/gtest.h>

#include "quest/core/portfolio.hpp"
#include "quest/opt/exhaustive.hpp"
#include "quest/opt/local_search.hpp"
#include "quest/workload/generators.hpp"
#include "quest/workload/scenarios.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using core::Portfolio_optimizer;
using model::Instance;
using opt::Request;

Request request_for(const Instance& instance) {
  Request request;
  request.instance = &instance;
  return request;
}

TEST(Portfolio_test, OptimalOnEveryRegimeAtTestableSizes) {
  Portfolio_optimizer portfolio;
  opt::Exhaustive_optimizer exhaustive;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (const auto& instance :
         {test::selective_instance(8, seed), test::expanding_instance(8, seed),
          test::sink_instance(8, seed)}) {
      const auto request = request_for(instance);
      const auto got = portfolio.optimize(request);
      const auto want = exhaustive.optimize(request);
      EXPECT_TRUE(test::costs_equal(got.cost, want.cost)) << "seed " << seed;
      EXPECT_TRUE(got.proven_optimal);
      EXPECT_TRUE(test::costs_equal(
          got.cost, model::bottleneck_cost(instance, got.plan)));
    }
  }
}

TEST(Portfolio_test, EngineDispatchFollowsTheProfile) {
  const Portfolio_optimizer portfolio;
  EXPECT_EQ(portfolio.chosen_engine(test::selective_instance(10, 1)), "bnb");
  EXPECT_EQ(portfolio.chosen_engine(test::expanding_instance(10, 1)),
            "bnb-lb");

  Rng rng(2);
  workload::Uniform_spec near;
  near.n = 10;
  near.selectivity_min = 0.9;
  EXPECT_EQ(portfolio.chosen_engine(workload::make_uniform(near, rng)),
            "frontier");

  // Oversized expanding instances fall back to the heuristic.
  core::Portfolio_options options;
  options.hard_exact_size_limit = 8;
  const Portfolio_optimizer capped(options);
  EXPECT_EQ(capped.chosen_engine(test::expanding_instance(10, 3)),
            "heuristic-only");
}

TEST(Portfolio_test, HeuristicOnlyModeStillReturnsValidPlans) {
  core::Portfolio_options options;
  options.hard_exact_size_limit = 4;
  Portfolio_optimizer portfolio(options);
  const Instance instance = test::expanding_instance(9, 5);
  const auto result = portfolio.optimize(request_for(instance));
  EXPECT_FALSE(result.proven_optimal);
  EXPECT_TRUE(result.plan.is_permutation_of(9));
  // Never worse than the polished heuristic it is built on.
  opt::Local_search_optimizer polish;
  const auto baseline = polish.optimize(request_for(instance));
  EXPECT_LE(result.cost, baseline.cost * (1.0 + test::cost_tolerance));
}

TEST(Portfolio_test, SuboptimalityForwardedToTheSearch) {
  core::Portfolio_options options;
  options.suboptimality = 0.25;
  Portfolio_optimizer relaxed(options);
  const Instance instance = test::selective_instance(9, 7);
  const auto request = request_for(instance);
  const auto result = relaxed.optimize(request);
  EXPECT_FALSE(result.proven_optimal);
  opt::Exhaustive_optimizer exhaustive;
  const auto optimal = exhaustive.optimize(request);
  EXPECT_LE(result.cost, optimal.cost * 1.25 * (1.0 + test::cost_tolerance));
}

TEST(Portfolio_test, ParallelExactPhaseStaysOptimalOnEveryRegime) {
  // threads >= 2 swaps the exact phase onto bnb-par (lower-bound=1 for
  // the bnb-lb dispatch); the result must stay bit-for-bit optimal and
  // report the parallel engine's thread count.
  core::Portfolio_options options;
  options.exact_threads = 4;
  Portfolio_optimizer parallel(options);
  opt::Exhaustive_optimizer exhaustive;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    for (const auto& instance : {test::selective_instance(9, seed),
                                 test::expanding_instance(9, seed)}) {
      const auto request = request_for(instance);
      const auto got = parallel.optimize(request);
      const auto want = exhaustive.optimize(request);
      EXPECT_TRUE(test::costs_equal(got.cost, want.cost)) << "seed " << seed;
      EXPECT_TRUE(got.proven_optimal);
      EXPECT_EQ(got.stats.engine_threads, 4u);
    }
  }
}

TEST(Portfolio_test, SuboptimalityKeepsTheSequentialExactPhase) {
  // The relaxation is a sequential-engine contract; asking for both
  // threads and subopt must not silently drop the relaxation.
  core::Portfolio_options options;
  options.exact_threads = 4;
  options.suboptimality = 0.25;
  Portfolio_optimizer relaxed(options);
  const Instance instance = test::selective_instance(9, 7);
  const auto result = relaxed.optimize(request_for(instance));
  EXPECT_FALSE(result.proven_optimal);
  EXPECT_NE(result.stats.engine_threads, 4u);
  opt::Exhaustive_optimizer exhaustive;
  const auto optimal = exhaustive.optimize(request_for(instance));
  EXPECT_LE(result.cost, optimal.cost * 1.25 * (1.0 + test::cost_tolerance));
}

TEST(Portfolio_test, RespectsPrecedenceAcrossPhases) {
  const auto scenario = workload::sky_survey();
  Request request;
  request.instance = &scenario.instance;
  request.precedence = &scenario.precedence;
  Portfolio_optimizer portfolio;
  const auto result = portfolio.optimize(request);
  EXPECT_TRUE(scenario.precedence.respects(result.plan.order()));
  EXPECT_TRUE(result.proven_optimal);
}

TEST(Portfolio_test, ScenariosSolveOptimally) {
  Portfolio_optimizer portfolio;
  opt::Exhaustive_optimizer exhaustive;
  for (const auto& scenario :
       {workload::credit_screening(), workload::sky_survey(),
        workload::log_analytics()}) {
    Request request;
    request.instance = &scenario.instance;
    request.precedence = &scenario.precedence;
    const auto got = portfolio.optimize(request);
    const auto want = exhaustive.optimize(request);
    EXPECT_TRUE(test::costs_equal(got.cost, want.cost))
        << scenario.instance.name();
  }
}

}  // namespace
}  // namespace quest
