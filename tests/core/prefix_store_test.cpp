#include <gtest/gtest.h>

#include "quest/core/prefix_store.hpp"

namespace quest {
namespace {

using core::Prefix_store;
using model::Service_id;

std::vector<Service_id> ids(std::initializer_list<Service_id> list) {
  return {list};
}

TEST(Prefix_store_test, RecordsAndCovers) {
  Prefix_store store;
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.record(ids({1, 2})));
  EXPECT_TRUE(store.record(ids({3})));
  EXPECT_EQ(store.size(), 2u);

  EXPECT_TRUE(store.covers(ids({1, 2})));
  EXPECT_TRUE(store.covers(ids({1, 2, 0})));
  EXPECT_TRUE(store.covers(ids({3, 1, 2})));
  EXPECT_FALSE(store.covers(ids({1})));       // shorter than any prefix
  EXPECT_FALSE(store.covers(ids({2, 1})));    // different order
  EXPECT_FALSE(store.covers(ids({0, 1, 2})));
}

TEST(Prefix_store_test, EmptyStoreCoversNothing) {
  const Prefix_store store;
  EXPECT_FALSE(store.covers(ids({0})));
}

TEST(Prefix_store_test, CapacityDropsAreCounted) {
  Prefix_store store(2);
  EXPECT_TRUE(store.record(ids({0})));
  EXPECT_TRUE(store.record(ids({1})));
  EXPECT_FALSE(store.record(ids({2})));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.dropped(), 1u);
  EXPECT_FALSE(store.covers(ids({2, 0})));
}

TEST(Prefix_store_test, ClearResets) {
  Prefix_store store(1);
  store.record(ids({0}));
  store.record(ids({1}));
  EXPECT_EQ(store.dropped(), 1u);
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.dropped(), 0u);
  EXPECT_TRUE(store.record(ids({1})));
  EXPECT_TRUE(store.covers(ids({1, 0})));
}

}  // namespace
}  // namespace quest
