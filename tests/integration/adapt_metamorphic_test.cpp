// Metamorphic checks of the adaptive loop against the engine stack:
// a *fitted* model is just another Cost_model, so every exact engine must
// agree on its optimum, and warm-starting a re-optimization from a plan
// cached under an earlier model must never end worse than optimizing
// cold under the same fitted model. Both properties are swept over 20
// seeded fit round trips — the models the engines see here carry the
// estimation noise of a real refit, not hand-picked matrices.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "quest/adapt/model_fitter.hpp"
#include "quest/adapt/observation_log.hpp"
#include "quest/core/engines.hpp"
#include "quest/model/cost.hpp"
#include "quest/model/cost_model.hpp"
#include "support/generators.hpp"
#include "support/helpers.hpp"
#include "support/synthetic_runs.hpp"

namespace quest {
namespace {

using model::Cost_model;
using model::Instance;
using model::Plan;

constexpr std::size_t k_seeds = 20;

/// A fitted model produced the way the serving loop produces one:
/// synthesize executions under a hidden correlated truth, fit, bind.
Cost_model fit_model(const Instance& instance, Rng& rng) {
  const Cost_model hidden = Cost_model::correlated_seeded(
      instance.size(), rng.uniform(0.4, 1.0), rng());
  adapt::Observation_log log(instance.size());
  Rng plan_rng(rng());
  test::synthesize_runs(log, instance, hidden, 40, 1'000'000, plan_rng);
  const adapt::Model_fitter fitter;
  return fitter.to_spec(fitter.fit(log), hidden.policy(),
                        model::Objective::mean)
      .bind(instance.size());
}

TEST(Adapt_metamorphic, exact_engines_agree_on_fitted_models) {
  const std::vector<std::string> engines{"bnb", "bnb-par", "dp",
                                         "frontier"};
  for (std::uint64_t seed = 1; seed <= k_seeds; ++seed) {
    Rng rng(seed * 6151);
    const Instance instance = test::gen_instance(rng, 8, 0.2, 0.95);
    opt::Request request;
    request.instance = &instance;
    request.model = fit_model(instance, rng);
    request.seed = seed;

    double reference = -1.0;
    for (const std::string& name : engines) {
      const opt::Result result =
          core::make_optimizer(name)->optimize(request);
      ASSERT_TRUE(result.plan.is_permutation_of(instance.size()))
          << name << " seed " << seed;
      ASSERT_TRUE(result.proven_optimal) << name << " seed " << seed;
      EXPECT_TRUE(test::costs_equal(
          result.cost,
          model::bottleneck_cost(instance, result.plan, request.model)))
          << name << " seed " << seed
          << " reports a cost its plan does not achieve";
      if (reference < 0.0) {
        reference = result.cost;
      } else {
        EXPECT_TRUE(test::costs_equal(result.cost, reference))
            << name << " disagrees with " << engines.front() << " on seed "
            << seed;
      }
    }
  }
}

TEST(Adapt_metamorphic, warm_started_refit_never_loses_to_cold) {
  // The warm plan is what the serving tier would hand over: the optimum
  // of the *previous* (independent) model, cached before the refit.
  for (std::uint64_t seed = 1; seed <= k_seeds; ++seed) {
    Rng rng(seed * 9173);
    const Instance instance = test::gen_instance(rng, 9, 0.2, 0.95);
    const Cost_model fitted = fit_model(instance, rng);

    opt::Request stale;
    stale.instance = &instance;
    stale.model = Cost_model::independent(fitted.policy());
    stale.seed = seed;
    const Plan warm_plan =
        core::make_optimizer("local-search")->optimize(stale).plan;

    for (const char* const name : {"bnb", "local-search"}) {
      opt::Request request;
      request.instance = &instance;
      request.model = fitted;
      request.seed = seed;
      const double cold =
          core::make_optimizer(name)->optimize(request).cost;
      request.warm_start = &warm_plan;
      const double warm =
          core::make_optimizer(name)->optimize(request).cost;
      EXPECT_LE(warm, cold * (1.0 + test::cost_tolerance))
          << name << " seed " << seed
          << ": warm-started result lost to the cold run";
      EXPECT_LE(warm,
                model::bottleneck_cost(instance, warm_plan, fitted) *
                    (1.0 + test::cost_tolerance))
          << name << " seed " << seed
          << ": result worse than its own warm start";
    }
  }
}

}  // namespace
}  // namespace quest
