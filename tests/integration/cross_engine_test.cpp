// Cross-engine consistency: quest ships four independent exact solvers
// (branch-and-bound, subset DP, frontier best-first, bounded exhaustive
// DFS) built on different algorithmic principles. On any shared input
// they must agree on the optimal cost — the strongest internal-evidence
// check the suite has, swept across every scenario, topology family,
// send policy and constraint setting.

#include <gtest/gtest.h>

#include <memory>

#include "quest/core/branch_and_bound.hpp"
#include "quest/core/portfolio.hpp"
#include "quest/opt/dp.hpp"
#include "quest/opt/exhaustive.hpp"
#include "quest/opt/frontier.hpp"
#include "quest/workload/generators.hpp"
#include "quest/workload/scenarios.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using model::Instance;
using model::Send_policy;
using opt::Request;

/// Runs every exact engine on `request` and checks pairwise agreement.
void expect_all_engines_agree(const Request& request) {
  std::vector<std::unique_ptr<opt::Optimizer>> engines;
  engines.push_back(std::make_unique<core::Bnb_optimizer>());
  {
    core::Bnb_options lb;
    lb.enable_lower_bound = true;
    engines.push_back(std::make_unique<core::Bnb_optimizer>(lb));
  }
  engines.push_back(std::make_unique<opt::Dp_optimizer>());
  engines.push_back(std::make_unique<opt::Frontier_optimizer>());
  engines.push_back(std::make_unique<opt::Exhaustive_optimizer>(true));
  engines.push_back(std::make_unique<core::Portfolio_optimizer>());

  double reference = -1.0;
  std::string reference_engine;
  for (const auto& engine : engines) {
    const auto result = engine->optimize(request);
    ASSERT_TRUE(result.plan.is_permutation_of(request.instance->size()))
        << engine->name();
    EXPECT_TRUE(test::costs_equal(
        result.cost, model::bottleneck_cost(*request.instance, result.plan,
                                            request.policy)))
        << engine->name() << " reports a cost its plan does not achieve";
    if (request.precedence != nullptr) {
      EXPECT_TRUE(request.precedence->respects(result.plan.order()))
          << engine->name();
    }
    if (reference < 0.0) {
      reference = result.cost;
      reference_engine = engine->name();
    } else {
      EXPECT_TRUE(test::costs_equal(result.cost, reference))
          << engine->name() << " disagrees with " << reference_engine;
    }
  }
}

TEST(Cross_engine, ScenariosBothPolicies) {
  for (const auto& scenario :
       {workload::credit_screening(), workload::sky_survey(),
        workload::log_analytics()}) {
    for (const auto policy :
         {Send_policy::sequential, Send_policy::overlapped}) {
      Request request;
      request.instance = &scenario.instance;
      request.precedence = &scenario.precedence;
      request.policy = policy;
      expect_all_engines_agree(request);
    }
  }
}

TEST(Cross_engine, TopologyFamilies) {
  for (std::uint64_t seed : {5u, 6u}) {
    Rng rng(seed * 2161);
    workload::Clustered_spec clustered;
    clustered.n = 8;
    workload::Euclidean_spec euclidean;
    euclidean.n = 8;
    workload::Bottleneck_tsp_spec btsp;
    btsp.n = 8;
    for (const Instance& instance :
         {workload::make_clustered(clustered, rng),
          workload::make_euclidean(euclidean, rng),
          workload::make_bottleneck_tsp(btsp, rng)}) {
      Request request;
      request.instance = &instance;
      expect_all_engines_agree(request);
    }
  }
}

TEST(Cross_engine, ConstrainedSinkAndExpanding) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    Rng rng(seed);
    workload::Uniform_spec spec;
    spec.n = 8;
    spec.selectivity_min = 0.4;
    spec.selectivity_max = 1.8;
    spec.sink_min = 0.2;
    spec.sink_max = 2.0;
    const Instance instance = workload::make_uniform(spec, rng);
    Rng dag_rng(seed * 7);
    const auto dag = workload::make_random_dag(8, 0.25, dag_rng);
    Request request;
    request.instance = &instance;
    request.precedence = &dag;
    expect_all_engines_agree(request);
  }
}

}  // namespace
}  // namespace quest
